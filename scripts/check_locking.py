#!/usr/bin/env python3
"""Repo-specific locking linter: walks C++ sources and fails on lock-usage
patterns that undermine the deadlock-freedom discipline documented in
ARCHITECTURE.md ("Lock-order inventory"). The runtime ranked-mutex checker
(-DSMN_LOCK_DEBUG=ON, src/util/lock_rank.h) catches ordering violations the
tests actually execute; this lint catches the statically visible hazards on
every build, executed or not.

Rules:

  mutex-rank        An smn::Mutex under src/ declared without a
                    (name, LockRank) identity — a bare `Mutex m;`, an empty
                    `make_unique<Mutex>()`, or `new Mutex()`. Unranked
                    mutexes opt out of the runtime rank check, so every
                    engine mutex must pick its place in the LockRank order
                    (tests may use ad-hoc unranked locks).
  raw-sync          std::mutex / std::condition_variable / std::lock_guard
                    and friends outside src/util/mutex.h and
                    src/util/lock_rank.cc. Raw primitives are invisible to
                    both -Wthread-safety and the rank checker; all locking
                    must flow through smn::Mutex.
  blocking-in-lock  A known blocking call lexically inside a MutexLock
                    scope: BoundedQueue Push/PushWithDeadline/Pop,
                    CondVar Wait/WaitFor, ThreadPool Submit, journal
                    Sync/MaybeSync/LogAssert/LogAssertSoft/LogClose,
                    thread join, and .get()/.wait() on a std::future
                    declared in the same file. Blocking while holding a
                    mutex is where deadlock cycles live; every such site
                    must either move out of the critical section or carry an
                    allow-comment justifying why it cannot wait on anything
                    that (transitively) needs the held lock.
  unpaired-lock     Manual `x.Lock()` with no `x.Unlock()` anywhere in the
                    same file (a leaked critical section on at least one
                    path), or a temporary `MutexLock(mu);` — which compiles,
                    locks, and unlocks again at the end of the statement,
                    protecting nothing. Use a named MutexLock.

Suppression: append `// smn-lint: allow(<rule>)` — optionally several,
comma-separated — to the offending line or the line directly above it, with
a comment justifying the site (for blocking-in-lock: why the wait cannot
close a cycle back to the held mutex).

Shared walking/suppression/reporting machinery lives in scripts/lintlib.py
(also used by check_determinism.py); this file holds only the locking rules.

Usage:
  check_locking.py [paths...]       # default: src/
  check_locking.py --list-rules
"""

from __future__ import annotations

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lintlib  # noqa: E402

Finding = lintlib.Finding

RULES = {
    "mutex-rank": "engine Mutex declared without a (name, LockRank) identity",
    "raw-sync": "raw std:: synchronization primitive outside util/mutex.h",
    "blocking-in-lock": "known blocking call inside a MutexLock scope",
    "unpaired-lock": "manual Lock() without Unlock(), or temporary MutexLock",
}

# Paths (relative to the repository root, '/'-separated) where a rule does
# not apply: the sanctioned implementation sites the rule text names.
ALLOWED_PATHS = {
    # mutex.h *is* the wrapper; lock_rank.cc is the checker itself, which
    # must not recurse into the instrumented Mutex it monitors.
    "raw-sync": ("src/util/mutex.h", "src/util/lock_rank.cc"),
    # mutex.h declares the MutexLock class (ctor/dtor Lock/Unlock pair and
    # the `MutexLock(` tokens of its own declarations).
    "unpaired-lock": ("src/util/mutex.h",),
}

# Longer alternatives first so e.g. `PushWithDeadline(` is reported under
# its own name; the trailing `\(` keeps `Wait` from matching `WaitFor`'s
# prefix anyway.
BLOCKING_CALL_RE = re.compile(
    r"(?:\.|->)\s*(PushWithDeadline|Push|Pop|WaitFor|Wait|Submit|MaybeSync|"
    r"Sync|LogAssertSoft|LogAssert|LogClose|join)\s*\(")
FUTURE_DECL_RE = re.compile(r"\bfuture\s*<")
# A named scoped lock: `MutexLock lock(mu_);` or `MutexLock lock{mu_};`.
MUTEXLOCK_DECL_RE = re.compile(r"\bMutexLock\s+\w+\s*[({]")
# `MutexLock(mu_);` — a temporary, destroyed (unlocked) at the semicolon.
MUTEXLOCK_TEMP_RE = re.compile(r"\bMutexLock\s*[({]")
# A bare declaration `Mutex m;` — no initializer, not a reference/pointer.
UNRANKED_MUTEX_RE = re.compile(r"(?<![:\w<&*~])Mutex\s+\w+\s*;")
UNRANKED_HEAP_RE = re.compile(
    r"make_unique\s*<\s*Mutex\s*>\s*\(\s*\)"
    r"|\bnew\s+Mutex\s*(?:\(\s*\)|\{\s*\}|;)")
RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(recursive_timed_mutex|recursive_mutex|timed_mutex|"
    r"shared_timed_mutex|shared_mutex|mutex|condition_variable_any|"
    r"condition_variable|lock_guard|unique_lock|scoped_lock|shared_lock)\b")
MANUAL_LOCK_RE = re.compile(r"((?:\w+(?:\.|->))+)Lock\s*\(\s*\)")
MANUAL_UNLOCK_RE = re.compile(r"((?:\w+(?:\.|->))+)Unlock\s*\(\s*\)")


def brace_depths(text: str) -> list[int]:
    """depths[i] = brace-nesting depth immediately before text[i]."""
    depths = []
    depth = 0
    for c in text:
        depths.append(depth)
        if c == "{":
            depth += 1
        elif c == "}":
            depth = max(0, depth - 1)
    return depths


def mutexlock_scopes(text: str) -> list[tuple[int, int]]:
    """(start, end) offset intervals over which a named MutexLock is held:
    from its declaration to the '}' closing the enclosing block. Lexical,
    per translation unit — calls through helper functions are out of reach,
    which is exactly the runtime checker's job; this rule catches the
    directly visible sites."""
    depths = brace_depths(text)
    scopes = []
    for match in MUTEXLOCK_DECL_RE.finditer(text):
        start = match.start()
        depth = depths[start]
        end = len(text)
        # Inner blocks close at depth-before > `depth`; the first '}' whose
        # depth-before equals the declaration depth closes the enclosing
        # block and destroys the lock.
        for i in range(match.end(), len(text)):
            if text[i] == "}" and depths[i] == depth:
                end = i
                break
        scopes.append((start, end))
    return scopes


def enclosing_scope(scopes: list[tuple[int, int]], offset: int):
    """The innermost (latest-starting) MutexLock scope containing offset."""
    best = None
    for start, end in scopes:
        if start < offset < end and (best is None or start > best[0]):
            best = (start, end)
    return best


def scan_file(path: str, rel: str) -> list[Finding]:
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        raw = handle.read()
    raw_lines = raw.splitlines()
    text = lintlib.strip_comments_and_strings(raw)
    findings: list[Finding] = []
    report = lintlib.make_reporter(rel, text, raw_lines, findings,
                                   ALLOWED_PATHS)
    normalized = rel.replace(os.sep, "/")

    # --- mutex-rank: engine mutexes must declare their LockRank. Tests and
    # benches may use ad-hoc unranked locks, so the rule is src/-scoped.
    if normalized.startswith("src/"):
        for match in UNRANKED_MUTEX_RE.finditer(text):
            report(match.start(), "mutex-rank",
                   "Mutex declared without a (name, LockRank) identity; use "
                   "Mutex m{\"subsystem.what\", LockRank::k...} so the "
                   "SMN_LOCK_DEBUG rank checker covers it")
        for match in UNRANKED_HEAP_RE.finditer(text):
            report(match.start(), "mutex-rank",
                   "heap-allocated Mutex without a (name, LockRank) "
                   "identity; pass the name and rank to the constructor")

    # --- raw-sync: all locking flows through smn::Mutex.
    for match in RAW_SYNC_RE.finditer(text):
        report(match.start(), "raw-sync",
               f"std::{match.group(1)} is invisible to -Wthread-safety and "
               "the lock-rank checker; use smn::Mutex / MutexLock / CondVar "
               "from util/mutex.h")

    # --- blocking-in-lock: nothing that can wait runs inside a critical
    # section without an explicit justification.
    scopes = mutexlock_scopes(text)
    if scopes:
        def report_blocking(offset: int, what: str) -> None:
            scope = enclosing_scope(scopes, offset)
            if scope is None:
                return
            report(offset, "blocking-in-lock",
                   f"{what} inside the MutexLock scope opened at line "
                   f"{lintlib.line_of(text, scope[0])}; a wait while "
                   "holding a mutex can close a deadlock cycle — move it "
                   "out of the critical section or justify with an "
                   "allow-comment")

        for match in BLOCKING_CALL_RE.finditer(text):
            report_blocking(match.start(), f"blocking call "
                                           f"'{match.group(1)}()'")
        futures = lintlib.typed_variable_names(text, FUTURE_DECL_RE)
        for name in sorted(futures):
            wait_re = re.compile(
                rf"\b{re.escape(name)}(?:\s*\[[^\]]*\])?\s*(?:\.|->)\s*"
                rf"(get|wait)\s*\(")
            for match in wait_re.finditer(text):
                report_blocking(match.start(),
                                f"future '{name}.{match.group(1)}()'")

    # --- unpaired-lock: manual Lock without Unlock, and the lock-nothing
    # temporary.
    unlock_receivers = {m.group(1) for m in MANUAL_UNLOCK_RE.finditer(text)}
    for match in MANUAL_LOCK_RE.finditer(text):
        if match.group(1) not in unlock_receivers:
            report(match.start(), "unpaired-lock",
                   f"manual '{match.group(1)}Lock()' with no "
                   f"'{match.group(1)}Unlock()' in this file; prefer a "
                   "scoped MutexLock, which cannot leak the lock")
    for match in MUTEXLOCK_TEMP_RE.finditer(text):
        report(match.start(), "unpaired-lock",
               "temporary MutexLock is destroyed — and the mutex released — "
               "at the end of the full expression; name it "
               "(`MutexLock lock(mu);`) to hold the lock for the scope")

    return findings


def main() -> int:
    return lintlib.run_cli(__doc__, "locking-lint", RULES, scan_file, ["src"])


if __name__ == "__main__":
    sys.exit(main())
