#!/usr/bin/env python3
"""Guards the perf trajectory: compares a freshly produced BENCH_<name>.json
against the committed baseline and fails when a key metric regresses beyond
the tolerance band.

Entries are matched by name. For lower-is-better fields (times) the fresh
value must satisfy fresh <= baseline * max_ratio; for higher-is-better
metrics (speedups) fresh >= baseline / max_ratio. Zero-valued baselines
(e.g. allocs_per_step == 0, the kernel's zero-allocation claim) switch to an
absolute bound: fresh <= zero_epsilon. Entries present only in the fresh
file are new benchmarks and pass; entries present only in the baseline fail,
so coverage cannot silently shrink.

Usage:
  check_bench_regress.py --baseline BENCH_micro_core.json \
      --fresh build/BENCH_micro_core.json \
      --lower-is-better real_ms_per_iter,allocs_per_step \
      [--higher-is-better speedup_mean_per_assertion] \
      [--max-ratio 2.5] [--zero-epsilon 0.01] \
      [--warn-underprovisioned speedup_at_4t=4]

--warn-underprovisioned FIELD=N (repeatable) downgrades a failure on FIELD
to a warning when either side of the comparison records
metrics.hardware_threads < N: a 4-thread scaling metric measured on a
2-core runner says nothing about a scaling regression, only about the
runner — and a baseline recorded on such a runner is equally meaningless as
a reference, so the comparison is only hard-gated when both sides were
provisioned for the metric. Warnings are printed but do not affect the exit
code.

The default --max-ratio is deliberately loose: the committed baselines come
from a dev box, CI runners differ in absolute speed, and micro timings are
noisy. The band is tight enough to catch structural regressions (an
accidentally reintroduced per-step allocation is a >3x hit on the walk
benches) without flaking on machine variance.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"error: cannot read bench JSON {path!r}: {error}")


def numeric_fields(entry: dict) -> dict:
    fields = dict(entry.get("fields", {}))
    return {k: v for k, v in fields.items() if isinstance(v, (int, float))}


def parse_underprovisioned(specs: list[str]) -> dict[str, int]:
    thresholds: dict[str, int] = {}
    for spec in specs:
        field, sep, value = spec.partition("=")
        if not sep or not field:
            sys.exit(f"error: --warn-underprovisioned expects FIELD=N, "
                     f"got {spec!r}")
        try:
            thresholds[field] = int(value)
        except ValueError:
            sys.exit(f"error: --warn-underprovisioned threshold must be an "
                     f"integer, got {spec!r}")
    return thresholds


def check(args: argparse.Namespace) -> int:
    baseline = load(args.baseline)
    fresh = load(args.fresh)
    lower = [f for f in args.lower_is_better.split(",") if f]
    higher = [f for f in args.higher_is_better.split(",") if f]
    underprovisioned = parse_underprovisioned(args.warn_underprovisioned)
    hardware_threads = fresh.get("metrics", {}).get("hardware_threads")
    baseline_threads = baseline.get("metrics", {}).get("hardware_threads")

    base_entries = {e["name"]: e for e in baseline.get("entries", [])}
    fresh_entries = {e["name"]: e for e in fresh.get("entries", [])}

    failures = []
    warnings = []
    rows = []

    def demote_to_warning(field: str) -> str | None:
        """Returns the demotion reason when a failure on `field` reflects
        runner provisioning, not a regression: the fresh run — or the run
        that recorded the baseline — had fewer hardware threads than the
        metric needs to be meaningful. None means hard-gate the failure."""
        needed = underprovisioned.get(field)
        if needed is None:
            return None
        if (isinstance(hardware_threads, (int, float))
                and hardware_threads < needed):
            return (f"fresh runner has {hardware_threads:.6g} hardware "
                    f"thread(s), metric needs {needed}")
        if (isinstance(baseline_threads, (int, float))
                and baseline_threads < needed):
            return (f"baseline was recorded on {baseline_threads:.6g} "
                    f"hardware thread(s), metric needs {needed}")
        return None

    def judge(name: str, field: str, base_value: float, fresh_value: float,
              lower_better: bool) -> None:
        if base_value == 0 and lower_better:
            ok = abs(fresh_value) <= args.zero_epsilon
            bound = f"<= {args.zero_epsilon} (abs, zero baseline)"
        elif base_value == 0:
            ok = fresh_value >= 0
            bound = ">= 0 (zero baseline)"
        elif lower_better:
            ok = fresh_value <= base_value * args.max_ratio
            bound = f"<= {base_value * args.max_ratio:.6g}"
        else:
            ok = fresh_value >= base_value / args.max_ratio
            bound = f">= {base_value / args.max_ratio:.6g}"
        detail = (f"{name}.{field}: fresh {fresh_value:.6g} "
                  f"vs baseline {base_value:.6g} (bound {bound})")
        demotion = demote_to_warning(field) if not ok else None
        if demotion is not None:
            warnings.append(f"{detail} — {demotion}")
            rows.append((name, field, base_value, fresh_value, bound, None))
            return
        rows.append((name, field, base_value, fresh_value, bound, ok))
        if not ok:
            failures.append(detail)

    for name, base_entry in sorted(base_entries.items()):
        if name not in fresh_entries:
            failures.append(f"{name}: present in baseline but missing from "
                            f"fresh run — bench coverage shrank")
            continue
        base_fields = numeric_fields(base_entry)
        fresh_fields = numeric_fields(fresh_entries[name])
        for field in lower + higher:
            if field not in base_fields:
                continue
            if field not in fresh_fields:
                failures.append(f"{name}.{field}: dropped from fresh run")
                continue
            judge(name, field, base_fields[field], fresh_fields[field],
                  field in lower)

    # Top-level metrics (e.g. speedup_mean_per_assertion) follow the same
    # rules, matched by key.
    base_metrics = {k: v for k, v in baseline.get("metrics", {}).items()
                    if isinstance(v, (int, float))}
    fresh_metrics = {k: v for k, v in fresh.get("metrics", {}).items()
                     if isinstance(v, (int, float))}
    for field in lower + higher:
        if field in base_metrics:
            if field not in fresh_metrics:
                failures.append(f"metrics.{field}: dropped from fresh run")
            else:
                judge("metrics", field, base_metrics[field],
                      fresh_metrics[field], field in lower)

    width = max((len(r[0]) + len(r[1]) for r in rows), default=20) + 1
    for name, field, base_value, fresh_value, bound, ok in rows:
        flag = "warn" if ok is None else ("ok  " if ok else "FAIL")
        print(f"{flag} {name + '.' + field:<{width}} "
              f"baseline={base_value:.6g} fresh={fresh_value:.6g} "
              f"bound {bound}")

    if warnings:
        print(f"\n{len(warnings)} warning(s) on an underprovisioned runner "
              f"(not counted as regressions):", file=sys.stderr)
        for warning in warnings:
            print(f"  {warning}", file=sys.stderr)

    if failures:
        print(f"\n{len(failures)} regression(s) beyond the tolerance band "
              f"(max-ratio {args.max_ratio}):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    note = f" ({len(warnings)} warning(s))" if warnings else ""
    print(f"\nall {len(rows)} checked metrics within the tolerance band "
          f"(max-ratio {args.max_ratio}){note}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_<name>.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly produced BENCH_<name>.json")
    parser.add_argument("--lower-is-better", default="",
                        help="comma-separated entry fields where smaller is "
                             "better (times, allocation counts)")
    parser.add_argument("--higher-is-better", default="",
                        help="comma-separated fields where larger is better "
                             "(speedups, throughputs)")
    parser.add_argument("--max-ratio", type=float, default=2.5,
                        help="tolerated ratio against the baseline "
                             "(default: %(default)s)")
    parser.add_argument("--zero-epsilon", type=float, default=0.01,
                        help="absolute bound used when the baseline value "
                             "is exactly zero (default: %(default)s)")
    parser.add_argument("--warn-underprovisioned", action="append",
                        default=[], metavar="FIELD=N",
                        help="downgrade a failure on FIELD to a warning when "
                             "either side's metrics.hardware_threads < N "
                             "(repeatable)")
    args = parser.parse_args()
    if not args.lower_is_better and not args.higher_is_better:
        parser.error("nothing to check: pass --lower-is-better and/or "
                     "--higher-is-better")
    return check(args)


if __name__ == "__main__":
    sys.exit(main())
