#!/usr/bin/env python3
"""Repo-specific determinism linter: walks C++ sources and fails on the
nondeterminism sources the bit-identical reproduction contract
(ARCHITECTURE.md, "Determinism contract") bans. Runtime equivalence tests
catch these probabilistically; this lint catches them on every build.

Rules:

  unordered-iter   Iteration over std::unordered_map / std::unordered_set
                   (range-for or .begin() loops). Hash-table iteration order
                   is implementation- and address-dependent, so any
                   output-affecting loop over one is nondeterministic.
                   Membership tests, counts, and find() are fine.
  raw-random       rand(), srand(), random(), std::random_device,
                   arc4random, getrandom outside src/util/rng.* — all
                   randomness must flow through the seeded, forkable Rng.
  wall-clock       std::chrono::*_clock::now(), time(), clock(),
                   gettimeofday, clock_gettime outside src/util/stopwatch.h
                   — clocks may feed timing telemetry, never sampler input.
  pointer-key      std::map / std::set keyed by a pointer type: ordered by
                   address, i.e. by ASLR. Key by a stable id instead.
  thread-local     thread_local state outside the documented scratch
                   fallback (src/core/walk_scratch.h) and the lock-debug
                   held-lock stack (src/util/lock_rank.cc), which is
                   diagnostic-only and compiled out of release builds.
  raw-write        fwrite / write(2) / pwrite(v) / writev / fputs / fputc
                   outside src/util/record_codec.cc — all durable bytes must
                   flow through the CRC-framed RecordWriter so torn-write
                   detection and fsync policy stay centralized. Member calls
                   like std::ostream::write are not raw fd writes and do not
                   fire.

Suppression: append `// smn-lint: allow(<rule>)` — optionally several,
comma-separated — to the offending line or the line directly above it, with
a comment justifying why the construct cannot reach the output.

Shared walking/suppression/reporting machinery lives in scripts/lintlib.py
(also used by check_locking.py); this file holds only the determinism rules.

Usage:
  check_determinism.py [paths...]       # default: src/
  check_determinism.py --list-rules
"""

from __future__ import annotations

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lintlib  # noqa: E402

Finding = lintlib.Finding

RULES = {
    "unordered-iter": "iteration over an unordered container",
    "raw-random": "raw randomness outside util/rng",
    "wall-clock": "clock read outside util/stopwatch and bench timing",
    "pointer-key": "ordered container keyed by pointer (address order)",
    "thread-local": "thread_local state outside the scratch fallback",
    "raw-write": "raw byte write outside util/record_codec (RecordWriter)",
}

# Paths (relative to the repository root, '/'-separated) where a rule does
# not apply: the sanctioned implementation sites the rule text names.
ALLOWED_PATHS = {
    "raw-random": ("src/util/rng.h", "src/util/rng.cc"),
    "wall-clock": ("src/util/stopwatch.h",),
    "thread-local": ("src/core/walk_scratch.h", "src/util/lock_rank.cc"),
    "raw-write": ("src/util/record_codec.cc",),
}

RAW_RANDOM_RE = re.compile(
    r"(?<![\w.>:])(?:rand|srand|random|arc4random|getrandom)\s*\("
    r"|std\s*::\s*random_device")
WALL_CLOCK_RE = re.compile(
    # Any *clock::now() — catches aliases like `using Clock = steady_clock`.
    r"\b\w*[Cc]lock\s*::\s*now\b"
    r"|(?<![\w.>:])(?:time|clock|gettimeofday|clock_gettime)\s*\(")
THREAD_LOCAL_RE = re.compile(r"\bthread_local\b")
# The lookbehind rejects member calls (`stream.write(`, `ptr->write(`) and
# qualified non-global names; a leading `::` (global namespace, the POSIX
# syscall) still matches.
RAW_WRITE_RE = re.compile(
    r"(?<![\w.>])(?:::\s*)?"
    r"(?:fwrite|write|pwrite|pwritev|writev|fputs|fputc)\s*\(")
UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
ORDERED_DECL_RE = re.compile(r"\bstd\s*::\s*(map|set|multimap|multiset)\s*<")
RANGE_FOR_HEAD_RE = re.compile(r"\bfor\s*\(")
ITER_LOOP_RE = re.compile(r"=\s*(\w+)(?:\.|->)(?:c?begin)\s*\(")


def range_for_sequences(text: str):
    """Yields (offset, sequence_expression) for every range-based for in
    `text`. The header is parenthesis-balanced and split at the first `:`
    that is not part of a `::` scope operator, so qualified types in the
    loop variable declaration don't confuse the split."""
    for match in RANGE_FOR_HEAD_RE.finditer(text):
        depth = 1
        i = match.end()
        while i < len(text) and depth:
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
            i += 1
        if depth:
            continue
        content = text[match.end():i - 1]
        if ";" in content:
            continue  # Classic three-clause for loop.
        split = -1
        for j, c in enumerate(content):
            if c != ":":
                continue
            if (j > 0 and content[j - 1] == ":") or \
               (j + 1 < len(content) and content[j + 1] == ":"):
                continue
            split = j
            break
        if split < 0:
            continue
        yield match.start(), content[split + 1:]


def root_identifier(expression: str) -> str | None:
    """First identifier of a range-for sequence expression: `left[i]` ->
    `left`, `*store` -> `store`, `Foo()` -> `Foo`."""
    match = lintlib.IDENT_RE.search(expression)
    while match and match.group(0) in ("const", "auto", "std"):
        match = lintlib.IDENT_RE.search(expression, match.end())
    return match.group(0) if match else None


def scan_file(path: str, rel: str) -> list[Finding]:
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        raw = handle.read()
    raw_lines = raw.splitlines()
    text = lintlib.strip_comments_and_strings(raw)
    findings: list[Finding] = []
    report = lintlib.make_reporter(rel, text, raw_lines, findings,
                                   ALLOWED_PATHS)

    for match in RAW_RANDOM_RE.finditer(text):
        report(match.start(), "raw-random",
               "raw randomness; draw from util/rng (seeded Rng) instead")

    for match in WALL_CLOCK_RE.finditer(text):
        report(match.start(), "wall-clock",
               "clock read; time only through util/stopwatch, and only for "
               "telemetry")

    for match in THREAD_LOCAL_RE.finditer(text):
        report(match.start(), "thread-local",
               "thread_local state outside the documented scratch fallback "
               "(src/core/walk_scratch.h)")

    for match in RAW_WRITE_RE.finditer(text):
        report(match.start(), "raw-write",
               "raw byte write; durable bytes go through util/record_codec "
               "(RecordWriter) so CRC framing and fsync policy stay in one "
               "place")

    for match in ORDERED_DECL_RE.finditer(text):
        end = lintlib.template_argument_span(text, match.end() - 1)
        if end < 0:
            continue
        arguments = text[match.end():end - 1]
        # Key type only: up to the first top-level comma (map) or the whole
        # argument list (set).
        depth = 0
        key = arguments
        for i, c in enumerate(arguments):
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
            elif c == "," and depth == 0:
                key = arguments[:i]
                break
        if "*" in key:
            report(match.start(), "pointer-key",
                   f"std::{match.group(1)} keyed by a pointer iterates in "
                   "address order; key by a stable id instead")

    suspects = lintlib.typed_variable_names(text, UNORDERED_DECL_RE)
    for offset, sequence in range_for_sequences(text):
        root = root_identifier(sequence)
        if (root and root in suspects) or "unordered_" in sequence:
            report(offset, "unordered-iter",
                   f"range-for over unordered container "
                   f"'{root or sequence.strip()}'")
    for match in ITER_LOOP_RE.finditer(text):
        if match.group(1) in suspects:
            report(match.start(), "unordered-iter",
                   f"iterator loop over unordered container '{match.group(1)}'")

    return findings


def main() -> int:
    return lintlib.run_cli(__doc__, "determinism-lint", RULES, scan_file,
                           ["src"])


if __name__ == "__main__":
    sys.exit(main())
