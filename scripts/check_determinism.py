#!/usr/bin/env python3
"""Repo-specific determinism linter: walks C++ sources and fails on the
nondeterminism sources the bit-identical reproduction contract
(ARCHITECTURE.md, "Determinism contract") bans. Runtime equivalence tests
catch these probabilistically; this lint catches them on every build.

Rules:

  unordered-iter   Iteration over std::unordered_map / std::unordered_set
                   (range-for or .begin() loops). Hash-table iteration order
                   is implementation- and address-dependent, so any
                   output-affecting loop over one is nondeterministic.
                   Membership tests, counts, and find() are fine.
  raw-random       rand(), srand(), random(), std::random_device,
                   arc4random, getrandom outside src/util/rng.* — all
                   randomness must flow through the seeded, forkable Rng.
  wall-clock       std::chrono::*_clock::now(), time(), clock(),
                   gettimeofday, clock_gettime outside src/util/stopwatch.h
                   — clocks may feed timing telemetry, never sampler input.
  pointer-key      std::map / std::set keyed by a pointer type: ordered by
                   address, i.e. by ASLR. Key by a stable id instead.
  thread-local     thread_local state outside the documented scratch
                   fallback (src/core/walk_scratch.h). Per-thread state that
                   influences output makes results schedule-dependent.
  raw-write        fwrite / write(2) / pwrite(v) / writev / fputs / fputc
                   outside src/util/record_codec.cc — all durable bytes must
                   flow through the CRC-framed RecordWriter so torn-write
                   detection and fsync policy stay centralized. Member calls
                   like std::ostream::write are not raw fd writes and do not
                   fire.

Suppression: append `// smn-lint: allow(<rule>)` — optionally several,
comma-separated — to the offending line or the line directly above it, with
a comment justifying why the construct cannot reach the output.

Usage:
  check_determinism.py [paths...]       # default: src/
  check_determinism.py --list-rules
"""

from __future__ import annotations

import argparse
import os
import re
import sys

RULES = {
    "unordered-iter": "iteration over an unordered container",
    "raw-random": "raw randomness outside util/rng",
    "wall-clock": "clock read outside util/stopwatch and bench timing",
    "pointer-key": "ordered container keyed by pointer (address order)",
    "thread-local": "thread_local state outside the scratch fallback",
    "raw-write": "raw byte write outside util/record_codec (RecordWriter)",
}

# Paths (relative to the repository root, '/'-separated) where a rule does
# not apply: the sanctioned implementation sites the rule text names.
ALLOWED_PATHS = {
    "raw-random": ("src/util/rng.h", "src/util/rng.cc"),
    "wall-clock": ("src/util/stopwatch.h",),
    "thread-local": ("src/core/walk_scratch.h",),
    "raw-write": ("src/util/record_codec.cc",),
}

CXX_EXTENSIONS = (".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx", ".inl")

ALLOW_RE = re.compile(r"//\s*smn-lint:\s*allow\(([^)]*)\)")

RAW_RANDOM_RE = re.compile(
    r"(?<![\w.>:])(?:rand|srand|random|arc4random|getrandom)\s*\("
    r"|std\s*::\s*random_device")
WALL_CLOCK_RE = re.compile(
    # Any *clock::now() — catches aliases like `using Clock = steady_clock`.
    r"\b\w*[Cc]lock\s*::\s*now\b"
    r"|(?<![\w.>:])(?:time|clock|gettimeofday|clock_gettime)\s*\(")
THREAD_LOCAL_RE = re.compile(r"\bthread_local\b")
# The lookbehind rejects member calls (`stream.write(`, `ptr->write(`) and
# qualified non-global names; a leading `::` (global namespace, the POSIX
# syscall) still matches.
RAW_WRITE_RE = re.compile(
    r"(?<![\w.>])(?:::\s*)?"
    r"(?:fwrite|write|pwrite|pwritev|writev|fputs|fputc)\s*\(")
UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
ORDERED_DECL_RE = re.compile(r"\bstd\s*::\s*(map|set|multimap|multiset)\s*<")
RANGE_FOR_HEAD_RE = re.compile(r"\bfor\s*\(")
ITER_LOOP_RE = re.compile(r"=\s*(\w+)(?:\.|->)(?:c?begin)\s*\(")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")

# Identifier tokens that can trail a declarator's type but are not the
# variable name.
NON_NAME_TOKENS = {"const", "constexpr", "static", "mutable", "inline",
                   "noexcept", "override", "final"}


def strip_comments_and_strings(text: str) -> str:
    """Blanks comment bodies and string/char literals, preserving offsets
    (every replaced character becomes a space; newlines survive) so line
    numbers and column positions keep matching the original text."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # inside a string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
            out.append(c if c in (state, "\n") else " ")
        i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def template_argument_span(text: str, open_angle: int) -> int:
    """Returns the offset just past the '>' matching the '<' at open_angle,
    or -1 when unbalanced (macro soup); callers then skip the site."""
    depth = 0
    i = open_angle
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{":  # statement ended before the template closed
            return -1
        i += 1
    return -1


def declared_name_after(text: str, pos: int) -> str | None:
    """The declared identifier following a type that ends at `pos` — skips
    trailing '>'/'&'/'*'/whitespace and non-name keywords."""
    i = pos
    while i < len(text) and text[i] in ">&* \t\n":
        i += 1
    match = IDENT_RE.match(text, i)
    while match and match.group(0) in NON_NAME_TOKENS:
        i = match.end()
        while i < len(text) and text[i] in "&* \t\n":
            i += 1
        match = IDENT_RE.match(text, i)
    return match.group(0) if match else None


def unordered_variables(text: str) -> set[str]:
    """Names declared with a type mentioning an unordered container —
    including nested uses like std::vector<std::unordered_set<T>>."""
    names = set()
    for match in UNORDERED_DECL_RE.finditer(text):
        end = template_argument_span(text, match.end() - 1)
        if end < 0:
            continue
        name = declared_name_after(text, end)
        if name:
            names.add(name)
    return names


def range_for_sequences(text: str):
    """Yields (offset, sequence_expression) for every range-based for in
    `text`. The header is parenthesis-balanced and split at the first `:`
    that is not part of a `::` scope operator, so qualified types in the
    loop variable declaration don't confuse the split."""
    for match in RANGE_FOR_HEAD_RE.finditer(text):
        depth = 1
        i = match.end()
        while i < len(text) and depth:
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
            i += 1
        if depth:
            continue
        content = text[match.end():i - 1]
        if ";" in content:
            continue  # Classic three-clause for loop.
        split = -1
        for j, c in enumerate(content):
            if c != ":":
                continue
            if (j > 0 and content[j - 1] == ":") or \
               (j + 1 < len(content) and content[j + 1] == ":"):
                continue
            split = j
            break
        if split < 0:
            continue
        yield match.start(), content[split + 1:]


def root_identifier(expression: str) -> str | None:
    """First identifier of a range-for sequence expression: `left[i]` ->
    `left`, `*store` -> `store`, `Foo()` -> `Foo`."""
    match = IDENT_RE.search(expression)
    while match and match.group(0) in ("const", "auto", "std"):
        match = IDENT_RE.search(expression, match.end())
    return match.group(0) if match else None


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allowed_rules(raw_lines: list[str], line: int) -> set[str]:
    """Rules suppressed for 1-indexed `line` (same line or the line above)."""
    rules: set[str] = set()
    for index in (line - 1, line - 2):
        if 0 <= index < len(raw_lines):
            match = ALLOW_RE.search(raw_lines[index])
            if match:
                rules.update(
                    r.strip() for r in match.group(1).split(",") if r.strip())
    return rules


def scan_file(path: str, rel: str) -> list[Finding]:
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        raw = handle.read()
    raw_lines = raw.splitlines()
    text = strip_comments_and_strings(raw)
    findings: list[Finding] = []

    def report(offset: int, rule: str, message: str) -> None:
        if rel.replace(os.sep, "/") in ALLOWED_PATHS.get(rule, ()):
            return
        line = line_of(text, offset)
        if rule in allowed_rules(raw_lines, line):
            return
        findings.append(Finding(rel, line, rule, message))

    for match in RAW_RANDOM_RE.finditer(text):
        report(match.start(), "raw-random",
               "raw randomness; draw from util/rng (seeded Rng) instead")

    for match in WALL_CLOCK_RE.finditer(text):
        report(match.start(), "wall-clock",
               "clock read; time only through util/stopwatch, and only for "
               "telemetry")

    for match in THREAD_LOCAL_RE.finditer(text):
        report(match.start(), "thread-local",
               "thread_local state outside the documented scratch fallback "
               "(src/core/walk_scratch.h)")

    for match in RAW_WRITE_RE.finditer(text):
        report(match.start(), "raw-write",
               "raw byte write; durable bytes go through util/record_codec "
               "(RecordWriter) so CRC framing and fsync policy stay in one "
               "place")

    for match in ORDERED_DECL_RE.finditer(text):
        end = template_argument_span(text, match.end() - 1)
        if end < 0:
            continue
        arguments = text[match.end():end - 1]
        # Key type only: up to the first top-level comma (map) or the whole
        # argument list (set).
        depth = 0
        key = arguments
        for i, c in enumerate(arguments):
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
            elif c == "," and depth == 0:
                key = arguments[:i]
                break
        if "*" in key:
            report(match.start(), "pointer-key",
                   f"std::{match.group(1)} keyed by a pointer iterates in "
                   "address order; key by a stable id instead")

    suspects = unordered_variables(text)
    for offset, sequence in range_for_sequences(text):
        root = root_identifier(sequence)
        if (root and root in suspects) or "unordered_" in sequence:
            report(offset, "unordered-iter",
                   f"range-for over unordered container "
                   f"'{root or sequence.strip()}'")
    for match in ITER_LOOP_RE.finditer(text):
        if match.group(1) in suspects:
            report(match.start(), "unordered-iter",
                   f"iterator loop over unordered container '{match.group(1)}'")

    return findings


def iter_sources(paths: list[str], root: str):
    for path in paths:
        absolute = os.path.abspath(path)
        if os.path.isfile(absolute):
            yield absolute, os.path.relpath(absolute, root)
            continue
        for directory, subdirs, files in os.walk(absolute):
            # `fixtures` directories hold deliberately-violating lint test
            # inputs (tests/lint/fixtures); they are scanned only when named
            # as explicit file arguments.
            subdirs[:] = [d for d in subdirs if d != "fixtures"]
            for name in sorted(files):
                if name.endswith(CXX_EXTENSIONS):
                    full = os.path.join(directory, name)
                    yield full, os.path.relpath(full, root)


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to scan (default: src)")
    parser.add_argument("--root", default=os.getcwd(),
                        help="repository root for ALLOWED_PATHS matching and "
                             "report paths (default: cwd)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule ids and exit")
    args = parser.parse_args()

    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule}: {description}")
        return 0

    paths = args.paths or ["src"]
    findings: list[Finding] = []
    scanned = 0
    for full, rel in iter_sources(paths, os.path.abspath(args.root)):
        scanned += 1
        findings.extend(scan_file(full, rel))

    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        print(finding, file=sys.stderr)
    if findings:
        print(f"\n{len(findings)} determinism-lint finding(s) in {scanned} "
              f"file(s). Suppress a justified site with "
              f"'// smn-lint: allow(<rule>)'.", file=sys.stderr)
        return 1
    print(f"determinism lint: {scanned} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
