#!/usr/bin/env python3
"""Shared machinery for the repo-specific C++ linters
(check_determinism.py, check_locking.py): comment/string stripping that
preserves offsets, `// smn-lint: allow(<rule>)` suppression parsing,
declaration parsing helpers, the Finding type, source walking, and the
common CLI driver. Rule *content* stays in each linter; everything
mechanical lives here exactly once.

Self-tested through tests/lint/check_locking_test.py (LintlibTest) and
exercised by both linters' fixture suites.
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import re
import sys

CXX_EXTENSIONS = (".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx", ".inl")

ALLOW_RE = re.compile(r"//\s*smn-lint:\s*allow\(([^)]*)\)")

IDENT_RE = re.compile(r"[A-Za-z_]\w*")

# Identifier tokens that can trail a declarator's type but are not the
# variable name.
NON_NAME_TOKENS = {"const", "constexpr", "static", "mutable", "inline",
                   "noexcept", "override", "final"}


def strip_comments_and_strings(text: str) -> str:
    """Blanks comment bodies and string/char literals, preserving offsets
    (every replaced character becomes a space; newlines survive) so line
    numbers and column positions keep matching the original text."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # inside a string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
            out.append(c if c in (state, "\n") else " ")
        i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def template_argument_span(text: str, open_angle: int) -> int:
    """Returns the offset just past the '>' matching the '<' at open_angle,
    or -1 when unbalanced (macro soup); callers then skip the site."""
    depth = 0
    i = open_angle
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{":  # statement ended before the template closed
            return -1
        i += 1
    return -1


def declared_name_after(text: str, pos: int) -> str | None:
    """The declared identifier following a type that ends at `pos` — skips
    trailing '>'/'&'/'*'/whitespace and non-name keywords."""
    i = pos
    while i < len(text) and text[i] in ">&* \t\n":
        i += 1
    match = IDENT_RE.match(text, i)
    while match and match.group(0) in NON_NAME_TOKENS:
        i = match.end()
        while i < len(text) and text[i] in "&* \t\n":
            i += 1
        match = IDENT_RE.match(text, i)
    return match.group(0) if match else None


def typed_variable_names(text: str, type_re: re.Pattern) -> set[str]:
    """Names declared with a (possibly nested) template type whose opening
    token matches `type_re` — the regex must end at the type's '<', e.g.
    r'future\\s*<'. Catches std::vector<std::future<T>> f too: the declared
    name follows the *outer* '>' chain, which declared_name_after skips."""
    names = set()
    for match in type_re.finditer(text):
        end = template_argument_span(text, match.end() - 1)
        if end < 0:
            continue
        name = declared_name_after(text, end)
        if name:
            names.add(name)
    return names


class Finding:
    """One lint finding: a (path, line, rule, message) tuple with the
    canonical `path:line: [rule] message` rendering."""

    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allowed_rules(raw_lines: list[str], line: int) -> set[str]:
    """Rules suppressed for 1-indexed `line` (same line or the line above)."""
    rules: set[str] = set()
    for index in (line - 1, line - 2):
        if 0 <= index < len(raw_lines):
            match = ALLOW_RE.search(raw_lines[index])
            if match:
                rules.update(
                    r.strip() for r in match.group(1).split(",") if r.strip())
    return rules


def make_reporter(rel: str, text: str, raw_lines: list[str],
                  findings: list[Finding], allowed_paths: dict):
    """The shared reporting closure: path allowlist, then line-scoped
    `// smn-lint: allow(...)` suppression, then append to `findings`."""
    normalized = rel.replace(os.sep, "/")

    def report(offset: int, rule: str, message: str) -> None:
        if normalized in allowed_paths.get(rule, ()):
            return
        line = line_of(text, offset)
        if rule in allowed_rules(raw_lines, line):
            return
        findings.append(Finding(rel, line, rule, message))

    return report


def iter_sources(paths: list[str], root: str):
    """Yields (absolute, root-relative) paths of every C++ source under
    `paths`. `fixtures` directories hold deliberately-violating lint test
    inputs (tests/lint/fixtures); they are scanned only when named as
    explicit file arguments."""
    for path in paths:
        absolute = os.path.abspath(path)
        if os.path.isfile(absolute):
            yield absolute, os.path.relpath(absolute, root)
            continue
        for directory, subdirs, files in os.walk(absolute):
            subdirs[:] = [d for d in subdirs if d != "fixtures"]
            for name in sorted(files):
                if name.endswith(CXX_EXTENSIONS):
                    full = os.path.join(directory, name)
                    yield full, os.path.relpath(full, root)


def load_script(path: str, module_name: str):
    """Imports a linter script by file path (the fixture-runner idiom the
    self-test suites share): returns the loaded module."""
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_cli(description: str, lint_name: str, rules: dict, scan_file,
            default_paths: list[str]) -> int:
    """The shared CLI driver: argument parsing, source walking, sorted
    reporting, and the exit-code contract CI keys off (0 clean, 1 findings).
    `scan_file(full, rel)` is the linter's rule engine."""
    parser = argparse.ArgumentParser(
        description=description,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=default_paths,
                        help=f"files or directories to scan "
                             f"(default: {' '.join(default_paths)})")
    parser.add_argument("--root", default=os.getcwd(),
                        help="repository root for allowlist matching and "
                             "report paths (default: cwd)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule ids and exit")
    args = parser.parse_args()

    if args.list_rules:
        for rule, text in rules.items():
            print(f"{rule}: {text}")
        return 0

    paths = args.paths or default_paths
    findings: list[Finding] = []
    scanned = 0
    for full, rel in iter_sources(paths, os.path.abspath(args.root)):
        scanned += 1
        findings.extend(scan_file(full, rel))

    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        print(finding, file=sys.stderr)
    if findings:
        print(f"\n{len(findings)} {lint_name} finding(s) in {scanned} "
              f"file(s). Suppress a justified site with "
              f"'// smn-lint: allow(<rule>)'.", file=sys.stderr)
        return 1
    print(f"{lint_name}: {scanned} file(s) clean")
    return 0
