#!/usr/bin/env python3
"""Offline markdown link checker (lychee-equivalent for this repo's needs).

Checks every ``[text](target)`` link in the given markdown files:

* relative file targets must exist on disk (resolved against the file's
  directory, ``#fragment`` stripped);
* ``#fragment`` targets — bare or on a markdown file — must match a heading
  anchor in the target file (GitHub-style slugification);
* ``http(s)``/``mailto`` targets are syntax-checked only, so the job stays
  hermetic (no network flakes failing CI).

Exit status is nonzero when any link is broken, printing one line per
offender. Usage::

    python3 scripts/check_markdown_links.py README.md ARCHITECTURE.md ...
"""

import re
import sys
from pathlib import Path

# [text](target) with light tolerance for titles: [t](file.md "title")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slugification: lowercase, drop punctuation, dashes."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)          # inline formatting
    slug = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", slug)  # links in headings
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(m.group(1)) for m in HEADING_RE.finditer(text)}


def check_file(path: Path) -> list:
    errors = []
    text = path.read_text(encoding="utf-8")
    # Links inside fenced code blocks are examples, not navigation.
    text = CODE_FENCE_RE.sub("", text)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # Hermetic run: syntax presence is enough.
        if target.startswith("#"):
            if github_slug(target[1:]) not in anchors_of(path):
                errors.append(f"{path}: broken anchor '{target}'")
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            errors.append(f"{path}: missing target '{target}'")
            continue
        if fragment and resolved.suffix.lower() in (".md", ".markdown"):
            if github_slug(fragment) not in anchors_of(resolved):
                errors.append(
                    f"{path}: anchor '#{fragment}' not found in {file_part}")
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print("usage: check_markdown_links.py FILE.md [FILE.md ...]")
        return 2
    all_errors = []
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            all_errors.append(f"{name}: file not found")
            continue
        all_errors.extend(check_file(path))
    for error in all_errors:
        print(error)
    if not all_errors:
        print(f"OK: {len(argv) - 1} files, no broken links")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
