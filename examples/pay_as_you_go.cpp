// Pay-as-you-go reconciliation in action: watch the instantiated matching
// improve as the expert budget grows, under a selectable ordering strategy.
// A compact, runnable version of the paper's Fig. 10 experiment.
//
// Build & run:  ./build/examples/pay_as_you_go [random|ig|entropy|minprob]

#include <cstring>
#include <iostream>

#include "datasets/standard.h"
#include "sim/experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smn;

int main(int argc, char** argv) {
  StrategyKind strategy = StrategyKind::kInformationGain;
  if (argc > 1) {
    if (std::strcmp(argv[1], "random") == 0) strategy = StrategyKind::kRandom;
    if (std::strcmp(argv[1], "entropy") == 0)
      strategy = StrategyKind::kMaxEntropy;
    if (std::strcmp(argv[1], "minprob") == 0)
      strategy = StrategyKind::kMinProbability;
  }

  const StandardDataset bp = MakeBpDataset();
  Rng rng(2014);
  const auto setup = BuildExperimentSetup(bp.config, bp.vocabulary,
                                          MatcherKind::kComaLike, &rng);
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return 1;
  }
  std::cout << "Business-partner network: "
            << setup->network.correspondence_count()
            << " candidate correspondences; strategy: "
            << StrategyKindName(strategy) << "\n\n";

  CurveOptions options;
  options.strategy = strategy;
  options.checkpoints = {0.0, 0.05, 0.10, 0.15, 0.25, 0.50};
  options.runs = 3;
  options.instantiate = true;
  options.network_options.store.target_samples = 500;
  options.network_options.store.min_samples = 100;
  options.seed = 5;
  const auto curve = RunReconciliationCurve(*setup, options);
  if (!curve.ok()) {
    std::cerr << curve.status() << "\n";
    return 1;
  }

  TablePrinter table({"Effort (%)", "Uncertainty (bits)", "Prec(H)", "Rec(H)"});
  for (size_t i = 0; i < curve->size(); ++i) {
    table.AddRow({FormatDouble(100.0 * options.checkpoints[i], 1),
                  FormatDouble((*curve)[i].uncertainty, 1),
                  FormatDouble((*curve)[i].instantiation_precision, 3),
                  FormatDouble((*curve)[i].instantiation_recall, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nEvery row is a usable, constraint-consistent matching — "
               "that is the pay-as-you-go\nguarantee. Try "
               "'./pay_as_you_go random' to compare against the unguided "
               "baseline.\n";
  return 0;
}
