// Beyond schemas: the paper's conclusion suggests applying pay-as-you-go
// reconciliation to other integration tasks such as entity resolution. This
// example does exactly that: three customer databases hold records of the
// same people under varying spellings; record-linkage candidates take the
// role of correspondences, "one record links to at most one record per other
// source" is the one-to-one constraint, and identity transitivity across
// sources is the cycle constraint. The entire core engine is reused
// unchanged — only the interpretation differs.
//
// Build & run:  ./build/examples/entity_resolution

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "constraints/cycle.h"
#include "constraints/one_to_one.h"
#include "core/instantiation.h"
#include "core/probabilistic_network.h"
#include "matchers/string_metrics.h"
#include "util/string_util.h"

using namespace smn;

int main() {
  // Each "schema" is a data source; each "attribute" is a person record.
  const std::vector<std::vector<std::string>> sources = {
      {"John A. Smith", "Maria Garcia", "Wei Chen"},
      {"J. Smith", "M. Garcia", "Chen Wei", "Robert Miller"},
      {"John Smith", "Maria S. Garcia", "Bob Miller"},
  };

  NetworkBuilder builder;
  std::vector<std::vector<AttributeId>> records(sources.size());
  for (size_t s = 0; s < sources.size(); ++s) {
    const SchemaId source = builder.AddSchema("DB" + std::to_string(s + 1));
    for (const std::string& name : sources[s]) {
      records[s].push_back(builder.AddAttribute(source, name).value());
    }
  }
  builder.AddCompleteGraph();

  // Candidate links from a cheap name-similarity blocker.
  for (size_t s1 = 0; s1 < sources.size(); ++s1) {
    for (size_t s2 = s1 + 1; s2 < sources.size(); ++s2) {
      for (size_t i = 0; i < sources[s1].size(); ++i) {
        for (size_t j = 0; j < sources[s2].size(); ++j) {
          const double score = JaroWinklerSimilarity(
              ToLowerAscii(sources[s1][i]), ToLowerAscii(sources[s2][j]));
          if (score >= 0.62) {
            builder.AddCorrespondence(records[s1][i], records[s2][j], score)
                .value();
          }
        }
      }
    }
  }
  Network network = builder.Build().value();

  ConstraintSet constraints;
  constraints.Add(std::make_unique<OneToOneConstraint>());  // 1 link per pair.
  constraints.Add(std::make_unique<CycleConstraint>());     // Transitivity.
  if (!constraints.Compile(network).ok()) return 1;

  Rng rng(99);
  auto pmn = ProbabilisticNetwork::Create(network, constraints, {}, &rng);
  if (!pmn.ok()) {
    std::cerr << pmn.status() << "\n";
    return 1;
  }

  std::cout << "Candidate record links (" << network.correspondence_count()
            << " total):\n";
  for (CorrespondenceId c = 0; c < network.correspondence_count(); ++c) {
    std::cout << "  " << network.DescribeCorrespondence(c)
              << "  p=" << FormatDouble(pmn->probability(c), 2) << "\n";
  }
  std::cout << "Uncertainty: " << FormatDouble(pmn->Uncertainty(), 2)
            << " bits\n\n";

  // One expert assertion: "Robert Miller in DB2 is Bob Miller in DB3".
  const auto miller = network.FindCorrespondence(records[1][3], records[2][2]);
  if (miller.has_value()) {
    if (!pmn->Assert(*miller, true, &rng).ok()) return 1;
    std::cout << "Expert confirmed: "
              << network.DescribeCorrespondence(*miller) << "\n";
  }

  const Instantiator instantiator;
  const auto result = instantiator.Instantiate(*pmn, &rng);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << "\nConsistent entity-resolution result ("
            << result->instance.Count() << " links, "
            << "repair distance " << result->repair_distance << "):\n";
  result->instance.ForEachSetBit([&](size_t c) {
    std::cout << "  "
              << network.DescribeCorrespondence(static_cast<CorrespondenceId>(c))
              << "\n";
  });
  std::cout << "\nThe one-to-one and transitivity constraints pruned the "
               "ambiguous links without\nany entity-resolution-specific "
               "code: the probabilistic matching network is task-agnostic.\n";
  return 0;
}
