// Marketplace integration: the paper's motivating scenario at realistic
// scale. Several e-business partners want to interconnect their purchase
// order schemas. We generate a PO-style schema network, run the COMA-like
// matcher over every schema pair, attach the network constraints, spend a
// limited expert budget guided by information gain, and instantiate a
// trusted matching — reporting precision/recall against the ground truth at
// each stage.
//
// Build & run:  ./build/examples/marketplace_integration [budget-fraction]

#include <cstdlib>
#include <iostream>

#include "core/instantiation.h"
#include "core/reconciler.h"
#include "datasets/standard.h"
#include "sim/experiment.h"
#include "sim/oracle.h"
#include "util/string_util.h"

using namespace smn;

int main(int argc, char** argv) {
  const double budget_fraction = argc > 1 ? std::atof(argv[1]) : 0.10;

  // A marketplace of six partners exchanging purchase orders (PO scaled to
  // example size; pass SMN scale via the bench harness for the full thing).
  StandardDataset po = MakePoDataset();
  po.config = ScaleConfig(po.config, 0.35);
  po.config.name = "Marketplace";

  Rng rng(7);
  const auto setup = BuildExperimentSetup(po.config, po.vocabulary,
                                          MatcherKind::kComaLike, &rng);
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return 1;
  }
  const size_t total = setup->network.correspondence_count();
  DynamicBitset all(total);
  for (CorrespondenceId c = 0; c < total; ++c) all.Set(c);

  std::cout << "Schemas: " << setup->network.schema_count()
            << ", attributes: " << setup->network.attribute_count()
            << ", candidate correspondences: " << total << "\n";
  std::cout << "Constraint violations in the raw matcher output: "
            << setup->constraints.FindViolations(all).size() << "\n";
  const PrecisionRecall raw = ScoreCandidates(*setup);
  std::cout << "Raw candidate quality: precision "
            << FormatDouble(raw.precision, 3) << ", recall "
            << FormatDouble(raw.recall, 3) << "\n\n";

  // Probabilistic matching network + expert simulation.
  ProbabilisticNetworkOptions options;
  options.store.target_samples = 500;
  options.store.min_samples = 100;
  auto pmn = ProbabilisticNetwork::Create(setup->network, setup->constraints,
                                          options, &rng);
  if (!pmn.ok()) {
    std::cerr << pmn.status() << "\n";
    return 1;
  }
  std::cout << "Initial network uncertainty: "
            << FormatDouble(pmn->Uncertainty(), 1) << " bits\n";

  Oracle oracle(setup->oracle_truth);
  auto strategy = MakeStrategy(StrategyKind::kInformationGain);
  Reconciler reconciler(&*pmn, strategy.get(), oracle.AsCallback());
  ReconcileGoal goal;
  goal.max_assertions =
      static_cast<size_t>(budget_fraction * static_cast<double>(total));
  const auto trace = reconciler.Run(goal, &rng);
  if (!trace.ok()) {
    std::cerr << trace.status() << "\n";
    return 1;
  }
  std::cout << "Expert asserted " << trace->steps.size()
            << " correspondences (" << FormatDouble(100 * budget_fraction, 0)
            << "% budget); uncertainty now "
            << FormatDouble(pmn->Uncertainty(), 1) << " bits\n\n";

  // Instantiate the trusted matching available right now.
  const Instantiator instantiator;
  const auto result = instantiator.Instantiate(*pmn, &rng);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  const PrecisionRecall quality = ScoreSelection(
      result->instance, setup->truth_candidates, setup->truth_total);
  std::cout << "Instantiated matching: " << result->instance.Count()
            << " correspondences, repair distance " << result->repair_distance
            << "\n";
  std::cout << "Quality vs ground truth: precision "
            << FormatDouble(quality.precision, 3) << ", recall "
            << FormatDouble(quality.recall, 3) << ", F1 "
            << FormatDouble(quality.f1, 3) << "\n";
  std::cout << "\nThe matching satisfies every one-to-one and cycle "
               "constraint and can be used\nfor cross-partner queries "
               "immediately; further assertions keep improving it.\n";
  return 0;
}
