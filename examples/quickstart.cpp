// Quickstart: the paper's Fig. 1 network end to end.
//
// Three video-content providers (EoverI, BBC, DVDizzy) expose schemas whose
// date attributes a matcher has tentatively interconnected with five
// candidate correspondences. We build the probabilistic matching network,
// look at the probabilities and the information-gain ranking, play the
// expert for one assertion, and instantiate a trusted matching at each step.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>
#include <memory>

#include "constraints/cycle.h"
#include "constraints/one_to_one.h"
#include "core/instantiation.h"
#include "core/network.h"
#include "core/probabilistic_network.h"
#include "util/string_util.h"

using namespace smn;

int main() {
  // --- 1. Describe the schemas and the matcher's candidates. -------------
  NetworkBuilder builder;
  const SchemaId sa = builder.AddSchema("SA:EoverI");
  const SchemaId sb = builder.AddSchema("SB:BBC");
  const SchemaId sc = builder.AddSchema("SC:DVDizzy");
  const AttributeId production_date =
      builder.AddAttribute(sa, "productionDate", AttributeType::kDate).value();
  const AttributeId date =
      builder.AddAttribute(sb, "date", AttributeType::kDate).value();
  const AttributeId release_date =
      builder.AddAttribute(sc, "releaseDate", AttributeType::kDate).value();
  const AttributeId screen_date =
      builder.AddAttribute(sc, "screenDate", AttributeType::kDate).value();
  builder.AddCompleteGraph();

  builder.AddCorrespondence(production_date, date, 0.90).value();          // c1
  const CorrespondenceId c2 =
      builder.AddCorrespondence(date, release_date, 0.80).value();
  builder.AddCorrespondence(production_date, release_date, 0.70).value();  // c3
  builder.AddCorrespondence(date, screen_date, 0.60).value();              // c4
  builder.AddCorrespondence(production_date, screen_date, 0.50).value();   // c5
  Network network = builder.Build().value();

  // --- 2. Attach the network-level integrity constraints. ----------------
  ConstraintSet constraints;
  constraints.Add(std::make_unique<OneToOneConstraint>());
  constraints.Add(std::make_unique<CycleConstraint>());
  if (!constraints.Compile(network).ok()) return 1;

  // --- 3. Build the probabilistic matching network <N, P>. ---------------
  Rng rng(42);
  auto pmn = ProbabilisticNetwork::Create(network, constraints, {}, &rng);
  if (!pmn.ok()) {
    std::cerr << pmn.status() << "\n";
    return 1;
  }

  std::cout << "Candidate correspondences and their probabilities:\n";
  const auto gains = pmn->InformationGains();
  for (CorrespondenceId c = 0; c < network.correspondence_count(); ++c) {
    std::cout << "  c" << (c + 1) << ": " << network.DescribeCorrespondence(c)
              << "  p=" << FormatDouble(pmn->probability(c), 2)
              << "  IG=" << FormatDouble(gains[c], 3) << "\n";
  }
  std::cout << "Network uncertainty H(C,P) = "
            << FormatDouble(pmn->Uncertainty(), 3) << " bits\n\n";

  // --- 4. Instantiate a trusted matching before any feedback. ------------
  const Instantiator instantiator;
  auto before = instantiator.Instantiate(*pmn, &rng);
  std::cout << "Instantiated matching (no feedback yet), repair distance "
            << before->repair_distance << ":\n";
  before->instance.ForEachSetBit([&](size_t c) {
    std::cout << "  " << network.DescribeCorrespondence(
                             static_cast<CorrespondenceId>(c))
              << "\n";
  });

  // --- 5. One expert assertion (the highest-IG correspondence is c2..c5;
  //        the expert approves c2: BBC.date matches DVDizzy.releaseDate). --
  if (!pmn->Assert(c2, /*approved=*/true, &rng).ok()) return 1;
  std::cout << "\nAfter approving c2, uncertainty drops to "
            << FormatDouble(pmn->Uncertainty(), 3) << " bits.\n";

  auto after = instantiator.Instantiate(*pmn, &rng);
  std::cout << "Instantiated matching now:\n";
  after->instance.ForEachSetBit([&](size_t c) {
    std::cout << "  " << network.DescribeCorrespondence(
                             static_cast<CorrespondenceId>(c))
              << "\n";
  });
  std::cout << "\nPay-as-you-go: a consistent matching was available at every "
               "step,\nand each assertion sharpened it.\n";
  return 0;
}
