# Static-analysis configuration for first-party targets.
#
# Thread Safety Analysis: Clang proves the lock discipline declared through
# src/util/thread_annotations.h (SMN_GUARDED_BY and friends) at compile
# time. The warnings are always on under Clang; the CI `lint` job escalates
# them to errors with -DSMN_THREAD_SAFETY_WERROR=ON so a forgotten lock is a
# red build. GCC builds are unaffected (the macros expand to nothing).
#
# clang-tidy: the curated check set lives in .clang-tidy at the repository
# root; CI runs it over the exported compile database (see
# CMAKE_EXPORT_COMPILE_COMMANDS in the top-level CMakeLists and the `lint`
# job in .github/workflows/ci.yml).

option(SMN_THREAD_SAFETY_WERROR
  "Promote Clang -Wthread-safety diagnostics to errors (CI lint job)" OFF)

if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  target_compile_options(smn_warnings INTERFACE -Wthread-safety)
  if(SMN_THREAD_SAFETY_WERROR)
    target_compile_options(smn_warnings INTERFACE -Werror=thread-safety)
  endif()
elseif(SMN_THREAD_SAFETY_WERROR)
  message(WARNING
    "SMN_THREAD_SAFETY_WERROR=ON has no effect: thread safety analysis "
    "requires Clang (current compiler: ${CMAKE_CXX_COMPILER_ID})")
endif()
