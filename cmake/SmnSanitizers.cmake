# Opt-in sanitizer configuration for the whole tree:
#
#   cmake -B build -S . -DSMN_SANITIZE=address,undefined
#   cmake -B build -S . -DSMN_SANITIZE=thread
#
# Accepts a comma- or semicolon-separated list of sanitizer names that are
# passed straight to -fsanitize=. Empty (the default) builds without
# instrumentation.

set(SMN_SANITIZE "" CACHE STRING
  "Comma-separated sanitizers to enable (e.g. address,undefined)")

if(SMN_SANITIZE)
  string(REPLACE ";" "," _smn_sanitize_flag "${SMN_SANITIZE}")
  message(STATUS "Building with -fsanitize=${_smn_sanitize_flag}")
  add_compile_options(-fsanitize=${_smn_sanitize_flag} -fno-omit-frame-pointer -g)
  add_link_options(-fsanitize=${_smn_sanitize_flag})
endif()
