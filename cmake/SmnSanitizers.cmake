# Opt-in sanitizer configuration for the whole tree:
#
#   cmake -B build -S . -DSMN_SANITIZE=address,undefined
#   cmake -B build -S . -DSMN_SANITIZE=thread
#
# Accepts a comma- or semicolon-separated list of sanitizer names. Empty
# (the default) builds without instrumentation. Unknown names and known-
# incompatible combinations (thread with address/leak/memory) are rejected
# at configure time instead of producing a build that silently misbehaves.
#
# UBSAN is made *fatal*: -fno-sanitize-recover=all turns every detected UB
# into a non-zero exit, so an out-of-range shift actually fails CI rather
# than printing a diagnostic and continuing. Runtime knobs worth knowing:
#
#   UBSAN_OPTIONS=print_stacktrace=1          # symbolized traces
#   ASAN_OPTIONS=halt_on_error=1:detect_leaks=1
#   TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1
#
# halt_on_error defaults to 1 for ASAN/UBSAN fatal errors; setting it
# explicitly in CI documents the intent and guards against environment
# overrides.

set(SMN_SANITIZE "" CACHE STRING
  "Comma-separated sanitizers to enable (e.g. address,undefined)")

if(SMN_SANITIZE)
  string(REPLACE ";" "," _smn_sanitize_flag "${SMN_SANITIZE}")
  string(REPLACE "," ";" _smn_sanitize_list "${_smn_sanitize_flag}")

  set(_smn_known_sanitizers address undefined thread leak memory)
  foreach(_smn_name IN LISTS _smn_sanitize_list)
    if(NOT _smn_name IN_LIST _smn_known_sanitizers)
      message(FATAL_ERROR
        "SMN_SANITIZE: unknown sanitizer '${_smn_name}' "
        "(known: ${_smn_known_sanitizers})")
    endif()
  endforeach()

  # TSAN and MSAN each need the whole process built their way and cannot
  # coexist with the malloc-interposing sanitizers (or each other).
  foreach(_smn_exclusive thread memory)
    if(_smn_exclusive IN_LIST _smn_sanitize_list)
      foreach(_smn_other address leak thread memory)
        if(NOT _smn_other STREQUAL _smn_exclusive
           AND _smn_other IN_LIST _smn_sanitize_list)
          message(FATAL_ERROR
            "SMN_SANITIZE: '${_smn_exclusive}' cannot be combined with "
            "'${_smn_other}' — they interpose the same runtime hooks. "
            "Use separate build trees (e.g. build-tsan, build-asan).")
        endif()
      endforeach()
    endif()
  endforeach()

  message(STATUS "Building with -fsanitize=${_smn_sanitize_flag}")
  add_compile_options(-fsanitize=${_smn_sanitize_flag} -fno-omit-frame-pointer -g)
  add_link_options(-fsanitize=${_smn_sanitize_flag})

  if("undefined" IN_LIST _smn_sanitize_list)
    # Without this UBSAN reports and *recovers*, so UB passes CI silently.
    add_compile_options(-fno-sanitize-recover=all)
    add_link_options(-fno-sanitize-recover=all)
    message(STATUS "UBSAN diagnostics are fatal (-fno-sanitize-recover=all)")
  endif()
endif()
