#ifndef SMN_UTIL_RNG_H_
#define SMN_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace smn {

/// Deterministic pseudo-random number generator (xoshiro256** seeded through
/// SplitMix64). All stochastic components of the library draw from an Rng
/// passed in by the caller, so every experiment is reproducible from a seed.
class Rng {
 public:
  /// Seeds the generator. Equal seeds produce equal streams on every
  /// platform; the default seed gives a documented, stable stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next 64 random bits.
  uint64_t NextUint64();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0. Uses
  /// rejection sampling, so the result is unbiased.
  uint64_t UniformUint64(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a sample from the geometric-ish exponential with rate 1,
  /// used by annealing schedules.
  double Exponential();

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Picks a uniformly random element index of a container of size `n`.
  /// Requires n > 0.
  size_t Index(size_t n) { return static_cast<size_t>(UniformUint64(n)); }

  /// Roulette-wheel (fitness-proportionate) selection: returns an index i
  /// with probability weights[i] / sum(weights). Zero or negative weights are
  /// treated as a small epsilon so every entry stays selectable, matching the
  /// behaviour expected by the instantiation heuristic (Alg. 2). Requires a
  /// non-empty weight vector.
  size_t RouletteWheel(const std::vector<double>& weights);

  /// Splits off an independent child generator (for per-run streams).
  /// Advances this generator, so successive Split() calls differ.
  Rng Split();

  /// Derives the decorrelated child stream number `stream_id` without
  /// advancing this generator: the child seed is the current state xor-folded
  /// with the stream id and pushed through a SplitMix64-style finalizer, so
  /// Fork(i) and Fork(j) land in unrelated regions of seed space even for
  /// adjacent ids. A pure function of (state, stream_id): repeated calls
  /// return identical streams, which is what makes multi-chain sampling
  /// reproducible regardless of thread scheduling.
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t state_[4];
};

}  // namespace smn

#endif  // SMN_UTIL_RNG_H_
