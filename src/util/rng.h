#ifndef SMN_UTIL_RNG_H_
#define SMN_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace smn {

/// Deterministic pseudo-random number generator (xoshiro256** seeded through
/// SplitMix64). All stochastic components of the library draw from an Rng
/// passed in by the caller, so every experiment is reproducible from a seed.
class Rng {
 public:
  /// Seeds the generator. Equal seeds produce equal streams on every
  /// platform; the default seed gives a documented, stable stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next 64 random bits. Inline: the sampler's walk kernel
  /// draws several times per transition.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Returns a uniform integer in [0, bound). `bound` must be > 0. Uses
  /// rejection sampling, so the result is unbiased.
  uint64_t UniformUint64(uint64_t bound) {
    if ((bound & (bound - 1)) == 0) {
      // Power-of-two bound: the rejection threshold (2^64 mod bound) is 0 —
      // the first draw is always accepted — and the modulo is a mask. Same
      // value, same number of draws as the general path, without the two
      // 64-bit divisions.
      return NextUint64() & (bound - 1);
    }
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
      const uint64_t r = NextUint64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble() {
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability `p` (clamped to [0, 1]). Degenerate
  /// inputs are deterministic and consume no randomness: p ≤ 0 is false,
  /// p ≥ 1 is true, and NaN is false — a NaN error rate must not silently
  /// turn into a data-dependent draw (and must not advance the stream, so a
  /// guarded caller stays bit-identical to an unguarded one).
  bool Bernoulli(double p) {
    if (p != p) return false;  // NaN: explicit, stream-preserving reject.
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

  /// Returns a sample from the geometric-ish exponential with rate 1,
  /// used by annealing schedules.
  double Exponential();

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Picks a uniformly random element index of a container of size `n`.
  /// Requires n > 0.
  size_t Index(size_t n) { return static_cast<size_t>(UniformUint64(n)); }

  /// Roulette-wheel (fitness-proportionate) selection: returns an index i
  /// with probability weights[i] / sum(weights). Zero or negative weights are
  /// treated as a small epsilon so every entry stays selectable, matching the
  /// behaviour expected by the instantiation heuristic (Alg. 2). Requires a
  /// non-empty weight vector.
  size_t RouletteWheel(const std::vector<double>& weights);

  /// Splits off an independent child generator (for per-run streams).
  /// Advances this generator, so successive Split() calls differ.
  Rng Split();

  /// Derives the decorrelated child stream number `stream_id` without
  /// advancing this generator: the child seed is the current state xor-folded
  /// with the stream id and pushed through a SplitMix64-style finalizer, so
  /// Fork(i) and Fork(j) land in unrelated regions of seed space even for
  /// adjacent ids. A pure function of (state, stream_id): repeated calls
  /// return identical streams, which is what makes multi-chain sampling
  /// reproducible regardless of thread scheduling.
  Rng Fork(uint64_t stream_id) const;

 private:
  /// 64-bit rotate-left (xoshiro's mixing primitive).
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace smn

#endif  // SMN_UTIL_RNG_H_
