#include "util/dynamic_bitset.h"

#include <cassert>

namespace smn {

DynamicBitset DynamicBitset::FromWord(size_t size, uint64_t word) {
  assert(size <= 64);
  DynamicBitset b(size);
  if (size > 0) {
    const uint64_t mask =
        size == 64 ? ~0ULL : ((1ULL << size) - 1);
    b.words_[0] = word & mask;
  }
  return b;
}

void DynamicBitset::Clear() {
  for (auto& w : words_) w = 0;
}

size_t DynamicBitset::Count() const {
  size_t total = 0;
  for (uint64_t w : words_) total += static_cast<size_t>(__builtin_popcountll(w));
  return total;
}

bool DynamicBitset::Contains(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((other.words_[i] & ~words_[i]) != 0) return false;
  }
  return true;
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

size_t DynamicBitset::IntersectionCount(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  size_t total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<size_t>(__builtin_popcountll(words_[i] & other.words_[i]));
  }
  return total;
}

size_t DynamicBitset::SymmetricDifferenceCount(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  size_t total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<size_t>(__builtin_popcountll(words_[i] ^ other.words_[i]));
  }
  return total;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::SubtractInPlace(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

std::vector<size_t> DynamicBitset::ToIndices() const {
  std::vector<size_t> indices;
  indices.reserve(Count());
  ForEachSetBit([&](size_t i) { indices.push_back(i); });
  return indices;
}

std::string DynamicBitset::ToString() const {
  std::string s(size_, '0');
  ForEachSetBit([&](size_t i) { s[i] = '1'; });
  return s;
}

size_t DynamicBitset::Hash() const {
  // FNV-1a over the words; good enough for sample deduplication.
  uint64_t h = 1469598103934665603ULL;
  for (uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ULL;
  }
  h ^= size_;
  return static_cast<size_t>(h);
}

}  // namespace smn
