#include "util/fault_injection.h"

#include <cstdlib>
#include <map>
#include <utility>

#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace smn {
namespace {

/// One parsed plan rule. `first` is the 1-based arrival ordinal the rule
/// starts firing at; `count` the number of consecutive arrivals it covers
/// (0 = unbounded, the `N+` form). Probabilistic rules set `probability`
/// instead and ignore the ordinals.
struct FaultRule {
  std::string site;
  uint64_t first = 1;
  uint64_t count = 1;
  double probability = -1.0;  // < 0: ordinal rule
};

struct SiteState {
  uint64_t arrivals = 0;
  uint64_t fired = 0;
};

/// Global injection state. A single leaf mutex: every site is a cold path
/// (journal I/O, queue hand-off, worker dispatch), and the whole module is
/// compiled out of production call sites anyway.
struct Registry {
  Mutex mu{"fault.registry", LockRank::kFaultRegistry};
  bool active SMN_GUARDED_BY(mu) = false;
  bool env_checked SMN_GUARDED_BY(mu) = false;
  std::vector<FaultRule> rules SMN_GUARDED_BY(mu);
  /// std::map, not unordered: introspection iterates deterministically.
  std::map<std::string, SiteState> sites SMN_GUARDED_BY(mu);
  Rng rng SMN_GUARDED_BY(mu){0};
};

Registry& registry() {
  static Registry* r = new Registry();  // Leaked intentionally: process-wide.
  return *r;
}

bool ParseOrdinal(const std::string& text, uint64_t* value) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *value = static_cast<uint64_t>(parsed);
  return true;
}

StatusOr<std::vector<FaultRule>> ParsePlan(const std::string& plan) {
  std::vector<FaultRule> rules;
  size_t start = 0;
  while (start <= plan.size()) {
    size_t comma = plan.find(',', start);
    if (comma == std::string::npos) comma = plan.size();
    const std::string token = plan.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) continue;
    FaultRule rule;
    const size_t at = token.find('@');
    const size_t percent = token.find('%');
    if (at != std::string::npos) {
      rule.site = token.substr(0, at);
      std::string ordinal = token.substr(at + 1);
      if (!ordinal.empty() && ordinal.back() == '+') {
        rule.count = 0;
        ordinal.pop_back();
      } else {
        const size_t star = ordinal.find('*');
        if (star != std::string::npos) {
          if (!ParseOrdinal(ordinal.substr(star + 1), &rule.count) ||
              rule.count == 0) {
            return Status::InvalidArgument(
                "fault plan: bad repeat count in rule '" + token + "'");
          }
          ordinal = ordinal.substr(0, star);
        }
      }
      if (!ParseOrdinal(ordinal, &rule.first) || rule.first == 0) {
        return Status::InvalidArgument(
            "fault plan: bad arrival ordinal in rule '" + token +
            "' (want site@N, site@N+, or site@N*M with N >= 1)");
      }
    } else if (percent != std::string::npos) {
      rule.site = token.substr(0, percent);
      char* end = nullptr;
      const std::string prob = token.substr(percent + 1);
      rule.probability = std::strtod(prob.c_str(), &end);
      if (prob.empty() || end != prob.c_str() + prob.size() ||
          rule.probability < 0.0 || rule.probability > 1.0) {
        return Status::InvalidArgument(
            "fault plan: bad probability in rule '" + token +
            "' (want site%P with P in [0,1])");
      }
    } else {
      return Status::InvalidArgument(
          "fault plan: rule '" + token +
          "' has neither '@' (ordinal) nor '%' (probability)");
    }
    if (rule.site.empty()) {
      return Status::InvalidArgument("fault plan: empty site in rule '" +
                                     token + "'");
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

/// Picks up SMN_FAULT_INJECTION / SMN_FAULT_PLAN / SMN_FAULT_SEED once, the
/// first time a site is consulted without a programmatic plan.
void MaybeConfigureFromEnvLocked(Registry& r) SMN_REQUIRES(r.mu) {
  if (r.env_checked) return;
  r.env_checked = true;
  const char* enabled = std::getenv("SMN_FAULT_INJECTION");
  if (enabled == nullptr ||
      (std::string(enabled) != "ON" && std::string(enabled) != "1")) {
    return;
  }
  const char* plan = std::getenv("SMN_FAULT_PLAN");
  if (plan == nullptr || *plan == '\0') return;
  StatusOr<std::vector<FaultRule>> rules = ParsePlan(plan);
  if (!rules.ok()) return;  // A malformed env plan never half-activates.
  uint64_t seed = 0;
  const char* seed_env = std::getenv("SMN_FAULT_SEED");
  if (seed_env != nullptr) ParseOrdinal(seed_env, &seed);
  r.rules = std::move(rules).value();
  r.rng = Rng(seed);
  r.sites.clear();
  r.active = true;
}

bool FiredLocked(Registry& r, const char* site) SMN_REQUIRES(r.mu) {
  MaybeConfigureFromEnvLocked(r);
  if (!r.active) return false;
  SiteState& state = r.sites[site];
  const uint64_t arrival = ++state.arrivals;
  for (const FaultRule& rule : r.rules) {
    if (rule.site != site) continue;
    bool fires = false;
    if (rule.probability >= 0.0) {
      fires = r.rng.UniformDouble() < rule.probability;
    } else if (arrival >= rule.first) {
      fires = rule.count == 0 || arrival < rule.first + rule.count;
    }
    if (fires) {
      ++state.fired;
      return true;
    }
  }
  return false;
}

}  // namespace

Status FaultInjection::Configure(const std::string& plan, uint64_t seed) {
  SMN_ASSIGN_OR_RETURN(std::vector<FaultRule> rules, ParsePlan(plan));
  Registry& r = registry();
  MutexLock lock(r.mu);
  r.rules = std::move(rules);
  r.rng = Rng(seed);
  r.sites.clear();
  r.active = true;
  r.env_checked = true;  // A programmatic plan overrides the environment.
  return Status::OK();
}

void FaultInjection::Reset() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  r.active = false;
  r.env_checked = true;  // Reset means *off*, not back-to-env.
  r.rules.clear();
  r.sites.clear();
}

bool FaultInjection::Active() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  MaybeConfigureFromEnvLocked(r);
  return r.active;
}

bool FaultInjection::Fired(const char* site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  return FiredLocked(r, site);
}

Status FaultInjection::Check(const char* site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  if (!FiredLocked(r, site)) return Status::OK();
  return Status::Internal("injected fault at " + std::string(site) +
                          " (arrival " +
                          std::to_string(r.sites[site].arrivals) + ")");
}

size_t FaultInjection::PartialBytes(const char* site, size_t size) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  if (!FiredLocked(r, site)) return size;
  return size / 2;
}

uint64_t FaultInjection::Arrivals(const std::string& site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.arrivals;
}

uint64_t FaultInjection::FiredCount(const std::string& site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fired;
}

}  // namespace smn
