#ifndef SMN_UTIL_RECORD_CODEC_H_
#define SMN_UTIL_RECORD_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace smn {

/// Length-prefixed, CRC32-checksummed record codec — the wire and file
/// format of the write-ahead session journal, and the repository's one
/// sanctioned site for raw file writes (determinism-lint rule `raw-write`
/// allowlists exactly record_codec.cc; everything else must go through
/// RecordWriter).
///
/// Record layout, little-endian:
///   u32 payload_length | u32 crc32(payload) | payload bytes
///
/// A file is a plain concatenation of records. Torn tails — a crash or an
/// injected fault mid-append — are detected by length/CRC validation:
/// ParseRecords returns the longest valid record prefix plus the number of
/// trailing bytes that failed validation, and recovery truncates the file
/// to that prefix (counted, never a crash).

/// CRC-32 (ISO 3309 / zlib polynomial, reflected) of `size` bytes.
uint32_t Crc32(const void* data, size_t size);

/// Appends `value` to `*out` in little-endian byte order.
void AppendU32(std::string* out, uint32_t value);
/// Appends `value` to `*out` in little-endian byte order.
void AppendU64(std::string* out, uint64_t value);
/// Appends the IEEE-754 bit pattern of `value` (exact roundtrip, NaNs
/// included) in little-endian byte order.
void AppendF64(std::string* out, double value);

/// Reads a little-endian u32 from the front of `*in`, advancing it.
/// Returns false when `*in` is too short (in which case `*in` is unchanged).
bool ReadU32(std::string_view* in, uint32_t* value);
/// Reads a little-endian u64 from the front of `*in`, advancing it.
bool ReadU64(std::string_view* in, uint64_t* value);
/// Reads a little-endian IEEE-754 double from the front of `*in`.
bool ReadF64(std::string_view* in, double* value);

/// Frames `payload` as one record (header + bytes) appended to `*out`.
void AppendRecord(std::string* out, std::string_view payload);

/// Records exceeding this payload size are rejected on write and treated as
/// corruption on read (a torn length field can claim any size; the bound
/// keeps a corrupt header from masquerading as a giant record).
inline constexpr size_t kMaxRecordPayload = 1 << 20;

/// The result of validating a record buffer.
struct RecordParse {
  /// The payloads of every valid record, in order.
  std::vector<std::string> payloads;
  /// Bytes of the longest valid record prefix (the truncation point).
  size_t valid_bytes = 0;
  /// Bytes after the valid prefix (torn or corrupt tail; 0 when clean).
  size_t dropped_bytes = 0;
  /// True when the whole buffer parsed as records.
  bool clean() const { return dropped_bytes == 0; }
};

/// Splits `buffer` into validated records. Never fails: a corrupt or torn
/// tail ends the parse and is reported via `dropped_bytes`.
RecordParse ParseRecords(std::string_view buffer);

/// Append-only record file writer over a POSIX fd. Thread-compatible (the
/// session journal serializes appends under the session lock). Writes are
/// unbuffered — every Append is write(2)-visible to same-host readers
/// immediately; Sync() (fsync) is the durability barrier, driven by the
/// journal's fsync policy.
///
/// Fault sites (see util/fault_injection.h): `record.append` fails an
/// append before any byte reaches the fd; `record.append.partial` writes a
/// torn prefix of the framed record, then fails — the torn-tail case the
/// CRC validation exists for; `record.sync` fails the fsync.
class RecordWriter {
 public:
  /// Opens `path` for appending, creating it (mode 0644) if missing;
  /// `truncate` starts the file empty.
  static StatusOr<RecordWriter> Open(const std::string& path, bool truncate);

  RecordWriter(RecordWriter&& other) noexcept;
  RecordWriter& operator=(RecordWriter&& other) noexcept;
  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

  /// Closes the fd (without syncing).
  ~RecordWriter();

  /// Frames `payload` and writes it fully. On failure (I/O error, injected
  /// fault) the record may be torn on disk; the caller treats the append as
  /// not durable either way, and readers drop the torn tail via CRC.
  Status Append(std::string_view payload);

  /// fsync(2): blocks until everything appended so far is durable.
  Status Sync();

  /// Closes the fd early (idempotent; the destructor also closes).
  void Close();

  /// Records appended through this writer since Open.
  uint64_t records_appended() const { return records_appended_; }

  /// The path this writer appends to.
  const std::string& path() const { return path_; }

 private:
  RecordWriter(int fd, std::string path);

  int fd_ = -1;
  std::string path_;
  uint64_t records_appended_ = 0;
};

/// Reads the entire file into a string (for record parsing; journal files
/// are bounded by session lifetimes). NotFound when the file is missing.
StatusOr<std::string> ReadFileBytes(const std::string& path);

/// Truncates `path` to `size` bytes — how recovery physically drops a torn
/// tail so later appends extend a valid prefix.
Status TruncateFile(const std::string& path, size_t size);

/// Unlinks `path`. OK when already gone (idempotent close paths).
Status RemoveFile(const std::string& path);

/// Creates `path` as a directory if needed (single level, mode 0755).
Status EnsureDirectory(const std::string& path);

/// Names of the regular files directly under `dir`, sorted (deterministic
/// recovery scan order). NotFound when `dir` does not exist.
StatusOr<std::vector<std::string>> ListDirectory(const std::string& dir);

}  // namespace smn

#endif  // SMN_UTIL_RECORD_CODEC_H_
