#ifndef SMN_UTIL_STOPWATCH_H_
#define SMN_UTIL_STOPWATCH_H_

#include <chrono>

namespace smn {

/// Wall-clock stopwatch for the benchmark harness. This header is the one
/// place library code may read a clock: every derived quantity is timing
/// telemetry, never sampler input, so the determinism contract is intact.
/// The determinism linter (scripts/check_determinism.py, rule `wall-clock`)
/// allowlists exactly this file and flags clock reads anywhere else in src/.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace smn

#endif  // SMN_UTIL_STOPWATCH_H_
