#ifndef SMN_UTIL_STATUS_H_
#define SMN_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace smn {

/// Error categories used across the library. Modeled after the Status idiom
/// common in storage engines: functions that can fail return a Status (or a
/// StatusOr<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kUnavailable,
  kDeadlineExceeded,
  kDataLoss,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result. The OK status carries no message
/// and is cheap to copy; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  /// Transient overload: the caller should back off and retry (the server's
  /// load-shedding status — never a silent drop).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// The request waited past its deadline and was abandoned before touching
  /// any session state.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// Durable data failed integrity checks (CRC mismatch, torn record).
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller. Usage:
///   SMN_RETURN_IF_ERROR(DoThing());
#define SMN_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::smn::Status _smn_status = (expr);      \
    if (!_smn_status.ok()) return _smn_status; \
  } while (false)

}  // namespace smn

#endif  // SMN_UTIL_STATUS_H_
