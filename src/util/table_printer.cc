#include "util/table_printer.h"

#include <algorithm>
#include <cassert>

namespace smn {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) {
        os << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << row[i];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace smn
