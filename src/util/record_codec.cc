#include "util/record_codec.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/fault_injection.h"

namespace smn {
namespace {

/// zlib-polynomial CRC table, built once.
const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static bool built = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      table[i] = crc;
    }
    return true;
  }();
  (void)built;
  return table;
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

/// Full write(2) loop: retries short writes and EINTR; writes at most
/// `limit` bytes (the fault-injection torn-prefix bound) before reporting
/// failure.
Status WriteFully(int fd, const char* data, size_t size, size_t limit,
                  const std::string& path) {
  size_t written = 0;
  const size_t bound = std::min(size, limit);
  while (written < bound) {
    const ssize_t n = ::write(fd, data + written, bound - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoMessage("write failed on", path));
    }
    written += static_cast<size_t>(n);
  }
  if (bound < size) {
    return Status::Internal("injected partial write on '" + path + "' (" +
                            std::to_string(bound) + " of " +
                            std::to_string(size) + " bytes)");
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const uint32_t* table = Crc32Table();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendU32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFFu));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFFu));
  }
}

void AppendF64(std::string* out, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "double is not 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64(out, bits);
}

bool ReadU32(std::string_view* in, uint32_t* value) {
  if (in->size() < 4) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>((*in)[i])) << (8 * i);
  }
  in->remove_prefix(4);
  *value = v;
  return true;
}

bool ReadU64(std::string_view* in, uint64_t* value) {
  if (in->size() < 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>((*in)[i])) << (8 * i);
  }
  in->remove_prefix(8);
  *value = v;
  return true;
}

bool ReadF64(std::string_view* in, double* value) {
  uint64_t bits = 0;
  if (!ReadU64(in, &bits)) return false;
  std::memcpy(value, &bits, sizeof(bits));
  return true;
}

void AppendRecord(std::string* out, std::string_view payload) {
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  AppendU32(out, Crc32(payload.data(), payload.size()));
  out->append(payload.data(), payload.size());
}

RecordParse ParseRecords(std::string_view buffer) {
  RecordParse parse;
  const size_t total = buffer.size();
  std::string_view rest = buffer;
  for (;;) {
    std::string_view cursor = rest;
    uint32_t length = 0;
    uint32_t crc = 0;
    if (!ReadU32(&cursor, &length) || !ReadU32(&cursor, &crc)) break;
    if (length > kMaxRecordPayload || cursor.size() < length) break;
    if (Crc32(cursor.data(), length) != crc) break;
    parse.payloads.emplace_back(cursor.substr(0, length));
    rest = cursor.substr(length);
    parse.valid_bytes = total - rest.size();
  }
  parse.dropped_bytes = total - parse.valid_bytes;
  return parse;
}

RecordWriter::RecordWriter(int fd, std::string path)
    : fd_(fd), path_(std::move(path)) {}

RecordWriter::RecordWriter(RecordWriter&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      records_appended_(other.records_appended_) {
  other.fd_ = -1;
}

RecordWriter& RecordWriter::operator=(RecordWriter&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    records_appended_ = other.records_appended_;
    other.fd_ = -1;
  }
  return *this;
}

RecordWriter::~RecordWriter() { Close(); }

StatusOr<RecordWriter> RecordWriter::Open(const std::string& path,
                                          bool truncate) {
  const int flags = O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::Internal(ErrnoMessage("open failed for", path));
  }
  return RecordWriter(fd, path);
}

Status RecordWriter::Append(std::string_view payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("RecordWriter: append after Close on '" +
                                      path_ + "'");
  }
  if (payload.size() > kMaxRecordPayload) {
    return Status::InvalidArgument(
        "RecordWriter: payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxRecordPayload) +
        "-byte record bound");
  }
  SMN_RETURN_IF_ERROR(SMN_FAULT_CHECK("record.append"));
  std::string framed;
  framed.reserve(8 + payload.size());
  AppendRecord(&framed, payload);
  const size_t limit = SMN_FAULT_PARTIAL("record.append.partial", framed.size());
  SMN_RETURN_IF_ERROR(WriteFully(fd_, framed.data(), framed.size(), limit,
                                 path_));
  ++records_appended_;
  return Status::OK();
}

Status RecordWriter::Sync() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("RecordWriter: sync after Close on '" +
                                      path_ + "'");
  }
  SMN_RETURN_IF_ERROR(SMN_FAULT_CHECK("record.sync"));
  if (::fsync(fd_) != 0) {
    return Status::Internal(ErrnoMessage("fsync failed on", path_));
  }
  return Status::OK();
}

void RecordWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no file at '" + path + "'");
    }
    return Status::Internal(ErrnoMessage("open failed for", path));
  }
  std::string contents;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::Internal(ErrnoMessage("read failed on",
                                                          path));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    contents.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return contents;
}

Status TruncateFile(const std::string& path, size_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::Internal(ErrnoMessage("truncate failed on", path));
  }
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::Internal(ErrnoMessage("unlink failed on", path));
  }
  return Status::OK();
}

Status EnsureDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::Internal(ErrnoMessage("mkdir failed for", path));
}

StatusOr<std::vector<std::string>> ListDirectory(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no directory at '" + dir + "'");
    }
    return Status::Internal(ErrnoMessage("opendir failed for", dir));
  }
  std::vector<std::string> names;
  for (struct dirent* entry = ::readdir(handle); entry != nullptr;
       entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat info;
    const std::string full = dir + "/" + name;
    if (::stat(full.c_str(), &info) == 0 && S_ISREG(info.st_mode)) {
      names.push_back(name);
    }
  }
  ::closedir(handle);
  // readdir order is filesystem-dependent; recovery iterates sorted.
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace smn
