#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace smn {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::Exponential() {
  double u = UniformDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u);
}

size_t Rng::RouletteWheel(const std::vector<double>& weights) {
  assert(!weights.empty());
  constexpr double kEpsilon = 1e-9;
  double total = 0.0;
  for (double w : weights) total += (w > kEpsilon ? w : kEpsilon);
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > kEpsilon ? weights[i] : kEpsilon;
    target -= w;
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack lands on the last slot.
}

Rng Rng::Split() { return Rng(NextUint64()); }

Rng Rng::Fork(uint64_t stream_id) const {
  // Snapshot the state (rotations keep the four words from cancelling), fold
  // in the stream id, and finalize twice through SplitMix64 so consecutive
  // ids do not map to consecutive SplitMix64 entry points.
  uint64_t mixer = state_[0] ^ Rotl(state_[1], 13) ^ Rotl(state_[2], 29) ^
                   Rotl(state_[3], 43) ^ stream_id;
  const uint64_t first = SplitMix64(&mixer);
  return Rng(first ^ SplitMix64(&mixer));
}

}  // namespace smn
