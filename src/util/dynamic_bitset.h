#ifndef SMN_UTIL_DYNAMIC_BITSET_H_
#define SMN_UTIL_DYNAMIC_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace smn {

/// Fixed-size bitset whose size is chosen at run time. Used to represent
/// subsets of the candidate correspondence set C: matching instances, conflict
/// adjacency rows, and sample membership columns. Word-parallel operations
/// (intersection, union, popcount, symmetric-difference size) are the hot path
/// of the sampler and the instantiation search.
class DynamicBitset {
 public:
  DynamicBitset() : size_(0) {}

  /// Creates a bitset of `size` bits, all clear.
  explicit DynamicBitset(size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  /// Builds a bitset of `size` bits (size <= 64) whose content is the low
  /// `size` bits of `word`. Fast path for exhaustive mask enumeration.
  static DynamicBitset FromWord(size_t size, uint64_t word);

  size_t size() const { return size_; }

  bool Test(size_t pos) const {
    return (words_[pos >> 6] >> (pos & 63)) & 1ULL;
  }
  void Set(size_t pos) { words_[pos >> 6] |= (1ULL << (pos & 63)); }
  void Reset(size_t pos) { words_[pos >> 6] &= ~(1ULL << (pos & 63)); }
  void Assign(size_t pos, bool value) {
    if (value) {
      Set(pos);
    } else {
      Reset(pos);
    }
  }

  /// Clears all bits.
  void Clear();

  /// Number of set bits.
  size_t Count() const;

  /// True when no bit is set. Early-exits on the first nonzero word instead
  /// of popcounting the whole bitset.
  bool None() const {
    for (const uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// True when every bit of `other` is also set in this bitset.
  /// Requires equal sizes.
  bool Contains(const DynamicBitset& other) const;

  /// True when this and `other` share at least one set bit.
  /// Requires equal sizes.
  bool Intersects(const DynamicBitset& other) const;

  /// Number of bits set in both this and `other`. Requires equal sizes.
  size_t IntersectionCount(const DynamicBitset& other) const;

  /// Size of the symmetric difference |A\B| + |B\A|. This is the repair
  /// distance Δ of the paper when applied to correspondence sets.
  size_t SymmetricDifferenceCount(const DynamicBitset& other) const;

  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator^=(const DynamicBitset& other);

  /// Removes from this bitset every bit set in `other` (set difference).
  DynamicBitset& SubtractInPlace(const DynamicBitset& other);

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Indices of all set bits, ascending.
  std::vector<size_t> ToIndices() const;

  /// Calls `fn(index)` for each set bit, ascending.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Calls `fn(index)` for each bit set in both this and `other`, ascending.
  /// Word-parallel and allocation-free — the kernel-query equivalent of
  /// materializing `*this & other` and walking its set bits. Requires equal
  /// sizes.
  template <typename Fn>
  void ForEachIntersection(const DynamicBitset& other, Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w] & other.words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Number of 64-bit words backing the bitset (kernel support: word-level
  /// scans over precompiled adjacency rows).
  size_t word_count() const { return words_.size(); }

  /// The i-th backing word; bit j of word w is bit 64*w + j of the set.
  uint64_t word(size_t i) const { return words_[i]; }

  /// Copies `other`'s bits into this bitset's existing storage — the
  /// walk kernel's in-place proposal copy. Requires equal sizes.
  void CopyFrom(const DynamicBitset& other) {
    const size_t count = words_.size();
    for (size_t w = 0; w < count; ++w) words_[w] = other.words_[w];
  }

  /// "10110..." string, bit 0 first. Intended for debugging and test output.
  std::string ToString() const;

  /// Hash suitable for unordered containers of instances.
  size_t Hash() const;

 private:
  size_t size_;
  std::vector<uint64_t> words_;
};

/// std::hash adapter for DynamicBitset keys.
struct DynamicBitsetHash {
  size_t operator()(const DynamicBitset& b) const { return b.Hash(); }
};

}  // namespace smn

#endif  // SMN_UTIL_DYNAMIC_BITSET_H_
