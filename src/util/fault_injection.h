#ifndef SMN_UTIL_FAULT_INJECTION_H_
#define SMN_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace smn {

/// Deterministic fault-injection framework: named sites threaded through
/// journal I/O, the bounded queues, the shard workers, and the thread pool,
/// firing on a *schedule* — the Nth arrival at a site, a range of arrivals,
/// or a seeded coin — so chaos tests can reproduce a failure bit-for-bit
/// from its plan string and seed.
///
/// Compile gating. Production builds pay nothing: the SMN_FAULT_* call-site
/// macros below compile to constants unless the library is configured with
/// -DSMN_FAULT_INJECTION=ON (which defines SMN_FAULT_INJECTION_ENABLED).
/// The FaultInjection class itself is always compiled so its plan parsing
/// and scheduling logic stay under test in every build; only the *sites*
/// vanish.
///
/// Runtime gating. Even in an injection build nothing fires until a plan is
/// active — either programmatically (FaultInjection::Configure, what the
/// chaos tests use) or from the environment at first use: set
/// SMN_FAULT_INJECTION=ON plus SMN_FAULT_PLAN (and optionally
/// SMN_FAULT_SEED for probabilistic rules).
///
/// Plan grammar (comma-separated rules):
///   site@N       fire exactly on the Nth arrival at `site` (1-based)
///   site@N+      fire on the Nth and every later arrival
///   site@N*M     fire on arrivals N .. N+M-1
///   site%P       fire each arrival independently with probability P,
///                drawn from the plan's seeded Rng stream
///
/// Site inventory (kept in sync with ARCHITECTURE.md "Durability &
/// recovery"):
///   record.append          journal record append fails before any byte
///   record.append.partial  journal append writes a torn prefix, then fails
///   record.sync            fsync of the journal fd fails
///   bounded_queue.push     Push/TryPush/PushWithDeadline fails as if closed
///   shard.worker           shard worker fails its next request (degrades
///                          the session like ShardedNetworkOptions::fault_hook)
///   thread_pool.worker     pool worker dies before its next task; queued
///                          tasks survive and Shutdown() drains them inline
class FaultInjection {
 public:
  /// Installs `plan` (see grammar above), replacing any active plan and
  /// resetting all arrival counters. `seed` feeds the `%P` rules' Rng.
  /// Fails with InvalidArgument on a malformed plan, leaving no plan active.
  static Status Configure(const std::string& plan, uint64_t seed = 0);

  /// Clears the active plan and every counter. Chaos tests pair each
  /// Configure with a Reset (see ScopedFaultPlan).
  static void Reset();

  /// True when a plan is active (configured or picked up from the
  /// environment). Cheap enough for call sites, but the SMN_FAULT_* macros
  /// are the sanctioned entry points.
  static bool Active();

  /// Records one arrival at `site` and returns true when the plan says this
  /// arrival fails. Always false without an active plan.
  static bool Fired(const char* site);

  /// Fired() wrapped as the repository's Status idiom:
  /// Internal("injected fault at <site> (arrival N)") when firing.
  static Status Check(const char* site);

  /// Partial-write helper for the journal codec: records an arrival at
  /// `site` and returns how many of `size` bytes the caller should write
  /// before failing — `size` (no fault) or size/2 (torn record).
  static size_t PartialBytes(const char* site, size_t size);

  /// Arrivals recorded at `site` since the last Configure/Reset (test
  /// introspection).
  static uint64_t Arrivals(const std::string& site);

  /// Faults fired at `site` since the last Configure/Reset.
  static uint64_t FiredCount(const std::string& site);
};

/// RAII plan scope for tests: Configure on entry, Reset on exit.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const std::string& plan, uint64_t seed = 0) {
    status_ = FaultInjection::Configure(plan, seed);
  }
  ~ScopedFaultPlan() { FaultInjection::Reset(); }

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  /// OK unless the plan string failed to parse.
  const Status& status() const { return status_; }

 private:
  Status status_;
};

}  // namespace smn

/// Call-site macros: the only way production code reaches FaultInjection.
/// Without SMN_FAULT_INJECTION_ENABLED they fold to constants, so the sites
/// cost nothing and cannot perturb the determinism contract.
#if defined(SMN_FAULT_INJECTION_ENABLED)
#define SMN_FAULT_FIRED(site) (::smn::FaultInjection::Fired(site))
#define SMN_FAULT_CHECK(site) (::smn::FaultInjection::Check(site))
#define SMN_FAULT_PARTIAL(site, size) \
  (::smn::FaultInjection::PartialBytes(site, size))
#else
#define SMN_FAULT_FIRED(site) (false)
#define SMN_FAULT_CHECK(site) (::smn::Status::OK())
#define SMN_FAULT_PARTIAL(site, size) (size)
#endif

#endif  // SMN_UTIL_FAULT_INJECTION_H_
