#ifndef SMN_UTIL_TABLE_PRINTER_H_
#define SMN_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace smn {

/// Renders aligned ASCII tables for the benchmark harness, so every bench
/// binary can print the same rows/series the paper reports. Example:
///
///   TablePrinter t({"Dataset", "#Schemas", "#Attributes(Min/Max)"});
///   t.AddRow({"BP", "3", "80/106"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Writes the table with a header underline and column padding.
  void Print(std::ostream& os) const;

  /// Writes the table as comma-separated values (header row first).
  void PrintCsv(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace smn

#endif  // SMN_UTIL_TABLE_PRINTER_H_
