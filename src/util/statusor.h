#ifndef SMN_UTIL_STATUSOR_H_
#define SMN_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace smn {

/// Holds either a value of type T or an error Status. A StatusOr constructed
/// from a value is OK; one constructed from a non-OK Status carries the error.
/// Accessing the value of a non-OK StatusOr is a programming error (asserts).
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. Must not be OK: an OK status without a
  /// value is meaningless.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr(Status) requires a non-OK status");
  }

  /// Constructs an OK result holding `value`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a StatusOr), propagates the error, or assigns the value.
///   SMN_ASSIGN_OR_RETURN(auto net, Network::Create(...));
#define SMN_STATUSOR_CONCAT_IMPL(a, b) a##b
#define SMN_STATUSOR_CONCAT(a, b) SMN_STATUSOR_CONCAT_IMPL(a, b)
#define SMN_ASSIGN_OR_RETURN(decl, expr) \
  SMN_ASSIGN_OR_RETURN_IMPL(SMN_STATUSOR_CONCAT(_smn_statusor_, __LINE__), \
                            decl, expr)
#define SMN_ASSIGN_OR_RETURN_IMPL(tmp, decl, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  decl = std::move(tmp).value()

}  // namespace smn

#endif  // SMN_UTIL_STATUSOR_H_
