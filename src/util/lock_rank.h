#ifndef SMN_UTIL_LOCK_RANK_H_
#define SMN_UTIL_LOCK_RANK_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace smn {

/// The repository's declared lock partial order, as rank constants.
///
/// Discipline: a thread may only *block* on a mutex whose rank is strictly
/// greater than the rank of every ranked mutex it already holds. Because
/// every blocking acquisition moves strictly upward, no cycle of waiting
/// threads can form among ranked locks — the classical ranked-mutex proof of
/// deadlock freedom. The ranks below are the ARCHITECTURE.md "Lock-order
/// inventory" table in code form; keep the two in sync.
///
/// Gaps between constants are deliberate room for future layers. TryLock is
/// exempt (it cannot wait, hence cannot deadlock), and unranked mutexes
/// (rank kUnranked, the default constructor) opt out of checking entirely —
/// the locking lint (scripts/check_locking.py) forces every mutex under
/// src/ to declare a rank, so only ad-hoc test locks are unranked.
struct LockRank {
  /// Not checked. Default-constructed mutexes (test-local locks).
  static constexpr uint32_t kUnranked = 0;
  /// ReconcileService tenant registry (service.tenants).
  static constexpr uint32_t kServiceRegistry = 100;
  /// SessionManager session map + id/tick state (session_manager.sessions).
  static constexpr uint32_t kSessionManager = 110;
  /// Per-session state lock (session.state).
  static constexpr uint32_t kSession = 200;
  /// ShardedNetwork coordinator ledgers (shard.coordinator).
  static constexpr uint32_t kShardCoordinator = 300;
  /// InformationGainStrategy incremental bookkeeping (strategy.gain_cache).
  static constexpr uint32_t kSelectionStrategy = 400;
  /// Per-component lazy gain memoization (pn.component_gains).
  static constexpr uint32_t kComponentGains = 500;
  /// Network-level lazy stitched sample view (pn.sample_view).
  static constexpr uint32_t kSampleView = 510;
  /// ThreadPool task queue (pool.queue).
  static constexpr uint32_t kThreadPool = 600;
  /// BoundedQueue internal state (queue.state).
  static constexpr uint32_t kBoundedQueue = 610;
  /// ReconcileService request counters (service.stats). Leaf.
  static constexpr uint32_t kServiceStats = 900;
  /// ShardedNetwork sticky first-failure status (shard.degraded). Leaf.
  static constexpr uint32_t kShardDegraded = 910;
  /// Fault-injection registry (fault.registry). Deepest leaf: its sites are
  /// consulted from under nearly every other lock in chaos builds.
  static constexpr uint32_t kFaultRegistry = 950;
};

#if defined(SMN_LOCK_DEBUG_ENABLED)

/// Debug-only deadlock detection behind -DSMN_LOCK_DEBUG=ON: a per-thread
/// held-lock stack enforcing the LockRank partial order fail-stop, plus a
/// process-global recorder of observed acquired-while-holding edges.
///
/// The hooks are called by smn::Mutex (and only by it); nothing here exists
/// in a normal build — Mutex::Lock compiles back down to mu_.lock().
namespace lock_debug {

/// One observed acquired-while-holding edge: while a thread held a mutex
/// named `first`, it acquired one named `second`. Aggregated over all
/// instances sharing a name, over the whole process lifetime.
using LockEdge = std::pair<std::string, std::string>;

/// Rank check + edge recording, called BEFORE the underlying mutex blocks:
/// aborts the process (fail-stop, message on stderr) when `rank` is not
/// strictly greater than every ranked lock this thread already holds —
/// including re-acquisition of `mu` itself, which would self-deadlock.
/// Unranked mutexes (rank 0) record nothing and are never checked.
void OnLockAttempt(const void* mu, const char* name, uint32_t rank);

/// Pushes the now-held lock onto this thread's stack.
void OnLockAcquired(const void* mu, const char* name, uint32_t rank);

/// Records a TryLock success: pushed onto the held stack (later blocking
/// acquisitions are checked against it) but exempt from the rank check and
/// the edge graph — a try-acquisition never waits, so it cannot deadlock.
void OnTryLockAcquired(const void* mu, const char* name, uint32_t rank);

/// Removes `mu` from this thread's stack (wherever it sits: manual
/// Lock/Unlock pairs need not unlock in LIFO order).
void OnLockReleased(const void* mu);

/// Number of locks this thread currently holds (ranked or not).
size_t HeldLockCount();

/// Every distinct observed edge, in deterministic (lexicographic) order.
std::vector<LockEdge> ObservedEdges();

/// True when `edges` contain a directed cycle; `*cycle_out` (optional)
/// receives one witness as "a -> b -> ... -> a". Pure helper, usable on
/// synthetic edge sets in tests.
bool EdgesContainCycle(const std::vector<LockEdge>& edges,
                       std::string* cycle_out);

/// True when the process-global observed graph has a cycle (a potential
/// deadlock, even if this run never interleaved into it).
bool ObservedCycle(std::string* cycle_out);

/// Appends the observed edges to `path` as "from\tto\tcount" lines (the
/// input format of scripts/check_lock_graph.py, which merges dumps from
/// every test process, gates acyclicity, and renders DOT). Called
/// automatically at process exit when SMN_LOCK_GRAPH_OUT names a file.
bool DumpEdges(const std::string& path);

/// Clears the global edge graph (tests only; per-thread stacks are not
/// touched — callers must not hold locks across this).
void ResetGraphForTest();

}  // namespace lock_debug

#endif  // SMN_LOCK_DEBUG_ENABLED

}  // namespace smn

#endif  // SMN_UTIL_LOCK_RANK_H_
