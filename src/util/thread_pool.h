#ifndef SMN_UTIL_THREAD_POOL_H_
#define SMN_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace smn {

/// Fixed-size worker pool for fan-out/join parallelism (the multi-chain
/// sampler, batched matcher evaluation). Tasks are closures handed to
/// Submit(), which returns the std::future of the task's result — including
/// any exception the task throws, so worker failures surface at the join
/// point instead of dying silently on a pool thread.
///
/// Shutdown() (and the destructor, which calls it) finishes every task
/// already submitted, then joins the workers, so futures obtained from a
/// pool are always eventually ready. Submit() is safe to call from multiple
/// threads concurrently, including concurrently with Shutdown(): a task
/// submitted after shutdown has begun is never enqueued — it runs inline on
/// the submitting thread before Submit() returns, so its future is ready
/// immediately and no future from this pool can be abandoned unresolved.
/// The queue discipline is proven statically: tasks_ and stopping_ are
/// SMN_GUARDED_BY(mutex_), so an unlocked access anywhere is a
/// -Wthread-safety compile error.
class ThreadPool {
 public:
  /// Spawns `thread_count` workers; 0 means DefaultThreadCount().
  explicit ThreadPool(size_t thread_count = 0);
  ~ThreadPool();

  /// Drains the queue, joins the workers, and flips the pool into inline
  /// mode: every later Submit() runs its task on the calling thread.
  /// Idempotent; called by the destructor.
  void Shutdown() SMN_EXCLUDES(mutex_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return threads_.size(); }

  /// Number of submitted tasks that have not started yet. Diagnostic only:
  /// the value can be stale by the time the caller reads it.
  size_t pending() const SMN_EXCLUDES(mutex_);

  /// std::thread::hardware_concurrency() with a floor of 1 (the standard
  /// allows it to report 0 when the count is unknown).
  static size_t DefaultThreadCount();

  /// Schedules `fn` for execution and returns the future of its result.
  /// After Shutdown() the task is not enqueued (the workers are gone and
  /// would never run it); it executes inline on this thread instead, so the
  /// returned future is already ready — never a future that cannot become
  /// ready.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>>
      SMN_EXCLUDES(mutex_) {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    // packaged_task is move-only but std::function requires copyable
    // callables, hence the shared_ptr wrapper.
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    bool run_inline = false;
    {
      MutexLock lock(mutex_);
      if (stopping_) {
        run_inline = true;
      } else {
        tasks_.push([task] { (*task)(); });
      }
    }
    if (run_inline) {
      (*task)();  // Exceptions land in the future, same as on a worker.
    } else {
      wake_.NotifyOne();
    }
    return future;
  }

 private:
  void WorkerLoop() SMN_EXCLUDES(mutex_);

  std::vector<std::thread> threads_;
  mutable Mutex mutex_{"pool.queue", LockRank::kThreadPool};
  CondVar wake_;
  std::queue<std::function<void()>> tasks_ SMN_GUARDED_BY(mutex_);
  bool stopping_ SMN_GUARDED_BY(mutex_) = false;
};

}  // namespace smn

#endif  // SMN_UTIL_THREAD_POOL_H_
