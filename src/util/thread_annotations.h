#ifndef SMN_UTIL_THREAD_ANNOTATIONS_H_
#define SMN_UTIL_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis attribute macros (no-ops on every other
// compiler). Together with util/mutex.h these turn the repository's lock
// discipline into a compile-time proof: a member declared
// SMN_GUARDED_BY(mu_) cannot be read or written without holding mu_, a
// function declared SMN_REQUIRES(mu_) cannot be called without it, and the
// CI lint job builds the tree with -Wthread-safety -Werror=thread-safety so
// a violation is a red build rather than a probabilistic TSAN catch.
//
// Conventions (see ARCHITECTURE.md, "Static guarantees"):
//  - Every mutex-protected member is annotated at its declaration, with the
//    mutex declared above the data it guards.
//  - Functions touching guarded state either take the lock themselves
//    (scoped SMN_ACQUIRE/SMN_RELEASE via MutexLock) or declare
//    SMN_REQUIRES(mu) and leave locking to the caller; `Locked` name
//    suffixes mark the latter.
//  - SMN_NO_THREAD_SAFETY_ANALYSIS is a last resort for code the analysis
//    cannot model; each use carries a justification comment.

#if defined(__clang__) && !defined(SWIG)
#define SMN_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define SMN_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Declares a type to be a capability ("mutex") the analysis tracks.
#define SMN_CAPABILITY(x) SMN_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type that acquires a capability at construction and
/// releases it at destruction (MutexLock).
#define SMN_SCOPED_CAPABILITY SMN_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define SMN_GUARDED_BY(x) SMN_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define SMN_PT_GUARDED_BY(x) SMN_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Caller must hold the capability exclusively before calling.
#define SMN_REQUIRES(...) \
  SMN_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared before calling.
#define SMN_REQUIRES_SHARED(...) \
  SMN_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively and does not release it.
#define SMN_ACQUIRE(...) \
  SMN_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared and does not release it.
#define SMN_ACQUIRE_SHARED(...) \
  SMN_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function releases the (exclusively held) capability.
#define SMN_RELEASE(...) \
  SMN_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function releases the (shared-held) capability.
#define SMN_RELEASE_SHARED(...) \
  SMN_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; first argument is the success value.
#define SMN_TRY_ACQUIRE(...) \
  SMN_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention for
/// non-reentrant mutexes).
#define SMN_EXCLUDES(...) \
  SMN_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held (re-syncs the analysis).
#define SMN_ASSERT_CAPABILITY(x) \
  SMN_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Function returns a reference to the given capability.
#define SMN_RETURN_CAPABILITY(x) \
  SMN_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Opts a function out of the analysis entirely. Last resort; justify.
#define SMN_NO_THREAD_SAFETY_ANALYSIS \
  SMN_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // SMN_UTIL_THREAD_ANNOTATIONS_H_
