#include "util/lock_rank.h"

#if defined(SMN_LOCK_DEBUG_ENABLED)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <set>

namespace smn {
namespace lock_debug {
namespace {

/// One entry of a thread's held-lock stack.
struct HeldLock {
  const void* mu = nullptr;
  const char* name = nullptr;
  uint32_t rank = LockRank::kUnranked;
};

/// The calling thread's held locks, acquisition order. Debug-only
/// diagnostic state: it never influences engine output, which is why it is
/// exempt from the determinism lint's thread-local rule (see ALLOWED_PATHS
/// in scripts/check_determinism.py).
// smn-lint: allow(thread-local)
thread_local std::vector<HeldLock> tls_held;

/// The process-global observed acquired-while-holding graph. Guarded by a
/// raw std::mutex on purpose: smn::Mutex calls back into this module, so
/// using it here would recurse. This file is a sanctioned implementation
/// site of the locking lint's raw-sync rule (scripts/check_locking.py).
struct Graph {
  std::mutex mu;
  /// (holder name, acquired name) -> observation count. std::map so every
  /// iteration (dump, cycle check) is deterministic.
  std::map<LockEdge, uint64_t> edges;
};

Graph& graph() {
  static Graph* g = new Graph();  // Leaked intentionally: process-wide.
  return *g;
}

/// Registers the at-exit edge dump the first time a ranked lock is seen,
/// when SMN_LOCK_GRAPH_OUT names a file. One registration per process.
void MaybeRegisterAtExitDump() {
  static const bool registered = [] {
    const char* path = std::getenv("SMN_LOCK_GRAPH_OUT");
    if (path == nullptr || *path == '\0') return false;
    std::atexit([] {
      const char* out = std::getenv("SMN_LOCK_GRAPH_OUT");
      if (out != nullptr && *out != '\0') DumpEdges(out);
    });
    return true;
  }();
  (void)registered;
}

[[noreturn]] void FailStop(const char* why, const char* name, uint32_t rank) {
  std::fprintf(stderr,
               "smn lock-rank violation: %s acquiring '%s' (rank %u)\n",
               why, name, rank);
  std::fprintf(stderr, "  held by this thread (acquisition order):\n");
  for (const HeldLock& held : tls_held) {
    std::fprintf(stderr, "    '%s' (rank %u)\n",
                 held.name == nullptr ? "<unranked>" : held.name, held.rank);
  }
  std::fprintf(stderr,
               "  declared order: see LockRank in src/util/lock_rank.h and "
               "the ARCHITECTURE.md lock-order inventory\n");
  std::abort();
}

}  // namespace

void OnLockAttempt(const void* mu, const char* name, uint32_t rank) {
  // Self-deadlock (re-acquiring a non-reentrant mutex) is caught even for
  // unranked locks — the stack knows the address either way.
  for (const HeldLock& held : tls_held) {
    if (held.mu == mu) {
      FailStop("re-acquisition of an already-held mutex (self-deadlock)",
               name == nullptr ? "<unranked>" : name, rank);
    }
  }
  if (rank == LockRank::kUnranked) return;
  MaybeRegisterAtExitDump();
  for (const HeldLock& held : tls_held) {
    if (held.rank != LockRank::kUnranked && held.rank >= rank) {
      FailStop("rank not strictly above every held lock", name, rank);
    }
  }
  // Record the acquired-while-holding edges before blocking: the *attempt*
  // is what can deadlock, so an attempt that never returns still leaves its
  // evidence in the graph.
  if (!tls_held.empty()) {
    Graph& g = graph();
    std::lock_guard<std::mutex> lock(g.mu);
    for (const HeldLock& held : tls_held) {
      if (held.rank == LockRank::kUnranked) continue;
      ++g.edges[LockEdge(held.name, name)];
    }
  }
}

void OnLockAcquired(const void* mu, const char* name, uint32_t rank) {
  tls_held.push_back(HeldLock{mu, name, rank});
}

void OnTryLockAcquired(const void* mu, const char* name, uint32_t rank) {
  tls_held.push_back(HeldLock{mu, name, rank});
}

void OnLockReleased(const void* mu) {
  for (size_t i = tls_held.size(); i > 0; --i) {
    if (tls_held[i - 1].mu == mu) {
      tls_held.erase(tls_held.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
}

size_t HeldLockCount() { return tls_held.size(); }

std::vector<LockEdge> ObservedEdges() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  std::vector<LockEdge> edges;
  edges.reserve(g.edges.size());
  for (const auto& entry : g.edges) edges.push_back(entry.first);
  return edges;
}

bool EdgesContainCycle(const std::vector<LockEdge>& edges,
                       std::string* cycle_out) {
  std::map<std::string, std::vector<std::string>> adjacency;
  for (const LockEdge& edge : edges) {
    adjacency[edge.first].push_back(edge.second);
    adjacency[edge.second];  // Ensure sinks exist as nodes.
  }
  // Iterative three-color DFS; the gray stack is the cycle witness.
  std::set<std::string> done;
  for (const auto& entry : adjacency) {
    if (done.count(entry.first) != 0) continue;
    std::vector<std::pair<std::string, size_t>> stack{{entry.first, 0}};
    std::set<std::string> gray{entry.first};
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const std::vector<std::string>& out = adjacency[node];
      if (next < out.size()) {
        const std::string& target = out[next++];
        if (gray.count(target) != 0) {
          if (cycle_out != nullptr) {
            std::string witness = target;
            for (size_t i = 0; i < stack.size(); ++i) {
              if (stack[i].first == target) {
                witness = target;
                for (size_t j = i + 1; j < stack.size(); ++j) {
                  witness += " -> " + stack[j].first;
                }
                break;
              }
            }
            *cycle_out = witness + " -> " + target;
          }
          return true;
        }
        if (done.count(target) == 0) {
          stack.emplace_back(target, 0);
          gray.insert(target);
        }
      } else {
        done.insert(node);
        gray.erase(node);
        stack.pop_back();
      }
    }
  }
  return false;
}

bool ObservedCycle(std::string* cycle_out) {
  return EdgesContainCycle(ObservedEdges(), cycle_out);
}

bool DumpEdges(const std::string& path) {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  // Append mode: every test process adds its observations; the merge script
  // aggregates duplicates.
  std::ofstream out(path, std::ios::app);
  if (!out) return false;
  for (const auto& [edge, count] : g.edges) {
    out << edge.first << '\t' << edge.second << '\t' << count << '\n';
  }
  return static_cast<bool>(out);
}

void ResetGraphForTest() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  g.edges.clear();
}

}  // namespace lock_debug
}  // namespace smn

#endif  // SMN_LOCK_DEBUG_ENABLED
