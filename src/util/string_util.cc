#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace smn {

std::string ToLowerAscii(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> SplitAny(std::string_view s, std::string_view delims) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : s) {
    if (delims.find(c) != std::string_view::npos) {
      if (!current.empty()) {
        parts.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

std::vector<std::string> SplitIdentifier(std::string_view name) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(ToLowerAscii(current));
      current.clear();
    }
  };
  char prev = '\0';
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool is_sep = c == '_' || c == '-' || c == '.' || c == '/' || c == ' ';
    if (is_sep) {
      flush();
      prev = c;
      continue;
    }
    const bool upper = std::isupper(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    const bool prev_lower = std::islower(static_cast<unsigned char>(prev)) != 0;
    const bool prev_digit = std::isdigit(static_cast<unsigned char>(prev)) != 0;
    // Boundaries: lower->Upper ("releaseDate"), letter<->digit ("v2"),
    // and Upper followed by lower after an Upper run ("XMLFile" -> xml file).
    if ((upper && prev_lower) || (digit && !prev_digit && prev != '\0') ||
        (!digit && prev_digit)) {
      flush();
    } else if (upper && i + 1 < name.size() &&
               std::isupper(static_cast<unsigned char>(prev)) &&
               std::islower(static_cast<unsigned char>(name[i + 1]))) {
      flush();
    }
    current.push_back(c);
    prev = c;
  }
  flush();
  return tokens;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

}  // namespace smn
