#ifndef SMN_UTIL_STRING_UTIL_H_
#define SMN_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace smn {

/// Lower-cases ASCII characters; leaves other bytes untouched.
std::string ToLowerAscii(std::string_view s);

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitAny(std::string_view s, std::string_view delims);

/// Splits an identifier into word tokens: handles camelCase boundaries,
/// digits, and '_', '-', '.', '/', ' ' separators. Tokens come back
/// lower-cased. "releaseDate_v2" -> {"release", "date", "v", "2"}.
std::vector<std::string> SplitIdentifier(std::string_view name);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double with `digits` fractional digits ("0.842").
std::string FormatDouble(double value, int digits);

}  // namespace smn

#endif  // SMN_UTIL_STRING_UTIL_H_
