#ifndef SMN_UTIL_MUTEX_H_
#define SMN_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace smn {

/// std::mutex wrapped as a Clang Thread Safety Analysis capability.
///
/// libstdc++'s std::mutex carries no thread-safety attributes, so locks
/// taken through it are invisible to -Wthread-safety and every access to a
/// GUARDED_BY member would be flagged. This wrapper is the repository's one
/// lockable type: the analysis sees Lock/Unlock (and MutexLock scopes) as
/// capability transfers, which is what lets SMN_GUARDED_BY declarations be
/// enforced at compile time. Non-reentrant, non-movable — a mutex address
/// is its identity for both the analysis and the waiting threads.
///
/// Deadlock freedom: the two-argument constructor gives the mutex a
/// debug-only (name, rank) identity from the LockRank partial order
/// (util/lock_rank.h). Under -DSMN_LOCK_DEBUG=ON every blocking Lock checks
/// the calling thread's held-lock stack and fail-stops on a rank inversion,
/// and every acquired-while-holding edge feeds the process-global lock-order
/// graph. In a normal build the identity compiles away entirely — no
/// storage, no per-acquisition cost — so ranked and unranked mutexes are
/// byte-identical. The locking lint (scripts/check_locking.py) requires
/// every mutex under src/ to declare a rank.
class SMN_CAPABILITY("mutex") Mutex {
 public:
  /// An unranked mutex (LockRank::kUnranked): exempt from rank checking.
  /// For ad-hoc test locks; engine mutexes must use the ranked constructor.
  Mutex() = default;

#if defined(SMN_LOCK_DEBUG_ENABLED)
  /// A ranked mutex. `name` must be a string literal (stored, not copied);
  /// `rank` is its position in the LockRank partial order.
  Mutex(const char* name, uint32_t rank) : name_(name), rank_(rank) {}
#else
  /// A ranked mutex; without SMN_LOCK_DEBUG the identity is discarded.
  Mutex(const char*, uint32_t) {}
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Blocks until the calling thread holds the mutex exclusively. Under
  /// SMN_LOCK_DEBUG, fail-stops first on any rank-order violation.
  void Lock() SMN_ACQUIRE() {
#if defined(SMN_LOCK_DEBUG_ENABLED)
    lock_debug::OnLockAttempt(this, name_, rank_);
    mu_.lock();
    lock_debug::OnLockAcquired(this, name_, rank_);
#else
    mu_.lock();
#endif
  }

  /// Releases the mutex. Caller must hold it.
  void Unlock() SMN_RELEASE() {
#if defined(SMN_LOCK_DEBUG_ENABLED)
    lock_debug::OnLockReleased(this);
#endif
    mu_.unlock();
  }

  /// Acquires the mutex iff it is free; returns whether it was acquired.
  /// Exempt from the rank check: a try-acquisition never waits, so it
  /// cannot participate in a deadlock cycle.
  bool TryLock() SMN_TRY_ACQUIRE(true) {
#if defined(SMN_LOCK_DEBUG_ENABLED)
    if (!mu_.try_lock()) return false;
    lock_debug::OnTryLockAcquired(this, name_, rank_);
    return true;
#else
    return mu_.try_lock();
#endif
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#if defined(SMN_LOCK_DEBUG_ENABLED)
  const char* name_ = nullptr;
  uint32_t rank_ = LockRank::kUnranked;
#endif
};

/// Scoped exclusive lock on a Mutex (the RAII shape the analysis models as
/// a scoped capability). Prefer this over manual Lock/Unlock pairs.
class SMN_SCOPED_CAPABILITY MutexLock {
 public:
  /// Acquires `mu` for the lifetime of this object.
  explicit MutexLock(Mutex& mu) SMN_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() SMN_RELEASE() { mu_.Unlock(); }

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait atomically releases the mutex
/// while blocking and reacquires it before returning, so from the analysis'
/// point of view (and the caller's invariant discipline) the capability is
/// held across the call — hence SMN_REQUIRES rather than acquire/release
/// annotations. The lock-rank held stack is likewise unchanged across a
/// Wait: the caller held the mutex before and holds it after, and the
/// per-thread stack is never inspected cross-thread, so the blocked
/// interval needs no special casing. Use the classic predicate loop:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Spurious wakeups are possible: always re-check
  /// the predicate in a loop.
  void Wait(Mutex& mu) SMN_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // Ownership stays with the caller's scope.
  }

  /// Blocks until notified or `timeout_ms` elapses; returns false on
  /// timeout. Spurious wakeups are possible either way: callers must
  /// re-check their predicate in a loop and recompute the remaining budget
  /// (see BoundedQueue::PushWithDeadline for the canonical shape).
  bool WaitFor(Mutex& mu, double timeout_ms) SMN_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    // The negated comparison clamps NaN along with negatives: NaN fails
    // every ordered comparison, so `timeout_ms < 0.0 ? 0.0 : timeout_ms`
    // would forward NaN into wait_for (an unspecified-duration wait).
    const double clamped_ms = !(timeout_ms > 0.0) ? 0.0 : timeout_ms;
    const std::cv_status status = cv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(clamped_ms));
    lock.release();  // Ownership stays with the caller's scope.
    return status == std::cv_status::no_timeout;
  }

  /// Wakes one waiting thread (if any).
  void NotifyOne() { cv_.notify_one(); }

  /// Wakes every waiting thread.
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace smn

#endif  // SMN_UTIL_MUTEX_H_
