#ifndef SMN_UTIL_MUTEX_H_
#define SMN_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace smn {

/// std::mutex wrapped as a Clang Thread Safety Analysis capability.
///
/// libstdc++'s std::mutex carries no thread-safety attributes, so locks
/// taken through it are invisible to -Wthread-safety and every access to a
/// GUARDED_BY member would be flagged. This wrapper is the repository's one
/// lockable type: the analysis sees Lock/Unlock (and MutexLock scopes) as
/// capability transfers, which is what lets SMN_GUARDED_BY declarations be
/// enforced at compile time. Non-reentrant, non-movable — a mutex address
/// is its identity for both the analysis and the waiting threads.
class SMN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Blocks until the calling thread holds the mutex exclusively.
  void Lock() SMN_ACQUIRE() { mu_.lock(); }

  /// Releases the mutex. Caller must hold it.
  void Unlock() SMN_RELEASE() { mu_.unlock(); }

  /// Acquires the mutex iff it is free; returns whether it was acquired.
  bool TryLock() SMN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped exclusive lock on a Mutex (the RAII shape the analysis models as
/// a scoped capability). Prefer this over manual Lock/Unlock pairs.
class SMN_SCOPED_CAPABILITY MutexLock {
 public:
  /// Acquires `mu` for the lifetime of this object.
  explicit MutexLock(Mutex& mu) SMN_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() SMN_RELEASE() { mu_.Unlock(); }

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait atomically releases the mutex
/// while blocking and reacquires it before returning, so from the analysis'
/// point of view (and the caller's invariant discipline) the capability is
/// held across the call — hence SMN_REQUIRES rather than acquire/release
/// annotations. Use the classic predicate loop:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Spurious wakeups are possible: always re-check
  /// the predicate in a loop.
  void Wait(Mutex& mu) SMN_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // Ownership stays with the caller's scope.
  }

  /// Blocks until notified or `timeout_ms` elapses; returns false on
  /// timeout. Spurious wakeups are possible either way: callers must
  /// re-check their predicate in a loop and recompute the remaining budget
  /// (see BoundedQueue::PushWithDeadline for the canonical shape).
  bool WaitFor(Mutex& mu, double timeout_ms) SMN_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                               timeout_ms < 0.0 ? 0.0 : timeout_ms));
    lock.release();  // Ownership stays with the caller's scope.
    return status == std::cv_status::no_timeout;
  }

  /// Wakes one waiting thread (if any).
  void NotifyOne() { cv_.notify_one(); }

  /// Wakes every waiting thread.
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace smn

#endif  // SMN_UTIL_MUTEX_H_
