#ifndef SMN_UTIL_BOUNDED_QUEUE_H_
#define SMN_UTIL_BOUNDED_QUEUE_H_

#include <deque>
#include <utility>

#include "util/fault_injection.h"
#include "util/mutex.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace smn {

/// Bounded blocking FIFO queue: the mailbox between a sharded session's
/// coordinator and its shard workers. Multiple producers, any number of
/// consumers (shard workers use exactly one, which is what makes queue
/// order an execution order).
///
/// Backpressure and shutdown semantics:
///  - Push blocks while the queue is full; it fails (returns false) once
///    the queue is closed, including producers already blocked in Push at
///    close time — a closed queue accepts nothing, so every request either
///    reaches the consumer or is reported undeliverable to its producer.
///    TryPush (never blocks) and PushWithDeadline (blocks at most a given
///    budget) share the same refusal contract; all three report injected
///    faults at site `bounded_queue.push` as a failed push.
///  - Pop blocks while the queue is empty; after Close it keeps returning
///    the remaining items until the queue drains, then returns false. The
///    consumer therefore processes every accepted request before exiting —
///    no promise is ever dropped with its future left dangling.
///
/// Lock order: self-contained (one internal mutex, never held while calling
/// out). Safe to use under any external lock discipline as a leaf.
template <typename T>
class BoundedQueue {
 public:
  /// A queue holding at most `capacity` items (minimum 1).
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `item`, blocking while full. Returns false (item dropped)
  /// when the queue is or becomes closed.
  bool Push(T item) SMN_EXCLUDES(mu_) {
    if (SMN_FAULT_FIRED("bounded_queue.push")) return false;
    MutexLock lock(mu_);
    while (!closed_ && items_.size() >= capacity_) {
      // CondVar::Wait releases mu_ for the blocked interval and mu_ is a
      // leaf (never held while calling out), so no cycle can form.
      not_full_.Wait(mu_);  // smn-lint: allow(blocking-in-lock)
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Enqueues `item` only if there is room right now: never blocks. Returns
  /// false — with `item` untouched by the queue — when full or closed, the
  /// same refusal contract as Push on a closed queue. This is the admission
  /// primitive: callers that must shed load instead of waiting (the server's
  /// overload path) use TryPush and turn `false` into kUnavailable.
  bool TryPush(T item) SMN_EXCLUDES(mu_) {
    if (SMN_FAULT_FIRED("bounded_queue.push")) return false;
    MutexLock lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Enqueues `item`, blocking at most `timeout_ms`. Returns false when the
  /// queue stays full past the deadline or is/becomes closed — close
  /// semantics are identical to Push: a producer blocked here at Close time
  /// wakes immediately and fails, it never enqueues onto a closed queue.
  bool PushWithDeadline(T item, double timeout_ms) SMN_EXCLUDES(mu_) {
    if (SMN_FAULT_FIRED("bounded_queue.push")) return false;
    const Stopwatch waited;
    MutexLock lock(mu_);
    while (!closed_ && items_.size() >= capacity_) {
      const double remaining_ms = timeout_ms - waited.ElapsedMillis();
      if (remaining_ms <= 0.0) return false;
      // Releases mu_ while blocked; leaf lock — same argument as Push.
      not_full_.WaitFor(mu_, remaining_ms);  // smn-lint: allow(blocking-in-lock)
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Dequeues into `*out`, blocking while empty. Returns false only when
  /// the queue is closed AND drained.
  bool Pop(T* out) SMN_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) {
      // Releases mu_ while blocked; leaf lock — same argument as Push.
      not_empty_.Wait(mu_);  // smn-lint: allow(blocking-in-lock)
    }
    if (items_.empty()) return false;  // Closed and drained.
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return true;
  }

  /// Closes the queue: wakes every blocked producer (their Push fails) and
  /// lets consumers drain the remaining items. Idempotent.
  void Close() SMN_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    closed_ = true;
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  /// Current item count (racy the instant it returns; for tests/metrics).
  size_t size() const SMN_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  /// True once Close has run.
  bool closed() const SMN_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_{"queue.state", LockRank::kBoundedQueue};
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ SMN_GUARDED_BY(mu_);
  bool closed_ SMN_GUARDED_BY(mu_) = false;
};

}  // namespace smn

#endif  // SMN_UTIL_BOUNDED_QUEUE_H_
