#include "util/thread_pool.h"

#include "util/fault_injection.h"

namespace smn {

size_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t thread_count) {
  if (thread_count == 0) thread_count = DefaultThreadCount();
  threads_.reserve(thread_count);
  for (size_t i = 0; i < thread_count; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_.NotifyAll();
  // join() only the threads a prior Shutdown() has not already joined, which
  // makes repeated calls (including the destructor after an explicit
  // Shutdown()) safe.
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  // Workers can die early under fault injection (site thread_pool.worker),
  // leaving tasks queued with no thread to run them. Drain inline so every
  // future from this pool still becomes ready.
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      if (tasks_.empty()) break;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

size_t ThreadPool::pending() const {
  MutexLock lock(mutex_);
  return tasks_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    // Simulated worker death: checked BEFORE popping, so a task is never
    // taken off the queue and abandoned — Shutdown()'s inline drain (or a
    // surviving worker) still runs everything submitted.
    if (SMN_FAULT_FIRED("thread_pool.worker")) return;
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // CondVar::Wait releases mutex_ for the blocked interval and pool.queue
      // is a leaf (never held while running a task), so no cycle can form.
      while (!stopping_ && tasks_.empty()) wake_.Wait(mutex_);  // smn-lint: allow(blocking-in-lock)
      if (tasks_.empty()) return;  // stopping_ set and queue drained.
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // Exceptions land in the task's future, not here.
  }
}

}  // namespace smn
