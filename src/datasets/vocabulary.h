#ifndef SMN_DATASETS_VOCABULARY_H_
#define SMN_DATASETS_VOCABULARY_H_

#include <string>
#include <vector>

#include "core/types.h"

namespace smn {

/// A semantic concept that may appear as an attribute in schemas of a
/// domain. Each concept has several phrasings — token sequences that schema
/// designers plausibly use for it ("release date", "screen date",
/// "production date"). Two attributes in different schemas correspond (are in
/// the ground-truth selective matching M) exactly when they instantiate the
/// same concept.
struct Concept {
  uint32_t id = 0;
  std::vector<std::vector<std::string>> phrasings;
  AttributeType type = AttributeType::kString;
};

/// A domain vocabulary: the concept pool schemas of one dataset draw from.
/// Built compositionally from entity groups ("supplier", "vendor") crossed
/// with field groups ("name", "id", "address"), which yields concept pools of
/// realistic size (hundreds) with realistic synonym structure.
class Vocabulary {
 public:
  Vocabulary(std::string domain, std::vector<Concept> concepts)
      : domain_(std::move(domain)), concepts_(std::move(concepts)) {}

  const std::string& domain() const { return domain_; }
  const std::vector<Concept>& concepts() const { return concepts_; }
  size_t size() const { return concepts_.size(); }
  const Concept& concept_at(uint32_t id) const { return concepts_[id]; }

  /// Business-partner concepts (enterprise master data): the paper's BP.
  static Vocabulary BusinessPartner();
  /// Purchase-order / e-business concepts: the paper's PO.
  static Vocabulary PurchaseOrder();
  /// University-application-form concepts: the paper's UAF.
  static Vocabulary UniversityApplication();
  /// Generic web-form concepts: the paper's WebForm.
  static Vocabulary WebForm();

  /// Assembles a vocabulary as the cross product of entity phrasing groups
  /// and typed field phrasing groups: every (entity, field) pair becomes one
  /// concept whose phrasings combine each entity phrasing with each field
  /// phrasing, plus one bare concept per field group. Exposed for custom
  /// domains and tests.
  struct PhrasingGroup {
    std::vector<std::vector<std::string>> phrasings;
    AttributeType type = AttributeType::kString;
  };
  static Vocabulary Compose(std::string domain,
                            const std::vector<PhrasingGroup>& entities,
                            const std::vector<PhrasingGroup>& fields);

 private:
  std::string domain_;
  std::vector<Concept> concepts_;
};

}  // namespace smn

#endif  // SMN_DATASETS_VOCABULARY_H_
