#include "datasets/generator.h"

#include <algorithm>
#include <unordered_set>

namespace smn {

size_t GeneratedDataset::CountTruthPairs(const InteractionGraph& graph) const {
  size_t total = 0;
  for (const auto& [a, b] : graph.edges()) {
    const std::unordered_set<uint32_t> left(concepts[a].begin(),
                                            concepts[a].end());
    for (uint32_t concept_id : concepts[b]) total += left.count(concept_id);
  }
  return total;
}

size_t GeneratedDataset::MinAttributeCount() const {
  size_t best = schemas.empty() ? 0 : schemas[0].attributes.size();
  for (const SchemaView& schema : schemas) {
    best = std::min(best, schema.attributes.size());
  }
  return best;
}

size_t GeneratedDataset::MaxAttributeCount() const {
  size_t best = 0;
  for (const SchemaView& schema : schemas) {
    best = std::max(best, schema.attributes.size());
  }
  return best;
}

size_t GeneratedDataset::TotalAttributeCount() const {
  size_t total = 0;
  for (const SchemaView& schema : schemas) total += schema.attributes.size();
  return total;
}

StatusOr<GeneratedDataset> GenerateDataset(const DatasetConfig& config,
                                           const Vocabulary& vocabulary,
                                           Rng* rng) {
  if (config.max_attributes > vocabulary.size()) {
    return Status::InvalidArgument(
        "GenerateDataset: max_attributes exceeds vocabulary size for domain " +
        vocabulary.domain());
  }
  if (config.min_attributes > config.max_attributes) {
    return Status::InvalidArgument(
        "GenerateDataset: min_attributes > max_attributes");
  }

  const NameRenderer renderer;
  GeneratedDataset dataset;
  dataset.name = config.name;
  dataset.schemas.reserve(config.schema_count);
  dataset.concepts.reserve(config.schema_count);

  // Reused concept-id pool for partial Fisher-Yates sampling per schema.
  std::vector<uint32_t> pool(vocabulary.size());
  for (uint32_t i = 0; i < pool.size(); ++i) pool[i] = i;

  constexpr CaseStyle kStyles[] = {CaseStyle::kCamel, CaseStyle::kPascal,
                                   CaseStyle::kSnake, CaseStyle::kLowerConcat};
  for (size_t s = 0; s < config.schema_count; ++s) {
    SchemaView schema;
    schema.name = config.name + "_S" + std::to_string(s);
    NamingStyle style = config.style;
    style.case_style = kStyles[rng->Index(4)];

    const size_t attribute_count = static_cast<size_t>(
        rng->UniformInt(static_cast<int64_t>(config.min_attributes),
                        static_cast<int64_t>(config.max_attributes)));
    // Partial Fisher-Yates: the first attribute_count entries become a
    // uniform distinct sample of concept ids.
    for (size_t i = 0; i < attribute_count; ++i) {
      const size_t j = i + rng->Index(pool.size() - i);
      std::swap(pool[i], pool[j]);
    }

    std::vector<uint32_t> schema_concepts(pool.begin(),
                                          pool.begin() + attribute_count);
    std::unordered_set<std::string> used_names;
    for (uint32_t concept_id : schema_concepts) {
      const Concept& entry = vocabulary.concept_at(concept_id);
      std::string rendered;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const auto& phrasing =
            (rng->Bernoulli(config.synonym_probability) &&
             entry.phrasings.size() > 1)
                ? entry.phrasings[1 + rng->Index(entry.phrasings.size() - 1)]
                : entry.phrasings.front();
        rendered = renderer.Render(phrasing, style, rng);
        if (used_names.insert(rendered).second) break;
        rendered.clear();
      }
      if (rendered.empty()) {
        // All retries collided: disambiguate deterministically.
        rendered = renderer.Render(entry.phrasings.front(), style, rng) +
                   std::to_string(concept_id);
        used_names.insert(rendered);
      }
      AttributeView attribute;
      attribute.name = std::move(rendered);
      attribute.type = rng->Bernoulli(config.type_unknown_probability)
                           ? AttributeType::kUnknown
                           : entry.type;
      schema.attributes.push_back(std::move(attribute));
    }
    dataset.schemas.push_back(std::move(schema));
    dataset.concepts.push_back(std::move(schema_concepts));
  }
  return dataset;
}

}  // namespace smn
