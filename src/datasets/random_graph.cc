#include "datasets/random_graph.h"

namespace smn {

InteractionGraph CompleteGraph(size_t schema_count) {
  InteractionGraph graph(schema_count);
  for (SchemaId a = 0; a < schema_count; ++a) {
    for (SchemaId b = a + 1; b < schema_count; ++b) {
      graph.AddEdge(a, b);  // Fresh graph: cannot fail.
    }
  }
  return graph;
}

InteractionGraph ErdosRenyiGraph(size_t schema_count, double edge_probability,
                                 Rng* rng) {
  InteractionGraph graph(schema_count);
  for (SchemaId a = 0; a < schema_count; ++a) {
    for (SchemaId b = a + 1; b < schema_count; ++b) {
      if (rng->Bernoulli(edge_probability)) graph.AddEdge(a, b);
    }
  }
  return graph;
}

InteractionGraph RingGraph(size_t schema_count) {
  InteractionGraph graph(schema_count);
  if (schema_count < 2) return graph;
  for (SchemaId a = 0; a + 1 < schema_count; ++a) graph.AddEdge(a, a + 1);
  if (schema_count > 2) graph.AddEdge(static_cast<SchemaId>(schema_count - 1), 0);
  return graph;
}

InteractionGraph StarGraph(size_t schema_count) {
  InteractionGraph graph(schema_count);
  for (SchemaId b = 1; b < schema_count; ++b) graph.AddEdge(0, b);
  return graph;
}

}  // namespace smn
