#include "datasets/clustered_stream.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

namespace smn {
namespace datasets {
namespace {

/// Packs an unordered attribute pair into one dedup key (min, max).
uint64_t PairKey(AttributeId a, AttributeId b) {
  const uint64_t lo = std::min(a, b);
  const uint64_t hi = std::max(a, b);
  return (lo << 32) | hi;
}

}  // namespace

size_t ClusteredStreamSpec::ResolvedAttrsPerSchema() const {
  if (attrs_per_schema != 0) return attrs_per_schema;
  return std::max<size_t>(3, candidates_per_cluster / 4);
}

ClusteredNetworkStream::ClusteredNetworkStream(ClusteredStreamSpec spec)
    : spec_(spec) {
  spec_.attrs_per_schema = spec_.ResolvedAttrsPerSchema();
}

bool ClusteredNetworkStream::Next(ClusterBatch* batch) {
  if (next_cluster_ >= spec_.clusters) return false;
  const size_t cluster = next_cluster_++;
  const size_t schemas = spec_.schemas_per_cluster;
  const size_t attrs = spec_.attrs_per_schema;

  batch->cluster = cluster;
  batch->first_schema = static_cast<SchemaId>(cluster * schemas);
  batch->first_attribute = static_cast<AttributeId>(cluster * schemas * attrs);
  batch->edges.clear();
  batch->candidates.clear();

  // Cluster-local complete graph in canonical pivot order.
  for (size_t s1 = 0; s1 < schemas; ++s1) {
    for (size_t s2 = s1 + 1; s2 < schemas; ++s2) {
      batch->edges.emplace_back(
          static_cast<SchemaId>(batch->first_schema + s1),
          static_cast<SchemaId>(batch->first_schema + s2));
    }
  }

  // The cluster's private stream: a pure function of (seed, cluster), so a
  // batch's contents are independent of every other batch — the property
  // that lets generation, digesting, and materialization all replay it.
  Rng rng = Rng(spec_.seed).Fork(cluster);
  seen_pairs_.clear();  // Capacity retained: scratch stays O(one cluster).
  size_t added = 0;
  size_t failures = 0;
  while (added < spec_.candidates_per_cluster &&
         failures < 64 * spec_.candidates_per_cluster) {
    const size_t s1 = rng.Index(schemas);
    const size_t s2 = rng.Index(schemas);
    if (s1 == s2) {
      ++failures;
      continue;
    }
    const AttributeId a = static_cast<AttributeId>(batch->first_attribute +
                                                   s1 * attrs +
                                                   rng.Index(attrs));
    const AttributeId b = static_cast<AttributeId>(batch->first_attribute +
                                                   s2 * attrs +
                                                   rng.Index(attrs));
    // Draw the confidence before the duplicate check, matching the
    // in-memory builders (which evaluate it as an argument either way).
    const double confidence = rng.UniformDouble();
    if (!seen_pairs_.insert(PairKey(a, b)).second) {
      ++failures;
      continue;
    }
    batch->candidates.push_back(ClusterBatch::Candidate{a, b, confidence});
    ++added;
  }
  return true;
}

void NetworkDigest::MixDouble(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  Mix(bits);
}

uint64_t DigestClusteredStream(const ClusteredStreamSpec& spec) {
  ClusteredNetworkStream stream(spec);
  const ClusteredStreamSpec& resolved = stream.spec();
  NetworkDigest digest;
  // Canonical content order matches DigestNetwork's walk: schema count,
  // each attribute's schema, every edge, every candidate. The first three
  // are pure geometry — no stream state needed.
  digest.Mix(resolved.schema_count());
  for (size_t attr = 0; attr < resolved.attribute_count(); ++attr) {
    digest.Mix(attr / resolved.attrs_per_schema);
  }
  for (size_t cluster = 0; cluster < resolved.clusters; ++cluster) {
    const size_t first = cluster * resolved.schemas_per_cluster;
    for (size_t s1 = 0; s1 < resolved.schemas_per_cluster; ++s1) {
      for (size_t s2 = s1 + 1; s2 < resolved.schemas_per_cluster; ++s2) {
        digest.Mix(first + s1);
        digest.Mix(first + s2);
      }
    }
  }
  ClusterBatch batch;
  while (stream.Next(&batch)) {
    for (const ClusterBatch::Candidate& candidate : batch.candidates) {
      // Canonical endpoint order is by schema id; attribute blocks are
      // contiguous ascending per schema, so min/max on the attribute ids is
      // exactly the (left, right) the Network stores.
      digest.Mix(std::min(candidate.a, candidate.b));
      digest.Mix(std::max(candidate.a, candidate.b));
      digest.MixDouble(candidate.confidence);
    }
  }
  return digest.value();
}

uint64_t DigestNetwork(const Network& network) {
  NetworkDigest digest;
  digest.Mix(network.schema_count());
  for (const Attribute& attribute : network.attributes()) {
    digest.Mix(attribute.schema);
  }
  for (const auto& edge : network.graph().edges()) {
    digest.Mix(edge.first);
    digest.Mix(edge.second);
  }
  for (const Correspondence& candidate : network.correspondences()) {
    digest.Mix(candidate.left);
    digest.Mix(candidate.right);
    digest.MixDouble(candidate.confidence);
  }
  return digest.value();
}

StatusOr<Network> MaterializeClusteredStream(const ClusteredStreamSpec& spec) {
  ClusteredNetworkStream stream(spec);
  const ClusteredStreamSpec& resolved = stream.spec();
  NetworkBuilder builder;
  // All schemas and attributes up front (the builder freezes the schema set
  // at the first AddEdge), in the same cluster-major order the stream's
  // global-id arithmetic assumes.
  for (size_t cluster = 0; cluster < resolved.clusters; ++cluster) {
    for (size_t s = 0; s < resolved.schemas_per_cluster; ++s) {
      const SchemaId schema = builder.AddSchema(
          "K" + std::to_string(cluster) + "S" + std::to_string(s));
      for (size_t a = 0; a < resolved.attrs_per_schema; ++a) {
        SMN_ASSIGN_OR_RETURN(
            AttributeId id,
            builder.AddAttribute(schema, "a" + std::to_string(a)));
        (void)id;
      }
    }
  }
  ClusterBatch batch;
  while (stream.Next(&batch)) {
    for (const auto& edge : batch.edges) {
      SMN_RETURN_IF_ERROR(builder.AddEdge(edge.first, edge.second));
    }
    for (const ClusterBatch::Candidate& candidate : batch.candidates) {
      SMN_ASSIGN_OR_RETURN(CorrespondenceId id,
                           builder.AddCorrespondence(candidate.a, candidate.b,
                                                     candidate.confidence));
      (void)id;
    }
  }
  return builder.Build();
}

}  // namespace datasets
}  // namespace smn
