#include "datasets/standard.h"

#include <algorithm>

namespace smn {

StandardDataset MakeBpDataset() {
  DatasetConfig config;
  config.name = "BP";
  config.schema_count = 3;
  config.min_attributes = 80;
  config.max_attributes = 106;
  config.synonym_probability = 0.25;
  return StandardDataset{std::move(config), Vocabulary::BusinessPartner()};
}

StandardDataset MakePoDataset() {
  DatasetConfig config;
  config.name = "PO";
  config.schema_count = 10;
  config.min_attributes = 35;
  config.max_attributes = 408;
  config.synonym_probability = 0.25;
  return StandardDataset{std::move(config), Vocabulary::PurchaseOrder()};
}

StandardDataset MakeUafDataset() {
  DatasetConfig config;
  config.name = "UAF";
  config.schema_count = 15;
  config.min_attributes = 65;
  config.max_attributes = 228;
  config.synonym_probability = 0.25;
  return StandardDataset{std::move(config), Vocabulary::UniversityApplication()};
}

StandardDataset MakeWebFormDataset() {
  DatasetConfig config;
  config.name = "WebForm";
  config.schema_count = 89;
  config.min_attributes = 10;
  config.max_attributes = 120;
  config.synonym_probability = 0.25;
  return StandardDataset{std::move(config), Vocabulary::WebForm()};
}

DatasetConfig ScaleConfig(DatasetConfig config, double factor) {
  auto scale = [factor](size_t value, size_t floor_value) {
    const double scaled = static_cast<double>(value) * factor;
    return std::max(floor_value, static_cast<size_t>(scaled));
  };
  config.schema_count = scale(config.schema_count, 3);
  config.min_attributes = scale(config.min_attributes, 4);
  config.max_attributes =
      std::max(config.min_attributes, scale(config.max_attributes, 4));
  return config;
}

}  // namespace smn
