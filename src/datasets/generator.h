#ifndef SMN_DATASETS_GENERATOR_H_
#define SMN_DATASETS_GENERATOR_H_

#include <string>
#include <vector>

#include "core/interaction_graph.h"
#include "datasets/renderer.h"
#include "datasets/vocabulary.h"
#include "matchers/matcher.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace smn {

/// Parameters of synthetic schema-network generation. The defaults are tuned
/// so that the matcher stand-ins reach candidate precision in the ~0.6-0.8
/// band the paper reports for its real datasets (≈0.67 on BP).
struct DatasetConfig {
  std::string name;
  size_t schema_count = 3;
  size_t min_attributes = 20;
  size_t max_attributes = 40;
  /// Chance that an attribute uses a random non-canonical phrasing of its
  /// concept (synonym noise — the main source of matcher misses).
  double synonym_probability = 0.25;
  /// Chance that an attribute's declared type is withheld (kUnknown).
  double type_unknown_probability = 0.3;
  /// Per-schema naming habits; case style is drawn per schema.
  NamingStyle style;
};

/// A generated dataset: matcher-ready schema views plus the concept identity
/// of every attribute, which defines the ground-truth selective matching M.
struct GeneratedDataset {
  std::string name;
  std::vector<SchemaView> schemas;
  /// concepts[s][i] is the concept id of attribute i of schema s.
  std::vector<std::vector<uint32_t>> concepts;

  /// True when attribute i1 of schema s1 and i2 of s2 denote the same
  /// concept (s1 != s2), i.e. the pair belongs to M.
  bool IsTruthPair(SchemaId s1, size_t i1, SchemaId s2, size_t i2) const {
    return s1 != s2 && concepts[s1][i1] == concepts[s2][i2];
  }

  /// |M| restricted to the edges of `graph`: the number of ground-truth
  /// correspondences a perfect matcher could find.
  size_t CountTruthPairs(const InteractionGraph& graph) const;

  size_t MinAttributeCount() const;
  size_t MaxAttributeCount() const;
  size_t TotalAttributeCount() const;
};

/// Generates a schema network: each schema samples a distinct concept subset
/// from `vocabulary` (distinctness keeps M one-to-one-consistent) and renders
/// each concept under schema-level naming habits plus the configured noise.
/// Fails when `max_attributes` exceeds the vocabulary size.
StatusOr<GeneratedDataset> GenerateDataset(const DatasetConfig& config,
                                           const Vocabulary& vocabulary,
                                           Rng* rng);

}  // namespace smn

#endif  // SMN_DATASETS_GENERATOR_H_
