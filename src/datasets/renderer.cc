#include "datasets/renderer.h"

#include <cctype>

namespace smn {
namespace {

std::unordered_map<std::string, std::string> BuiltinAbbreviations() {
  return {
      {"number", "no"},       {"quantity", "qty"},   {"amount", "amt"},
      {"address", "addr"},    {"telephone", "tel"},  {"description", "desc"},
      {"identifier", "id"},   {"code", "cd"},        {"organization", "org"},
      {"department", "dept"}, {"account", "acct"},   {"product", "prod"},
      {"customer", "cust"},   {"supplier", "supp"},  {"order", "ord"},
      {"reference", "ref"},   {"date", "dt"},        {"year", "yr"},
      {"month", "mo"},        {"category", "cat"},   {"percent", "pct"},
      {"country", "ctry"},    {"currency", "curr"},  {"message", "msg"},
      {"value", "val"},       {"document", "doc"},   {"average", "avg"},
      {"maximum", "max"},     {"minimum", "min"},    {"standard", "std"},
  };
}

std::string Capitalize(const std::string& token) {
  std::string out = token;
  if (!out.empty()) {
    out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
  }
  return out;
}

void InjectTypo(std::string* name, Rng* rng) {
  if (name->size() < 3) return;
  const size_t pos = 1 + rng->Index(name->size() - 2);
  if (rng->Bernoulli(0.5)) {
    // Transpose two adjacent characters.
    std::swap((*name)[pos], (*name)[pos - 1]);
  } else {
    // Drop one character.
    name->erase(pos, 1);
  }
}

}  // namespace

NameRenderer::NameRenderer() : abbreviations_(BuiltinAbbreviations()) {}

std::string NameRenderer::Render(const std::vector<std::string>& tokens,
                                 const NamingStyle& style, Rng* rng) const {
  std::vector<std::string> working = tokens;
  if (working.empty()) return "field";

  if (working.size() > 1 && rng->Bernoulli(style.drop_token_probability)) {
    working.erase(working.begin() + rng->Index(working.size() - 1));
  }
  if (working.size() > 1 && rng->Bernoulli(style.reorder_probability)) {
    std::string first = std::move(working.front());
    working.erase(working.begin());
    working.push_back(std::move(first));
  }
  for (std::string& token : working) {
    if (rng->Bernoulli(style.abbreviation_probability)) {
      auto it = abbreviations_.find(token);
      if (it != abbreviations_.end()) token = it->second;
    }
  }

  std::string name;
  switch (style.case_style) {
    case CaseStyle::kCamel:
      name = working[0];
      for (size_t i = 1; i < working.size(); ++i) name += Capitalize(working[i]);
      break;
    case CaseStyle::kPascal:
      for (const std::string& token : working) name += Capitalize(token);
      break;
    case CaseStyle::kSnake:
      name = working[0];
      for (size_t i = 1; i < working.size(); ++i) {
        name += '_';
        name += working[i];
      }
      break;
    case CaseStyle::kLowerConcat:
      for (const std::string& token : working) name += token;
      break;
  }

  if (rng->Bernoulli(style.typo_probability)) InjectTypo(&name, rng);
  return name;
}

}  // namespace smn
