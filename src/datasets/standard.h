#ifndef SMN_DATASETS_STANDARD_H_
#define SMN_DATASETS_STANDARD_H_

#include "datasets/generator.h"
#include "datasets/vocabulary.h"

namespace smn {

/// Configurations reproducing Table II of the paper. The four evaluation
/// datasets (hosted at lsirwww.epfl.ch) are not available offline, so these
/// configs drive the synthetic generator to the same published statistics:
///
///   Dataset   #Schemas   #Attributes (Min/Max)
///   BP        3          80/106
///   PO        10         35/408
///   UAF       15         65/228
///   WebForm   89         10/120
///
/// Each factory returns the matching vocabulary + config pair.
struct StandardDataset {
  DatasetConfig config;
  Vocabulary vocabulary;
};

/// Business Partner: database schemas modeling business partners in
/// enterprise systems.
StandardDataset MakeBpDataset();

/// PurchaseOrder: purchase-order e-business schemas.
StandardDataset MakePoDataset();

/// University Application Form: schemas extracted from Web interfaces of
/// American university application forms.
StandardDataset MakeUafDataset();

/// WebForm: schemas automatically extracted from Web forms.
StandardDataset MakeWebFormDataset();

/// Scales a config for quick runs: multiplies the schema count and the
/// attribute range by `factor` (clamped so at least 3 schemas and 4
/// attributes remain — 3 schemas keep the cycle constraint non-trivial).
DatasetConfig ScaleConfig(DatasetConfig config, double factor);

}  // namespace smn

#endif  // SMN_DATASETS_STANDARD_H_
