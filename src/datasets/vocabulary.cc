#include "datasets/vocabulary.h"

namespace smn {
namespace {

using PhrasingGroup = Vocabulary::PhrasingGroup;

// Shorthand builders keep the domain tables readable.
PhrasingGroup G(std::vector<std::vector<std::string>> phrasings,
                AttributeType type = AttributeType::kString) {
  return PhrasingGroup{std::move(phrasings), type};
}

}  // namespace

Vocabulary Vocabulary::Compose(std::string domain,
                               const std::vector<PhrasingGroup>& entities,
                               const std::vector<PhrasingGroup>& fields) {
  std::vector<Concept> concepts;
  concepts.reserve(entities.size() * fields.size() + fields.size());
  uint32_t next_id = 0;
  // Bare fields first: "name", "date" without an entity qualifier.
  for (const PhrasingGroup& field : fields) {
    Concept entry;
    entry.id = next_id++;
    entry.type = field.type;
    entry.phrasings = field.phrasings;
    concepts.push_back(std::move(entry));
  }
  for (const PhrasingGroup& entity : entities) {
    for (const PhrasingGroup& field : fields) {
      Concept entry;
      entry.id = next_id++;
      entry.type = field.type;
      for (const auto& entity_phrasing : entity.phrasings) {
        for (const auto& field_phrasing : field.phrasings) {
          std::vector<std::string> combined = entity_phrasing;
          combined.insert(combined.end(), field_phrasing.begin(),
                          field_phrasing.end());
          entry.phrasings.push_back(std::move(combined));
        }
      }
      concepts.push_back(std::move(entry));
    }
  }
  return Vocabulary(std::move(domain), std::move(concepts));
}

Vocabulary Vocabulary::BusinessPartner() {
  const std::vector<PhrasingGroup> entities = {
      G({{"partner"}, {"business", "partner"}}),
      G({{"company"}, {"organization"}, {"firm"}}),
      G({{"contact"}, {"contact", "person"}}),
      G({{"bank"}, {"banking"}}),
      G({{"billing"}, {"invoice"}}),
      G({{"shipping"}, {"delivery"}}),
      G({{"legal"}, {"registered"}}),
      G({{"primary"}, {"main"}, {"default"}}),
  };
  const std::vector<PhrasingGroup> fields = {
      G({{"name"}, {"title"}}),
      G({{"id"}, {"identifier"}, {"code"}, {"number"}}, AttributeType::kInteger),
      G({{"street"}, {"street", "address"}}),
      G({{"city"}, {"town"}}),
      G({{"country"}, {"nation"}}),
      G({{"postal", "code"}, {"zip", "code"}, {"zip"}}),
      G({{"phone"}, {"telephone"}, {"phone", "number"}}),
      G({{"fax"}, {"fax", "number"}}),
      G({{"email"}, {"mail"}, {"email", "address"}}),
      G({{"tax", "id"}, {"vat", "number"}}, AttributeType::kInteger),
      G({{"account"}, {"account", "number"}}, AttributeType::kInteger),
      G({{"currency"}, {"currency", "code"}}),
      G({{"status"}, {"state"}}),
      G({{"created", "date"}, {"creation", "date"}}, AttributeType::kDate),
  };
  return Compose("business-partner", entities, fields);
}

Vocabulary Vocabulary::PurchaseOrder() {
  const std::vector<PhrasingGroup> entities = {
      G({{"order"}, {"purchase", "order"}, {"po"}}),
      G({{"line"}, {"order", "line"}, {"item", "line"}}),
      G({{"buyer"}, {"purchaser"}, {"customer"}}),
      G({{"supplier"}, {"vendor"}, {"seller"}}),
      G({{"product"}, {"item"}, {"article"}}),
      G({{"shipping"}, {"delivery"}, {"shipment"}}),
      G({{"billing"}, {"invoice"}, {"payment"}}),
      G({{"contract"}, {"agreement"}}),
      G({{"warehouse"}, {"depot"}}),
      G({{"carrier"}, {"shipper"}, {"freight"}}),
      G({{"tax"}, {"vat"}}),
      G({{"discount"}, {"rebate"}}),
      G({{"contact"}, {"contact", "person"}}),
      G({{"requested"}, {"required"}}),
      G({{"confirmed"}, {"approved"}}),
      G({{"header"}, {"document"}}),
      G({{"currency"}, {"monetary"}}),
      G({{"unit"}, {"measure"}}),
      G({{"schedule"}, {"plan"}}),
      G({{"return"}, {"refund"}}),
      G({{"credit"}, {"debit"}}),
      G({{"quote"}, {"quotation"}}),
      G({{"receipt"}, {"goods", "receipt"}}),
      G({{"backorder"}, {"pending", "order"}}),
  };
  const std::vector<PhrasingGroup> fields = {
      G({{"id"}, {"identifier"}, {"number"}, {"code"}}, AttributeType::kInteger),
      G({{"name"}, {"title"}, {"label"}}),
      G({{"date"}, {"day"}}, AttributeType::kDate),
      G({{"quantity"}, {"amount"}, {"count"}}, AttributeType::kInteger),
      G({{"price"}, {"cost"}, {"rate"}}, AttributeType::kDecimal),
      G({{"total"}, {"sum"}, {"total", "amount"}}, AttributeType::kDecimal),
      G({{"status"}, {"state"}, {"stage"}}),
      G({{"description"}, {"details"}, {"note"}}),
      G({{"address"}, {"location"}}),
      G({{"city"}, {"town"}}),
      G({{"country"}, {"nation"}}),
      G({{"reference"}, {"ref", "number"}}),
      G({{"type"}, {"category"}, {"kind"}}),
      G({{"weight"}, {"mass"}}, AttributeType::kDecimal),
      G({{"volume"}, {"capacity"}}, AttributeType::kDecimal),
      G({{"percent"}, {"percentage"}}, AttributeType::kDecimal),
      G({{"flag"}, {"indicator"}}, AttributeType::kBoolean),
      G({{"comment"}, {"remark"}}),
  };
  return Compose("purchase-order", entities, fields);
}

Vocabulary Vocabulary::UniversityApplication() {
  const std::vector<PhrasingGroup> entities = {
      G({{"applicant"}, {"student"}, {"candidate"}}),
      G({{"parent"}, {"guardian"}}),
      G({{"emergency"}, {"emergency", "contact"}}),
      G({{"high", "school"}, {"secondary", "school"}}),
      G({{"college"}, {"university"}, {"institution"}}),
      G({{"program"}, {"major"}, {"degree"}}),
      G({{"term"}, {"semester"}, {"session"}}),
      G({{"test"}, {"exam"}}),
      G({{"essay"}, {"statement"}}),
      G({{"recommendation"}, {"reference"}}),
      G({{"scholarship"}, {"financial", "aid"}}),
      G({{"residence"}, {"housing"}, {"dormitory"}}),
      G({{"visa"}, {"immigration"}}),
      G({{"transcript"}, {"record"}}),
      G({{"fee"}, {"payment"}}),
      G({{"mailing"}, {"postal"}}),
  };
  const std::vector<PhrasingGroup> fields = {
      G({{"first", "name"}, {"given", "name"}}),
      G({{"last", "name"}, {"family", "name"}, {"surname"}}),
      G({{"middle", "name"}, {"middle", "initial"}}),
      G({{"date"}, {"day"}}, AttributeType::kDate),
      G({{"id"}, {"identifier"}, {"number"}}, AttributeType::kInteger),
      G({{"address"}, {"street", "address"}}),
      G({{"city"}, {"town"}}),
      G({{"state"}, {"province"}}),
      G({{"country"}, {"nation"}}),
      G({{"zip", "code"}, {"postal", "code"}}),
      G({{"phone"}, {"telephone"}}),
      G({{"email"}, {"email", "address"}}),
      G({{"gpa"}, {"grade", "average"}}, AttributeType::kDecimal),
      G({{"score"}, {"result"}, {"grade"}}, AttributeType::kDecimal),
      G({{"year"}, {"yr"}}, AttributeType::kInteger),
      G({{"status"}, {"state"}, {"standing"}}),
  };
  return Compose("university-application", entities, fields);
}

Vocabulary Vocabulary::WebForm() {
  const std::vector<PhrasingGroup> entities = {
      G({{"user"}, {"member"}, {"account"}}),
      G({{"billing"}, {"payment"}}),
      G({{"shipping"}, {"delivery"}}),
      G({{"contact"}, {"support"}}),
      G({{"company"}, {"business"}}),
      G({{"card"}, {"credit", "card"}}),
      G({{"home"}, {"residence"}}),
      G({{"work"}, {"office"}}),
  };
  const std::vector<PhrasingGroup> fields = {
      G({{"name"}, {"full", "name"}}),
      G({{"first", "name"}, {"given", "name"}}),
      G({{"last", "name"}, {"surname"}}),
      G({{"email"}, {"email", "address"}, {"mail"}}),
      G({{"password"}, {"pass", "word"}, {"pwd"}}),
      G({{"phone"}, {"telephone"}, {"mobile"}}),
      G({{"address"}, {"street"}}),
      G({{"city"}, {"town"}}),
      G({{"state"}, {"region"}, {"province"}}),
      G({{"country"}, {"nation"}}),
      G({{"zip"}, {"postal", "code"}, {"zip", "code"}}),
      G({{"birth", "date"}, {"date", "of", "birth"}, {"birthday"}},
        AttributeType::kDate),
      G({{"gender"}, {"sex"}}),
      G({{"number"}, {"no"}}, AttributeType::kInteger),
      G({{"expiry", "date"}, {"expiration"}}, AttributeType::kDate),
      G({{"comment"}, {"message"}, {"feedback"}}),
  };
  return Compose("web-form", entities, fields);
}

}  // namespace smn
