#ifndef SMN_DATASETS_RANDOM_GRAPH_H_
#define SMN_DATASETS_RANDOM_GRAPH_H_

#include "core/interaction_graph.h"
#include "util/rng.h"

namespace smn {

/// Interaction-graph topologies for experiments. The paper evaluates on
/// complete graphs and, for the scaling experiment of Fig. 6, on
/// Erdős–Rényi random graphs.

/// Complete graph over `schema_count` schemas.
InteractionGraph CompleteGraph(size_t schema_count);

/// Erdős–Rényi G(n, p): each pair becomes an edge independently with
/// probability `edge_probability`.
InteractionGraph ErdosRenyiGraph(size_t schema_count, double edge_probability,
                                 Rng* rng);

/// Ring: schema i is matched with schema (i+1) mod n. Cycle-constraint-free
/// for n > 3 (no triangles) — useful in tests and ablations.
InteractionGraph RingGraph(size_t schema_count);

/// Star: schema 0 is matched with every other schema (the mediated-schema
/// topology). Triangle-free, so only one-to-one constraints bind.
InteractionGraph StarGraph(size_t schema_count);

}  // namespace smn

#endif  // SMN_DATASETS_RANDOM_GRAPH_H_
