#ifndef SMN_DATASETS_CLUSTERED_STREAM_H_
#define SMN_DATASETS_CLUSTERED_STREAM_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/network.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace smn {
namespace datasets {

/// Geometry of a streamed clustered synthetic network: `clusters` disjoint
/// schema groups (complete interaction graph within a group, no edges
/// across), each holding up to `candidates_per_cluster` random candidate
/// correspondences. The same geometry as the in-memory clustered builders
/// (bench/synthetic_networks.h, tests/testing), scaled to million-candidate
/// networks: the stream derives every cluster independently, so generation
/// keeps O(one cluster) state resident instead of O(network).
struct ClusteredStreamSpec {
  /// Number of disjoint clusters (each is at least one constraint-connected
  /// component).
  size_t clusters = 1;
  /// Candidate correspondences targeted per cluster. The actual count can
  /// fall short when the cluster's attribute-pair space saturates (the
  /// generator retries duplicates up to 64 × the target, like the in-memory
  /// builders).
  size_t candidates_per_cluster = 8;
  /// Generation seed. Every cluster forks its own stream off this seed, so
  /// cluster k's contents are a pure function of (seed, k) — independent of
  /// how many clusters precede it.
  uint64_t seed = 0;
  /// Schemas per cluster.
  size_t schemas_per_cluster = 3;
  /// Attributes per schema; 0 derives max(3, candidates_per_cluster / 4),
  /// the in-memory builders' density.
  size_t attrs_per_schema = 0;

  /// The resolved attrs_per_schema (the 0 default made concrete).
  size_t ResolvedAttrsPerSchema() const;
  /// Total schema count across clusters.
  size_t schema_count() const { return clusters * schemas_per_cluster; }
  /// Total attribute count across clusters.
  size_t attribute_count() const {
    return schema_count() * ResolvedAttrsPerSchema();
  }
};

/// One cluster's worth of network content, with *global* ids: schemas and
/// attributes are allocated cluster-major (cluster k's schemas are
/// [k·S, (k+1)·S), its attributes follow the same arithmetic), so a batch
/// can be emitted — or digested — without knowing any other batch.
struct ClusterBatch {
  /// A candidate correspondence between two global attribute ids (distinct
  /// schemas of this cluster).
  struct Candidate {
    AttributeId a = 0;
    AttributeId b = 0;
    double confidence = 0.0;
  };

  /// Cluster index this batch describes.
  size_t cluster = 0;
  /// First global schema id of the cluster (schemas_per_cluster follow).
  SchemaId first_schema = 0;
  /// First global attribute id (schemas_per_cluster · attrs_per_schema
  /// follow, grouped by schema).
  AttributeId first_attribute = 0;
  /// Intra-cluster interaction edges, (smaller, larger) global schema ids in
  /// canonical pivot order.
  std::vector<std::pair<SchemaId, SchemaId>> edges;
  /// Candidates in generation order (deduplicated within the cluster).
  std::vector<Candidate> candidates;
};

/// Pull-based streaming generator: Next() yields one ClusterBatch at a time
/// and reuses its scratch allocations across clusters, so the resident
/// high-water mark is O(largest cluster), independent of spec.clusters —
/// the property the generator memory test pins with an allocation hook.
class ClusteredNetworkStream {
 public:
  explicit ClusteredNetworkStream(ClusteredStreamSpec spec);

  /// Fills `*batch` with the next cluster. Returns false when every cluster
  /// has been emitted. The batch's vectors are overwritten, not appended.
  bool Next(ClusterBatch* batch);

  /// Clusters emitted so far.
  size_t clusters_emitted() const { return next_cluster_; }

  /// The spec this stream was built from (attrs_per_schema resolved).
  const ClusteredStreamSpec& spec() const { return spec_; }

 private:
  ClusteredStreamSpec spec_;
  size_t next_cluster_ = 0;
  /// Per-cluster duplicate filter, cleared (capacity retained) every batch.
  std::unordered_set<uint64_t> seen_pairs_;
};

/// FNV-1a-style running digest over canonical network content. Both the
/// stream (arithmetically, O(cluster) memory) and a materialized Network
/// (by walking it) can produce one; equality is the streaming generator's
/// correctness check.
class NetworkDigest {
 public:
  /// Mixes one 64-bit word.
  void Mix(uint64_t word) {
    hash_ ^= word;
    hash_ *= 0x100000001B3ULL;
  }
  /// Mixes a double by bit pattern (exact, not value-rounded).
  void MixDouble(double value);
  /// The digest so far.
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ULL;
};

/// Digest of a stream's entire canonical content — schema count, each
/// attribute's schema, every edge, every candidate (endpoints + confidence
/// bits) — computed cluster-at-a-time without materializing anything.
uint64_t DigestClusteredStream(const ClusteredStreamSpec& spec);

/// The same canonical digest computed from a materialized Network. Equal to
/// DigestClusteredStream for the Network built by
/// MaterializeClusteredStream over the same spec.
uint64_t DigestNetwork(const Network& network);

/// Replays the stream into a NetworkBuilder and returns the built Network —
/// the in-memory endpoint of the stream, O(network) resident like any
/// materialized network. Constraints are the caller's to attach.
StatusOr<Network> MaterializeClusteredStream(const ClusteredStreamSpec& spec);

}  // namespace datasets
}  // namespace smn

#endif  // SMN_DATASETS_CLUSTERED_STREAM_H_
