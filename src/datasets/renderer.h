#ifndef SMN_DATASETS_RENDERER_H_
#define SMN_DATASETS_RENDERER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace smn {

/// Identifier casing conventions seen in real schemas.
enum class CaseStyle {
  kCamel,       // releaseDate
  kPascal,      // ReleaseDate
  kSnake,       // release_date
  kLowerConcat, // releasedate
};

/// Per-schema naming habits plus per-attribute noise probabilities. The
/// noise is what makes the generated datasets hard for matchers the way the
/// paper's real datasets were: abbreviations, typos, token reordering and
/// token dropping all degrade string similarity between attributes of the
/// same concept.
struct NamingStyle {
  CaseStyle case_style = CaseStyle::kCamel;
  /// Chance to shorten a token to a known abbreviation ("quantity"->"qty").
  double abbreviation_probability = 0.12;
  /// Chance to corrupt the final name with one character-level typo.
  double typo_probability = 0.02;
  /// Chance to move the first token to the back ("date_release").
  double reorder_probability = 0.06;
  /// Chance to drop one token when the name has several ("order date" ->
  /// "date").
  double drop_token_probability = 0.04;
};

/// Renders concept phrasings into attribute names under a naming style.
class NameRenderer {
 public:
  /// Uses the built-in full-word -> abbreviation table (the inverse of the
  /// Tokenizer's expansion table).
  NameRenderer();

  /// Renders `tokens` under `style`, consuming randomness from `rng` for the
  /// probabilistic habits.
  std::string Render(const std::vector<std::string>& tokens,
                     const NamingStyle& style, Rng* rng) const;

 private:
  std::unordered_map<std::string, std::string> abbreviations_;
};

}  // namespace smn

#endif  // SMN_DATASETS_RENDERER_H_
