#ifndef SMN_CONSTRAINTS_CYCLE_H_
#define SMN_CONSTRAINTS_CYCLE_H_

#include <string_view>
#include <vector>

#include "core/constraint.h"

namespace smn {

/// The cycle constraint of the paper: when schemas are matched in a cycle,
/// matched attributes must form a closed cycle. Compiled over the triangles
/// of the interaction graph: for every pair of selected correspondences
/// a~b (s1,s2) and b~c (s2,s3) that chain through a shared attribute b across
/// two edges of a triangle, the closing correspondence a~c must be selected
/// too.
///
/// Compilation enumerates all chain entries (c1, c2, closing). When the
/// closing correspondence is not even a candidate in C, the pair (c1, c2) can
/// never appear together in a consistent instance; such entries are "hard
/// conflicts" (closing == kInvalidCorrespondence).
class CycleConstraint final : public Constraint {
 public:
  /// One chained pair and its closing correspondence.
  struct Chain {
    /// First chain member (a~b across one triangle edge).
    CorrespondenceId first;
    /// Second chain member (b~c across another edge, sharing attribute b).
    CorrespondenceId second;
    /// The correspondence closing the triangle, or kInvalidCorrespondence
    /// when C contains no such candidate (hard conflict).
    CorrespondenceId closing;
  };

  std::string_view name() const override { return "cycle"; }

  /// Kernel dispatch tag (devirtualized fast path).
  ConstraintKind kind() const override { return ConstraintKind::kCycle; }

  Status Compile(const Network& network) override;

  std::unique_ptr<Constraint> CloneUncompiled() const override;

  bool IsSatisfied(const DynamicBitset& selection) const override;

  void FindViolations(const DynamicBitset& selection,
                      std::vector<Violation>* out) const override;

  void FindViolationsInvolving(const DynamicBitset& selection,
                               CorrespondenceId c,
                               std::vector<Violation>* out) const override;

  void FindViolationsCreatedByRemoval(const DynamicBitset& selection,
                                      CorrespondenceId removed,
                                      std::vector<Violation>* out) const override;

  bool AdditionViolates(const DynamicBitset& selection,
                        CorrespondenceId candidate) const override {
    for (uint32_t i = member_offsets_[candidate];
         i < member_offsets_[candidate + 1]; ++i) {
      const Chain& chain = chains_[member_chains_[i]];
      const CorrespondenceId partner =
          chain.first == candidate ? chain.second : chain.first;
      if (!selection.Test(partner)) continue;
      if (chain.closing == kInvalidCorrespondence ||
          !selection.Test(chain.closing)) {
        return true;
      }
    }
    return false;
  }

  /// Allocation-free kernel scan over all compiled chains.
  void AppendConflicts(const DynamicBitset& selection,
                       std::vector<KernelViolation>* out) const override;

  /// Allocation-free walk of c's CSR membership row — O(chains touching c).
  /// Inline so the walk kernel's devirtualized dispatch can flatten it.
  void AppendConflictsInvolving(const DynamicBitset& selection,
                                CorrespondenceId c,
                                std::vector<KernelViolation>* out) const override {
    for (uint32_t i = member_offsets_[c]; i < member_offsets_[c + 1]; ++i) {
      const Chain& chain = chains_[member_chains_[i]];
      if (ChainViolated(chain, selection)) {
        out->push_back(MakeKernelViolation(chain));
      }
    }
  }

  /// Allocation-free walk of removed's CSR closing row: every triangle
  /// `removed` closed whose two chain members are still selected re-opens.
  void AppendConflictsCreatedByRemoval(
      const DynamicBitset& selection, CorrespondenceId removed,
      std::vector<KernelViolation>* out) const override {
    for (uint32_t i = closing_offsets_[removed];
         i < closing_offsets_[removed + 1]; ++i) {
      const Chain& chain = chains_[closing_chains_[i]];
      if (selection.Test(chain.first) && selection.Test(chain.second)) {
        out->push_back(MakeKernelViolation(chain));
      }
    }
  }

  size_t CountViolationsInvolving(const DynamicBitset& selection,
                                  CorrespondenceId c) const override;

  /// Cycle supports the addition-tracking counters: hard-conflict chains
  /// block monotonically (released only by removals), closable open chains
  /// block reversibly (selecting the closing correspondence releases them).
  bool SupportsAdditionTracking() const override { return true; }

  /// One flat pass over the compiled chains (see the implementation note).
  void SeedAdditionBlockCounts(const DynamicBitset& selection,
                               uint32_t* monotone_blocks,
                               uint32_t* reversible_blocks) const override;

  /// Member chains contribute monotone ops (hard conflicts) or
  /// reversible-if-open ops; chains `changed` closes contribute
  /// release-if-selected ops for both member orientations.
  void AppendAdditionDeltaOps(CorrespondenceId changed,
                              std::vector<AdditionDeltaOp>* out) const override;

  /// Each chain is one coupling group: {first, second, closing}, or just
  /// {first, second} for hard conflicts (no closing candidate exists).
  void AppendCouplingGroups(
      std::vector<std::vector<CorrespondenceId>>* out) const override;

  /// Chain unit propagation: both members in forces the closing in (a
  /// contradiction when no closing candidate exists or it is determined
  /// out); one member in with the closing out or missing forces the other
  /// member out.
  Status PropagateDetermined(
      const DynamicBitset& approved, const DynamicBitset& disapproved,
      std::vector<std::pair<CorrespondenceId, bool>>* out) const override;

  /// All compiled chain entries (exposed for the exact enumerator's fast
  /// path, diagnostics, and tests).
  const std::vector<Chain>& chains() const { return chains_; }

 private:
  /// True when the chain is violated by `selection` (both members selected,
  /// closing absent or nonexistent).
  bool ChainViolated(const Chain& chain, const DynamicBitset& selection) const {
    return selection.Test(chain.first) && selection.Test(chain.second) &&
           (chain.closing == kInvalidCorrespondence ||
            !selection.Test(chain.closing));
  }

  Violation MakeViolation(const Chain& chain) const {
    return Violation{name(), {chain.first, chain.second}, chain.closing};
  }

  KernelViolation MakeKernelViolation(const Chain& chain) const {
    return KernelViolation{chain.first, chain.second, chain.closing};
  }

  std::vector<Chain> chains_;
  // Per-correspondence adjacency in CSR form: row `c` of the membership
  // table lists the indices into chains_ where c participates as a chain
  // member (ascending chain index, i.e. compile order); row `c` of the
  // closing table lists the chains c closes. Offsets have n+1 entries; the
  // flat index arrays keep the per-step walks contiguous in memory instead
  // of hopping across per-correspondence heap vectors.
  std::vector<uint32_t> member_offsets_;
  std::vector<uint32_t> member_chains_;
  std::vector<uint32_t> closing_offsets_;
  std::vector<uint32_t> closing_chains_;
};

}  // namespace smn

#endif  // SMN_CONSTRAINTS_CYCLE_H_
