#ifndef SMN_CONSTRAINTS_CYCLE_H_
#define SMN_CONSTRAINTS_CYCLE_H_

#include <string_view>
#include <vector>

#include "core/constraint.h"

namespace smn {

/// The cycle constraint of the paper: when schemas are matched in a cycle,
/// matched attributes must form a closed cycle. Compiled over the triangles
/// of the interaction graph: for every pair of selected correspondences
/// a~b (s1,s2) and b~c (s2,s3) that chain through a shared attribute b across
/// two edges of a triangle, the closing correspondence a~c must be selected
/// too.
///
/// Compilation enumerates all chain entries (c1, c2, closing). When the
/// closing correspondence is not even a candidate in C, the pair (c1, c2) can
/// never appear together in a consistent instance; such entries are "hard
/// conflicts" (closing == kInvalidCorrespondence).
class CycleConstraint : public Constraint {
 public:
  /// One chained pair and its closing correspondence.
  struct Chain {
    /// First chain member (a~b across one triangle edge).
    CorrespondenceId first;
    /// Second chain member (b~c across another edge, sharing attribute b).
    CorrespondenceId second;
    /// The correspondence closing the triangle, or kInvalidCorrespondence
    /// when C contains no such candidate (hard conflict).
    CorrespondenceId closing;
  };

  std::string_view name() const override { return "cycle"; }

  Status Compile(const Network& network) override;

  std::unique_ptr<Constraint> CloneUncompiled() const override;

  bool IsSatisfied(const DynamicBitset& selection) const override;

  void FindViolations(const DynamicBitset& selection,
                      std::vector<Violation>* out) const override;

  void FindViolationsInvolving(const DynamicBitset& selection,
                               CorrespondenceId c,
                               std::vector<Violation>* out) const override;

  void FindViolationsCreatedByRemoval(const DynamicBitset& selection,
                                      CorrespondenceId removed,
                                      std::vector<Violation>* out) const override;

  bool AdditionViolates(const DynamicBitset& selection,
                        CorrespondenceId candidate) const override;

  size_t CountViolationsInvolving(const DynamicBitset& selection,
                                  CorrespondenceId c) const override;

  /// Each chain is one coupling group: {first, second, closing}, or just
  /// {first, second} for hard conflicts (no closing candidate exists).
  void AppendCouplingGroups(
      std::vector<std::vector<CorrespondenceId>>* out) const override;

  /// Chain unit propagation: both members in forces the closing in (a
  /// contradiction when no closing candidate exists or it is determined
  /// out); one member in with the closing out or missing forces the other
  /// member out.
  Status PropagateDetermined(
      const DynamicBitset& approved, const DynamicBitset& disapproved,
      std::vector<std::pair<CorrespondenceId, bool>>* out) const override;

  /// All compiled chain entries (exposed for the exact enumerator's fast
  /// path, diagnostics, and tests).
  const std::vector<Chain>& chains() const { return chains_; }

 private:
  /// True when the chain is violated by `selection` (both members selected,
  /// closing absent or nonexistent).
  bool ChainViolated(const Chain& chain, const DynamicBitset& selection) const {
    return selection.Test(chain.first) && selection.Test(chain.second) &&
           (chain.closing == kInvalidCorrespondence ||
            !selection.Test(chain.closing));
  }

  Violation MakeViolation(const Chain& chain) const {
    return Violation{name(), {chain.first, chain.second}, chain.closing};
  }

  std::vector<Chain> chains_;
  // Per correspondence: indices into chains_ where it participates as a
  // chain member, and where it acts as the closing correspondence.
  std::vector<std::vector<uint32_t>> chains_at_;
  std::vector<std::vector<uint32_t>> closing_of_;
};

}  // namespace smn

#endif  // SMN_CONSTRAINTS_CYCLE_H_
