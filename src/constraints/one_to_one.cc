#include "constraints/one_to_one.h"

#include <algorithm>
#include <memory>

namespace smn {
namespace {

/// Invokes fn(c1, c2) once per conflicting pair. Conflicts arise only
/// between correspondences sharing an attribute: walk each attribute's
/// incident candidates and report pairs whose other endpoints land in the
/// same schema. Two distinct correspondences share at most one attribute,
/// so each pair is reported exactly once.
template <typename Fn>
void ForEachConflictPair(const Network& network, Fn&& fn) {
  for (AttributeId a = 0; a < network.attribute_count(); ++a) {
    const auto& incident = network.CorrespondencesAt(a);
    for (size_t i = 0; i < incident.size(); ++i) {
      const Correspondence& ci = network.correspondence(incident[i]);
      for (size_t j = i + 1; j < incident.size(); ++j) {
        const Correspondence& cj = network.correspondence(incident[j]);
        const AttributeId other_i = ci.OtherEnd(a);
        const AttributeId other_j = cj.OtherEnd(a);
        if (network.attribute(other_i).schema ==
            network.attribute(other_j).schema) {
          fn(ci.id, cj.id);
        }
      }
    }
  }
}

}  // namespace

std::unique_ptr<Constraint> OneToOneConstraint::CloneUncompiled() const {
  return std::make_unique<OneToOneConstraint>(dense_row_limit_);
}

Status OneToOneConstraint::Compile(const Network& network) {
  const size_t n = network.correspondence_count();
  // Two passes over the attribute-incidence pairs keep compilation memory at
  // exactly the CSR size: count degrees, then fill.
  std::vector<uint32_t> degree(n, 0);
  size_t pair_count = 0;
  ForEachConflictPair(network, [&](CorrespondenceId c1, CorrespondenceId c2) {
    ++degree[c1];
    ++degree[c2];
    ++pair_count;
  });
  offsets_.assign(n + 1, 0);
  for (size_t c = 0; c < n; ++c) {
    offsets_[c + 1] = offsets_[c] + degree[c];
  }
  neighbors_.assign(2 * pair_count, 0);
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  ForEachConflictPair(network, [&](CorrespondenceId c1, CorrespondenceId c2) {
    neighbors_[cursor[c1]++] = c2;
    neighbors_[cursor[c2]++] = c1;
  });
  // Sort each row ascending so CSR queries report partners in the same
  // order the dense word scans do.
  for (size_t c = 0; c < n; ++c) {
    std::sort(neighbors_.begin() + offsets_[c],
              neighbors_.begin() + offsets_[c + 1]);
  }

  dense_compiled_ = n <= dense_row_limit_;
  if (!dense_compiled_) {
    conflicts_.clear();
    row_words_.clear();
    words_per_row_ = 0;
    return Status::OK();
  }
  // Pack the rows into adjacency bitsets plus one flat word matrix for the
  // word-parallel kernel queries.
  conflicts_.assign(n, DynamicBitset(n));
  for (CorrespondenceId c = 0; c < n; ++c) {
    for (uint32_t i = offsets_[c]; i < offsets_[c + 1]; ++i) {
      conflicts_[c].Set(neighbors_[i]);
    }
  }
  words_per_row_ = (n + 63) / 64;
  row_words_.assign(n * words_per_row_, 0);
  for (CorrespondenceId c = 0; c < n; ++c) {
    for (size_t w = 0; w < words_per_row_; ++w) {
      row_words_[c * words_per_row_ + w] = conflicts_[c].word(w);
    }
  }
  return Status::OK();
}

bool OneToOneConstraint::IsSatisfied(const DynamicBitset& selection) const {
  bool ok = true;
  selection.ForEachSetBit([&](size_t c) {
    if (!ok) return;
    if (dense_compiled_) {
      const uint64_t* row = Row(static_cast<CorrespondenceId>(c));
      for (size_t w = 0; w < words_per_row_; ++w) {
        if (row[w] & selection.word(w)) {
          ok = false;
          return;
        }
      }
      return;
    }
    for (uint32_t i = offsets_[c]; i < offsets_[c + 1]; ++i) {
      if (selection.Test(neighbors_[i])) {
        ok = false;
        return;
      }
    }
  });
  return ok;
}

void OneToOneConstraint::FindViolations(const DynamicBitset& selection,
                                        std::vector<Violation>* out) const {
  selection.ForEachSetBit([&](size_t c) {
    ForEachConflictOf(static_cast<CorrespondenceId>(c), [&](CorrespondenceId other) {
      if (other > c && selection.Test(other)) {  // Report each pair once.
        out->push_back(
            Violation{name(), {static_cast<CorrespondenceId>(c), other},
                      kInvalidCorrespondence});
      }
    });
  });
}

void OneToOneConstraint::FindViolationsInvolving(const DynamicBitset& selection,
                                                 CorrespondenceId c,
                                                 std::vector<Violation>* out) const {
  ForEachConflictOf(c, [&](CorrespondenceId other) {
    if (selection.Test(other)) {
      out->push_back(Violation{name(), {c, other}, kInvalidCorrespondence});
    }
  });
}

void OneToOneConstraint::AppendConflicts(const DynamicBitset& selection,
                                         std::vector<KernelViolation>* out) const {
  selection.ForEachSetBit([&](size_t c) {
    if (dense_compiled_) {
      conflicts_[c].ForEachIntersection(selection, [&](size_t other) {
        if (other > c) {  // Report each conflicting pair once.
          out->push_back(KernelViolation{static_cast<CorrespondenceId>(c),
                                         static_cast<CorrespondenceId>(other),
                                         kInvalidCorrespondence});
        }
      });
      return;
    }
    for (uint32_t i = offsets_[c]; i < offsets_[c + 1]; ++i) {
      const CorrespondenceId other = neighbors_[i];
      if (other > c && selection.Test(other)) {
        out->push_back(KernelViolation{static_cast<CorrespondenceId>(c), other,
                                       kInvalidCorrespondence});
      }
    }
  });
}

size_t OneToOneConstraint::CountViolationsInvolving(
    const DynamicBitset& selection, CorrespondenceId c) const {
  size_t count = 0;
  if (dense_compiled_) {
    const uint64_t* row = Row(c);
    for (size_t w = 0; w < words_per_row_; ++w) {
      count += static_cast<size_t>(
          __builtin_popcountll(row[w] & selection.word(w)));
    }
    return count;
  }
  for (uint32_t i = offsets_[c]; i < offsets_[c + 1]; ++i) {
    if (selection.Test(neighbors_[i])) ++count;
  }
  return count;
}

void OneToOneConstraint::SeedAdditionBlockCounts(
    const DynamicBitset& selection, uint32_t* monotone_blocks,
    uint32_t* reversible_blocks) const {
  (void)reversible_blocks;  // One-to-one blocks are never addition-released.
  // Rows are symmetric, so monotone_blocks[x] gains |row(x) ∩ selection| by
  // bumping every selected row's members once.
  selection.ForEachSetBit([&](size_t c) {
    ForEachConflictOf(static_cast<CorrespondenceId>(c),
                      [&](CorrespondenceId other) { ++monotone_blocks[other]; });
  });
}

void OneToOneConstraint::AppendAdditionDeltaOps(
    CorrespondenceId changed, std::vector<AdditionDeltaOp>* out) const {
  // Selecting (clearing) `changed` blocks (releases) every conflict
  // partner, unconditionally — one monotone op per row member.
  ForEachConflictOf(changed, [&](CorrespondenceId other) {
    out->push_back(AdditionDeltaOp{AdditionDeltaOp::Kind::kMonotone, other,
                                   kInvalidCorrespondence});
  });
}

void OneToOneConstraint::AppendCouplingGroups(
    std::vector<std::vector<CorrespondenceId>>* out) const {
  const size_t n = offsets_.empty() ? 0 : offsets_.size() - 1;
  for (CorrespondenceId c = 0; c < n; ++c) {
    ForEachConflictOf(c, [&](CorrespondenceId other) {
      if (other > c) out->push_back({c, other});
    });
  }
}

Status OneToOneConstraint::PropagateDetermined(
    const DynamicBitset& approved, const DynamicBitset& disapproved,
    std::vector<std::pair<CorrespondenceId, bool>>* out) const {
  Status status = Status::OK();
  approved.ForEachSetBit([&](size_t c) {
    if (!status.ok()) return;
    // Two determined-in partners contradict the constraint; check the whole
    // row before forcing anything out so a contradiction never half-emits.
    bool conflict_approved = false;
    ForEachConflictOf(static_cast<CorrespondenceId>(c),
                      [&](CorrespondenceId other) {
                        if (approved.Test(other)) conflict_approved = true;
                      });
    if (conflict_approved) {
      status = Status::FailedPrecondition(
          "one-to-one: two conflicting correspondences both determined in");
      return;
    }
    ForEachConflictOf(static_cast<CorrespondenceId>(c),
                      [&](CorrespondenceId other) {
                        if (!disapproved.Test(other)) {
                          out->emplace_back(other, false);
                        }
                      });
  });
  return status;
}

}  // namespace smn
