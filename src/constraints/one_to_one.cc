#include "constraints/one_to_one.h"

#include <memory>

namespace smn {

std::unique_ptr<Constraint> OneToOneConstraint::CloneUncompiled() const {
  return std::make_unique<OneToOneConstraint>();
}

Status OneToOneConstraint::Compile(const Network& network) {
  const size_t n = network.correspondence_count();
  conflicts_.assign(n, DynamicBitset(n));
  conflict_pair_count_ = 0;
  // Conflicts arise only between correspondences sharing an attribute: walk
  // each attribute's incident candidates and mark pairs whose other
  // endpoints land in the same schema.
  for (AttributeId a = 0; a < network.attribute_count(); ++a) {
    const auto& incident = network.CorrespondencesAt(a);
    for (size_t i = 0; i < incident.size(); ++i) {
      const Correspondence& ci = network.correspondence(incident[i]);
      for (size_t j = i + 1; j < incident.size(); ++j) {
        const Correspondence& cj = network.correspondence(incident[j]);
        const AttributeId other_i = ci.OtherEnd(a);
        const AttributeId other_j = cj.OtherEnd(a);
        if (network.attribute(other_i).schema ==
            network.attribute(other_j).schema) {
          conflicts_[ci.id].Set(cj.id);
          conflicts_[cj.id].Set(ci.id);
          ++conflict_pair_count_;
        }
      }
    }
  }
  return Status::OK();
}

bool OneToOneConstraint::IsSatisfied(const DynamicBitset& selection) const {
  bool ok = true;
  selection.ForEachSetBit([&](size_t c) {
    if (ok && conflicts_[c].Intersects(selection)) ok = false;
  });
  return ok;
}

void OneToOneConstraint::FindViolations(const DynamicBitset& selection,
                                        std::vector<Violation>* out) const {
  selection.ForEachSetBit([&](size_t c) {
    DynamicBitset row = conflicts_[c];
    row &= selection;
    row.ForEachSetBit([&](size_t other) {
      if (other > c) {  // Report each conflicting pair once.
        out->push_back(Violation{
            name(),
            {static_cast<CorrespondenceId>(c),
             static_cast<CorrespondenceId>(other)},
            kInvalidCorrespondence});
      }
    });
  });
}

void OneToOneConstraint::FindViolationsInvolving(const DynamicBitset& selection,
                                                 CorrespondenceId c,
                                                 std::vector<Violation>* out) const {
  DynamicBitset row = conflicts_[c];
  row &= selection;
  row.ForEachSetBit([&](size_t other) {
    out->push_back(Violation{name(),
                             {c, static_cast<CorrespondenceId>(other)},
                             kInvalidCorrespondence});
  });
}

bool OneToOneConstraint::AdditionViolates(const DynamicBitset& selection,
                                          CorrespondenceId candidate) const {
  return conflicts_[candidate].Intersects(selection);
}

size_t OneToOneConstraint::CountViolationsInvolving(
    const DynamicBitset& selection, CorrespondenceId c) const {
  return conflicts_[c].IntersectionCount(selection);
}

void OneToOneConstraint::AppendCouplingGroups(
    std::vector<std::vector<CorrespondenceId>>* out) const {
  for (CorrespondenceId c = 0; c < conflicts_.size(); ++c) {
    conflicts_[c].ForEachSetBit([&](size_t other) {
      if (other > c) {
        out->push_back({c, static_cast<CorrespondenceId>(other)});
      }
    });
  }
}

Status OneToOneConstraint::PropagateDetermined(
    const DynamicBitset& approved, const DynamicBitset& disapproved,
    std::vector<std::pair<CorrespondenceId, bool>>* out) const {
  Status status = Status::OK();
  approved.ForEachSetBit([&](size_t c) {
    if (!status.ok()) return;
    if (conflicts_[c].Intersects(approved)) {
      status = Status::FailedPrecondition(
          "one-to-one: two conflicting correspondences both determined in");
      return;
    }
    DynamicBitset forced_out = conflicts_[c];
    forced_out.SubtractInPlace(disapproved);
    forced_out.ForEachSetBit([&](size_t other) {
      out->emplace_back(static_cast<CorrespondenceId>(other), false);
    });
  });
  return status;
}

}  // namespace smn
