#include "constraints/one_to_one.h"

#include <memory>

namespace smn {

std::unique_ptr<Constraint> OneToOneConstraint::CloneUncompiled() const {
  return std::make_unique<OneToOneConstraint>();
}

Status OneToOneConstraint::Compile(const Network& network) {
  const size_t n = network.correspondence_count();
  conflicts_.assign(n, DynamicBitset(n));
  conflict_pair_count_ = 0;
  // Conflicts arise only between correspondences sharing an attribute: walk
  // each attribute's incident candidates and mark pairs whose other
  // endpoints land in the same schema.
  for (AttributeId a = 0; a < network.attribute_count(); ++a) {
    const auto& incident = network.CorrespondencesAt(a);
    for (size_t i = 0; i < incident.size(); ++i) {
      const Correspondence& ci = network.correspondence(incident[i]);
      for (size_t j = i + 1; j < incident.size(); ++j) {
        const Correspondence& cj = network.correspondence(incident[j]);
        const AttributeId other_i = ci.OtherEnd(a);
        const AttributeId other_j = cj.OtherEnd(a);
        if (network.attribute(other_i).schema ==
            network.attribute(other_j).schema) {
          conflicts_[ci.id].Set(cj.id);
          conflicts_[cj.id].Set(ci.id);
          ++conflict_pair_count_;
        }
      }
    }
  }
  // Pack the rows into one flat word matrix for the kernel queries.
  words_per_row_ = (n + 63) / 64;
  row_words_.assign(n * words_per_row_, 0);
  for (CorrespondenceId c = 0; c < n; ++c) {
    for (size_t w = 0; w < words_per_row_; ++w) {
      row_words_[c * words_per_row_ + w] = conflicts_[c].word(w);
    }
  }
  return Status::OK();
}

bool OneToOneConstraint::IsSatisfied(const DynamicBitset& selection) const {
  bool ok = true;
  selection.ForEachSetBit([&](size_t c) {
    if (!ok) return;
    const uint64_t* row = Row(static_cast<CorrespondenceId>(c));
    for (size_t w = 0; w < words_per_row_; ++w) {
      if (row[w] & selection.word(w)) {
        ok = false;
        return;
      }
    }
  });
  return ok;
}

void OneToOneConstraint::FindViolations(const DynamicBitset& selection,
                                        std::vector<Violation>* out) const {
  selection.ForEachSetBit([&](size_t c) {
    conflicts_[c].ForEachIntersection(selection, [&](size_t other) {
      if (other > c) {  // Report each conflicting pair once.
        out->push_back(Violation{
            name(),
            {static_cast<CorrespondenceId>(c),
             static_cast<CorrespondenceId>(other)},
            kInvalidCorrespondence});
      }
    });
  });
}

void OneToOneConstraint::FindViolationsInvolving(const DynamicBitset& selection,
                                                 CorrespondenceId c,
                                                 std::vector<Violation>* out) const {
  conflicts_[c].ForEachIntersection(selection, [&](size_t other) {
    out->push_back(Violation{name(),
                             {c, static_cast<CorrespondenceId>(other)},
                             kInvalidCorrespondence});
  });
}

void OneToOneConstraint::AppendConflicts(const DynamicBitset& selection,
                                         std::vector<KernelViolation>* out) const {
  selection.ForEachSetBit([&](size_t c) {
    conflicts_[c].ForEachIntersection(selection, [&](size_t other) {
      if (other > c) {  // Report each conflicting pair once.
        out->push_back(KernelViolation{static_cast<CorrespondenceId>(c),
                                       static_cast<CorrespondenceId>(other),
                                       kInvalidCorrespondence});
      }
    });
  });
}

size_t OneToOneConstraint::CountViolationsInvolving(
    const DynamicBitset& selection, CorrespondenceId c) const {
  const uint64_t* row = Row(c);
  size_t count = 0;
  for (size_t w = 0; w < words_per_row_; ++w) {
    count += static_cast<size_t>(__builtin_popcountll(row[w] & selection.word(w)));
  }
  return count;
}

void OneToOneConstraint::SeedAdditionBlockCounts(
    const DynamicBitset& selection, uint32_t* monotone_blocks,
    uint32_t* reversible_blocks) const {
  (void)reversible_blocks;  // One-to-one blocks are never addition-released.
  // Rows are symmetric, so monotone_blocks[x] gains |row(x) ∩ selection| by
  // bumping every selected row's members once.
  selection.ForEachSetBit([&](size_t c) {
    conflicts_[c].ForEachSetBit(
        [&](size_t other) { ++monotone_blocks[other]; });
  });
}

void OneToOneConstraint::AppendAdditionDeltaOps(
    CorrespondenceId changed, std::vector<AdditionDeltaOp>* out) const {
  // Selecting (clearing) `changed` blocks (releases) every conflict
  // partner, unconditionally — one monotone op per row member.
  conflicts_[changed].ForEachSetBit([&](size_t other) {
    out->push_back(AdditionDeltaOp{AdditionDeltaOp::Kind::kMonotone,
                                   static_cast<CorrespondenceId>(other),
                                   kInvalidCorrespondence});
  });
}

void OneToOneConstraint::AppendCouplingGroups(
    std::vector<std::vector<CorrespondenceId>>* out) const {
  for (CorrespondenceId c = 0; c < conflicts_.size(); ++c) {
    conflicts_[c].ForEachSetBit([&](size_t other) {
      if (other > c) {
        out->push_back({c, static_cast<CorrespondenceId>(other)});
      }
    });
  }
}

Status OneToOneConstraint::PropagateDetermined(
    const DynamicBitset& approved, const DynamicBitset& disapproved,
    std::vector<std::pair<CorrespondenceId, bool>>* out) const {
  Status status = Status::OK();
  approved.ForEachSetBit([&](size_t c) {
    if (!status.ok()) return;
    if (conflicts_[c].Intersects(approved)) {
      status = Status::FailedPrecondition(
          "one-to-one: two conflicting correspondences both determined in");
      return;
    }
    DynamicBitset forced_out = conflicts_[c];
    forced_out.SubtractInPlace(disapproved);
    forced_out.ForEachSetBit([&](size_t other) {
      out->emplace_back(static_cast<CorrespondenceId>(other), false);
    });
  });
  return status;
}

}  // namespace smn
