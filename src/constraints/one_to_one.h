#ifndef SMN_CONSTRAINTS_ONE_TO_ONE_H_
#define SMN_CONSTRAINTS_ONE_TO_ONE_H_

#include <string_view>
#include <vector>

#include "core/constraint.h"

namespace smn {

/// The one-to-one constraint of the paper: each attribute of one schema is
/// matched to at most one attribute of any other schema. Two candidate
/// correspondences conflict exactly when they share one endpoint and their
/// other endpoints belong to the same schema (e.g. a~b and a~b' with
/// b, b' ∈ s2).
///
/// Compilation always builds the conflict graph as a sorted CSR adjacency
/// (O(conflict pairs) memory). Up to `dense_row_limit` candidates it
/// additionally packs the adjacency into per-row bitset words, making every
/// kernel query a handful of word-parallel operations — the representation
/// the walk kernel's hot loop uses on per-component subproblems. Above the
/// limit (million-correspondence tenant networks, where the n²/64 packed
/// words would not fit in memory) the same queries walk the CSR rows; both
/// paths emit identical results in identical order, which
/// tests/constraints/one_to_one_test.cc pins differentially.
class OneToOneConstraint final : public Constraint {
 public:
  /// Largest candidate count compiled into the dense word-matrix form by
  /// default (8192 rows ≈ 8 MB of packed words — roomy for every
  /// per-component subproblem, far below tenant-network scale).
  static constexpr size_t kDefaultDenseRowLimit = 8192;

  /// `dense_row_limit` overrides the dense/sparse switchover; tests pass a
  /// tiny limit to force the CSR path on small networks.
  explicit OneToOneConstraint(size_t dense_row_limit = kDefaultDenseRowLimit)
      : dense_row_limit_(dense_row_limit) {}

  std::string_view name() const override { return "one-to-one"; }

  /// Kernel dispatch tag (devirtualized fast path).
  ConstraintKind kind() const override { return ConstraintKind::kOneToOne; }

  Status Compile(const Network& network) override;

  std::unique_ptr<Constraint> CloneUncompiled() const override;

  bool IsSatisfied(const DynamicBitset& selection) const override;

  void FindViolations(const DynamicBitset& selection,
                      std::vector<Violation>* out) const override;

  void FindViolationsInvolving(const DynamicBitset& selection,
                               CorrespondenceId c,
                               std::vector<Violation>* out) const override;

  bool AdditionViolates(const DynamicBitset& selection,
                        CorrespondenceId candidate) const override {
    if (dense_compiled_) {
      const uint64_t* row = Row(candidate);
      for (size_t w = 0; w < words_per_row_; ++w) {
        if (row[w] & selection.word(w)) return true;
      }
      return false;
    }
    for (uint32_t i = offsets_[candidate]; i < offsets_[candidate + 1]; ++i) {
      if (selection.Test(neighbors_[i])) return true;
    }
    return false;
  }

  /// Allocation-free kernel scan over all conflict rows.
  void AppendConflicts(const DynamicBitset& selection,
                       std::vector<KernelViolation>* out) const override;

  /// Allocation-free intersection of c's conflict row with the selection —
  /// O(degree of c) set bits, no row copy. Inline so the walk kernel's
  /// devirtualized dispatch can flatten it into the repair loop. The dense
  /// branch is word-parallel; the CSR branch probes each sorted neighbor, so
  /// both report partners in ascending id order.
  void AppendConflictsInvolving(const DynamicBitset& selection,
                                CorrespondenceId c,
                                std::vector<KernelViolation>* out) const override {
    if (dense_compiled_) {
      const uint64_t* row = Row(c);
      for (size_t w = 0; w < words_per_row_; ++w) {
        uint64_t word = row[w] & selection.word(w);
        while (word != 0) {
          const int bit = __builtin_ctzll(word);
          out->push_back(KernelViolation{
              c, static_cast<CorrespondenceId>(w * 64 + static_cast<size_t>(bit)),
              kInvalidCorrespondence});
          word &= word - 1;
        }
      }
      return;
    }
    for (uint32_t i = offsets_[c]; i < offsets_[c + 1]; ++i) {
      const CorrespondenceId other = neighbors_[i];
      if (selection.Test(other)) {
        out->push_back(KernelViolation{c, other, kInvalidCorrespondence});
      }
    }
  }

  size_t CountViolationsInvolving(const DynamicBitset& selection,
                                  CorrespondenceId c) const override;

  /// One-to-one supports the addition-tracking counters: all its blocks are
  /// monotone (only a removal ever releases a conflict with a selected
  /// correspondence).
  bool SupportsAdditionTracking() const override { return true; }

  /// Bumps monotone_blocks over the selected conflict rows.
  void SeedAdditionBlockCounts(const DynamicBitset& selection,
                               uint32_t* monotone_blocks,
                               uint32_t* reversible_blocks) const override;

  /// One monotone op per conflict-row member of `changed`.
  void AppendAdditionDeltaOps(CorrespondenceId changed,
                              std::vector<AdditionDeltaOp>* out) const override;

  /// Each conflicting pair {c, c'} is one coupling group.
  void AppendCouplingGroups(
      std::vector<std::vector<CorrespondenceId>>* out) const override;

  /// Determined-in correspondences force all their conflict partners out;
  /// two determined-in partners are a contradiction.
  Status PropagateDetermined(
      const DynamicBitset& approved, const DynamicBitset& disapproved,
      std::vector<std::pair<CorrespondenceId, bool>>* out) const override;

  /// Conflict adjacency row of correspondence `c` as a bitset. Dense form
  /// only (diagnostics and tests; every such caller works on small
  /// networks); CSR-only compiles must use ForEachConflictOf.
  const DynamicBitset& ConflictRow(CorrespondenceId c) const {
    return conflicts_[c];
  }

  /// Calls `fn(partner)` for each conflict partner of `c`, ascending.
  /// Available in both representations.
  template <typename Fn>
  void ForEachConflictOf(CorrespondenceId c, Fn&& fn) const {
    for (uint32_t i = offsets_[c]; i < offsets_[c + 1]; ++i) {
      fn(neighbors_[i]);
    }
  }

  /// Total number of conflicting candidate pairs in the network.
  size_t conflict_pair_count() const { return neighbors_.size() / 2; }

  /// True when Compile packed the dense word-matrix (candidate count within
  /// the dense row limit).
  bool dense_compiled() const { return dense_compiled_; }

 private:
  /// Pointer to correspondence c's row of the flat conflict matrix (dense
  /// form only).
  const uint64_t* Row(CorrespondenceId c) const {
    return row_words_.data() + c * words_per_row_;
  }

  size_t dense_row_limit_ = kDefaultDenseRowLimit;
  bool dense_compiled_ = false;
  // Sorted CSR conflict adjacency: the partners of c are
  // neighbors_[offsets_[c] .. offsets_[c+1]), ascending. Always built; the
  // only representation above the dense row limit.
  std::vector<uint32_t> offsets_;
  std::vector<CorrespondenceId> neighbors_;
  // Dense form (candidate count <= dense_row_limit_): adjacency bitsets plus
  // the same rows packed as one flat row-major word matrix (n rows of
  // words_per_row_ words). The kernel queries walk these rows directly: one
  // contiguous allocation instead of a heap vector per row, which is what
  // keeps the per-step intersections cache-resident.
  std::vector<DynamicBitset> conflicts_;
  std::vector<uint64_t> row_words_;
  size_t words_per_row_ = 0;
};

}  // namespace smn

#endif  // SMN_CONSTRAINTS_ONE_TO_ONE_H_
