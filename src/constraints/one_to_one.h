#ifndef SMN_CONSTRAINTS_ONE_TO_ONE_H_
#define SMN_CONSTRAINTS_ONE_TO_ONE_H_

#include <string_view>
#include <vector>

#include "core/constraint.h"

namespace smn {

/// The one-to-one constraint of the paper: each attribute of one schema is
/// matched to at most one attribute of any other schema. Two candidate
/// correspondences conflict exactly when they share one endpoint and their
/// other endpoints belong to the same schema (e.g. a~b and a~b' with
/// b, b' ∈ s2).
///
/// Compilation builds a pairwise conflict graph as adjacency bitsets over C,
/// making every query a handful of word-parallel bitset operations.
class OneToOneConstraint final : public Constraint {
 public:
  std::string_view name() const override { return "one-to-one"; }

  /// Kernel dispatch tag (devirtualized fast path).
  ConstraintKind kind() const override { return ConstraintKind::kOneToOne; }

  Status Compile(const Network& network) override;

  std::unique_ptr<Constraint> CloneUncompiled() const override;

  bool IsSatisfied(const DynamicBitset& selection) const override;

  void FindViolations(const DynamicBitset& selection,
                      std::vector<Violation>* out) const override;

  void FindViolationsInvolving(const DynamicBitset& selection,
                               CorrespondenceId c,
                               std::vector<Violation>* out) const override;

  bool AdditionViolates(const DynamicBitset& selection,
                        CorrespondenceId candidate) const override {
    const uint64_t* row = Row(candidate);
    for (size_t w = 0; w < words_per_row_; ++w) {
      if (row[w] & selection.word(w)) return true;
    }
    return false;
  }

  /// Allocation-free kernel scan over all conflict rows.
  void AppendConflicts(const DynamicBitset& selection,
                       std::vector<KernelViolation>* out) const override;

  /// Allocation-free word-parallel intersection of c's conflict row with the
  /// selection — O(degree of c) set bits, no row copy. Inline so the walk
  /// kernel's devirtualized dispatch can flatten it into the repair loop.
  void AppendConflictsInvolving(const DynamicBitset& selection,
                                CorrespondenceId c,
                                std::vector<KernelViolation>* out) const override {
    const uint64_t* row = Row(c);
    for (size_t w = 0; w < words_per_row_; ++w) {
      uint64_t word = row[w] & selection.word(w);
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        out->push_back(KernelViolation{
            c, static_cast<CorrespondenceId>(w * 64 + static_cast<size_t>(bit)),
            kInvalidCorrespondence});
        word &= word - 1;
      }
    }
  }

  size_t CountViolationsInvolving(const DynamicBitset& selection,
                                  CorrespondenceId c) const override;

  /// One-to-one supports the addition-tracking counters: all its blocks are
  /// monotone (only a removal ever releases a conflict with a selected
  /// correspondence).
  bool SupportsAdditionTracking() const override { return true; }

  /// Bumps monotone_blocks over the selected conflict rows.
  void SeedAdditionBlockCounts(const DynamicBitset& selection,
                               uint32_t* monotone_blocks,
                               uint32_t* reversible_blocks) const override;

  /// One monotone op per conflict-row member of `changed`.
  void AppendAdditionDeltaOps(CorrespondenceId changed,
                              std::vector<AdditionDeltaOp>* out) const override;

  /// Each conflicting pair {c, c'} is one coupling group.
  void AppendCouplingGroups(
      std::vector<std::vector<CorrespondenceId>>* out) const override;

  /// Determined-in correspondences force all their conflict partners out;
  /// two determined-in partners are a contradiction.
  Status PropagateDetermined(
      const DynamicBitset& approved, const DynamicBitset& disapproved,
      std::vector<std::pair<CorrespondenceId, bool>>* out) const override;

  /// Conflict adjacency row of correspondence `c` (exposed for the exact
  /// enumerator's fast path and for diagnostics).
  const DynamicBitset& ConflictRow(CorrespondenceId c) const {
    return conflicts_[c];
  }

  /// Total number of conflicting candidate pairs in the network.
  size_t conflict_pair_count() const { return conflict_pair_count_; }

 private:
  /// Pointer to correspondence c's row of the flat conflict matrix.
  const uint64_t* Row(CorrespondenceId c) const {
    return row_words_.data() + c * words_per_row_;
  }

  std::vector<DynamicBitset> conflicts_;
  // The same adjacency as `conflicts_`, packed as one flat row-major word
  // matrix (n rows of words_per_row_ words). The kernel queries walk these
  // rows directly: one contiguous allocation instead of a heap vector per
  // row, which is what keeps the per-step intersections cache-resident.
  std::vector<uint64_t> row_words_;
  size_t words_per_row_ = 0;
  size_t conflict_pair_count_ = 0;
};

}  // namespace smn

#endif  // SMN_CONSTRAINTS_ONE_TO_ONE_H_
