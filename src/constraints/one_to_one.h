#ifndef SMN_CONSTRAINTS_ONE_TO_ONE_H_
#define SMN_CONSTRAINTS_ONE_TO_ONE_H_

#include <string_view>
#include <vector>

#include "core/constraint.h"

namespace smn {

/// The one-to-one constraint of the paper: each attribute of one schema is
/// matched to at most one attribute of any other schema. Two candidate
/// correspondences conflict exactly when they share one endpoint and their
/// other endpoints belong to the same schema (e.g. a~b and a~b' with
/// b, b' ∈ s2).
///
/// Compilation builds a pairwise conflict graph as adjacency bitsets over C,
/// making every query a handful of word-parallel bitset operations.
class OneToOneConstraint : public Constraint {
 public:
  std::string_view name() const override { return "one-to-one"; }

  Status Compile(const Network& network) override;

  std::unique_ptr<Constraint> CloneUncompiled() const override;

  bool IsSatisfied(const DynamicBitset& selection) const override;

  void FindViolations(const DynamicBitset& selection,
                      std::vector<Violation>* out) const override;

  void FindViolationsInvolving(const DynamicBitset& selection,
                               CorrespondenceId c,
                               std::vector<Violation>* out) const override;

  bool AdditionViolates(const DynamicBitset& selection,
                        CorrespondenceId candidate) const override;

  size_t CountViolationsInvolving(const DynamicBitset& selection,
                                  CorrespondenceId c) const override;

  /// Each conflicting pair {c, c'} is one coupling group.
  void AppendCouplingGroups(
      std::vector<std::vector<CorrespondenceId>>* out) const override;

  /// Determined-in correspondences force all their conflict partners out;
  /// two determined-in partners are a contradiction.
  Status PropagateDetermined(
      const DynamicBitset& approved, const DynamicBitset& disapproved,
      std::vector<std::pair<CorrespondenceId, bool>>* out) const override;

  /// Conflict adjacency row of correspondence `c` (exposed for the exact
  /// enumerator's fast path and for diagnostics).
  const DynamicBitset& ConflictRow(CorrespondenceId c) const {
    return conflicts_[c];
  }

  /// Total number of conflicting candidate pairs in the network.
  size_t conflict_pair_count() const { return conflict_pair_count_; }

 private:
  std::vector<DynamicBitset> conflicts_;
  size_t conflict_pair_count_ = 0;
};

}  // namespace smn

#endif  // SMN_CONSTRAINTS_ONE_TO_ONE_H_
