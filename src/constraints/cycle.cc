#include "constraints/cycle.h"

#include <memory>

namespace smn {

std::unique_ptr<Constraint> CycleConstraint::CloneUncompiled() const {
  return std::make_unique<CycleConstraint>();
}

Status CycleConstraint::Compile(const Network& network) {
  const size_t n = network.correspondence_count();
  chains_.clear();
  chains_at_.assign(n, {});
  closing_of_.assign(n, {});

  // Chains pivot on a shared attribute: for attribute b, correspondences
  // a~b and b~c chain when a and c live in different schemas and the three
  // schemas form a triangle of the interaction graph.
  for (AttributeId pivot = 0; pivot < network.attribute_count(); ++pivot) {
    const auto& incident = network.CorrespondencesAt(pivot);
    for (size_t i = 0; i < incident.size(); ++i) {
      const Correspondence& ci = network.correspondence(incident[i]);
      const AttributeId end_i = ci.OtherEnd(pivot);
      const SchemaId schema_i = network.attribute(end_i).schema;
      for (size_t j = i + 1; j < incident.size(); ++j) {
        const Correspondence& cj = network.correspondence(incident[j]);
        const AttributeId end_j = cj.OtherEnd(pivot);
        const SchemaId schema_j = network.attribute(end_j).schema;
        if (schema_i == schema_j) continue;  // One-to-one territory.
        if (!network.graph().HasEdge(schema_i, schema_j)) continue;
        const auto closing = network.FindCorrespondence(end_i, end_j);
        const uint32_t chain_index = static_cast<uint32_t>(chains_.size());
        chains_.push_back(Chain{ci.id, cj.id,
                                closing.value_or(kInvalidCorrespondence)});
        chains_at_[ci.id].push_back(chain_index);
        chains_at_[cj.id].push_back(chain_index);
        if (closing.has_value()) closing_of_[*closing].push_back(chain_index);
      }
    }
  }
  return Status::OK();
}

bool CycleConstraint::IsSatisfied(const DynamicBitset& selection) const {
  for (const Chain& chain : chains_) {
    if (ChainViolated(chain, selection)) return false;
  }
  return true;
}

void CycleConstraint::FindViolations(const DynamicBitset& selection,
                                     std::vector<Violation>* out) const {
  for (const Chain& chain : chains_) {
    if (ChainViolated(chain, selection)) out->push_back(MakeViolation(chain));
  }
}

void CycleConstraint::FindViolationsInvolving(const DynamicBitset& selection,
                                              CorrespondenceId c,
                                              std::vector<Violation>* out) const {
  for (uint32_t index : chains_at_[c]) {
    const Chain& chain = chains_[index];
    if (ChainViolated(chain, selection)) out->push_back(MakeViolation(chain));
  }
}

void CycleConstraint::FindViolationsCreatedByRemoval(
    const DynamicBitset& selection, CorrespondenceId removed,
    std::vector<Violation>* out) const {
  // Removing a closing correspondence re-opens every triangle it closed.
  for (uint32_t index : closing_of_[removed]) {
    const Chain& chain = chains_[index];
    if (selection.Test(chain.first) && selection.Test(chain.second)) {
      out->push_back(MakeViolation(chain));
    }
  }
}

bool CycleConstraint::AdditionViolates(const DynamicBitset& selection,
                                       CorrespondenceId candidate) const {
  for (uint32_t index : chains_at_[candidate]) {
    const Chain& chain = chains_[index];
    const CorrespondenceId partner =
        chain.first == candidate ? chain.second : chain.first;
    if (!selection.Test(partner)) continue;
    if (chain.closing == kInvalidCorrespondence ||
        !selection.Test(chain.closing)) {
      return true;
    }
  }
  return false;
}

size_t CycleConstraint::CountViolationsInvolving(const DynamicBitset& selection,
                                                 CorrespondenceId c) const {
  size_t count = 0;
  for (uint32_t index : chains_at_[c]) {
    if (ChainViolated(chains_[index], selection)) ++count;
  }
  return count;
}

void CycleConstraint::AppendCouplingGroups(
    std::vector<std::vector<CorrespondenceId>>* out) const {
  for (const Chain& chain : chains_) {
    if (chain.closing == kInvalidCorrespondence) {
      out->push_back({chain.first, chain.second});
    } else {
      out->push_back({chain.first, chain.second, chain.closing});
    }
  }
}

Status CycleConstraint::PropagateDetermined(
    const DynamicBitset& approved, const DynamicBitset& disapproved,
    std::vector<std::pair<CorrespondenceId, bool>>* out) const {
  for (const Chain& chain : chains_) {
    const bool first_in = approved.Test(chain.first);
    const bool second_in = approved.Test(chain.second);
    if (!first_in && !second_in) continue;
    const bool closing_impossible =
        chain.closing == kInvalidCorrespondence ||
        disapproved.Test(chain.closing);
    if (first_in && second_in) {
      if (closing_impossible) {
        return Status::FailedPrecondition(
            "cycle: both chain members determined in but the closing "
            "correspondence cannot be selected");
      }
      if (!approved.Test(chain.closing)) out->emplace_back(chain.closing, true);
      continue;
    }
    // Exactly one member determined in: the chain would fire if the other
    // member joined, so an impossible closing forces that member out.
    if (closing_impossible) {
      const CorrespondenceId other = first_in ? chain.second : chain.first;
      if (!disapproved.Test(other)) out->emplace_back(other, false);
    }
  }
  return Status::OK();
}

}  // namespace smn
