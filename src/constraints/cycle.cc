#include "constraints/cycle.h"

#include <memory>

namespace smn {

std::unique_ptr<Constraint> CycleConstraint::CloneUncompiled() const {
  return std::make_unique<CycleConstraint>();
}

Status CycleConstraint::Compile(const Network& network) {
  const size_t n = network.correspondence_count();
  chains_.clear();

  // Chains pivot on a shared attribute: for attribute b, correspondences
  // a~b and b~c chain when a and c live in different schemas and the three
  // schemas form a triangle of the interaction graph.
  for (AttributeId pivot = 0; pivot < network.attribute_count(); ++pivot) {
    const auto& incident = network.CorrespondencesAt(pivot);
    for (size_t i = 0; i < incident.size(); ++i) {
      const Correspondence& ci = network.correspondence(incident[i]);
      const AttributeId end_i = ci.OtherEnd(pivot);
      const SchemaId schema_i = network.attribute(end_i).schema;
      for (size_t j = i + 1; j < incident.size(); ++j) {
        const Correspondence& cj = network.correspondence(incident[j]);
        const AttributeId end_j = cj.OtherEnd(pivot);
        const SchemaId schema_j = network.attribute(end_j).schema;
        if (schema_i == schema_j) continue;  // One-to-one territory.
        if (!network.graph().HasEdge(schema_i, schema_j)) continue;
        const auto closing = network.FindCorrespondence(end_i, end_j);
        chains_.push_back(Chain{ci.id, cj.id,
                                closing.value_or(kInvalidCorrespondence)});
      }
    }
  }

  // Second pass: pack the per-correspondence adjacency into CSR tables via
  // counting sort. Filling in chain order keeps each row sorted by chain
  // index, which is exactly the order the old per-correspondence vectors
  // accumulated — violation report order is unchanged.
  member_offsets_.assign(n + 1, 0);
  closing_offsets_.assign(n + 1, 0);
  for (const Chain& chain : chains_) {
    ++member_offsets_[chain.first + 1];
    ++member_offsets_[chain.second + 1];
    if (chain.closing != kInvalidCorrespondence) {
      ++closing_offsets_[chain.closing + 1];
    }
  }
  for (size_t c = 0; c < n; ++c) {
    member_offsets_[c + 1] += member_offsets_[c];
    closing_offsets_[c + 1] += closing_offsets_[c];
  }
  member_chains_.assign(member_offsets_[n], 0);
  closing_chains_.assign(closing_offsets_[n], 0);
  std::vector<uint32_t> member_fill(member_offsets_.begin(),
                                    member_offsets_.end() - 1);
  std::vector<uint32_t> closing_fill(closing_offsets_.begin(),
                                     closing_offsets_.end() - 1);
  for (uint32_t index = 0; index < chains_.size(); ++index) {
    const Chain& chain = chains_[index];
    member_chains_[member_fill[chain.first]++] = index;
    member_chains_[member_fill[chain.second]++] = index;
    if (chain.closing != kInvalidCorrespondence) {
      closing_chains_[closing_fill[chain.closing]++] = index;
    }
  }
  return Status::OK();
}

bool CycleConstraint::IsSatisfied(const DynamicBitset& selection) const {
  for (const Chain& chain : chains_) {
    if (ChainViolated(chain, selection)) return false;
  }
  return true;
}

void CycleConstraint::FindViolations(const DynamicBitset& selection,
                                     std::vector<Violation>* out) const {
  for (const Chain& chain : chains_) {
    if (ChainViolated(chain, selection)) out->push_back(MakeViolation(chain));
  }
}

void CycleConstraint::FindViolationsInvolving(const DynamicBitset& selection,
                                              CorrespondenceId c,
                                              std::vector<Violation>* out) const {
  for (uint32_t i = member_offsets_[c]; i < member_offsets_[c + 1]; ++i) {
    const Chain& chain = chains_[member_chains_[i]];
    if (ChainViolated(chain, selection)) out->push_back(MakeViolation(chain));
  }
}

void CycleConstraint::FindViolationsCreatedByRemoval(
    const DynamicBitset& selection, CorrespondenceId removed,
    std::vector<Violation>* out) const {
  // Removing a closing correspondence re-opens every triangle it closed.
  for (uint32_t i = closing_offsets_[removed]; i < closing_offsets_[removed + 1];
       ++i) {
    const Chain& chain = chains_[closing_chains_[i]];
    if (selection.Test(chain.first) && selection.Test(chain.second)) {
      out->push_back(MakeViolation(chain));
    }
  }
}

void CycleConstraint::AppendConflicts(const DynamicBitset& selection,
                                      std::vector<KernelViolation>* out) const {
  for (const Chain& chain : chains_) {
    if (ChainViolated(chain, selection)) {
      out->push_back(MakeKernelViolation(chain));
    }
  }
}

void CycleConstraint::SeedAdditionBlockCounts(
    const DynamicBitset& selection, uint32_t* monotone_blocks,
    uint32_t* reversible_blocks) const {
  // One flat pass over the compiled chains. A chain (m1, m2, z) blocks the
  // addition of one member exactly while the other member is selected and z
  // is not: permanently (monotone) when no closing candidate exists — only
  // removing the selected member releases it — and reversibly when z merely
  // is not selected yet. The two member roles are scored independently so
  // the counts stay exact even for inconsistent selections (both members
  // selected with an open closing), which the incremental delta path can
  // traverse transiently.
  for (const Chain& chain : chains_) {
    const bool first_in = selection.Test(chain.first);
    const bool second_in = selection.Test(chain.second);
    if (!first_in && !second_in) continue;
    if (chain.closing == kInvalidCorrespondence) {
      if (first_in) ++monotone_blocks[chain.second];
      if (second_in) ++monotone_blocks[chain.first];
    } else if (!selection.Test(chain.closing)) {
      if (first_in) ++reversible_blocks[chain.second];
      if (second_in) ++reversible_blocks[chain.first];
    }
  }
}

void CycleConstraint::AppendAdditionDeltaOps(
    CorrespondenceId changed, std::vector<AdditionDeltaOp>* out) const {
  // Chains where `changed` is a member: its partner gains/loses one block —
  // monotone for hard conflicts, reversible-while-the-closing-is-open
  // otherwise. The partner's own membership is irrelevant: block counts are
  // maintained for selected correspondences too, which is what keeps the
  // table exact across arbitrary flip sequences.
  for (uint32_t i = member_offsets_[changed]; i < member_offsets_[changed + 1];
       ++i) {
    const Chain& chain = chains_[member_chains_[i]];
    const CorrespondenceId partner =
        chain.first == changed ? chain.second : chain.first;
    if (chain.closing == kInvalidCorrespondence) {
      out->push_back(AdditionDeltaOp{AdditionDeltaOp::Kind::kMonotone,
                                     partner, kInvalidCorrespondence});
    } else {
      out->push_back(AdditionDeltaOp{AdditionDeltaOp::Kind::kReversibleIfOpen,
                                     partner, chain.closing});
    }
  }
  // Chains where `changed` is the closing correspondence: while a member is
  // selected, the opposite member is reversibly blocked iff the closing is
  // absent — adding the closing releases those blocks, removing it
  // re-imposes them.
  for (uint32_t i = closing_offsets_[changed];
       i < closing_offsets_[changed + 1]; ++i) {
    const Chain& chain = chains_[closing_chains_[i]];
    out->push_back(AdditionDeltaOp{AdditionDeltaOp::Kind::kReleaseIfSelected,
                                   chain.second, chain.first});
    out->push_back(AdditionDeltaOp{AdditionDeltaOp::Kind::kReleaseIfSelected,
                                   chain.first, chain.second});
  }
}

size_t CycleConstraint::CountViolationsInvolving(const DynamicBitset& selection,
                                                 CorrespondenceId c) const {
  size_t count = 0;
  for (uint32_t i = member_offsets_[c]; i < member_offsets_[c + 1]; ++i) {
    if (ChainViolated(chains_[member_chains_[i]], selection)) ++count;
  }
  return count;
}

void CycleConstraint::AppendCouplingGroups(
    std::vector<std::vector<CorrespondenceId>>* out) const {
  for (const Chain& chain : chains_) {
    if (chain.closing == kInvalidCorrespondence) {
      out->push_back({chain.first, chain.second});
    } else {
      out->push_back({chain.first, chain.second, chain.closing});
    }
  }
}

Status CycleConstraint::PropagateDetermined(
    const DynamicBitset& approved, const DynamicBitset& disapproved,
    std::vector<std::pair<CorrespondenceId, bool>>* out) const {
  for (const Chain& chain : chains_) {
    const bool first_in = approved.Test(chain.first);
    const bool second_in = approved.Test(chain.second);
    if (!first_in && !second_in) continue;
    const bool closing_impossible =
        chain.closing == kInvalidCorrespondence ||
        disapproved.Test(chain.closing);
    if (first_in && second_in) {
      if (closing_impossible) {
        return Status::FailedPrecondition(
            "cycle: both chain members determined in but the closing "
            "correspondence cannot be selected");
      }
      if (!approved.Test(chain.closing)) out->emplace_back(chain.closing, true);
      continue;
    }
    // Exactly one member determined in: the chain would fire if the other
    // member joined, so an impossible closing forces that member out.
    if (closing_impossible) {
      const CorrespondenceId other = first_in ? chain.second : chain.first;
      if (!disapproved.Test(other)) out->emplace_back(other, false);
    }
  }
  return Status::OK();
}

}  // namespace smn
