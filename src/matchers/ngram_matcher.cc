#include "matchers/ngram_matcher.h"

#include <string>
#include <vector>

#include "matchers/string_metrics.h"
#include "util/string_util.h"

namespace smn {

NgramMatcher::NgramMatcher(size_t n) : n_(n == 0 ? 1 : n) {}

SimilarityMatrix NgramMatcher::Score(const SchemaView& s1,
                                     const SchemaView& s2) const {
  std::vector<std::string> left(s1.attributes.size());
  std::vector<std::string> right(s2.attributes.size());
  for (size_t i = 0; i < left.size(); ++i) {
    left[i] = ToLowerAscii(s1.attributes[i].name);
  }
  for (size_t j = 0; j < right.size(); ++j) {
    right[j] = ToLowerAscii(s2.attributes[j].name);
  }
  SimilarityMatrix matrix(left.size(), right.size());
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      matrix.set(i, j, NgramDiceSimilarity(left[i], right[j], n_));
    }
  }
  return matrix;
}

}  // namespace smn
