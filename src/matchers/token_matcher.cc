#include "matchers/token_matcher.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "matchers/string_metrics.h"

namespace smn {
namespace {

double JaccardScore(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const std::unordered_set<std::string> set_a(a.begin(), a.end());
  const std::unordered_set<std::string> set_b(b.begin(), b.end());
  size_t shared = 0;
  // Order-independent reduction (a sum of membership counts), so the
  // unordered iteration order cannot reach the output.
  // smn-lint: allow(unordered-iter)
  for (const std::string& token : set_a) shared += set_b.count(token);
  const size_t united = set_a.size() + set_b.size() - shared;
  return united == 0 ? 1.0
                     : static_cast<double>(shared) / static_cast<double>(united);
}

double MongeElkanScore(const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const auto& smaller = a.size() <= b.size() ? a : b;
  const auto& larger = a.size() <= b.size() ? b : a;
  double total = 0.0;
  for (const std::string& token : smaller) {
    double best = 0.0;
    for (const std::string& other : larger) {
      best = std::max(best, JaroWinklerSimilarity(token, other));
    }
    total += best;
  }
  return total / static_cast<double>(smaller.size());
}

}  // namespace

TokenMatcher::TokenMatcher(Mode mode) : mode_(mode) {}

std::string_view TokenMatcher::name() const {
  return mode_ == Mode::kJaccard ? "token-jaccard" : "token-monge-elkan";
}

SimilarityMatrix TokenMatcher::Score(const SchemaView& s1,
                                     const SchemaView& s2) const {
  std::vector<std::vector<std::string>> left(s1.attributes.size());
  std::vector<std::vector<std::string>> right(s2.attributes.size());
  for (size_t i = 0; i < left.size(); ++i) {
    left[i] = tokenizer_.Tokenize(s1.attributes[i].name);
  }
  for (size_t j = 0; j < right.size(); ++j) {
    right[j] = tokenizer_.Tokenize(s2.attributes[j].name);
  }
  SimilarityMatrix matrix(left.size(), right.size());
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      const double score = mode_ == Mode::kJaccard
                               ? JaccardScore(left[i], right[j])
                               : MongeElkanScore(left[i], right[j]);
      matrix.set(i, j, score);
    }
  }
  return matrix;
}

}  // namespace smn
