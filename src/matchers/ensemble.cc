#include "matchers/ensemble.h"

#include <algorithm>
#include <cassert>

namespace smn {

MatcherEnsemble::MatcherEnsemble(std::string name, Aggregation aggregation)
    : name_(std::move(name)), aggregation_(aggregation) {}

void MatcherEnsemble::AddMatcher(std::unique_ptr<Matcher> matcher,
                                 double weight) {
  members_.push_back(Member{std::move(matcher), weight});
}

SimilarityMatrix MatcherEnsemble::Score(const SchemaView& s1,
                                        const SchemaView& s2) const {
  assert(!members_.empty());
  const size_t rows = s1.attributes.size();
  const size_t cols = s2.attributes.size();

  std::vector<SimilarityMatrix> matrices;
  matrices.reserve(members_.size());
  for (const Member& member : members_) {
    matrices.push_back(member.matcher->Score(s1, s2));
  }

  SimilarityMatrix result(rows, cols);
  switch (aggregation_) {
    case Aggregation::kWeightedAverage: {
      double total_weight = 0.0;
      for (size_t m = 0; m < members_.size(); ++m) {
        result.Accumulate(matrices[m], members_[m].weight);
        total_weight += members_[m].weight;
      }
      result.Scale(total_weight);
      break;
    }
    case Aggregation::kMax: {
      for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c) {
          double best = 0.0;
          for (const SimilarityMatrix& matrix : matrices) {
            best = std::max(best, matrix.at(r, c));
          }
          result.set(r, c, best);
        }
      }
      break;
    }
    case Aggregation::kMin: {
      for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c) {
          double worst = 1.0;
          for (const SimilarityMatrix& matrix : matrices) {
            worst = std::min(worst, matrix.at(r, c));
          }
          result.set(r, c, worst);
        }
      }
      break;
    }
    case Aggregation::kHarmonyWeighted: {
      // Weight each member by how decisive it is on this schema pair; the
      // epsilon keeps indecisive members from vanishing entirely.
      constexpr double kEpsilon = 0.05;
      double total_weight = 0.0;
      for (size_t m = 0; m < members_.size(); ++m) {
        const double harmony =
            matrices[m].Harmony() * members_[m].weight + kEpsilon;
        result.Accumulate(matrices[m], harmony);
        total_weight += harmony;
      }
      result.Scale(total_weight);
      break;
    }
  }
  return result;
}

}  // namespace smn
