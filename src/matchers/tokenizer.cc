#include "matchers/tokenizer.h"

#include "util/string_util.h"

namespace smn {
namespace {

std::unordered_map<std::string, std::string> BuiltinAbbreviations() {
  return {
      {"no", "number"},    {"num", "number"},    {"nr", "number"},
      {"qty", "quantity"}, {"amt", "amount"},    {"addr", "address"},
      {"tel", "telephone"},{"ph", "phone"},      {"fax", "facsimile"},
      {"dob", "birthdate"},{"ssn", "social"},    {"desc", "description"},
      {"descr", "description"},                  {"cat", "category"},
      {"id", "identifier"},{"ident", "identifier"},
      {"cd", "code"},      {"org", "organization"},
      {"dept", "department"},                    {"acct", "account"},
      {"prod", "product"}, {"cust", "customer"}, {"supp", "supplier"},
      {"ord", "order"},    {"po", "purchase"},   {"ref", "reference"},
      {"dt", "date"},      {"tm", "time"},       {"yr", "year"},
      {"mo", "month"},     {"fname", "firstname"},
      {"lname", "lastname"},                     {"mname", "middlename"},
      {"uni", "university"},                     {"app", "application"},
      {"pct", "percent"},  {"ctry", "country"},  {"st", "state"},
      {"zip", "postalcode"},                     {"pcode", "postalcode"},
      {"curr", "currency"},{"lang", "language"}, {"msg", "message"},
      {"txt", "text"},     {"fld", "field"},     {"val", "value"},
  };
}

}  // namespace

Tokenizer::Tokenizer() : abbreviations_(BuiltinAbbreviations()) {}

Tokenizer::Tokenizer(std::unordered_map<std::string, std::string> abbreviations)
    : abbreviations_(std::move(abbreviations)) {}

std::vector<std::string> Tokenizer::Tokenize(std::string_view name) const {
  std::vector<std::string> raw = SplitIdentifier(name);
  std::vector<std::string> tokens;
  tokens.reserve(raw.size());
  for (std::string& token : raw) {
    tokens.push_back(Expand(token));
  }
  return tokens;
}

const std::string& Tokenizer::Expand(const std::string& token) const {
  auto it = abbreviations_.find(token);
  return it == abbreviations_.end() ? token : it->second;
}

}  // namespace smn
