#include "matchers/string_metrics.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

namespace smn {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  // Single-row dynamic program; rows iterate over `a`.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t previous = row[j];
      const size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
      diagonal = previous;
    }
  }
  return row[b.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t longer = std::max(a.size(), b.size());
  if (longer == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longer);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t match_window =
      std::max<size_t>(1, std::max(a.size(), b.size()) / 2) - 1;
  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const size_t lo = i > match_window ? i - match_window : 0;
    const size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t cap = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < cap && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

double NgramDiceSimilarity(std::string_view a, std::string_view b, size_t n) {
  if (n == 0) n = 1;
  if (a.empty() && b.empty()) return 1.0;
  const std::string pad(n - 1, '#');
  const std::string pa = pad + std::string(a) + pad;
  const std::string pb = pad + std::string(b) + pad;
  if (pa.size() < n || pb.size() < n) return a == b ? 1.0 : 0.0;

  std::unordered_map<std::string_view, int> grams;
  const size_t count_a = pa.size() - n + 1;
  const size_t count_b = pb.size() - n + 1;
  for (size_t i = 0; i < count_a; ++i) {
    ++grams[std::string_view(pa).substr(i, n)];
  }
  size_t shared = 0;
  for (size_t i = 0; i < count_b; ++i) {
    auto it = grams.find(std::string_view(pb).substr(i, n));
    if (it != grams.end() && it->second > 0) {
      --it->second;
      ++shared;
    }
  }
  return 2.0 * static_cast<double>(shared) /
         static_cast<double>(count_a + count_b);
}

double LongestCommonSubstringSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  std::vector<size_t> row(b.size() + 1, 0);
  size_t best = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = 0;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t previous = row[j];
      row[j] = (a[i - 1] == b[j - 1]) ? diagonal + 1 : 0;
      best = std::max(best, row[j]);
      diagonal = previous;
    }
  }
  return static_cast<double>(best) /
         static_cast<double>(std::max(a.size(), b.size()));
}

double PrefixSimilarity(std::string_view a, std::string_view b) {
  const size_t shorter = std::min(a.size(), b.size());
  if (shorter == 0) return a.size() == b.size() ? 1.0 : 0.0;
  size_t shared = 0;
  while (shared < shorter && a[shared] == b[shared]) ++shared;
  return static_cast<double>(shared) / static_cast<double>(shorter);
}

double SuffixSimilarity(std::string_view a, std::string_view b) {
  const size_t shorter = std::min(a.size(), b.size());
  if (shorter == 0) return a.size() == b.size() ? 1.0 : 0.0;
  size_t shared = 0;
  while (shared < shorter && a[a.size() - 1 - shared] == b[b.size() - 1 - shared]) {
    ++shared;
  }
  return static_cast<double>(shared) / static_cast<double>(shorter);
}

}  // namespace smn
