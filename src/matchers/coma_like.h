#ifndef SMN_MATCHERS_COMA_LIKE_H_
#define SMN_MATCHERS_COMA_LIKE_H_

#include "matchers/matching_system.h"

namespace smn {

/// Tuning knobs of the COMA++ stand-in.
struct ComaLikeOptions {
  /// Minimum combined score for a pair to become a candidate.
  double threshold = 0.70;
  /// Candidates kept per source attribute (COMA's top-k selection; k > 1
  /// deliberately admits one-to-one violations).
  size_t top_k = 2;
};

/// Builds the COMA++ stand-in documented in DESIGN.md: a composite ensemble
/// (whole-name Levenshtein, token Jaccard, trigram Dice, synonym table, type
/// compatibility) aggregated by fixed-weight average — COMA's "combined"
/// workflow — followed by threshold + top-k-per-row selection.
MatchingSystem MakeComaLikeSystem(const ComaLikeOptions& options = {});

}  // namespace smn

#endif  // SMN_MATCHERS_COMA_LIKE_H_
