#include "matchers/type_matcher.h"

namespace smn {

double TypeMatcher::TypeCompatibility(AttributeType a, AttributeType b) {
  if (a == AttributeType::kUnknown || b == AttributeType::kUnknown) return 0.5;
  if (a == b) return 1.0;
  const bool a_numeric =
      a == AttributeType::kInteger || a == AttributeType::kDecimal;
  const bool b_numeric =
      b == AttributeType::kInteger || b == AttributeType::kDecimal;
  if (a_numeric && b_numeric) return 0.7;
  return 0.0;
}

SimilarityMatrix TypeMatcher::Score(const SchemaView& s1,
                                    const SchemaView& s2) const {
  SimilarityMatrix matrix(s1.attributes.size(), s2.attributes.size());
  for (size_t i = 0; i < s1.attributes.size(); ++i) {
    for (size_t j = 0; j < s2.attributes.size(); ++j) {
      matrix.set(i, j, TypeCompatibility(s1.attributes[i].type,
                                         s2.attributes[j].type));
    }
  }
  return matrix;
}

}  // namespace smn
