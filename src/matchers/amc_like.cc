#include "matchers/amc_like.h"

#include <memory>

#include "matchers/ensemble.h"
#include "matchers/name_matcher.h"
#include "matchers/ngram_matcher.h"
#include "matchers/synonym_matcher.h"
#include "matchers/token_matcher.h"
#include "matchers/type_matcher.h"

namespace smn {

MatchingSystem MakeAmcLikeSystem(const AmcLikeOptions& options) {
  auto ensemble = std::make_unique<MatcherEnsemble>(
      "amc-like", Aggregation::kHarmonyWeighted);
  // Jaro-Winkler appears only inside Monge-Elkan: on whole names it scores
  // almost everything above 0.7 and would saturate the ensemble.
  ensemble->AddMatcher(
      std::make_unique<TokenMatcher>(TokenMatcher::Mode::kMongeElkan), 1.2);
  ensemble->AddMatcher(
      std::make_unique<NameMatcher>(NameMatcher::Metric::kLongestCommonSubstring),
      0.8);
  ensemble->AddMatcher(std::make_unique<NgramMatcher>(2), 0.8);
  ensemble->AddMatcher(std::make_unique<SynonymMatcher>(), 1.6);
  ensemble->AddMatcher(std::make_unique<TypeMatcher>(), 0.3);
  return MatchingSystem(
      "AMC", std::move(ensemble),
      std::make_unique<TopKPerRowSelector>(options.top_k, options.threshold));
}

}  // namespace smn
