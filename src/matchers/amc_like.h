#ifndef SMN_MATCHERS_AMC_LIKE_H_
#define SMN_MATCHERS_AMC_LIKE_H_

#include "matchers/matching_system.h"

namespace smn {

/// Tuning knobs of the AMC stand-in.
struct AmcLikeOptions {
  /// Minimum combined score for a pair to become a candidate.
  double threshold = 0.70;
  /// Candidates kept per source attribute.
  size_t top_k = 2;
};

/// Builds the AMC stand-in documented in DESIGN.md: a matching-process
/// pipeline whose members (Jaro-Winkler names, Monge-Elkan tokens, longest
/// common substring, synonyms, types) are combined with harmony-based
/// adaptive weighting — AMC's process-model calibration — and a slightly
/// laxer selection. Deliberately different members/aggregation than the
/// COMA++ stand-in so the two systems produce distinct candidate sets and
/// violation counts, as Table III contrasts.
MatchingSystem MakeAmcLikeSystem(const AmcLikeOptions& options = {});

}  // namespace smn

#endif  // SMN_MATCHERS_AMC_LIKE_H_
