#include "matchers/coma_like.h"

#include <memory>

#include "matchers/ensemble.h"
#include "matchers/name_matcher.h"
#include "matchers/ngram_matcher.h"
#include "matchers/synonym_matcher.h"
#include "matchers/token_matcher.h"
#include "matchers/type_matcher.h"

namespace smn {

MatchingSystem MakeComaLikeSystem(const ComaLikeOptions& options) {
  auto ensemble = std::make_unique<MatcherEnsemble>(
      "coma-like", Aggregation::kWeightedAverage);
  ensemble->AddMatcher(
      std::make_unique<NameMatcher>(NameMatcher::Metric::kLevenshtein), 0.8);
  ensemble->AddMatcher(std::make_unique<TokenMatcher>(TokenMatcher::Mode::kJaccard),
                       1.0);
  ensemble->AddMatcher(
      std::make_unique<TokenMatcher>(TokenMatcher::Mode::kMongeElkan), 1.0);
  ensemble->AddMatcher(std::make_unique<NgramMatcher>(3), 0.8);
  ensemble->AddMatcher(std::make_unique<SynonymMatcher>(), 1.8);
  ensemble->AddMatcher(std::make_unique<TypeMatcher>(), 0.4);
  return MatchingSystem(
      "COMA", std::move(ensemble),
      std::make_unique<TopKPerRowSelector>(options.top_k, options.threshold));
}

}  // namespace smn
