#include "matchers/similarity_matrix.h"

#include <algorithm>
#include <cassert>

namespace smn {

double SimilarityMatrix::RowMax(size_t row) const {
  double best = 0.0;
  for (size_t col = 0; col < cols_; ++col) best = std::max(best, at(row, col));
  return best;
}

double SimilarityMatrix::ColMax(size_t col) const {
  double best = 0.0;
  for (size_t row = 0; row < rows_; ++row) best = std::max(best, at(row, col));
  return best;
}

double SimilarityMatrix::Harmony() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  std::vector<double> row_max(rows_, 0.0);
  std::vector<double> col_max(cols_, 0.0);
  std::vector<size_t> row_max_count(rows_, 0);
  std::vector<size_t> col_max_count(cols_, 0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      const double v = at(r, c);
      if (v > row_max[r]) {
        row_max[r] = v;
        row_max_count[r] = 1;
      } else if (v == row_max[r]) {
        ++row_max_count[r];
      }
      if (v > col_max[c]) {
        col_max[c] = v;
        col_max_count[c] = 1;
      } else if (v == col_max[c]) {
        ++col_max_count[c];
      }
    }
  }
  // A cell is harmonious only as the *unique* maximum of both its row and
  // its column: ties carry no decision signal (a constant matrix — e.g. a
  // type matcher on a single-type schema — must score 0, not 1).
  size_t harmonious = 0;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      const double v = at(r, c);
      if (v > 0.0 && v == row_max[r] && row_max_count[r] == 1 &&
          v == col_max[c] && col_max_count[c] == 1) {
        ++harmonious;
      }
    }
  }
  return static_cast<double>(harmonious) /
         static_cast<double>(std::min(rows_, cols_));
}

void SimilarityMatrix::Accumulate(const SimilarityMatrix& other, double weight) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells_[i] += other.cells_[i] * weight;
  }
}

void SimilarityMatrix::Scale(double divisor) {
  if (divisor == 0.0) return;
  for (double& cell : cells_) cell /= divisor;
}

}  // namespace smn
