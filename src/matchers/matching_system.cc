#include "matchers/matching_system.h"

namespace smn {

MatchingSystem::MatchingSystem(std::string name,
                               std::unique_ptr<Matcher> matcher,
                               std::unique_ptr<CandidateSelector> selector)
    : name_(std::move(name)),
      matcher_(std::move(matcher)),
      selector_(std::move(selector)) {}

std::vector<SchemaPairCandidates> MatchingSystem::Run(
    const std::vector<SchemaView>& schemas, const InteractionGraph& graph) const {
  std::vector<SchemaPairCandidates> result;
  result.reserve(graph.edge_count());
  for (const auto& [a, b] : graph.edges()) {
    SchemaPairCandidates pair;
    pair.first = a;
    pair.second = b;
    const SimilarityMatrix matrix = matcher_->Score(schemas[a], schemas[b]);
    pair.candidates = selector_->Select(matrix);
    result.push_back(std::move(pair));
  }
  return result;
}

StatusOr<Network> BuildNetworkFromCandidates(
    const std::vector<SchemaView>& schemas, const InteractionGraph& graph,
    const std::vector<SchemaPairCandidates>& pair_candidates) {
  NetworkBuilder builder;
  std::vector<std::vector<AttributeId>> attribute_ids(schemas.size());
  for (size_t s = 0; s < schemas.size(); ++s) {
    const SchemaId schema_id = builder.AddSchema(schemas[s].name);
    attribute_ids[s].reserve(schemas[s].attributes.size());
    for (const AttributeView& attribute : schemas[s].attributes) {
      SMN_ASSIGN_OR_RETURN(
          AttributeId id,
          builder.AddAttribute(schema_id, attribute.name, attribute.type));
      attribute_ids[s].push_back(id);
    }
  }
  for (const auto& [a, b] : graph.edges()) {
    SMN_RETURN_IF_ERROR(builder.AddEdge(a, b));
  }
  for (const SchemaPairCandidates& pair : pair_candidates) {
    for (const RawCandidate& candidate : pair.candidates) {
      SMN_ASSIGN_OR_RETURN(
          CorrespondenceId id,
          builder.AddCorrespondence(attribute_ids[pair.first][candidate.row],
                                    attribute_ids[pair.second][candidate.col],
                                    candidate.score));
      (void)id;
    }
  }
  return builder.Build();
}

}  // namespace smn
