#ifndef SMN_MATCHERS_NGRAM_MATCHER_H_
#define SMN_MATCHERS_NGRAM_MATCHER_H_

#include <string_view>

#include "matchers/matcher.h"

namespace smn {

/// Character n-gram matcher (Dice coefficient over padded lowercase names).
/// Catches partial-word overlaps edit distance misses ("screenDate" vs
/// "releaseDate" share the "date" grams).
class NgramMatcher : public Matcher {
 public:
  explicit NgramMatcher(size_t n = 3);

  std::string_view name() const override { return "ngram-dice"; }
  SimilarityMatrix Score(const SchemaView& s1,
                         const SchemaView& s2) const override;

 private:
  size_t n_;
};

}  // namespace smn

#endif  // SMN_MATCHERS_NGRAM_MATCHER_H_
