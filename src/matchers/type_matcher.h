#ifndef SMN_MATCHERS_TYPE_MATCHER_H_
#define SMN_MATCHERS_TYPE_MATCHER_H_

#include <string_view>

#include "matchers/matcher.h"

namespace smn {

/// Data-type compatibility matcher: a weak signal on its own but a useful
/// ensemble member — it demotes name-similar pairs with incompatible types
/// ("orderDate" date vs "orderState" string).
class TypeMatcher : public Matcher {
 public:
  std::string_view name() const override { return "type-compat"; }
  SimilarityMatrix Score(const SchemaView& s1,
                         const SchemaView& s2) const override;

  /// Compatibility score of two types: 1 for equal known types, 0.7 for
  /// numeric kin (integer/decimal), 0.5 when either side is unknown, 0
  /// otherwise.
  static double TypeCompatibility(AttributeType a, AttributeType b);
};

}  // namespace smn

#endif  // SMN_MATCHERS_TYPE_MATCHER_H_
