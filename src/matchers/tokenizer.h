#ifndef SMN_MATCHERS_TOKENIZER_H_
#define SMN_MATCHERS_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace smn {

/// Splits attribute identifiers into normalized word tokens and expands
/// well-known abbreviations ("qty" -> "quantity", "no" -> "number"), the
/// normalization step shared by the token and synonym matchers.
class Tokenizer {
 public:
  /// Creates a tokenizer with the built-in abbreviation table.
  Tokenizer();

  /// Creates a tokenizer with a custom abbreviation table (short form ->
  /// expansion, both lowercase).
  explicit Tokenizer(std::unordered_map<std::string, std::string> abbreviations);

  /// Tokenizes `name` at camelCase/underscore/digit boundaries, lowercases,
  /// and expands abbreviations. "prodQty" -> {"product", "quantity"}.
  std::vector<std::string> Tokenize(std::string_view name) const;

  /// Expands one lowercase token when it is a known abbreviation; returns the
  /// token unchanged otherwise.
  const std::string& Expand(const std::string& token) const;

 private:
  std::unordered_map<std::string, std::string> abbreviations_;
};

}  // namespace smn

#endif  // SMN_MATCHERS_TOKENIZER_H_
