#ifndef SMN_MATCHERS_NAME_MATCHER_H_
#define SMN_MATCHERS_NAME_MATCHER_H_

#include <string_view>

#include "matchers/matcher.h"

namespace smn {

/// Whole-name string matcher: lowercases both attribute names and applies a
/// configurable edit-based metric.
class NameMatcher : public Matcher {
 public:
  enum class Metric {
    kLevenshtein,
    kJaroWinkler,
    kLongestCommonSubstring,
  };

  explicit NameMatcher(Metric metric = Metric::kLevenshtein);

  std::string_view name() const override;
  SimilarityMatrix Score(const SchemaView& s1,
                         const SchemaView& s2) const override;

 private:
  Metric metric_;
};

}  // namespace smn

#endif  // SMN_MATCHERS_NAME_MATCHER_H_
