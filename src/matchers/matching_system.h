#ifndef SMN_MATCHERS_MATCHING_SYSTEM_H_
#define SMN_MATCHERS_MATCHING_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "core/interaction_graph.h"
#include "core/network.h"
#include "matchers/matcher.h"
#include "matchers/selection.h"
#include "util/statusor.h"

namespace smn {

/// All candidate correspondences a matching system proposed for one schema
/// pair, in matrix coordinates.
struct SchemaPairCandidates {
  SchemaId first = kInvalidSchema;
  SchemaId second = kInvalidSchema;
  std::vector<RawCandidate> candidates;
};

/// A complete matching system: a (possibly composite) matcher plus a
/// candidate selector, i.e. the black box the paper calls "a schema matcher"
/// (COMA++, AMC). Running it over an interaction graph yields the candidate
/// correspondence set C.
class MatchingSystem {
 public:
  MatchingSystem(std::string name, std::unique_ptr<Matcher> matcher,
                 std::unique_ptr<CandidateSelector> selector);

  const std::string& name() const { return name_; }
  const Matcher& matcher() const { return *matcher_; }

  /// Scores and selects candidates for every edge of `graph`.
  /// `schemas[i]` must be the view of the schema with id i.
  std::vector<SchemaPairCandidates> Run(const std::vector<SchemaView>& schemas,
                                        const InteractionGraph& graph) const;

 private:
  std::string name_;
  std::unique_ptr<Matcher> matcher_;
  std::unique_ptr<CandidateSelector> selector_;
};

/// Assembles a core Network from schema views, an interaction graph, and the
/// candidates a matching system produced. Attribute ids are assigned in
/// schema order, matching the layout of `schemas`.
StatusOr<Network> BuildNetworkFromCandidates(
    const std::vector<SchemaView>& schemas, const InteractionGraph& graph,
    const std::vector<SchemaPairCandidates>& pair_candidates);

}  // namespace smn

#endif  // SMN_MATCHERS_MATCHING_SYSTEM_H_
