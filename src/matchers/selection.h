#ifndef SMN_MATCHERS_SELECTION_H_
#define SMN_MATCHERS_SELECTION_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "matchers/similarity_matrix.h"

namespace smn {

/// One attribute pair proposed as a candidate correspondence, in matrix
/// coordinates (row = attribute index in the first schema, col = in the
/// second).
struct RawCandidate {
  size_t row = 0;
  size_t col = 0;
  double score = 0.0;
};

/// Turns a similarity matrix into a candidate correspondence set — the last
/// stage of a matching system. Different selectors produce candidate sets
/// with different violation profiles, which is exactly what Table III
/// contrasts between COMA and AMC.
class CandidateSelector {
 public:
  virtual ~CandidateSelector() = default;
  virtual std::string_view name() const = 0;
  virtual std::vector<RawCandidate> Select(const SimilarityMatrix& matrix) const = 0;
};

/// Keeps every pair scoring at least `threshold`.
class ThresholdSelector : public CandidateSelector {
 public:
  explicit ThresholdSelector(double threshold);
  std::string_view name() const override { return "threshold"; }
  std::vector<RawCandidate> Select(const SimilarityMatrix& matrix) const override;

 private:
  double threshold_;
};

/// Keeps, per row, the best `k` pairs scoring at least `threshold`
/// (COMA-style top-k selection; k > 1 deliberately admits one-to-one
/// violations for the reconciliation stage to resolve).
class TopKPerRowSelector : public CandidateSelector {
 public:
  TopKPerRowSelector(size_t k, double threshold);
  std::string_view name() const override { return "top-k-per-row"; }
  std::vector<RawCandidate> Select(const SimilarityMatrix& matrix) const override;

 private:
  size_t k_;
  double threshold_;
};

/// Greedy global matching: repeatedly takes the best remaining pair and
/// blocks its row and column (a stable-marriage-style extraction), keeping
/// pairs above `threshold`. Produces one-to-one-clean candidates; its
/// mistakes surface as cycle violations instead.
class StableMarriageSelector : public CandidateSelector {
 public:
  explicit StableMarriageSelector(double threshold);
  std::string_view name() const override { return "stable-marriage"; }
  std::vector<RawCandidate> Select(const SimilarityMatrix& matrix) const override;

 private:
  double threshold_;
};

}  // namespace smn

#endif  // SMN_MATCHERS_SELECTION_H_
