#include "matchers/name_matcher.h"

#include <string>
#include <vector>

#include "matchers/string_metrics.h"
#include "util/string_util.h"

namespace smn {

NameMatcher::NameMatcher(Metric metric) : metric_(metric) {}

std::string_view NameMatcher::name() const {
  switch (metric_) {
    case Metric::kLevenshtein:
      return "name-levenshtein";
    case Metric::kJaroWinkler:
      return "name-jaro-winkler";
    case Metric::kLongestCommonSubstring:
      return "name-lcs";
  }
  return "name";
}

SimilarityMatrix NameMatcher::Score(const SchemaView& s1,
                                    const SchemaView& s2) const {
  std::vector<std::string> left(s1.attributes.size());
  std::vector<std::string> right(s2.attributes.size());
  for (size_t i = 0; i < left.size(); ++i) {
    left[i] = ToLowerAscii(s1.attributes[i].name);
  }
  for (size_t j = 0; j < right.size(); ++j) {
    right[j] = ToLowerAscii(s2.attributes[j].name);
  }
  SimilarityMatrix matrix(left.size(), right.size());
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      double score = 0.0;
      switch (metric_) {
        case Metric::kLevenshtein:
          score = LevenshteinSimilarity(left[i], right[j]);
          break;
        case Metric::kJaroWinkler:
          score = JaroWinklerSimilarity(left[i], right[j]);
          break;
        case Metric::kLongestCommonSubstring:
          score = LongestCommonSubstringSimilarity(left[i], right[j]);
          break;
      }
      matrix.set(i, j, score);
    }
  }
  return matrix;
}

}  // namespace smn
