#ifndef SMN_MATCHERS_TOKEN_MATCHER_H_
#define SMN_MATCHERS_TOKEN_MATCHER_H_

#include <string_view>

#include "matchers/matcher.h"
#include "matchers/tokenizer.h"

namespace smn {

/// Token-level matcher: splits names into normalized word tokens (camelCase
/// and underscore boundaries, abbreviation expansion) and compares the token
/// sets. Robust against word reordering ("dateOfBirth" vs "birth_date").
class TokenMatcher : public Matcher {
 public:
  enum class Mode {
    /// Jaccard coefficient over the token sets.
    kJaccard,
    /// Monge-Elkan: average over the tokens of the smaller set of the best
    /// Jaro-Winkler counterpart in the other set. Tolerates near-miss tokens
    /// ("qty" vs "quanity").
    kMongeElkan,
  };

  explicit TokenMatcher(Mode mode = Mode::kJaccard);

  std::string_view name() const override;
  SimilarityMatrix Score(const SchemaView& s1,
                         const SchemaView& s2) const override;

 private:
  Mode mode_;
  Tokenizer tokenizer_;
};

}  // namespace smn

#endif  // SMN_MATCHERS_TOKEN_MATCHER_H_
