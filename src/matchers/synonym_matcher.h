#ifndef SMN_MATCHERS_SYNONYM_MATCHER_H_
#define SMN_MATCHERS_SYNONYM_MATCHER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "matchers/matcher.h"
#include "matchers/tokenizer.h"

namespace smn {

/// Thesaurus-backed matcher: maps tokens to canonical concept words via a
/// synonym table before comparing token sets, so "releaseDate" and
/// "publicationDate" score high although no characters align. Ships with a
/// general-purpose table (the role of COMA++'s built-in dictionaries); custom
/// tables can be supplied for domain deployments.
class SynonymMatcher : public Matcher {
 public:
  /// Uses the built-in general-purpose thesaurus.
  SynonymMatcher();

  /// Uses a custom thesaurus: groups of mutually synonymous lowercase words.
  explicit SynonymMatcher(const std::vector<std::vector<std::string>>& groups);

  std::string_view name() const override { return "synonym"; }
  SimilarityMatrix Score(const SchemaView& s1,
                         const SchemaView& s2) const override;

  /// Canonical representative of `token` (the token itself when unknown).
  const std::string& Canonicalize(const std::string& token) const;

 private:
  void AddGroups(const std::vector<std::vector<std::string>>& groups);

  Tokenizer tokenizer_;
  std::unordered_map<std::string, std::string> canonical_;
};

}  // namespace smn

#endif  // SMN_MATCHERS_SYNONYM_MATCHER_H_
