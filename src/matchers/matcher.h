#ifndef SMN_MATCHERS_MATCHER_H_
#define SMN_MATCHERS_MATCHER_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"
#include "matchers/similarity_matrix.h"

namespace smn {

/// Matcher-facing view of one attribute: its rendered name and coarse type.
/// Matchers run before a Network exists (their output is what populates the
/// candidate set C), so they operate on these lightweight views rather than
/// on core::Attribute.
struct AttributeView {
  std::string name;
  AttributeType type = AttributeType::kUnknown;
};

/// A schema as seen by matchers: an ordered list of attribute views.
struct SchemaView {
  std::string name;
  std::vector<AttributeView> attributes;
};

/// A first-order schema matcher: scores every attribute pair of two schemas.
/// Implementations must be deterministic and side-effect free so ensembles
/// can run them in any order.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Matcher name for reports ("levenshtein", "token-jaccard", ...).
  virtual std::string_view name() const = 0;

  /// Returns the |s1.attributes| x |s2.attributes| similarity matrix.
  virtual SimilarityMatrix Score(const SchemaView& s1,
                                 const SchemaView& s2) const = 0;
};

}  // namespace smn

#endif  // SMN_MATCHERS_MATCHER_H_
