#ifndef SMN_MATCHERS_SIMILARITY_MATRIX_H_
#define SMN_MATCHERS_SIMILARITY_MATRIX_H_

#include <cstddef>
#include <vector>

namespace smn {

/// Dense |s1| x |s2| matrix of attribute-pair similarity scores in [0, 1],
/// the exchange format between first-order matchers, ensembles, and
/// candidate selection.
class SimilarityMatrix {
 public:
  SimilarityMatrix() : rows_(0), cols_(0) {}
  SimilarityMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), cells_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double at(size_t row, size_t col) const { return cells_[row * cols_ + col]; }
  void set(size_t row, size_t col, double value) {
    cells_[row * cols_ + col] = value;
  }

  /// Largest value in `row`; 0 for an empty matrix.
  double RowMax(size_t row) const;

  /// Largest value in `col`; 0 for an empty matrix.
  double ColMax(size_t col) const;

  /// Harmony of the matrix: the fraction of attribute pairs that are
  /// simultaneously the maximum of their row and of their column (an
  /// adaptive-weighting signal in the AMC tradition — decisive matchers
  /// have high harmony). Range [0, 1].
  double Harmony() const;

  /// Adds `other * weight` cellwise. Dimensions must agree.
  void Accumulate(const SimilarityMatrix& other, double weight);

  /// Divides all cells by `divisor` (no-op when divisor is 0).
  void Scale(double divisor);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> cells_;
};

}  // namespace smn

#endif  // SMN_MATCHERS_SIMILARITY_MATRIX_H_
