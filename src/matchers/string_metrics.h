#ifndef SMN_MATCHERS_STRING_METRICS_H_
#define SMN_MATCHERS_STRING_METRICS_H_

#include <string_view>

namespace smn {

/// Similarity metrics over raw strings, all returning values in [0, 1] with
/// 1 meaning identical. These are the first-line evidence sources of the
/// matcher ensembles (the role COMA++'s string matchers play in the paper's
/// pipeline). All metrics are case-sensitive; callers lowercase first when
/// case should not matter.

/// Levenshtein (edit) distance normalized by the longer string:
/// 1 - dist / max(|a|, |b|). Two empty strings are identical (1.0).
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Raw Levenshtein distance (insertions, deletions, substitutions).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Jaro similarity.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity with the standard prefix scale 0.1 and a prefix
/// cap of 4 characters.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Dice coefficient over the multiset of character n-grams of the two
/// strings, with boundary padding ('#'). `n` must be >= 1; default trigram.
double NgramDiceSimilarity(std::string_view a, std::string_view b, size_t n = 3);

/// Length of the longest common substring divided by the longer string
/// length.
double LongestCommonSubstringSimilarity(std::string_view a, std::string_view b);

/// Length of the shared prefix divided by the shorter length ("prefix
/// heuristic": abbreviations keep prefixes).
double PrefixSimilarity(std::string_view a, std::string_view b);

/// Length of the shared suffix divided by the shorter length.
double SuffixSimilarity(std::string_view a, std::string_view b);

}  // namespace smn

#endif  // SMN_MATCHERS_STRING_METRICS_H_
