#ifndef SMN_MATCHERS_ENSEMBLE_H_
#define SMN_MATCHERS_ENSEMBLE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "matchers/matcher.h"

namespace smn {

/// How an ensemble combines its members' similarity matrices.
enum class Aggregation {
  /// Fixed-weight average (COMA++'s "combined" strategy).
  kWeightedAverage,
  /// Cellwise maximum — optimistic union of evidence.
  kMax,
  /// Cellwise minimum — all members must agree.
  kMin,
  /// Average weighted by each member's harmony on the pair at hand
  /// (adaptive weighting in the AMC tradition: decisive matchers dominate).
  kHarmonyWeighted,
};

/// A second-order matcher combining several first-order matchers. This is
/// the substrate that stands in for the paper's closed-source COMA++ and AMC
/// tools: both were ensemble systems differing in member sets and
/// aggregation.
class MatcherEnsemble : public Matcher {
 public:
  MatcherEnsemble(std::string name, Aggregation aggregation);

  /// Adds a member with a fixed weight (ignored by kMax/kMin, used as a
  /// prior multiplier by kHarmonyWeighted).
  void AddMatcher(std::unique_ptr<Matcher> matcher, double weight = 1.0);

  size_t member_count() const { return members_.size(); }

  std::string_view name() const override { return name_; }
  SimilarityMatrix Score(const SchemaView& s1,
                         const SchemaView& s2) const override;

 private:
  struct Member {
    std::unique_ptr<Matcher> matcher;
    double weight;
  };

  std::string name_;
  Aggregation aggregation_;
  std::vector<Member> members_;
};

}  // namespace smn

#endif  // SMN_MATCHERS_ENSEMBLE_H_
