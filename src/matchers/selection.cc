#include "matchers/selection.h"

#include <algorithm>

namespace smn {

ThresholdSelector::ThresholdSelector(double threshold) : threshold_(threshold) {}

std::vector<RawCandidate> ThresholdSelector::Select(
    const SimilarityMatrix& matrix) const {
  std::vector<RawCandidate> out;
  for (size_t r = 0; r < matrix.rows(); ++r) {
    for (size_t c = 0; c < matrix.cols(); ++c) {
      const double score = matrix.at(r, c);
      if (score >= threshold_) out.push_back(RawCandidate{r, c, score});
    }
  }
  return out;
}

TopKPerRowSelector::TopKPerRowSelector(size_t k, double threshold)
    : k_(k), threshold_(threshold) {}

std::vector<RawCandidate> TopKPerRowSelector::Select(
    const SimilarityMatrix& matrix) const {
  std::vector<RawCandidate> out;
  std::vector<RawCandidate> row_candidates;
  for (size_t r = 0; r < matrix.rows(); ++r) {
    row_candidates.clear();
    for (size_t c = 0; c < matrix.cols(); ++c) {
      const double score = matrix.at(r, c);
      if (score >= threshold_) row_candidates.push_back(RawCandidate{r, c, score});
    }
    const size_t keep = std::min(k_, row_candidates.size());
    std::partial_sort(row_candidates.begin(), row_candidates.begin() + keep,
                      row_candidates.end(),
                      [](const RawCandidate& a, const RawCandidate& b) {
                        return a.score > b.score;
                      });
    out.insert(out.end(), row_candidates.begin(), row_candidates.begin() + keep);
  }
  return out;
}

StableMarriageSelector::StableMarriageSelector(double threshold)
    : threshold_(threshold) {}

std::vector<RawCandidate> StableMarriageSelector::Select(
    const SimilarityMatrix& matrix) const {
  std::vector<RawCandidate> all;
  for (size_t r = 0; r < matrix.rows(); ++r) {
    for (size_t c = 0; c < matrix.cols(); ++c) {
      const double score = matrix.at(r, c);
      if (score >= threshold_) all.push_back(RawCandidate{r, c, score});
    }
  }
  std::sort(all.begin(), all.end(),
            [](const RawCandidate& a, const RawCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.row != b.row) return a.row < b.row;
              return a.col < b.col;
            });
  std::vector<bool> row_used(matrix.rows(), false);
  std::vector<bool> col_used(matrix.cols(), false);
  std::vector<RawCandidate> out;
  for (const RawCandidate& candidate : all) {
    if (row_used[candidate.row] || col_used[candidate.col]) continue;
    row_used[candidate.row] = true;
    col_used[candidate.col] = true;
    out.push_back(candidate);
  }
  return out;
}

}  // namespace smn
