#include "matchers/synonym_matcher.h"

#include <algorithm>
#include <unordered_set>

namespace smn {
namespace {

std::vector<std::vector<std::string>> BuiltinThesaurus() {
  return {
      {"date", "day", "time", "when"},
      {"release", "publication", "publish", "issue", "screen", "production"},
      {"name", "title", "label", "caption"},
      {"identifier", "key", "code", "number"},
      {"price", "cost", "charge", "fee", "rate"},
      {"quantity", "amount", "count", "units"},
      {"address", "location", "street"},
      {"city", "town", "municipality"},
      {"country", "nation", "land"},
      {"phone", "telephone", "mobile", "cell"},
      {"mail", "email"},
      {"company", "organization", "firm", "enterprise", "business"},
      {"customer", "client", "buyer", "purchaser"},
      {"supplier", "vendor", "seller", "provider"},
      {"order", "purchase", "requisition"},
      {"product", "item", "article", "good"},
      {"description", "details", "summary", "comment", "note", "remark",
       "remarks"},
      {"begin", "start", "open", "from"},
      {"end", "finish", "close", "until", "to"},
      {"birthdate", "birthday", "born"},
      {"gender", "sex"},
      {"salary", "wage", "pay", "income"},
      {"category", "type", "kind", "class", "group"},
      {"state", "province", "region", "standing"},
      {"postalcode", "zipcode", "postcode", "zip"},
      {"grade", "score", "mark", "gpa", "result", "average"},
      {"school", "college", "university", "institution"},
      {"major", "program", "degree", "field"},
      {"term", "semester", "session"},
      {"delivery", "shipping", "shipment", "dispatch"},
      {"payment", "billing", "invoice"},
      {"total", "sum", "aggregate"},
      {"status", "condition", "stage"},
      {"currency", "money", "monetary"},
      {"tax", "vat", "duty"},
      {"discount", "rebate", "reduction"},
      {"bank", "banking"},
      {"legal", "registered", "official"},
      {"primary", "main", "default"},
      {"fax", "facsimile"},
      {"created", "creation"},
      {"partner"},
      {"applicant", "student", "candidate"},
      {"parent", "guardian"},
      {"exam", "test"},
      {"essay", "statement"},
      {"recommendation", "reference"},
      {"scholarship", "aid"},
      {"residence", "housing", "dormitory", "home"},
      {"visa", "immigration"},
      {"transcript", "record"},
      {"mailing", "postal"},
      {"surname", "lastname", "family"},
      {"given", "first", "firstname"},
      {"line", "item"},
      {"warehouse", "depot"},
      {"carrier", "shipper", "freight"},
      {"contract", "agreement"},
      {"quote", "quotation"},
      {"receipt", "goods"},
      {"unit", "measure"},
      {"schedule", "plan"},
      {"return", "refund"},
      {"credit", "debit"},
      {"header", "document"},
      {"user", "member", "account"},
      {"password", "pwd", "word"},
      {"expiry", "expiration"},
      {"weight", "mass"},
      {"volume", "capacity"},
      {"percent", "percentage"},
      {"flag", "indicator"},
      {"message", "feedback"},
      {"requested", "required"},
      {"confirmed", "approved"},
      {"backorder", "pending"},
      {"emergency"},
      {"high", "secondary"},
      {"work", "office"},
      {"card"},
      {"support"},
  };
}

}  // namespace

SynonymMatcher::SynonymMatcher() { AddGroups(BuiltinThesaurus()); }

SynonymMatcher::SynonymMatcher(
    const std::vector<std::vector<std::string>>& groups) {
  AddGroups(groups);
}

void SynonymMatcher::AddGroups(
    const std::vector<std::vector<std::string>>& groups) {
  for (const auto& group : groups) {
    if (group.empty()) continue;
    for (const std::string& word : group) {
      canonical_.emplace(word, group.front());
    }
  }
}

const std::string& SynonymMatcher::Canonicalize(const std::string& token) const {
  auto it = canonical_.find(token);
  return it == canonical_.end() ? token : it->second;
}

SimilarityMatrix SynonymMatcher::Score(const SchemaView& s1,
                                       const SchemaView& s2) const {
  auto canonical_tokens = [&](const std::string& name) {
    std::unordered_set<std::string> result;
    for (const std::string& token : tokenizer_.Tokenize(name)) {
      result.insert(Canonicalize(token));
    }
    return result;
  };
  std::vector<std::unordered_set<std::string>> left(s1.attributes.size());
  std::vector<std::unordered_set<std::string>> right(s2.attributes.size());
  for (size_t i = 0; i < left.size(); ++i) {
    left[i] = canonical_tokens(s1.attributes[i].name);
  }
  for (size_t j = 0; j < right.size(); ++j) {
    right[j] = canonical_tokens(s2.attributes[j].name);
  }
  SimilarityMatrix matrix(left.size(), right.size());
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      if (left[i].empty() || right[j].empty()) continue;
      size_t shared = 0;
      // Order-independent reduction (a sum of membership counts), so the
      // unordered iteration order cannot reach the output.
      // smn-lint: allow(unordered-iter)
      for (const std::string& token : left[i]) shared += right[j].count(token);
      const size_t united = left[i].size() + right[j].size() - shared;
      const double jaccard =
          united == 0 ? 1.0
                      : static_cast<double>(shared) / static_cast<double>(united);
      // Overlap coefficient rewards containment ("partner name" vs
      // "business partner name"), which Jaccard under-scores.
      const double overlap = static_cast<double>(shared) /
                             static_cast<double>(std::min(left[i].size(),
                                                          right[j].size()));
      matrix.set(i, j, 0.5 * (jaccard + overlap));
    }
  }
  return matrix;
}

}  // namespace smn
