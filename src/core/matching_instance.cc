#include "core/matching_instance.h"

#include <vector>

namespace smn {

bool IsConsistentInstance(const ConstraintSet& constraints,
                          const Feedback& feedback,
                          const DynamicBitset& selection) {
  return feedback.IsRespectedBy(selection) && constraints.IsSatisfied(selection);
}

bool IsMaximalInstance(const ConstraintSet& constraints,
                       const Feedback& feedback,
                       const DynamicBitset& selection) {
  const size_t n = selection.size();
  for (CorrespondenceId c = 0; c < n; ++c) {
    if (selection.Test(c) || feedback.IsDisapproved(c)) continue;
    if (!constraints.AdditionViolates(selection, c)) return false;
  }
  return true;
}

bool IsMatchingInstance(const ConstraintSet& constraints,
                        const Feedback& feedback,
                        const DynamicBitset& selection) {
  return IsConsistentInstance(constraints, feedback, selection) &&
         IsMaximalInstance(constraints, feedback, selection);
}

void Maximalize(const ConstraintSet& constraints, const Feedback& feedback,
                Rng* rng, DynamicBitset* selection) {
  const size_t n = selection->size();
  std::vector<CorrespondenceId> candidates;
  candidates.reserve(n);
  for (CorrespondenceId c = 0; c < n; ++c) {
    if (!selection->Test(c) && !feedback.IsDisapproved(c)) {
      candidates.push_back(c);
    }
  }
  rng->Shuffle(&candidates);
  // Additions can unlock further additions (a new closing correspondence may
  // make a chained pair addable), so iterate to a fixpoint.
  bool added = true;
  while (added) {
    added = false;
    for (CorrespondenceId c : candidates) {
      if (selection->Test(c)) continue;
      if (!constraints.AdditionViolates(*selection, c)) {
        selection->Set(c);
        added = true;
      }
    }
  }
}

size_t RepairDistance(const DynamicBitset& instance, size_t candidate_count) {
  return candidate_count - instance.Count();
}

}  // namespace smn
