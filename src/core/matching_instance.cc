#include "core/matching_instance.h"

#include <algorithm>
#include <vector>

namespace smn {

bool IsConsistentInstance(const ConstraintSet& constraints,
                          const Feedback& feedback,
                          const DynamicBitset& selection) {
  return feedback.IsRespectedBy(selection) && constraints.IsSatisfied(selection);
}

bool IsMaximalInstance(const ConstraintSet& constraints,
                       const Feedback& feedback,
                       const DynamicBitset& selection) {
  const size_t n = selection.size();
  for (CorrespondenceId c = 0; c < n; ++c) {
    if (selection.Test(c) || feedback.IsDisapproved(c)) continue;
    if (!constraints.AdditionViolates(selection, c)) return false;
  }
  return true;
}

bool IsMatchingInstance(const ConstraintSet& constraints,
                        const Feedback& feedback,
                        const DynamicBitset& selection) {
  return IsConsistentInstance(constraints, feedback, selection) &&
         IsMaximalInstance(constraints, feedback, selection);
}

void Maximalize(const ConstraintSet& constraints, const Feedback& feedback,
                Rng* rng, DynamicBitset* selection, WalkScratch* scratch) {
  const size_t n = selection->size();
  scratch->Prepare(n);
  std::vector<CorrespondenceId>& candidates = scratch->eligible;
  candidates.clear();
  // Word-parallel candidate harvest: free = ~(selected | disapproved),
  // walked in the same ascending order the per-bit loop produced.
  const DynamicBitset& disapproved = feedback.disapproved();
  const size_t words = selection->word_count();
  for (size_t w = 0; w < words; ++w) {
    uint64_t free_word = ~(selection->word(w) | disapproved.word(w));
    if (w == words - 1 && (n & 63) != 0) {
      free_word &= (1ULL << (n & 63)) - 1;  // Mask the tail past bit n.
    }
    while (free_word != 0) {
      const int bit = __builtin_ctzll(free_word);
      candidates.push_back(
          static_cast<CorrespondenceId>(w * 64 + static_cast<size_t>(bit)));
      free_word &= free_word - 1;
    }
  }
  rng->Shuffle(&candidates);

  if (!constraints.SupportsAdditionTracking()) {
    // Generic fixpoint: per-candidate AdditionViolates probes. Additions can
    // unlock further additions (a new closing correspondence may make a
    // chained pair addable), so iterate until a pass adds nothing.
    bool added = true;
    while (added) {
      added = false;
      for (CorrespondenceId c : candidates) {
        if (selection->Test(c)) continue;
        if (!constraints.AdditionViolates(*selection, c)) {
          selection->Set(c);
          added = true;
        }
      }
    }
    return;
  }

  // Tracked fast path. The scratch carries per-candidate block counters for
  // `tracker_state`; syncing them to this call's input costs one
  // ApplyAdditionBlockDelta per differing bit — consecutive emitted chain
  // states differ by a handful of bits, so the per-sample full sweep over
  // every compiled constraint element disappears. A candidate is addable
  // exactly when both its counts are zero, so the greedy additions (and the
  // rng draws) are identical to the generic fixpoint: the result is
  // bit-identical.
  uint32_t* walk_monotone = scratch->walk_monotone_blocks.data();
  uint32_t* walk_reversible = scratch->walk_reversible_blocks.data();
  DynamicBitset& tracked = scratch->tracker_state;
  const bool tracker_valid =
      scratch->tracker_compile_id == constraints.compile_id();
  size_t diff_bits = 0;
  if (tracker_valid) {
    for (size_t w = 0; w < tracked.word_count(); ++w) {
      diff_bits += static_cast<size_t>(
          __builtin_popcountll(tracked.word(w) ^ selection->word(w)));
    }
  }
  if (!tracker_valid || diff_bits > n / 4) {
    // Fresh seed: foreign or far-away state — the scratch's counters
    // describe a different compiled set (thread-local scratch reused across
    // networks), or an unrelated caller such as the instantiation search
    // jumped between selections.
    std::fill(scratch->walk_monotone_blocks.begin(),
              scratch->walk_monotone_blocks.end(), 0);
    std::fill(scratch->walk_reversible_blocks.begin(),
              scratch->walk_reversible_blocks.end(), 0);
    constraints.SeedAdditionBlockCounts(*selection, walk_monotone,
                                        walk_reversible);
    tracked = *selection;
    scratch->tracker_compile_id = constraints.compile_id();
  } else if (diff_bits != 0) {
    bool ignored = false;
    for (size_t w = 0; w < tracked.word_count(); ++w) {
      uint64_t diff_word = tracked.word(w) ^ selection->word(w);
      while (diff_word != 0) {
        const size_t e = w * 64 +
                         static_cast<size_t>(__builtin_ctzll(diff_word));
        diff_word &= diff_word - 1;
        const bool now_selected = selection->Test(e);
        tracked.Assign(e, now_selected);
        constraints.ApplyAdditionBlockDelta(
            tracked, static_cast<CorrespondenceId>(e), now_selected,
            walk_monotone, walk_reversible, &ignored);
      }
    }
  }

  // Fixpoint on working copies (equal sizes: plain element copies, no
  // allocation); the tracker itself keeps describing the input state for
  // the next call.
  scratch->fix_monotone_blocks = scratch->walk_monotone_blocks;
  scratch->fix_reversible_blocks = scratch->walk_reversible_blocks;
  uint32_t* monotone = scratch->fix_monotone_blocks.data();
  uint32_t* reversible = scratch->fix_reversible_blocks.data();
  bool rescan = true;
  while (rescan) {
    bool added = false;
    bool unblocked = false;
    // Each pass compacts the candidate list in place: entries that were
    // added or are monotonically blocked cannot be added by a later pass,
    // so only reversibly-blocked survivors (in their original shuffled
    // order) are rescanned — exactly the entries the naive re-pass could
    // still act on.
    size_t kept = 0;
    for (CorrespondenceId c : candidates) {
      if (monotone[c] != 0) continue;
      if (reversible[c] != 0) {
        candidates[kept++] = c;
        continue;
      }
      selection->Set(c);
      constraints.ApplyAdditionBlockDelta(*selection, c, /*added=*/true,
                                          monotone, reversible, &unblocked);
      added = true;
    }
    candidates.resize(kept);
    // Another pass can only add something if this one both added (the old
    // fixpoint condition) and released a reversible block; otherwise every
    // remaining candidate is still blocked and the extra pass is a no-op.
    rescan = added && unblocked;
  }
}

void Maximalize(const ConstraintSet& constraints, const Feedback& feedback,
                Rng* rng, DynamicBitset* selection) {
  Maximalize(constraints, feedback, rng, selection, &ThreadLocalWalkScratch());
}

size_t RepairDistance(const DynamicBitset& instance, size_t candidate_count) {
  return candidate_count - instance.Count();
}

}  // namespace smn
