#ifndef SMN_CORE_REPAIR_H_
#define SMN_CORE_REPAIR_H_

#include "core/constraint_set.h"
#include "core/feedback.h"
#include "core/types.h"
#include "core/walk_scratch.h"
#include "util/dynamic_bitset.h"
#include "util/status.h"

namespace smn {

/// Tuning knobs for the repair procedure.
struct RepairOptions {
  /// When a violation names a missing closing correspondence (an open chain
  /// of the cycle constraint), first try to resolve it by *adding* that
  /// closing correspondence — accepted only when the addition introduces no
  /// new violations and the correspondence is not disapproved.
  ///
  /// The paper's Algorithm 4 repairs by greedy removal only. Removal-only
  /// repair makes closed triangles unreachable for the sampling random walk
  /// (any two sides of a triangle are inconsistent without the third, so the
  /// walk can never assemble one by single additions), which skews Ω* away
  /// from exactly the large consistent instances the paper's experiments
  /// rely on. Closure fixes the reachability gap while preserving all of
  /// Algorithm 4's guarantees; set to false to reproduce the literal
  /// algorithm (ablation).
  bool close_cycles = true;
};

/// Algorithm 4 of the paper (plus optional cycle closure, see RepairOptions):
/// adds `added` to `*instance` (which must satisfy the constraints
/// beforehand) and resolves all resulting violations — by closing open
/// chains when safe, otherwise by greedily removing, one at a time, the
/// correspondence involved in the most violations. Approved correspondences
/// (F+) and `added` itself are protected from removal; if the violations can
/// only be resolved by dropping `added`, it is dropped, and if even that
/// does not help — i.e. F+ is inconsistent by itself — an Internal error is
/// returned.
///
/// Runs in O(|I|^2) worst case; the violation worklist is maintained
/// incrementally in `*scratch`, so typical repairs touch only the
/// neighborhood of `added` and allocate nothing at steady state. This is
/// the kernel entry point the sampler's walk steps use; `*scratch` must not
/// be shared across threads.
Status RepairInstance(const ConstraintSet& constraints, const Feedback& feedback,
                      CorrespondenceId added, DynamicBitset* instance,
                      WalkScratch* scratch, const RepairOptions& options = {});

/// Repairs an arbitrary (possibly wildly inconsistent) selection by the same
/// rules, protecting only F+, with working memory in `*scratch`. Used to
/// seed chains from a chain-open F+ and to turn raw matcher output into a
/// consistent matching.
Status RepairAll(const ConstraintSet& constraints, const Feedback& feedback,
                 DynamicBitset* instance, WalkScratch* scratch,
                 const RepairOptions& options = {});

/// The walk kernel's proposal repair: RepairInstance specialized for the
/// sampler's inner step. Preconditions the step already guarantees: `added`
/// is a valid, currently-unselected correspondence and `*scratch` is
/// Prepared for the instance size. Returns false on the rare dead end
/// (violations resolvable only through protected correspondences) — the
/// caller discards the proposal buffer — and carries no Status objects on
/// the hot path.
bool RepairProposal(const ConstraintSet& constraints, const Feedback& feedback,
                    CorrespondenceId added, DynamicBitset* instance,
                    WalkScratch* scratch, const RepairOptions& options = {});

/// Convenience overload backed by a per-thread scratch. Identical results to
/// the kernel entry point; thread the scratch explicitly in hot loops.
Status RepairInstance(const ConstraintSet& constraints, const Feedback& feedback,
                      CorrespondenceId added, DynamicBitset* instance,
                      const RepairOptions& options = {});

/// Convenience overload of the scratch-threaded RepairAll (per-thread
/// scratch).
Status RepairAll(const ConstraintSet& constraints, const Feedback& feedback,
                 DynamicBitset* instance, const RepairOptions& options = {});

}  // namespace smn

#endif  // SMN_CORE_REPAIR_H_
