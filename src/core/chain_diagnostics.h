#ifndef SMN_CORE_CHAIN_DIAGNOSTICS_H_
#define SMN_CORE_CHAIN_DIAGNOSTICS_H_

#include <cstddef>
#include <vector>

#include "util/dynamic_bitset.h"

namespace smn {

/// Cross-chain agreement diagnostic for multi-chain sampling, in the spirit
/// of the Gelman–Rubin potential scale reduction factor (PSRF). Every
/// correspondence c defines one Bernoulli trace per chain — membership of c
/// in each of the chain's samples — and R̂ compares the between-chain spread
/// of the trace means against the within-chain variance. Chains that have
/// converged to a common distribution give R̂ ≈ 1; chains stuck in different
/// regions of the instance space give R̂ >> 1, up to +infinity for frozen
/// chains that disagree with zero within-chain variance (the signature of a
/// sampler that never moves).
struct ChainDiagnostics {
  /// Chains that contributed (those with at least two samples; shorter chains
  /// make the variance estimates undefined and are skipped).
  size_t usable_chains = 0;
  /// Length of the shortest usable chain.
  size_t min_chain_length = 0;
  /// True when the sample set came from exact enumeration rather than
  /// sampling: the probabilities are exact, so there is nothing to diagnose
  /// and nothing to distrust.
  bool exact = false;
  /// Per-correspondence R̂. Exactly 1 for correspondences whose traces are
  /// constant and identical across chains (always-in, never-in).
  std::vector<double> psrf;
  /// Maximum over `psrf`; 1.0 when the diagnostic is inapplicable (fewer
  /// than two usable chains).
  double max_psrf = 1.0;

  /// True when R̂ could actually be estimated (two or more usable chains) or
  /// the fill was exact. A single-chain or too-short run is not applicable —
  /// and deliberately not Converged(): absence of evidence must not read as
  /// a healthy diagnostic.
  bool applicable() const { return exact || usable_chains >= 2; }

  /// True when the diagnostic is applicable and every correspondence's R̂ is
  /// at or below `threshold` (the conventional Gelman–Rubin cutoff is
  /// 1.1–1.2).
  bool Converged(double threshold = 1.2) const {
    return applicable() && max_psrf <= threshold;
  }
};

/// Computes the diagnostic from per-chain sample sets over a candidate set of
/// `correspondence_count` correspondences. Chains with fewer than two samples
/// are ignored; with fewer than two usable chains the result is the
/// inapplicable default (all R̂ = 1).
ChainDiagnostics ComputeChainDiagnostics(
    const std::vector<std::vector<DynamicBitset>>& chains,
    size_t correspondence_count);

}  // namespace smn

#endif  // SMN_CORE_CHAIN_DIAGNOSTICS_H_
