#ifndef SMN_CORE_COMPONENT_INDEX_H_
#define SMN_CORE_COMPONENT_INDEX_H_

#include <memory>
#include <vector>

#include "core/constraint_set.h"
#include "core/feedback.h"
#include "core/network.h"
#include "util/dynamic_bitset.h"
#include "util/statusor.h"

namespace smn {

/// The logically determined closure of expert feedback under the network
/// constraints: F+* ⊇ F+ holds every correspondence that must be in every
/// remaining matching instance, F-* ⊇ F- every correspondence that can be in
/// none. Computed by PropagateFeedback via constraint unit propagation
/// (approving both members of a chain forces the closing correspondence in;
/// approving a correspondence forces its one-to-one conflict partners out;
/// and so on to a fixpoint).
struct DeterminedSet {
  /// Correspondences present in every instance consistent with the feedback.
  DynamicBitset approved;
  /// Correspondences present in no instance consistent with the feedback.
  DynamicBitset disapproved;

  /// True when the value of `c` is already fixed by the feedback closure.
  bool IsDetermined(CorrespondenceId c) const {
    return approved.Test(c) || disapproved.Test(c);
  }

  /// |F+*| + |F-*|.
  size_t determined_count() const {
    return approved.Count() + disapproved.Count();
  }
};

/// Computes the determined closure of `feedback` over `correspondence_count`
/// candidates by iterating ConstraintSet::PropagateDetermined to a fixpoint.
/// Returns FailedPrecondition when the feedback is logically contradictory
/// under the constraints (e.g. both members of a hard-conflicting chain
/// approved), in which case no matching instance respects it.
StatusOr<DeterminedSet> PropagateFeedback(const ConstraintSet& constraints,
                                          const Feedback& feedback,
                                          size_t correspondence_count);

/// CSR index from correspondence id to the coupling groups containing it —
/// the inverse of ConstraintSet::CouplingGroups. Built once per compiled
/// artifact so per-assert work (boundary closure, restricted re-partition)
/// touches only the groups incident to the correspondences involved instead
/// of scanning every group in the network.
class GroupIndex {
 public:
  /// Empty index (no groups).
  GroupIndex() = default;

  /// Indexes `groups` over an id space of `correspondence_count`.
  static GroupIndex Build(
      const std::vector<std::vector<CorrespondenceId>>& groups,
      size_t correspondence_count);

  /// Calls `fn(group_id)` for each group containing `c`, ascending.
  template <typename Fn>
  void ForEachGroupOf(CorrespondenceId c, Fn&& fn) const {
    for (uint32_t i = offsets_[c]; i < offsets_[c + 1]; ++i) {
      fn(group_ids_[i]);
    }
  }

  /// Number of indexed groups.
  size_t group_count() const { return group_count_; }

  /// True when Build has not run (default-constructed).
  bool empty() const { return offsets_.empty(); }

 private:
  size_t group_count_ = 0;
  std::vector<uint32_t> offsets_;
  std::vector<uint32_t> group_ids_;
};

/// One constraint-connected component: a maximal set of *undetermined*
/// correspondences linked by coupling-group co-membership. Conditioned on
/// the determined closure of the feedback, distinct components are mutually
/// independent — no constraint couples them — so feedback on one component
/// cannot change marginals in any other. This is the paper's §4 interaction
/// structure exploited for incremental reconciliation.
struct ConstraintComponent {
  /// Smallest member id; the component's stable identity for caching and
  /// deterministic per-component RNG stream derivation.
  CorrespondenceId anchor = kInvalidCorrespondence;
  /// Member correspondence ids, ascending.
  std::vector<CorrespondenceId> members;
};

/// Partition of the undetermined correspondences into constraint-connected
/// components (union-find over the coupling groups). Rebuilt — in full or
/// restricted to one touched component — whenever feedback pins a variable
/// and may thereby split a component.
class ComponentIndex {
 public:
  /// No components over zero correspondences.
  ComponentIndex() = default;

  /// Partitions the correspondences of `active` (the undetermined ones)
  /// using the coupling `groups`; group members outside `active` do not
  /// link anything (a determined variable cannot transmit dependence).
  /// `correspondence_count` sizes the id space. Components come out sorted
  /// by anchor, members ascending.
  static ComponentIndex Build(
      const std::vector<std::vector<CorrespondenceId>>& groups,
      const DynamicBitset& active, size_t correspondence_count);

  /// Build restricted to the groups incident to `active` members (looked up
  /// through `group_index`). Groups touching no active member union nothing,
  /// so the result is bit-identical to the full Build over the same active
  /// set — but the cost is O(groups of the active members), which is what
  /// keeps per-assert component splits O(component) on million-candidate
  /// networks.
  static ComponentIndex BuildRestricted(
      const std::vector<std::vector<CorrespondenceId>>& groups,
      const GroupIndex& group_index, const DynamicBitset& active,
      size_t correspondence_count);

  /// Reassembles an index from explicit components (ascending anchor order,
  /// pairwise-disjoint members). Used when a partition is patched in place
  /// after a component split rather than re-derived from the groups.
  static ComponentIndex FromComponents(
      std::vector<ConstraintComponent> components,
      size_t correspondence_count);

  /// Number of components.
  size_t component_count() const { return components_.size(); }

  /// Component `i`, ordered by ascending anchor.
  const ConstraintComponent& component(size_t i) const {
    return components_[i];
  }

  /// Index of the component containing `c`, or kNoComponent when `c` is
  /// determined (not in the active set).
  size_t ComponentOf(CorrespondenceId c) const { return component_of_[c]; }

  /// ComponentOf result for determined correspondences.
  static constexpr size_t kNoComponent = static_cast<size_t>(-1);

 private:
  std::vector<ConstraintComponent> components_;
  std::vector<size_t> component_of_;
};

/// A self-contained per-component reconciliation subproblem: a sub-network
/// whose candidate set is the component's members plus the determined-in
/// boundary (the approved closure reachable through coupling groups), with
/// the original constraint kinds recompiled against it and the feedback
/// restricted to it. Sampling this subproblem yields exactly the projection
/// of the global instance distribution onto the component — the
/// conditional-independence guarantee the incremental engine rests on.
///
/// The projection is *induced*: only the attributes touched by a candidate
/// correspondence, their schemas, and the interaction-graph edges between
/// included schemas are copied, with ids renumbered monotonically (ascending
/// global order). Monotone renumbering preserves everything constraint
/// compilation observes — attribute-incidence pair order, schema
/// identity/distinctness of chain endpoints, HasEdge between included
/// schemas — so compiled conflict tables and chain enumeration come out in
/// the same order as under the old wholesale copy, keeping subproblem
/// sampling bit-identical while the per-component cost drops from O(global
/// network) to O(component).
struct ComponentSubproblem {
  /// The projected network. Heap-allocated so the address stays stable for
  /// the components that hold references to it (SampleStore).
  std::unique_ptr<Network> network;
  /// The original constraint kinds compiled against `network`.
  std::unique_ptr<ConstraintSet> constraints;
  /// Local-id feedback: the determined-in boundary candidates approved.
  Feedback feedback{0};
  /// Local candidate id -> global correspondence id, ascending.
  std::vector<CorrespondenceId> local_to_global;
  /// Local ids of the component's (undetermined) members, ascending.
  std::vector<CorrespondenceId> member_local_ids;
};

/// Builds the subproblem for `component`. `candidates` optionally freezes
/// the global candidate id set (ascending) to project — pass the
/// local_to_global of a previous build to reproduce it bit-for-bit under
/// unchanged restricted feedback; pass nullptr to derive the candidate set
/// fresh (members plus the approved closure reachable via `groups`).
/// `group_index`, when non-null, turns the fresh closure into a worklist
/// over the groups of the candidates (O(component) instead of O(all
/// groups) per fixpoint round); the derived candidate set is identical.
StatusOr<ComponentSubproblem> BuildComponentSubproblem(
    const Network& network, const ConstraintSet& constraints,
    const std::vector<std::vector<CorrespondenceId>>& groups,
    const ConstraintComponent& component, const DeterminedSet& determined,
    const std::vector<CorrespondenceId>* candidates,
    const GroupIndex* group_index = nullptr);

}  // namespace smn

#endif  // SMN_CORE_COMPONENT_INDEX_H_
