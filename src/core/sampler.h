#ifndef SMN_CORE_SAMPLER_H_
#define SMN_CORE_SAMPLER_H_

#include <vector>

#include "core/constraint_set.h"
#include "core/feedback.h"
#include "core/network.h"
#include "core/repair.h"
#include "core/walk_scratch.h"
#include "util/dynamic_bitset.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/statusor.h"

namespace smn {

/// Tuning knobs for the non-uniform sampler (Algorithm 3).
struct SamplerOptions {
  /// Random-walk steps per emitted sample (the paper's k).
  size_t walk_steps = 8;
  /// Accept a proposed jump with probability 1 - e^(-Δ) (simulated
  /// annealing). When false, every proposal is accepted — an ablation knob.
  bool annealing = true;
  /// Greedily extend emitted samples to maximal instances so they satisfy
  /// Definition 1 exactly. When false, raw repaired walks are emitted (the
  /// literal reading of Algorithm 3) — an ablation knob.
  bool maximalize = true;
  /// Repair behavior for walk steps; cycle closure keeps closed triangles
  /// reachable (see RepairOptions::close_cycles).
  RepairOptions repair;
};

/// Non-uniform sampling of matching instances via random walk with simulated
/// annealing (Algorithm 3 / Appendix of the paper). The walk starts at F+,
/// proposes adding a random unasserted correspondence, repairs the resulting
/// violations (Algorithm 4), and accepts the proposal with probability
/// 1 - e^(-Δ) where Δ is the symmetric difference to the current state —
/// larger jumps escape high-density regions with higher probability.
class Sampler {
 public:
  /// Both `network` and `constraints` must outlive the sampler; the
  /// constraint set must be compiled against `network`.
  Sampler(const Network& network, const ConstraintSet& constraints,
          SamplerOptions options = {});

  /// Runs one random-walk transition in place on `*state` (which must be
  /// consistent): propose a random addition, repair (Algorithm 4), accept
  /// with the annealing probability. This is the engine's innermost kernel —
  /// all working memory lives in `*scratch`, so steady-state steps perform
  /// zero heap allocations. `*scratch` must not be shared across threads;
  /// results are bit-identical to NextInstance for the same rng state.
  Status Step(const Feedback& feedback, Rng* rng, DynamicBitset* state,
              WalkScratch* scratch) const;

  /// Runs one random-walk transition from `current` (which must be
  /// consistent) and returns the next chain state. Convenience wrapper over
  /// Step backed by a per-thread scratch; use Step in hot loops.
  StatusOr<DynamicBitset> NextInstance(const DynamicBitset& current,
                                       const Feedback& feedback, Rng* rng) const;

  /// Draws `count` samples along one chain seeded at F+ and appends them to
  /// `*out` (Algorithm 3). Fails when F+ itself violates the constraints.
  /// Equivalent to ChainStart + ContinueChain.
  Status SampleChain(const Feedback& feedback, size_t count, Rng* rng,
                     std::vector<DynamicBitset>* out) const;

  /// Computes the state a fresh chain starts from: the approved set F+,
  /// closure-repaired to consistency. With `overdisperse` set, the start is
  /// additionally extended to a random maximal instance — the overdispersed
  /// initial points that cross-chain convergence diagnostics assume
  /// (the walk's stationary distribution is unchanged either way). Fails when
  /// F+ is genuinely contradictory. Works in `*scratch`.
  StatusOr<DynamicBitset> ChainStart(const Feedback& feedback,
                                     bool overdisperse, Rng* rng,
                                     WalkScratch* scratch) const;

  /// ChainStart backed by a per-thread scratch; identical results.
  StatusOr<DynamicBitset> ChainStart(const Feedback& feedback,
                                     bool overdisperse, Rng* rng) const;

  /// Advances the walk from `*state`, appending `count` emitted samples to
  /// `*out` and leaving `*state` at the final chain position. `*state` must
  /// be consistent (normally a ChainStart result). All per-step working
  /// memory lives in `*scratch` (one scratch per chain / per worker); the
  /// only steady-state allocations are the emitted samples themselves.
  Status ContinueChain(const Feedback& feedback, size_t count, Rng* rng,
                       DynamicBitset* state, std::vector<DynamicBitset>* out,
                       WalkScratch* scratch) const;

  /// ContinueChain backed by a per-thread scratch; identical results.
  Status ContinueChain(const Feedback& feedback, size_t count, Rng* rng,
                       DynamicBitset* state,
                       std::vector<DynamicBitset>* out) const;

  /// The active configuration.
  const SamplerOptions& options() const { return options_; }

 private:
  /// Picks a uniformly random correspondence outside I ∪ F-, or
  /// kInvalidCorrespondence when every correspondence is in I ∪ F-. The
  /// saturation fallback scans into the scratch's id buffer.
  CorrespondenceId PickCandidate(const DynamicBitset& current,
                                 const Feedback& feedback, Rng* rng,
                                 WalkScratch* scratch) const;

  const Network& network_;
  const ConstraintSet& constraints_;
  SamplerOptions options_;
};

}  // namespace smn

#endif  // SMN_CORE_SAMPLER_H_
