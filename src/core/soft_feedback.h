#ifndef SMN_CORE_SOFT_FEEDBACK_H_
#define SMN_CORE_SOFT_FEEDBACK_H_

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "util/dynamic_bitset.h"
#include "util/status.h"

namespace smn {

/// Per-correspondence tally of noisy expert answers under the independent
/// worker error-rate model (extension beyond the paper, which assumes a
/// perfect expert; cf. the quality-aware crowdsourced matching literature).
///
/// Each elicited answer comes from a worker whose error rate ε ∈ [0, 0.5] is
/// part of the evidence model: the worker reports the true membership of the
/// correspondence with probability 1-ε and the opposite with probability ε,
/// independently across answers. The tally accumulates, per correspondence,
/// the log-likelihood of the observed answer multiset under both hypotheses
///   L_in(c)  = Σ_answers log P(answer | c ∈ I),
///   L_out(c) = Σ_answers log P(answer | c ∉ I),
/// which is all the probabilistic machinery needs: importance weights for
/// stored samples factorize over correspondences (see
/// ComputeImportanceWeights) and the posterior of a single correspondence is
/// a one-line log-odds update (see Posterior).
///
/// Hard answers (ε = 0) are tracked as explicit counters instead of -∞
/// arithmetic: a hard disapproval makes L_in(c) exactly -∞ (the answer is
/// impossible if c ∈ I) and symmetrically for approvals. Contradictory hard
/// answers on the same correspondence are tolerated — unlike Feedback, this
/// is a ledger of fallible answers, not ground truth — and flagged via
/// Contradictory(); contradictory evidence is treated as uninformative by
/// every consumer. In the ε → 0 limit with consistent answers the induced
/// sample weighting degenerates to the hard Feedback filter (weight 1 on
/// instances respecting the answers, 0 otherwise).
class SoftEvidence {
 public:
  /// Empty evidence over a candidate set of `correspondence_count`.
  explicit SoftEvidence(size_t correspondence_count);

  /// Records one elicited answer on `c` from a worker with the given error
  /// rate. Fails with OutOfRange for an invalid id and InvalidArgument for
  /// an error rate outside [0, 0.5] (ε > 0.5 would model an adversarial
  /// worker whose answers should be inverted upstream; NaN is rejected).
  Status Record(CorrespondenceId c, bool approved, double error_rate);

  /// True when at least one answer was recorded on `c`.
  bool HasEvidence(CorrespondenceId c) const { return evidenced_.Test(c); }

  /// Correspondences with at least one recorded answer, as a bitset over C.
  const DynamicBitset& evidenced() const { return evidenced_; }

  /// Number of answers recorded on `c`.
  size_t answer_count(CorrespondenceId c) const;
  /// Number of approving answers recorded on `c`.
  size_t approvals(CorrespondenceId c) const;
  /// Number of disapproving answers recorded on `c`.
  size_t disapprovals(CorrespondenceId c) const;

  /// Total answers recorded across all correspondences — the elicitation
  /// count of the soft-evidence ledger (every re-ask counts).
  size_t total_answers() const { return total_answers_; }

  /// Size of the candidate set this evidence ranges over.
  size_t correspondence_count() const { return tallies_.size(); }

  /// L_in(c): log-likelihood of the recorded answers on `c` given c ∈ I.
  /// -∞ when a hard (ε = 0) disapproval was recorded.
  double LogLikelihoodIn(CorrespondenceId c) const;

  /// L_out(c): log-likelihood of the recorded answers on `c` given c ∉ I.
  /// -∞ when a hard (ε = 0) approval was recorded.
  double LogLikelihoodOut(CorrespondenceId c) const;

  /// L_in(c) - L_out(c): positive evidence favors membership. ±∞ under
  /// one-sided hard answers; 0 (by convention) when Contradictory(c).
  double LogLikelihoodRatio(CorrespondenceId c) const;

  /// True when hard (ε = 0) answers on `c` contradict each other; such
  /// evidence is treated as uninformative (zero log-likelihood ratio,
  /// excluded from importance weighting).
  bool Contradictory(CorrespondenceId c) const;

  /// Posterior P(c ∈ I | answers) for a prior P(c ∈ I) = `prior` under the
  /// independent-answer model: a log-odds update by LogLikelihoodRatio,
  /// computed in a numerically stable max-shifted form. Degenerate priors
  /// (≤ 0, ≥ 1) are returned unchanged, as is the prior under contradictory
  /// hard evidence.
  double Posterior(CorrespondenceId c, double prior) const;

 private:
  struct Tally {
    uint32_t approvals = 0;
    uint32_t disapprovals = 0;
    uint32_t hard_approvals = 0;
    uint32_t hard_disapprovals = 0;
    /// Finite (ε > 0) contributions to L_in / L_out.
    double log_in = 0.0;
    double log_out = 0.0;
  };

  std::vector<Tally> tallies_;
  DynamicBitset evidenced_;
  size_t total_answers_ = 0;
};

/// Unnormalized importance weights of `samples` under `evidence`:
///   w(I) ∝ Π_c P(answers on c | 1[c ∈ I]),
/// max-shifted so the largest weight is exactly 1.0 (numerically stable for
/// long answer histories). When `restrict_to` is non-null, only evidence on
/// correspondences in that set participates — the per-component engine
/// passes the component member set, which is exact because evidence on any
/// other correspondence contributes the same constant factor to every sample
/// of the component and cancels under normalization. Contradictory hard
/// evidence is skipped (uninformative). Returns an empty vector when
/// `samples` is empty or when the evidence assigns zero likelihood to every
/// sample (the caller should then fall back to unweighted estimates rather
/// than divide by zero).
std::vector<double> ComputeImportanceWeights(
    const SoftEvidence& evidence, const std::vector<DynamicBitset>& samples,
    const DynamicBitset* restrict_to = nullptr);

/// Kish effective sample size (Σw)² / Σw² of an importance-weight vector —
/// scale-invariant, equal to the sample count for uniform weights and
/// approaching 1 as the evidence concentrates mass on a single sample. 0 for
/// an empty or all-zero weight vector. Consumers use it to judge how much
/// resolution the reweighted marginals still have.
double EffectiveSampleSize(const std::vector<double>& weights);

}  // namespace smn

#endif  // SMN_CORE_SOFT_FEEDBACK_H_
