#ifndef SMN_CORE_SCHEMA_H_
#define SMN_CORE_SCHEMA_H_

#include <string>
#include <vector>

#include "core/types.h"

namespace smn {

/// One attribute of a schema: a named, typed column/field. Ids are global
/// across the whole network (the paper models schemas as disjoint attribute
/// sets).
struct Attribute {
  AttributeId id = kInvalidAttribute;
  SchemaId schema = kInvalidSchema;
  std::string name;
  AttributeType type = AttributeType::kUnknown;
};

/// A schema is a finite set of attributes s = {a1, ..., an} plus a display
/// name ("SA:EoverI"). Attribute storage lives in the Network; the schema
/// keeps the id list.
class Schema {
 public:
  Schema(SchemaId id, std::string name) : id_(id), name_(std::move(name)) {}

  SchemaId id() const { return id_; }
  const std::string& name() const { return name_; }
  const std::vector<AttributeId>& attributes() const { return attributes_; }
  size_t attribute_count() const { return attributes_.size(); }

  /// Registers an attribute id as belonging to this schema. Called by
  /// NetworkBuilder only.
  void AddAttribute(AttributeId id) { attributes_.push_back(id); }

 private:
  SchemaId id_;
  std::string name_;
  std::vector<AttributeId> attributes_;
};

}  // namespace smn

#endif  // SMN_CORE_SCHEMA_H_
