#ifndef SMN_CORE_SCHEMA_H_
#define SMN_CORE_SCHEMA_H_

#include <string>
#include <vector>

#include "core/types.h"

namespace smn {

/// One attribute of a schema: a named, typed column/field. Ids are global
/// across the whole network (the paper models schemas as disjoint attribute
/// sets).
struct Attribute {
  /// Network-global attribute id.
  AttributeId id = kInvalidAttribute;
  /// Owning schema.
  SchemaId schema = kInvalidSchema;
  /// Column/field name, unique within the schema.
  std::string name;
  /// Coarse data type (see AttributeType).
  AttributeType type = AttributeType::kUnknown;
};

/// A schema is a finite set of attributes s = {a1, ..., an} plus a display
/// name ("SA:EoverI"). Attribute storage lives in the Network; the schema
/// keeps the id list.
class Schema {
 public:
  /// Creates an attribute-less schema with the given id and display name.
  Schema(SchemaId id, std::string name) : id_(id), name_(std::move(name)) {}

  /// Index within the network's schema list.
  SchemaId id() const { return id_; }
  /// Display name ("SA:EoverI").
  const std::string& name() const { return name_; }
  /// Ids of the attributes belonging to this schema, in insertion order.
  const std::vector<AttributeId>& attributes() const { return attributes_; }
  /// Number of attributes.
  size_t attribute_count() const { return attributes_.size(); }

  /// Registers an attribute id as belonging to this schema. Called by
  /// NetworkBuilder only.
  void AddAttribute(AttributeId id) { attributes_.push_back(id); }

 private:
  SchemaId id_;
  std::string name_;
  std::vector<AttributeId> attributes_;
};

}  // namespace smn

#endif  // SMN_CORE_SCHEMA_H_
