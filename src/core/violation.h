#ifndef SMN_CORE_VIOLATION_H_
#define SMN_CORE_VIOLATION_H_

#include <string_view>
#include <vector>

#include "core/types.h"

namespace smn {

/// One concrete constraint violation found in a correspondence selection.
/// `participants` are the selected correspondences that jointly violate the
/// constraint; removing any participant resolves this particular violation.
/// For the cycle constraint, `missing` names the absent closing
/// correspondence that would also resolve the violation (or
/// kInvalidCorrespondence when no such candidate exists in C).
struct Violation {
  /// Name of the violated constraint ("one-to-one", "cycle").
  std::string_view constraint_name;
  /// Selected correspondences that jointly violate the constraint.
  std::vector<CorrespondenceId> participants;
  /// Absent closing correspondence that would also resolve the violation,
  /// or kInvalidCorrespondence when none exists in C.
  CorrespondenceId missing = kInvalidCorrespondence;

  /// True when `c` participates in this violation.
  bool Involves(CorrespondenceId c) const {
    for (CorrespondenceId p : participants) {
      if (p == c) return true;
    }
    return false;
  }
};

}  // namespace smn

#endif  // SMN_CORE_VIOLATION_H_
