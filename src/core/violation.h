#ifndef SMN_CORE_VIOLATION_H_
#define SMN_CORE_VIOLATION_H_

#include <string_view>
#include <vector>

#include "core/types.h"

namespace smn {

/// One concrete constraint violation found in a correspondence selection.
/// `participants` are the selected correspondences that jointly violate the
/// constraint; removing any participant resolves this particular violation.
/// For the cycle constraint, `missing` names the absent closing
/// correspondence that would also resolve the violation (or
/// kInvalidCorrespondence when no such candidate exists in C).
struct Violation {
  /// Name of the violated constraint ("one-to-one", "cycle").
  std::string_view constraint_name;
  /// Selected correspondences that jointly violate the constraint.
  std::vector<CorrespondenceId> participants;
  /// Absent closing correspondence that would also resolve the violation,
  /// or kInvalidCorrespondence when none exists in C.
  CorrespondenceId missing = kInvalidCorrespondence;

  /// True when `c` participates in this violation.
  bool Involves(CorrespondenceId c) const {
    for (CorrespondenceId p : participants) {
      if (p == c) return true;
    }
    return false;
  }
};

/// Fixed-size violation record used by the compiled walk kernel. Unlike
/// Violation it owns no heap storage, so worklists of KernelViolation can be
/// reused across repair calls without allocating. The constraints of the
/// paper are pairwise (one-to-one conflicts, cycle chains): every violation
/// has at most two selected participants plus an optional absent closing
/// correspondence. Constraints whose violations need more participants must
/// stay on the Violation-based slow path.
struct KernelViolation {
  /// First selected participant.
  CorrespondenceId a = kInvalidCorrespondence;
  /// Second selected participant, or kInvalidCorrespondence for violations
  /// with a single participant.
  CorrespondenceId b = kInvalidCorrespondence;
  /// Absent closing correspondence that would also resolve the violation,
  /// or kInvalidCorrespondence when none exists in C.
  CorrespondenceId missing = kInvalidCorrespondence;

  /// True when `c` participates in this violation.
  bool Involves(CorrespondenceId c) const { return a == c || b == c; }
};

/// Converts a Violation into the kernel record, keeping the first two
/// participants (the constraints shipped with the engine never emit more).
inline KernelViolation ToKernelViolation(const Violation& v) {
  KernelViolation kernel;
  if (!v.participants.empty()) kernel.a = v.participants[0];
  if (v.participants.size() > 1) kernel.b = v.participants[1];
  kernel.missing = v.missing;
  return kernel;
}

}  // namespace smn

#endif  // SMN_CORE_VIOLATION_H_
