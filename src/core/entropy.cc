#include "core/entropy.h"

#include <cmath>

namespace smn {

double BinaryEntropy(double p) {
  // NaN (e.g. a 0/0 marginal from an empty or zero-weight sample set) must
  // not propagate into H(C, P): every comparison with NaN is false, so
  // without this guard the expression below would return NaN and poison
  // every uncertainty aggregate built on top.
  if (std::isnan(p)) return 0.0;
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double NetworkUncertainty(const std::vector<double>& probabilities) {
  double total = 0.0;
  for (double p : probabilities) total += BinaryEntropy(p);
  return total;
}

}  // namespace smn
