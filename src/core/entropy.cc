#include "core/entropy.h"

#include <cmath>

namespace smn {

double BinaryEntropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double NetworkUncertainty(const std::vector<double>& probabilities) {
  double total = 0.0;
  for (double p : probabilities) total += BinaryEntropy(p);
  return total;
}

}  // namespace smn
