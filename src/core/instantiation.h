#ifndef SMN_CORE_INSTANTIATION_H_
#define SMN_CORE_INSTANTIATION_H_

#include "core/probabilistic_network.h"
#include "util/dynamic_bitset.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace smn {

/// Tuning knobs for the instantiation heuristic (Algorithm 2).
struct InstantiationOptions {
  /// Upper bound k on local-search iterations.
  size_t iterations = 200;
  /// Capacity of the tabu queue T: recently tried correspondences are barred
  /// from re-selection until they age out.
  size_t tabu_size = 25;
  /// When true (Problem 2), ties on repair distance are broken by the
  /// likelihood u(I) = Π p_c. Disabling this reproduces the "without
  /// likelihood" ablation of Fig. 11.
  bool use_likelihood = true;
  /// Greedily extend the final answer to a maximal instance. Never hurts the
  /// repair distance (objective i); ablation knob for Definition-1 fidelity.
  bool maximalize_result = true;
};

/// An instantiated matching H with its quality measures.
struct InstantiationResult {
  /// The derived constraint-consistent matching H ⊆ C.
  DynamicBitset instance;
  /// Δ(H, C) = |C| - |H|: candidate correspondences sacrificed for
  /// consistency.
  size_t repair_distance = 0;
  /// log u(H) = Σ_{c ∈ H} log p_c (probabilities floored at 1e-12 so a
  /// zero-probability member yields a very negative, comparable value).
  double log_likelihood = 0.0;
};

/// Algorithm 2 of the paper: derives a single trusted, constraint-consistent
/// matching from the probabilistic matching network at any point during
/// reconciliation. Greedily seeds from the best available sample (minimum
/// repair distance, then maximum likelihood), then runs a randomized local
/// search — roulette-wheel addition proportional to p_c, repair of the
/// violations the addition causes, and a tabu list against re-trying recent
/// additions — keeping the best instance seen.
class Instantiator {
 public:
  /// Configures the heuristic (defaults reproduce the paper's setup).
  explicit Instantiator(InstantiationOptions options = {});

  /// Runs the heuristic against the current network state.
  StatusOr<InstantiationResult> Instantiate(const ProbabilisticNetwork& pmn,
                                            Rng* rng) const;

  /// The active configuration.
  const InstantiationOptions& options() const { return options_; }

 private:
  InstantiationOptions options_;
};

/// Log-likelihood of an instance under probabilities P (floored at 1e-12).
double InstanceLogLikelihood(const DynamicBitset& instance,
                             const std::vector<double>& probabilities);

}  // namespace smn

#endif  // SMN_CORE_INSTANTIATION_H_
