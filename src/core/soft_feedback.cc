#include "core/soft_feedback.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace smn {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace

SoftEvidence::SoftEvidence(size_t correspondence_count)
    : tallies_(correspondence_count), evidenced_(correspondence_count) {}

Status SoftEvidence::Record(CorrespondenceId c, bool approved,
                            double error_rate) {
  if (c >= tallies_.size()) {
    return Status::OutOfRange("Record: correspondence id out of range");
  }
  if (std::isnan(error_rate) || error_rate < 0.0 || error_rate > 0.5) {
    return Status::InvalidArgument(
        "Record: worker error rate must be in [0, 0.5]");
  }
  Tally& tally = tallies_[c];
  if (approved) {
    ++tally.approvals;
  } else {
    ++tally.disapprovals;
  }
  if (error_rate == 0.0) {
    // Hard answer: tracked as a counter so likelihoods become exact ±∞
    // without -∞ arithmetic accumulating in the finite sums.
    if (approved) {
      ++tally.hard_approvals;
    } else {
      ++tally.hard_disapprovals;
    }
  } else {
    // An approval is observed with probability 1-ε when c ∈ I and ε when
    // c ∉ I; a disapproval the other way around.
    const double log_correct = std::log(1.0 - error_rate);
    const double log_error = std::log(error_rate);
    tally.log_in += approved ? log_correct : log_error;
    tally.log_out += approved ? log_error : log_correct;
  }
  evidenced_.Set(c);
  ++total_answers_;
  return Status::OK();
}

size_t SoftEvidence::answer_count(CorrespondenceId c) const {
  const Tally& tally = tallies_[c];
  return static_cast<size_t>(tally.approvals) + tally.disapprovals;
}

size_t SoftEvidence::approvals(CorrespondenceId c) const {
  return tallies_[c].approvals;
}

size_t SoftEvidence::disapprovals(CorrespondenceId c) const {
  return tallies_[c].disapprovals;
}

double SoftEvidence::LogLikelihoodIn(CorrespondenceId c) const {
  const Tally& tally = tallies_[c];
  if (tally.hard_disapprovals > 0) return kNegInf;
  return tally.log_in;
}

double SoftEvidence::LogLikelihoodOut(CorrespondenceId c) const {
  const Tally& tally = tallies_[c];
  if (tally.hard_approvals > 0) return kNegInf;
  return tally.log_out;
}

bool SoftEvidence::Contradictory(CorrespondenceId c) const {
  const Tally& tally = tallies_[c];
  return tally.hard_approvals > 0 && tally.hard_disapprovals > 0;
}

double SoftEvidence::LogLikelihoodRatio(CorrespondenceId c) const {
  if (Contradictory(c)) return 0.0;
  return LogLikelihoodIn(c) - LogLikelihoodOut(c);
}

double SoftEvidence::Posterior(CorrespondenceId c, double prior) const {
  if (prior <= 0.0) return 0.0;
  if (prior >= 1.0) return 1.0;
  if (Contradictory(c)) return prior;
  const double log_in = LogLikelihoodIn(c);
  const double log_out = LogLikelihoodOut(c);
  // Max-shift before exponentiating: long answer histories push both
  // log-likelihoods far negative, but their difference stays moderate.
  const double shift = std::max(log_in, log_out);
  const double weight_in = prior * std::exp(log_in - shift);
  const double weight_out = (1.0 - prior) * std::exp(log_out - shift);
  const double total = weight_in + weight_out;
  if (total <= 0.0) return prior;  // Both hypotheses impossible: keep prior.
  return weight_in / total;
}

std::vector<double> ComputeImportanceWeights(
    const SoftEvidence& evidence, const std::vector<DynamicBitset>& samples,
    const DynamicBitset* restrict_to) {
  const size_t m = samples.size();
  if (m == 0) return {};
  std::vector<double> log_weights(m, 0.0);
  evidence.evidenced().ForEachSetBit([&](size_t c) {
    if (restrict_to != nullptr && !restrict_to->Test(c)) return;
    if (evidence.Contradictory(c)) return;  // Uninformative; skip.
    const double log_in = evidence.LogLikelihoodIn(c);
    const double log_out = evidence.LogLikelihoodOut(c);
    for (size_t i = 0; i < m; ++i) {
      log_weights[i] += samples[i].Test(c) ? log_in : log_out;
    }
  });
  // The max-shift must come from a finite log-weight: a +inf or NaN entry
  // (a caller-supplied degenerate likelihood) would otherwise poison the
  // shift and turn every weight into NaN. Non-finite entries themselves map
  // to weight 0 below — a sample whose likelihood is not a number carries no
  // usable evidence.
  double max_log = kNegInf;
  for (double lw : log_weights) {
    if (std::isfinite(lw)) max_log = std::max(max_log, lw);
  }
  if (max_log == kNegInf) return {};  // No sample has a finite likelihood.
  std::vector<double> weights(m);
  for (size_t i = 0; i < m; ++i) {
    weights[i] =
        std::isfinite(log_weights[i]) ? std::exp(log_weights[i] - max_log) : 0.0;
  }
  return weights;
}

double EffectiveSampleSize(const std::vector<double>& weights) {
  double sum = 0.0;
  double sum_squares = 0.0;
  for (double w : weights) {
    // A single +inf or NaN weight makes sum_squares NaN, and NaN slips past
    // a `<= 0.0` guard — the ESS itself would come out NaN and defeat every
    // downstream `ess < threshold` resample trigger. A weight vector
    // containing a non-finite entry is degenerate: report zero effective
    // samples so callers resample.
    if (!std::isfinite(w)) return 0.0;
    sum += w;
    sum_squares += w * w;
  }
  // `!(x > 0)` instead of `x <= 0` so a NaN from accumulated rounding also
  // lands in the degenerate branch.
  if (!(sum_squares > 0.0)) return 0.0;
  return (sum * sum) / sum_squares;
}

}  // namespace smn
