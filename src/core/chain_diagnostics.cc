#include "core/chain_diagnostics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace smn {

ChainDiagnostics ComputeChainDiagnostics(
    const std::vector<std::vector<DynamicBitset>>& chains,
    size_t correspondence_count) {
  ChainDiagnostics diag;
  diag.psrf.assign(correspondence_count, 1.0);

  // Per-chain membership counts: counts[i][c] = how many samples of usable
  // chain i contain correspondence c.
  std::vector<std::vector<size_t>> counts;
  std::vector<size_t> lengths;
  for (const auto& chain : chains) {
    if (chain.size() < 2) continue;
    std::vector<size_t> chain_counts(correspondence_count, 0);
    for (const DynamicBitset& sample : chain) {
      sample.ForEachSetBit([&](size_t c) { ++chain_counts[c]; });
    }
    counts.push_back(std::move(chain_counts));
    lengths.push_back(chain.size());
  }
  diag.usable_chains = counts.size();
  if (!lengths.empty()) {
    diag.min_chain_length = *std::min_element(lengths.begin(), lengths.end());
  }
  const size_t m = counts.size();
  if (m < 2 || correspondence_count == 0) return diag;

  double mean_length = 0.0;
  for (size_t n : lengths) mean_length += static_cast<double>(n);
  mean_length /= static_cast<double>(m);

  std::vector<double> means(m);
  for (size_t c = 0; c < correspondence_count; ++c) {
    // Chain means and the mean of the unbiased within-chain Bernoulli
    // variances W; then the between-chain variance of the means B/n.
    double w = 0.0;
    double grand_mean = 0.0;
    for (size_t i = 0; i < m; ++i) {
      const double n = static_cast<double>(lengths[i]);
      const double p = static_cast<double>(counts[i][c]) / n;
      means[i] = p;
      grand_mean += p;
      w += p * (1.0 - p) * n / (n - 1.0);
    }
    w /= static_cast<double>(m);
    grand_mean /= static_cast<double>(m);
    double b_over_n = 0.0;
    for (double p : means) {
      b_over_n += (p - grand_mean) * (p - grand_mean);
    }
    b_over_n /= static_cast<double>(m - 1);

    if (w <= 0.0) {
      // Zero within-chain variance: either all chains are frozen on the same
      // membership (indistinguishable from certainty, R̂ = 1) or they are
      // frozen on different ones — the never-mixing case, R̂ = +inf.
      diag.psrf[c] = b_over_n > 0.0
                         ? std::numeric_limits<double>::infinity()
                         : 1.0;
      continue;
    }
    const double var_plus =
        (mean_length - 1.0) / mean_length * w + b_over_n;
    diag.psrf[c] = std::sqrt(var_plus / w);
  }
  diag.max_psrf = *std::max_element(diag.psrf.begin(), diag.psrf.end());
  return diag;
}

}  // namespace smn
