#include "core/parallel_sampler.h"

#include <algorithm>
#include <cstddef>
#include <future>
#include <utility>

#include "util/thread_pool.h"

namespace smn {
namespace {

/// One full chain: overdispersed (or plain) start, burn-in + quota emitted
/// samples, head discarded. Owns its Rng by value — chains never share
/// generator state — and its WalkScratch: one scratch per worker task, so
/// every steady-state walk step across all chains is allocation-free while
/// the shared Sampler stays const and thread-safe.
StatusOr<std::vector<DynamicBitset>> RunChain(const Sampler& sampler,
                                              const Feedback& feedback,
                                              size_t burn_in, size_t quota,
                                              bool overdisperse, Rng rng) {
  WalkScratch scratch;
  std::vector<DynamicBitset> samples;
  SMN_ASSIGN_OR_RETURN(
      DynamicBitset state,
      sampler.ChainStart(feedback, overdisperse, &rng, &scratch));
  SMN_RETURN_IF_ERROR(sampler.ContinueChain(feedback, burn_in + quota, &rng,
                                            &state, &samples, &scratch));
  samples.erase(samples.begin(),
                samples.begin() + static_cast<std::ptrdiff_t>(burn_in));
  return samples;
}

}  // namespace

ParallelSampler::ParallelSampler(const Network& network,
                                 const ConstraintSet& constraints,
                                 ParallelSamplerOptions options)
    : sampler_(network, constraints, options.sampler), options_(options) {}

StatusOr<std::vector<std::vector<DynamicBitset>>>
ParallelSampler::SampleChains(const Feedback& feedback, size_t count,
                              Rng* rng) const {
  const size_t chains = std::max<size_t>(1, options_.num_chains);
  // Fork one decorrelated stream per chain from a single parent draw. The
  // draw advances the parent so back-to-back calls (the store's top-up
  // rounds) explore fresh streams; the forks themselves are pure functions
  // of the advanced state, so thread scheduling cannot perturb them.
  Rng fork_base = rng->Split();
  std::vector<Rng> chain_rngs;
  chain_rngs.reserve(chains);
  for (size_t i = 0; i < chains; ++i) chain_rngs.push_back(fork_base.Fork(i));

  std::vector<size_t> quotas(chains, count / chains);
  for (size_t i = 0; i < count % chains; ++i) ++quotas[i];

  std::vector<std::vector<DynamicBitset>> result(chains);
  size_t threads = options_.num_threads == 0
                       ? std::min(chains, ThreadPool::DefaultThreadCount())
                       : options_.num_threads;
  threads = std::min(threads, chains);

  if (threads <= 1) {
    for (size_t i = 0; i < chains; ++i) {
      SMN_ASSIGN_OR_RETURN(
          result[i],
          RunChain(sampler_, feedback, options_.burn_in, quotas[i],
                   options_.overdispersed_starts, std::move(chain_rngs[i])));
    }
    return result;
  }

  std::vector<std::future<StatusOr<std::vector<DynamicBitset>>>> futures;
  futures.reserve(chains);
  {
    // A per-call pool keeps the sampler stateless (const methods stay safe
    // to share); spawning a handful of threads costs microseconds against
    // the milliseconds a sampling round takes.
    ThreadPool pool(threads);
    for (size_t i = 0; i < chains; ++i) {
      futures.push_back(
          pool.Submit([this, &feedback, &quotas, i,
                       chain_rng = std::move(chain_rngs[i])]() mutable {
            return RunChain(sampler_, feedback, options_.burn_in, quotas[i],
                            options_.overdispersed_starts,
                            std::move(chain_rng));
          }));
    }
  }  // The pool destructor drains and joins: every future is ready below.
  Status first_error = Status::OK();
  for (size_t i = 0; i < chains; ++i) {
    StatusOr<std::vector<DynamicBitset>> chain = futures[i].get();
    if (!chain.ok()) {
      // Keep the lowest-index error so the reported failure is deterministic.
      if (first_error.ok()) first_error = chain.status();
      continue;
    }
    result[i] = *std::move(chain);
  }
  if (!first_error.ok()) return first_error;
  return result;
}

Status ParallelSampler::SampleMerged(const Feedback& feedback, size_t count,
                                     Rng* rng,
                                     std::vector<DynamicBitset>* out) const {
  SMN_ASSIGN_OR_RETURN(std::vector<std::vector<DynamicBitset>> chains,
                       SampleChains(feedback, count, rng));
  size_t total = 0;
  for (const auto& chain : chains) total += chain.size();
  out->reserve(out->size() + total);
  for (auto& chain : chains) {
    for (DynamicBitset& sample : chain) out->push_back(std::move(sample));
  }
  return Status::OK();
}

}  // namespace smn
