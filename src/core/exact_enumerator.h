#ifndef SMN_CORE_EXACT_ENUMERATOR_H_
#define SMN_CORE_EXACT_ENUMERATOR_H_

#include <vector>

#include "core/constraint_set.h"
#include "core/feedback.h"
#include "core/network.h"
#include "util/dynamic_bitset.h"
#include "util/statusor.h"

namespace smn {

/// Output of exhaustive matching-instance enumeration.
struct ExactEnumerationResult {
  /// Every matching instance (Definition 1) under the given feedback.
  std::vector<DynamicBitset> instances;
  /// Exact probabilities per Equation 1: the fraction of instances
  /// containing each correspondence. All zero when no instance exists.
  std::vector<double> probabilities;
};

/// Enumerates all matching instances of a network by checking every subset
/// of C — the Ω(F+, F-) of Equation 1. Exponential in |C| by construction
/// (the paper uses it only to evaluate sampling quality, Fig. 7); refuses
/// networks beyond `max_candidates` correspondences.
class ExactEnumerator {
 public:
  /// `network` and `constraints` must outlive the enumerator.
  ExactEnumerator(const Network& network, const ConstraintSet& constraints,
                  size_t max_candidates = 26);

  /// Runs the enumeration under `feedback`.
  StatusOr<ExactEnumerationResult> Enumerate(const Feedback& feedback) const;

  /// Number of matching instances only (no instance materialization).
  StatusOr<size_t> CountInstances(const Feedback& feedback) const;

 private:
  const Network& network_;
  const ConstraintSet& constraints_;
  size_t max_candidates_;
};

}  // namespace smn

#endif  // SMN_CORE_EXACT_ENUMERATOR_H_
