#ifndef SMN_CORE_TYPES_H_
#define SMN_CORE_TYPES_H_

#include <cstdint>
#include <limits>

namespace smn {

/// Index of a schema within a Network. Dense, assigned in insertion order.
using SchemaId = uint32_t;

/// Globally unique attribute identifier within a Network. Attributes of all
/// schemas share one id space (the paper's A_S with unique attributes).
using AttributeId = uint32_t;

/// Index of a candidate correspondence within a Network's candidate set C.
using CorrespondenceId = uint32_t;

inline constexpr SchemaId kInvalidSchema =
    std::numeric_limits<SchemaId>::max();
inline constexpr AttributeId kInvalidAttribute =
    std::numeric_limits<AttributeId>::max();
inline constexpr CorrespondenceId kInvalidCorrespondence =
    std::numeric_limits<CorrespondenceId>::max();

/// Coarse attribute data types, used by the type-aware matcher and the
/// dataset generator. Real schemas rarely agree on precise types, so this is
/// intentionally coarse.
enum class AttributeType : uint8_t {
  kUnknown = 0,
  kString,
  kInteger,
  kDecimal,
  kDate,
  kBoolean,
};

/// Short name for an attribute type ("string", "date", ...).
const char* AttributeTypeToString(AttributeType type);

}  // namespace smn

#endif  // SMN_CORE_TYPES_H_
