#ifndef SMN_CORE_TYPES_H_
#define SMN_CORE_TYPES_H_

#include <cstdint>
#include <limits>

/// Schema-matching-network library: every public type of the pay-as-you-go
/// reconciliation reproduction lives in this namespace.
namespace smn {

/// Index of a schema within a Network. Dense, assigned in insertion order.
using SchemaId = uint32_t;

/// Globally unique attribute identifier within a Network. Attributes of all
/// schemas share one id space (the paper's A_S with unique attributes).
using AttributeId = uint32_t;

/// Index of a candidate correspondence within a Network's candidate set C.
using CorrespondenceId = uint32_t;

/// Sentinel for "no schema".
inline constexpr SchemaId kInvalidSchema =
    std::numeric_limits<SchemaId>::max();
/// Sentinel for "no attribute".
inline constexpr AttributeId kInvalidAttribute =
    std::numeric_limits<AttributeId>::max();
/// Sentinel for "no correspondence" (e.g. a chain with no closing candidate).
inline constexpr CorrespondenceId kInvalidCorrespondence =
    std::numeric_limits<CorrespondenceId>::max();

/// Coarse attribute data types, used by the type-aware matcher and the
/// dataset generator. Real schemas rarely agree on precise types, so this is
/// intentionally coarse.
enum class AttributeType : uint8_t {
  kUnknown = 0,  ///< No type information available.
  kString,       ///< Free text.
  kInteger,      ///< Whole numbers.
  kDecimal,      ///< Fractional numbers.
  kDate,         ///< Calendar dates / timestamps.
  kBoolean,      ///< True/false flags.
};

/// Short name for an attribute type ("string", "date", ...).
const char* AttributeTypeToString(AttributeType type);

}  // namespace smn

#endif  // SMN_CORE_TYPES_H_
