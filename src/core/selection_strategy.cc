#include "core/selection_strategy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace smn {
namespace {

class RandomStrategy : public SelectionStrategy {
 public:
  std::string_view name() const override { return "Random"; }

  std::optional<CorrespondenceId> Select(const ProbabilisticNetwork& pmn,
                                         Rng* rng) override {
    const auto uncertain = pmn.UncertainCorrespondences();
    if (uncertain.empty()) return std::nullopt;
    return uncertain[rng->Index(uncertain.size())];
  }
};

/// The paper's Heuristic with incremental gain maintenance: per-component
/// best gains are cached keyed by (component anchor, generation) and only
/// recomputed for components whose generation advanced since the previous
/// Select — after one assertion that is exactly the component the assertion
/// touched, so a Select costs O(|touched component|² · |Ω*_K|) instead of
/// O(|C|² · |Ω*|). A lazy-deletion max-heap over the per-component bests
/// finds the leading component without scanning; ties across components are
/// then gathered in global id order and broken uniformly at random, exactly
/// as the non-incremental computation would.
///
/// The incremental bookkeeping (best_, heap_, instance_id_) is guarded by
/// mu_, so one strategy instance may serve concurrent sessions over
/// distinct networks — though each Select call still needs its own Rng, and
/// sharing an instance across networks thrashes the cache (the instance-id
/// check clears it on every switch).
class InformationGainStrategy : public SelectionStrategy {
 public:
  std::string_view name() const override { return "InformationGain"; }

  std::optional<CorrespondenceId> Select(const ProbabilisticNetwork& pmn,
                                         Rng* rng) override {
    constexpr double kTie = 1e-12;
    constexpr double kNone = -std::numeric_limits<double>::infinity();
    MutexLock lock(mu_);
    // A different network instance (by process-unique id, so a fresh network
    // reusing a destroyed one's address cannot alias) invalidates every
    // cached entry.
    if (pmn.instance_id() != instance_id_) {
      instance_id_ = pmn.instance_id();
      best_.clear();
      heap_ = {};
    }

    // Refresh stale component entries. A component is stale when its anchor
    // is new, its cache generation advanced (it was re-sampled or split), or
    // its soft-evidence revision advanced (a noisy answer reweighted its
    // marginals and gains without re-sampling).
    std::unordered_map<CorrespondenceId, size_t> anchor_to_index;
    anchor_to_index.reserve(pmn.component_count());
    for (size_t i = 0; i < pmn.component_count(); ++i) {
      const ConstraintComponent& component = pmn.component(i);
      anchor_to_index[component.anchor] = i;
      const uint64_t generation = pmn.component_generation(i);
      const uint64_t revision = pmn.component_evidence_revision(i);
      auto [slot, inserted] = best_.try_emplace(component.anchor);
      if (!inserted && slot->second.generation == generation &&
          slot->second.revision == revision) {
        continue;
      }
      const std::vector<double>& gains = pmn.ComponentGains(i);
      double best = kNone;
      for (size_t j = 0; j < component.members.size(); ++j) {
        const double p = pmn.probability(component.members[j]);
        if (p <= 0.0 || p >= 1.0) continue;  // Certain: not selectable.
        best = std::max(best, gains[j]);
      }
      slot->second = Entry{generation, revision, best};
      if (best > kNone) heap_.push({best, component.anchor, generation, revision});
    }

    // Pop stale heap entries until the top matches a live component best.
    double leader = kNone;
    while (!heap_.empty()) {
      const auto& [gain, anchor, generation, revision] = heap_.top();
      const auto index_it = anchor_to_index.find(anchor);
      const auto slot = best_.find(anchor);
      if (index_it == anchor_to_index.end() || slot == best_.end() ||
          slot->second.generation != generation ||
          slot->second.revision != revision ||
          slot->second.best != gain) {
        heap_.pop();
        continue;
      }
      leader = gain;
      break;
    }
    if (leader == kNone) return std::nullopt;

    // Gather the global tie set in ascending id order (identical to the
    // order a full gain scan over UncertainCorrespondences would produce),
    // then break uniformly at random as the paper does.
    std::vector<CorrespondenceId> tied;
    for (size_t i = 0; i < pmn.component_count(); ++i) {
      const ConstraintComponent& component = pmn.component(i);
      const auto slot = best_.find(component.anchor);
      if (slot == best_.end() || slot->second.best < leader - kTie) continue;
      const std::vector<double>& gains = pmn.ComponentGains(i);
      for (size_t j = 0; j < component.members.size(); ++j) {
        const double p = pmn.probability(component.members[j]);
        if (p <= 0.0 || p >= 1.0) continue;
        if (gains[j] >= leader - kTie) tied.push_back(component.members[j]);
      }
    }
    std::sort(tied.begin(), tied.end());
    if (tied.empty()) return std::nullopt;
    return tied[rng->Index(tied.size())];
  }

 private:
  /// Cached per-component state, keyed by anchor.
  struct Entry {
    uint64_t generation = 0;
    uint64_t revision = 0;
    double best = -std::numeric_limits<double>::infinity();
  };

  /// Guards the incremental gain bookkeeping below across Select calls.
  Mutex mu_{"strategy.gain_cache", LockRank::kSelectionStrategy};
  /// instance_id() of the network the cached state belongs to (0 = none).
  uint64_t instance_id_ SMN_GUARDED_BY(mu_) = 0;
  std::unordered_map<CorrespondenceId, Entry> best_ SMN_GUARDED_BY(mu_);
  /// Lazy-deletion max-heap of (best gain, anchor, generation, revision).
  std::priority_queue<std::tuple<double, CorrespondenceId, uint64_t, uint64_t>>
      heap_ SMN_GUARDED_BY(mu_);
};

class MaxEntropyStrategy : public SelectionStrategy {
 public:
  std::string_view name() const override { return "MaxEntropy"; }

  std::optional<CorrespondenceId> Select(const ProbabilisticNetwork& pmn,
                                         Rng* rng) override {
    const auto uncertain = pmn.UncertainCorrespondences();
    if (uncertain.empty()) return std::nullopt;
    double best_distance = 2.0;
    std::vector<CorrespondenceId> tied;
    for (CorrespondenceId c : uncertain) {
      const double distance = std::abs(pmn.probability(c) - 0.5);
      if (distance < best_distance - 1e-12) {
        best_distance = distance;
        tied.clear();
      }
      if (distance <= best_distance + 1e-12) tied.push_back(c);
    }
    return tied[rng->Index(tied.size())];
  }
};

class MinProbabilityStrategy : public SelectionStrategy {
 public:
  std::string_view name() const override { return "MinProbability"; }

  std::optional<CorrespondenceId> Select(const ProbabilisticNetwork& pmn,
                                         Rng* rng) override {
    const auto uncertain = pmn.UncertainCorrespondences();
    if (uncertain.empty()) return std::nullopt;
    double best = 2.0;
    std::vector<CorrespondenceId> tied;
    for (CorrespondenceId c : uncertain) {
      const double p = pmn.probability(c);
      if (p < best - 1e-12) {
        best = p;
        tied.clear();
      }
      if (p <= best + 1e-12) tied.push_back(c);
    }
    return tied[rng->Index(tied.size())];
  }
};

class SequentialStrategy : public SelectionStrategy {
 public:
  std::string_view name() const override { return "Sequential"; }

  std::optional<CorrespondenceId> Select(const ProbabilisticNetwork& pmn,
                                         Rng* rng) override {
    (void)rng;
    const auto uncertain = pmn.UncertainCorrespondences();
    if (uncertain.empty()) return std::nullopt;
    return uncertain.front();  // UncertainCorrespondences is id-ascending.
  }
};

}  // namespace

std::string_view StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kRandom:
      return "Random";
    case StrategyKind::kInformationGain:
      return "InformationGain";
    case StrategyKind::kMaxEntropy:
      return "MaxEntropy";
    case StrategyKind::kMinProbability:
      return "MinProbability";
    case StrategyKind::kSequential:
      return "Sequential";
  }
  return "Unknown";
}

std::unique_ptr<SelectionStrategy> MakeStrategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kRandom:
      return std::make_unique<RandomStrategy>();
    case StrategyKind::kInformationGain:
      return std::make_unique<InformationGainStrategy>();
    case StrategyKind::kMaxEntropy:
      return std::make_unique<MaxEntropyStrategy>();
    case StrategyKind::kMinProbability:
      return std::make_unique<MinProbabilityStrategy>();
    case StrategyKind::kSequential:
      return std::make_unique<SequentialStrategy>();
  }
  return nullptr;
}

}  // namespace smn
