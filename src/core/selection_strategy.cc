#include "core/selection_strategy.h"

#include <cmath>
#include <vector>

namespace smn {
namespace {

class RandomStrategy : public SelectionStrategy {
 public:
  std::string_view name() const override { return "Random"; }

  std::optional<CorrespondenceId> Select(const ProbabilisticNetwork& pmn,
                                         Rng* rng) override {
    const auto uncertain = pmn.UncertainCorrespondences();
    if (uncertain.empty()) return std::nullopt;
    return uncertain[rng->Index(uncertain.size())];
  }
};

class InformationGainStrategy : public SelectionStrategy {
 public:
  std::string_view name() const override { return "InformationGain"; }

  std::optional<CorrespondenceId> Select(const ProbabilisticNetwork& pmn,
                                         Rng* rng) override {
    const auto uncertain = pmn.UncertainCorrespondences();
    if (uncertain.empty()) return std::nullopt;
    const std::vector<double> gains = pmn.InformationGains();
    double best = -1.0;
    for (CorrespondenceId c : uncertain) best = std::max(best, gains[c]);
    // The paper breaks ties uniformly at random.
    constexpr double kTie = 1e-12;
    std::vector<CorrespondenceId> tied;
    for (CorrespondenceId c : uncertain) {
      if (gains[c] >= best - kTie) tied.push_back(c);
    }
    return tied[rng->Index(tied.size())];
  }
};

class MaxEntropyStrategy : public SelectionStrategy {
 public:
  std::string_view name() const override { return "MaxEntropy"; }

  std::optional<CorrespondenceId> Select(const ProbabilisticNetwork& pmn,
                                         Rng* rng) override {
    const auto uncertain = pmn.UncertainCorrespondences();
    if (uncertain.empty()) return std::nullopt;
    double best_distance = 2.0;
    std::vector<CorrespondenceId> tied;
    for (CorrespondenceId c : uncertain) {
      const double distance = std::abs(pmn.probability(c) - 0.5);
      if (distance < best_distance - 1e-12) {
        best_distance = distance;
        tied.clear();
      }
      if (distance <= best_distance + 1e-12) tied.push_back(c);
    }
    return tied[rng->Index(tied.size())];
  }
};

class MinProbabilityStrategy : public SelectionStrategy {
 public:
  std::string_view name() const override { return "MinProbability"; }

  std::optional<CorrespondenceId> Select(const ProbabilisticNetwork& pmn,
                                         Rng* rng) override {
    const auto uncertain = pmn.UncertainCorrespondences();
    if (uncertain.empty()) return std::nullopt;
    double best = 2.0;
    std::vector<CorrespondenceId> tied;
    for (CorrespondenceId c : uncertain) {
      const double p = pmn.probability(c);
      if (p < best - 1e-12) {
        best = p;
        tied.clear();
      }
      if (p <= best + 1e-12) tied.push_back(c);
    }
    return tied[rng->Index(tied.size())];
  }
};

class SequentialStrategy : public SelectionStrategy {
 public:
  std::string_view name() const override { return "Sequential"; }

  std::optional<CorrespondenceId> Select(const ProbabilisticNetwork& pmn,
                                         Rng* rng) override {
    (void)rng;
    const auto uncertain = pmn.UncertainCorrespondences();
    if (uncertain.empty()) return std::nullopt;
    return uncertain.front();  // UncertainCorrespondences is id-ascending.
  }
};

}  // namespace

std::string_view StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kRandom:
      return "Random";
    case StrategyKind::kInformationGain:
      return "InformationGain";
    case StrategyKind::kMaxEntropy:
      return "MaxEntropy";
    case StrategyKind::kMinProbability:
      return "MinProbability";
    case StrategyKind::kSequential:
      return "Sequential";
  }
  return "Unknown";
}

std::unique_ptr<SelectionStrategy> MakeStrategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kRandom:
      return std::make_unique<RandomStrategy>();
    case StrategyKind::kInformationGain:
      return std::make_unique<InformationGainStrategy>();
    case StrategyKind::kMaxEntropy:
      return std::make_unique<MaxEntropyStrategy>();
    case StrategyKind::kMinProbability:
      return std::make_unique<MinProbabilityStrategy>();
    case StrategyKind::kSequential:
      return std::make_unique<SequentialStrategy>();
  }
  return nullptr;
}

}  // namespace smn
