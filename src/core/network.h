#ifndef SMN_CORE_NETWORK_H_
#define SMN_CORE_NETWORK_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/correspondence.h"
#include "core/interaction_graph.h"
#include "core/schema.h"
#include "core/types.h"
#include "util/status.h"
#include "util/statusor.h"

namespace smn {

/// A network of schemas N = <S, G_S, Γ, C> minus the constraints: the
/// schemas, the interaction graph, and the candidate correspondence set C.
/// Constraints are attached separately via ConstraintSet so that the same
/// network can be analyzed under different constraint regimes.
///
/// Immutable after construction (build one with NetworkBuilder). All engine
/// components (sampler, reconciler, instantiation) hold a const reference.
class Network {
 public:
  /// Not copyable: engine components hold references into the network.
  Network(const Network&) = delete;
  /// Not copy-assignable.
  Network& operator=(const Network&) = delete;
  /// Movable.
  Network(Network&&) = default;
  /// Move assignment.
  Network& operator=(Network&&) = default;

  /// All schemas S, in insertion order.
  const std::vector<Schema>& schemas() const { return schemas_; }
  /// Schema by id.
  const Schema& schema(SchemaId id) const { return schemas_[id]; }
  /// |S|.
  size_t schema_count() const { return schemas_.size(); }

  /// All attributes across all schemas, in global id order.
  const std::vector<Attribute>& attributes() const { return attributes_; }
  /// Attribute by global id.
  const Attribute& attribute(AttributeId id) const { return attributes_[id]; }
  /// Total attribute count across schemas.
  size_t attribute_count() const { return attributes_.size(); }

  /// The interaction graph G_S over the schemas.
  const InteractionGraph& graph() const { return graph_; }

  /// The candidate correspondence set C, in id order.
  const std::vector<Correspondence>& correspondences() const {
    return correspondences_;
  }
  /// Candidate correspondence by id.
  const Correspondence& correspondence(CorrespondenceId id) const {
    return correspondences_[id];
  }
  /// |C|.
  size_t correspondence_count() const { return correspondences_.size(); }

  /// Finds the candidate correspondence connecting attributes `a` and `b`
  /// (order-insensitive), or nullopt when the pair is not a candidate.
  std::optional<CorrespondenceId> FindCorrespondence(AttributeId a,
                                                     AttributeId b) const;

  /// Ids of all candidate correspondences that touch attribute `a`.
  const std::vector<CorrespondenceId>& CorrespondencesAt(AttributeId a) const {
    return by_attribute_[a];
  }

  /// Candidate correspondences between the (unordered) schema pair; empty
  /// when the pair is not an edge of the interaction graph or has no
  /// candidates.
  std::vector<CorrespondenceId> CorrespondencesBetween(SchemaId s1,
                                                       SchemaId s2) const;

  /// Human-readable rendering "SA.productionDate ~ SB.date (0.83)".
  std::string DescribeCorrespondence(CorrespondenceId id) const;

 private:
  friend class NetworkBuilder;
  Network(std::vector<Schema> schemas, std::vector<Attribute> attributes,
          InteractionGraph graph, std::vector<Correspondence> correspondences);

  std::vector<Schema> schemas_;
  std::vector<Attribute> attributes_;
  InteractionGraph graph_;
  std::vector<Correspondence> correspondences_;
  // attribute id -> candidate correspondences touching it.
  std::vector<std::vector<CorrespondenceId>> by_attribute_;
  // Packed (min_attr, max_attr) -> correspondence id.
  std::unordered_map<uint64_t, CorrespondenceId> by_pair_;
};

/// Incremental builder for Network. Usage:
///
///   NetworkBuilder b;
///   SchemaId sa = b.AddSchema("SA");
///   AttributeId pd = *b.AddAttribute(sa, "productionDate");
///   b.AddEdge(sa, sb);
///   b.AddCorrespondence(pd, date, 0.9);
///   SMN_ASSIGN_OR_RETURN(Network net, b.Build());
class NetworkBuilder {
 public:
  /// An empty builder: add schemas, attributes, edges, correspondences.
  NetworkBuilder() : graph_(0) {}

  /// Adds a schema and returns its id.
  SchemaId AddSchema(std::string name);

  /// Adds an attribute to `schema`. Fails when the schema id is unknown or
  /// the attribute name duplicates an existing name in the same schema.
  StatusOr<AttributeId> AddAttribute(SchemaId schema, std::string name,
                                     AttributeType type = AttributeType::kUnknown);

  /// Declares that two schemas need to be matched.
  Status AddEdge(SchemaId a, SchemaId b);

  /// Adds edges between every pair of schemas.
  void AddCompleteGraph();

  /// Adds a candidate correspondence between two attributes of different
  /// schemas whose schema pair is an edge of the interaction graph.
  /// Duplicates are rejected.
  StatusOr<CorrespondenceId> AddCorrespondence(AttributeId a, AttributeId b,
                                               double confidence);

  /// Schemas added so far.
  size_t schema_count() const { return schemas_.size(); }
  /// Correspondences added so far.
  size_t correspondence_count() const { return correspondences_.size(); }

  /// Finalizes the network. The builder is left in a moved-from state.
  StatusOr<Network> Build();

 private:
  std::vector<Schema> schemas_;
  std::vector<Attribute> attributes_;
  InteractionGraph graph_;
  std::vector<Correspondence> correspondences_;
  std::unordered_map<uint64_t, CorrespondenceId> by_pair_;
  bool edges_added_ = false;
};

}  // namespace smn

#endif  // SMN_CORE_NETWORK_H_
