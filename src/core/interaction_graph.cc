#include "core/interaction_graph.h"

#include <algorithm>

namespace smn {

InteractionGraph::InteractionGraph(size_t schema_count)
    : schema_count_(schema_count), adjacency_(schema_count) {}

Status InteractionGraph::AddEdge(SchemaId a, SchemaId b) {
  if (a == b) {
    return Status::InvalidArgument("interaction graph edge must not be a self-loop");
  }
  if (a >= schema_count_ || b >= schema_count_) {
    return Status::OutOfRange("interaction graph edge endpoint out of range");
  }
  if (HasEdge(a, b)) {
    return Status::AlreadyExists("interaction graph edge already present");
  }
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  edges_.emplace_back(std::min(a, b), std::max(a, b));
  return Status::OK();
}

bool InteractionGraph::HasEdge(SchemaId a, SchemaId b) const {
  if (a >= schema_count_ || b >= schema_count_) return false;
  const auto& smaller =
      adjacency_[a].size() <= adjacency_[b].size() ? adjacency_[a] : adjacency_[b];
  const SchemaId target = adjacency_[a].size() <= adjacency_[b].size() ? b : a;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

std::vector<std::array<SchemaId, 3>> InteractionGraph::Triangles() const {
  std::vector<std::array<SchemaId, 3>> triangles;
  for (const auto& [a, b] : edges_) {
    // For each edge (a < b), every common neighbor c > b closes a triangle;
    // restricting to c > b reports each triangle exactly once.
    for (SchemaId c : adjacency_[a]) {
      if (c > b && HasEdge(b, c)) triangles.push_back({a, b, c});
    }
  }
  return triangles;
}

bool InteractionGraph::IsComplete() const {
  return edges_.size() == schema_count_ * (schema_count_ - 1) / 2;
}

}  // namespace smn
