#include "core/network.h"

#include <algorithm>

#include "util/string_util.h"

namespace smn {

namespace {

uint64_t PackPair(AttributeId a, AttributeId b) {
  const AttributeId lo = std::min(a, b);
  const AttributeId hi = std::max(a, b);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

}  // namespace

const char* AttributeTypeToString(AttributeType type) {
  switch (type) {
    case AttributeType::kUnknown:
      return "unknown";
    case AttributeType::kString:
      return "string";
    case AttributeType::kInteger:
      return "integer";
    case AttributeType::kDecimal:
      return "decimal";
    case AttributeType::kDate:
      return "date";
    case AttributeType::kBoolean:
      return "boolean";
  }
  return "unknown";
}

Network::Network(std::vector<Schema> schemas, std::vector<Attribute> attributes,
                 InteractionGraph graph,
                 std::vector<Correspondence> correspondences)
    : schemas_(std::move(schemas)),
      attributes_(std::move(attributes)),
      graph_(std::move(graph)),
      correspondences_(std::move(correspondences)),
      by_attribute_(attributes_.size()) {
  for (const Correspondence& c : correspondences_) {
    by_attribute_[c.left].push_back(c.id);
    by_attribute_[c.right].push_back(c.id);
    by_pair_.emplace(PackPair(c.left, c.right), c.id);
  }
}

std::optional<CorrespondenceId> Network::FindCorrespondence(
    AttributeId a, AttributeId b) const {
  auto it = by_pair_.find(PackPair(a, b));
  if (it == by_pair_.end()) return std::nullopt;
  return it->second;
}

std::vector<CorrespondenceId> Network::CorrespondencesBetween(
    SchemaId s1, SchemaId s2) const {
  const SchemaId lo = std::min(s1, s2);
  const SchemaId hi = std::max(s1, s2);
  std::vector<CorrespondenceId> result;
  for (const Correspondence& c : correspondences_) {
    if (c.left_schema == lo && c.right_schema == hi) result.push_back(c.id);
  }
  return result;
}

std::string Network::DescribeCorrespondence(CorrespondenceId id) const {
  const Correspondence& c = correspondences_[id];
  std::string out = schemas_[c.left_schema].name();
  out += '.';
  out += attributes_[c.left].name;
  out += " ~ ";
  out += schemas_[c.right_schema].name();
  out += '.';
  out += attributes_[c.right].name;
  out += " (";
  out += FormatDouble(c.confidence, 2);
  out += ')';
  return out;
}

SchemaId NetworkBuilder::AddSchema(std::string name) {
  const SchemaId id = static_cast<SchemaId>(schemas_.size());
  schemas_.emplace_back(id, std::move(name));
  return id;
}

StatusOr<AttributeId> NetworkBuilder::AddAttribute(SchemaId schema,
                                                   std::string name,
                                                   AttributeType type) {
  if (schema >= schemas_.size()) {
    return Status::OutOfRange("AddAttribute: unknown schema id");
  }
  for (AttributeId existing : schemas_[schema].attributes()) {
    if (attributes_[existing].name == name) {
      return Status::AlreadyExists("AddAttribute: duplicate attribute name '" +
                                   name + "' in schema " +
                                   schemas_[schema].name());
    }
  }
  const AttributeId id = static_cast<AttributeId>(attributes_.size());
  attributes_.push_back(Attribute{id, schema, std::move(name), type});
  schemas_[schema].AddAttribute(id);
  return id;
}

Status NetworkBuilder::AddEdge(SchemaId a, SchemaId b) {
  if (!edges_added_) {
    graph_ = InteractionGraph(schemas_.size());
    edges_added_ = true;
  }
  return graph_.AddEdge(a, b);
}

void NetworkBuilder::AddCompleteGraph() {
  graph_ = InteractionGraph(schemas_.size());
  edges_added_ = true;
  for (SchemaId a = 0; a < schemas_.size(); ++a) {
    for (SchemaId b = a + 1; b < schemas_.size(); ++b) {
      graph_.AddEdge(a, b);  // Cannot fail: fresh graph, distinct vertices.
    }
  }
}

StatusOr<CorrespondenceId> NetworkBuilder::AddCorrespondence(AttributeId a,
                                                             AttributeId b,
                                                             double confidence) {
  if (a >= attributes_.size() || b >= attributes_.size()) {
    return Status::OutOfRange("AddCorrespondence: unknown attribute id");
  }
  SchemaId sa = attributes_[a].schema;
  SchemaId sb = attributes_[b].schema;
  if (sa == sb) {
    return Status::InvalidArgument(
        "AddCorrespondence: both attributes belong to schema " +
        schemas_[sa].name());
  }
  if (!graph_.HasEdge(sa, sb)) {
    return Status::FailedPrecondition(
        "AddCorrespondence: schema pair is not an interaction graph edge");
  }
  const uint64_t key = PackPair(a, b);
  if (by_pair_.count(key) > 0) {
    return Status::AlreadyExists("AddCorrespondence: duplicate correspondence");
  }
  // Canonical orientation: smaller schema id on the left.
  AttributeId left = a, right = b;
  if (sb < sa) {
    std::swap(left, right);
    std::swap(sa, sb);
  }
  const CorrespondenceId id = static_cast<CorrespondenceId>(correspondences_.size());
  correspondences_.push_back(Correspondence{id, left, right, sa, sb, confidence});
  by_pair_.emplace(key, id);
  return id;
}

StatusOr<Network> NetworkBuilder::Build() {
  if (schemas_.empty()) {
    return Status::FailedPrecondition("Build: network has no schemas");
  }
  if (!edges_added_) {
    graph_ = InteractionGraph(schemas_.size());
  }
  return Network(std::move(schemas_), std::move(attributes_), std::move(graph_),
                 std::move(correspondences_));
}

}  // namespace smn
