#include "core/sample_store.h"

#include <unordered_set>
#include <utility>

#include "core/exact_enumerator.h"

namespace smn {

SampleStore::SampleStore(const Network& network,
                         const ConstraintSet& constraints,
                         SampleStoreOptions options)
    : network_(network),
      constraints_(constraints),
      sampler_(network, constraints, options.sampling),
      options_(options) {}

Status SampleStore::Initialize(const Feedback& feedback, Rng* rng) {
  samples_.clear();
  chain_diagnostics_ = ChainDiagnostics{};
  exhausted_ = false;
  return TopUp(feedback, rng);
}

Status SampleStore::ApplyAssertion(CorrespondenceId c, bool approved,
                                   const Feedback& feedback, Rng* rng) {
  // View maintenance: approvals keep the instances containing c,
  // disapprovals keep the instances without c.
  std::vector<DynamicBitset> kept;
  kept.reserve(samples_.size());
  for (DynamicBitset& sample : samples_) {
    if (sample.Test(c) == approved) kept.push_back(std::move(sample));
  }
  samples_ = std::move(kept);

  if (exhausted_ && approved) {
    // Filtering a complete Ω by an approval yields exactly the new Ω:
    // maximality is judged against C \ (F- ∪ I), which approvals do not
    // change. No re-sampling needed.
    return Status::OK();
  }
  // Disapprovals can create matching instances that did not exist before (a
  // set that was extendable only by c becomes maximal), so the exhausted
  // flag must be re-established by fresh sampling.
  if (!approved) exhausted_ = false;
  if (samples_.size() < options_.min_samples) {
    return TopUp(feedback, rng);
  }
  return Status::OK();
}

Status SampleStore::TopUp(const Feedback& feedback, Rng* rng) {
  // Tiny candidate sets: enumerate Ω outright — exact, and immune to the
  // sampling walk's reachability quirks.
  if (network_.correspondence_count() <= options_.exact_threshold) {
    ExactEnumerator enumerator(network_, constraints_,
                               options_.exact_threshold);
    SMN_ASSIGN_OR_RETURN(ExactEnumerationResult result,
                         enumerator.Enumerate(feedback));
    samples_ = std::move(result.instances);
    chain_diagnostics_ = ChainDiagnostics{};
    chain_diagnostics_.exact = true;  // Nothing sampled, nothing to distrust.
    exhausted_ = true;
    return Status::OK();
  }
  // Two consecutive sampling rounds that cannot produce n_min distinct
  // instances imply the instance space itself is smaller than n_min
  // (Section III-B); in that case Ω* is deduplicated and declared complete.
  for (int round = 0; round < 2; ++round) {
    const size_t missing = options_.target_samples > samples_.size()
                               ? options_.target_samples - samples_.size()
                               : 0;
    if (missing == 0) break;
    SMN_ASSIGN_OR_RETURN(std::vector<std::vector<DynamicBitset>> chains,
                         sampler_.SampleChains(feedback, missing, rng));
    chain_diagnostics_ =
        ComputeChainDiagnostics(chains, network_.correspondence_count());
    // Chain-major merge keeps the store's sample order a pure function of
    // the seed, independent of worker-thread scheduling.
    for (std::vector<DynamicBitset>& chain : chains) {
      for (DynamicBitset& sample : chain) samples_.push_back(std::move(sample));
    }
    if (DistinctCount() >= options_.min_samples) {
      exhausted_ = false;
      return Status::OK();
    }
    // Keep only the distinct instances before the second attempt so the next
    // round measures fresh discovery.
    Deduplicate();
  }
  exhausted_ = true;
  Deduplicate();
  return Status::OK();
}

void SampleStore::Deduplicate() {
  std::unordered_set<DynamicBitset, DynamicBitsetHash> seen;
  std::vector<DynamicBitset> unique;
  for (DynamicBitset& sample : samples_) {
    if (seen.insert(sample).second) unique.push_back(std::move(sample));
  }
  samples_ = std::move(unique);
}

size_t SampleStore::DistinctCount() const {
  std::unordered_set<DynamicBitset, DynamicBitsetHash> seen;
  for (const DynamicBitset& sample : samples_) seen.insert(sample);
  return seen.size();
}

std::vector<double> SampleStore::ComputeWeightedProbabilities(
    const SoftEvidence& evidence) const {
  const size_t n = network_.correspondence_count();
  if (samples_.empty() || evidence.evidenced().None()) {
    return ComputeProbabilities();
  }
  const std::vector<double> weights =
      ComputeImportanceWeights(evidence, samples_);
  double total = 0.0;
  for (double w : weights) total += w;
  if (weights.empty() || total <= 0.0) return ComputeProbabilities();
  std::vector<double> probabilities(n, 0.0);
  for (size_t i = 0; i < samples_.size(); ++i) {
    const double w = weights[i];
    if (w <= 0.0) continue;
    samples_[i].ForEachSetBit([&](size_t c) { probabilities[c] += w; });
  }
  for (size_t c = 0; c < n; ++c) probabilities[c] /= total;
  return probabilities;
}

std::vector<double> SampleStore::ComputeProbabilities() const {
  const size_t n = network_.correspondence_count();
  std::vector<double> probabilities(n, 0.0);
  if (samples_.empty()) return probabilities;
  std::vector<size_t> counts(n, 0);
  for (const DynamicBitset& sample : samples_) {
    sample.ForEachSetBit([&](size_t c) { ++counts[c]; });
  }
  const double denom = static_cast<double>(samples_.size());
  for (size_t c = 0; c < n; ++c) {
    probabilities[c] = static_cast<double>(counts[c]) / denom;
  }
  return probabilities;
}

}  // namespace smn
