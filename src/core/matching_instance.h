#ifndef SMN_CORE_MATCHING_INSTANCE_H_
#define SMN_CORE_MATCHING_INSTANCE_H_

#include "core/constraint_set.h"
#include "core/feedback.h"
#include "core/walk_scratch.h"
#include "util/dynamic_bitset.h"
#include "util/rng.h"

namespace smn {

/// Predicates and operations on matching instances (Definition 1 of the
/// paper). A matching instance I ⊆ C is:
///   - consistent: I ⊨ Γ, F+ ⊆ I, F- ∩ I = ∅;
///   - maximal:    no c ∈ C \ (F- ∪ I) exists with I ∪ {c} ⊨ Γ.
/// Instances are bitsets over the candidate correspondence set C.

/// True when `selection` satisfies all constraints and respects the feedback.
bool IsConsistentInstance(const ConstraintSet& constraints,
                          const Feedback& feedback,
                          const DynamicBitset& selection);

/// True when no single unasserted correspondence can be added to the
/// (consistent) `selection` without violating a constraint.
bool IsMaximalInstance(const ConstraintSet& constraints,
                       const Feedback& feedback,
                       const DynamicBitset& selection);

/// True when `selection` is a matching instance per Definition 1.
bool IsMatchingInstance(const ConstraintSet& constraints,
                        const Feedback& feedback,
                        const DynamicBitset& selection);

/// Greedily extends a consistent `selection` until it is maximal, adding
/// addable correspondences in random order (randomization keeps the sampler
/// unbiased across the maximal instances extending the input). The input
/// must be consistent. The candidate shuffle buffer lives in `*scratch`, so
/// per-sample maximalization in the walk allocates nothing at steady state.
void Maximalize(const ConstraintSet& constraints, const Feedback& feedback,
                Rng* rng, DynamicBitset* selection, WalkScratch* scratch);

/// Convenience overload backed by a per-thread scratch; identical results.
void Maximalize(const ConstraintSet& constraints, const Feedback& feedback,
                Rng* rng, DynamicBitset* selection);

/// The repair distance Δ(I, C) of the paper: |I \ C| + |C \ I|. Since
/// instances are subsets of C this equals |C| - |I|.
size_t RepairDistance(const DynamicBitset& instance, size_t candidate_count);

}  // namespace smn

#endif  // SMN_CORE_MATCHING_INSTANCE_H_
