#ifndef SMN_CORE_SELECTION_STRATEGY_H_
#define SMN_CORE_SELECTION_STRATEGY_H_

#include <memory>
#include <optional>
#include <string_view>

#include "core/probabilistic_network.h"
#include "core/types.h"
#include "util/rng.h"

namespace smn {

/// The `select` routine of Algorithm 1: picks the next correspondence whose
/// assertion is elicited from the expert. Only uncertain correspondences
/// (0 < p_c < 1) are eligible — asserted or otherwise certain ones carry no
/// information gain.
class SelectionStrategy {
 public:
  /// Virtual destructor: strategies are held via base-class pointers.
  virtual ~SelectionStrategy() = default;

  /// Strategy name for reports ("Random", "InformationGain", ...).
  virtual std::string_view name() const = 0;

  /// Returns the next correspondence to assert, or nullopt when no uncertain
  /// correspondence remains (reconciliation is complete).
  virtual std::optional<CorrespondenceId> Select(
      const ProbabilisticNetwork& pmn, Rng* rng) = 0;
};

/// Identifies a built-in strategy.
enum class StrategyKind {
  /// Uniformly random uncertain correspondence — the paper's baseline.
  kRandom,
  /// Highest information gain (Eqs. 4-5) — the paper's Heuristic; ties are
  /// broken uniformly at random.
  kInformationGain,
  /// Highest marginal entropy, i.e. probability closest to 1/2. A cheaper
  /// decision-theoretic baseline that ignores correlations between
  /// correspondences (extension beyond the paper, used in ablations).
  kMaxEntropy,
  /// Lowest probability first: tackle the most suspicious candidates.
  /// (Extension, used in ablations.)
  kMinProbability,
  /// Ascending correspondence id: models an unguided expert sweeping the
  /// matcher output in file order. (Extension, used in ablations.)
  kSequential,
};

/// Short display name of a strategy kind.
std::string_view StrategyKindName(StrategyKind kind);

/// Creates a fresh strategy instance of the given kind.
std::unique_ptr<SelectionStrategy> MakeStrategy(StrategyKind kind);

}  // namespace smn

#endif  // SMN_CORE_SELECTION_STRATEGY_H_
