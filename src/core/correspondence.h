#ifndef SMN_CORE_CORRESPONDENCE_H_
#define SMN_CORE_CORRESPONDENCE_H_

#include "core/types.h"

namespace smn {

/// An attribute correspondence (a, b) between two schemas, as produced by a
/// matcher. Stored in canonical form: the endpoint belonging to the schema
/// with the smaller id comes first. `confidence` is the raw matcher score in
/// [0, 1]; the paper treats it as unreliable and recomputes probabilities
/// from the constraint structure instead.
struct Correspondence {
  /// Index within the network's candidate set C.
  CorrespondenceId id = kInvalidCorrespondence;
  /// Endpoint in the schema with the smaller id.
  AttributeId left = kInvalidAttribute;
  /// Endpoint in the schema with the larger id.
  AttributeId right = kInvalidAttribute;
  /// Schema of `left` (the smaller schema id).
  SchemaId left_schema = kInvalidSchema;
  /// Schema of `right` (the larger schema id).
  SchemaId right_schema = kInvalidSchema;
  /// Raw matcher score in [0, 1].
  double confidence = 0.0;

  /// True when this correspondence touches attribute `a`.
  bool Involves(AttributeId a) const { return left == a || right == a; }

  /// Returns the endpoint that is not `a`. Requires Involves(a).
  AttributeId OtherEnd(AttributeId a) const { return left == a ? right : left; }
};

}  // namespace smn

#endif  // SMN_CORE_CORRESPONDENCE_H_
