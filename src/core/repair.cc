#include "core/repair.h"

#include <utility>
#include <vector>

#include "constraints/cycle.h"
#include "constraints/one_to_one.h"

namespace smn {
namespace {

// --- Devirtualized constraint dispatch -------------------------------------
//
// The repair loop issues several violation queries per walk step; on the
// built-in (final) constraint classes the kind() tag lets us call them
// directly instead of through the vtable — the one deliberate
// core→constraints dependency of the engine, confined to this kernel (see
// ARCHITECTURE.md "hot path & scratch ownership"). Generic constraints take
// the virtual path unchanged.

void AppendConflictsInvolvingFast(const ConstraintSet& constraints,
                                  const DynamicBitset& selection,
                                  CorrespondenceId c,
                                  std::vector<KernelViolation>* out) {
  for (size_t i = 0; i < constraints.size(); ++i) {
    const Constraint& constraint = constraints.constraint(i);
    switch (constraint.kind()) {
      case ConstraintKind::kOneToOne:
        static_cast<const OneToOneConstraint&>(constraint)
            .AppendConflictsInvolving(selection, c, out);
        break;
      case ConstraintKind::kCycle:
        static_cast<const CycleConstraint&>(constraint)
            .AppendConflictsInvolving(selection, c, out);
        break;
      default:
        constraint.AppendConflictsInvolving(selection, c, out);
        break;
    }
  }
}

bool AdditionViolatesFast(const ConstraintSet& constraints,
                          const DynamicBitset& selection,
                          CorrespondenceId candidate) {
  for (size_t i = 0; i < constraints.size(); ++i) {
    const Constraint& constraint = constraints.constraint(i);
    switch (constraint.kind()) {
      case ConstraintKind::kOneToOne:
        if (static_cast<const OneToOneConstraint&>(constraint)
                .AdditionViolates(selection, candidate)) {
          return true;
        }
        break;
      case ConstraintKind::kCycle:
        if (static_cast<const CycleConstraint&>(constraint)
                .AdditionViolates(selection, candidate)) {
          return true;
        }
        break;
      default:
        if (constraint.AdditionViolates(selection, candidate)) return true;
        break;
    }
  }
  return false;
}

void AppendConflictsCreatedByRemovalFast(const ConstraintSet& constraints,
                                         const DynamicBitset& selection,
                                         CorrespondenceId removed,
                                         std::vector<KernelViolation>* out) {
  for (size_t i = 0; i < constraints.size(); ++i) {
    const Constraint& constraint = constraints.constraint(i);
    switch (constraint.kind()) {
      case ConstraintKind::kOneToOne:
        break;  // One-to-one removals never create violations.
      case ConstraintKind::kCycle:
        static_cast<const CycleConstraint&>(constraint)
            .AppendConflictsCreatedByRemoval(selection, removed, out);
        break;
      default:
        constraint.AppendConflictsCreatedByRemoval(selection, removed, out);
        break;
    }
  }
}

/// Shared repair loop over the scratch's violation worklist, which must list
/// exactly the violations present in `*instance`. `protected_added` is the
/// correspondence shielded from removal alongside F+ (or
/// kInvalidCorrespondence for none). When `allow_cascade_closures` is set,
/// closures may introduce follow-up violations (required to complete a
/// chain-open F+ where removal is forbidden); the conservative mode keeps
/// the walk repair local and well-behaved.
///
/// Kernel discipline: all working state lives in `*scratch` — the worklist,
/// the sparse victim counters (`counts` over the `touched` ids only, instead
/// of a per-call zero-fill and full-n victim scan), and the closure bitset —
/// so steady-state calls allocate nothing. The algorithm itself (tier order,
/// worklist order, victim tie-breaks) is unchanged from the naive loop, so
/// repaired instances are bit-identical.
bool RepairLoop(const ConstraintSet& constraints, const Feedback& feedback,
                CorrespondenceId protected_added, DynamicBitset* instance,
                WalkScratch* scratch, const RepairOptions& options,
                bool allow_cascade_closures) {
  std::vector<KernelViolation>& violations = scratch->worklist;
  if (violations.empty()) return true;

  bool added_protected = protected_added != kInvalidCorrespondence;
  // Each correspondence gets at most one closure attempt per repair call;
  // this bounds the additions and guarantees termination. The bitset is
  // cleared lazily here rather than on exit so the violation-free fast path
  // above never touches it.
  scratch->closure_tried.Clear();

  // Marks `p` as participating in one more violation of the current
  // worklist, registering it in the touched overlay on first sight.
  auto bump = [&](CorrespondenceId p) {
    if (scratch->counts[p]++ == 0) scratch->touched.push_back(p);
  };

  while (!violations.empty()) {
    // Phase 1: close an open chain. Tier one accepts only closings that
    // introduce no new violations — probed with the compiled
    // AdditionViolates ("would any violation involve this closing?") instead
    // of materializing the introduced set and rolling back. Tier two (needed
    // when the open chain sits inside the protected F+, where removal is not
    // an option) accepts a closing that cascades, queueing the violations it
    // introduces. The once-per-correspondence closure bound keeps both tiers
    // terminating.
    if (options.close_cycles) {
      bool closed = false;
      auto closure_eligible = [&](CorrespondenceId missing) {
        return missing != kInvalidCorrespondence && !instance->Test(missing) &&
               !feedback.IsDisapproved(missing) &&
               !scratch->closure_tried.Test(missing);
      };
      auto accept_closure = [&](CorrespondenceId missing, bool with_cascade) {
        scratch->closure_tried.Set(missing);
        // Drop every violation this closing correspondence fixes; queue
        // whatever the cascade opened.
        scratch->pending.clear();
        for (const KernelViolation& v : violations) {
          if (v.missing != missing) scratch->pending.push_back(v);
        }
        if (with_cascade) {
          for (const KernelViolation& v : scratch->introduced) {
            scratch->pending.push_back(v);
          }
        }
        std::swap(violations, scratch->pending);
        closed = true;
      };
      for (const KernelViolation& violation : violations) {
        const CorrespondenceId missing = violation.missing;
        if (!closure_eligible(missing)) continue;
        if (AdditionViolatesFast(constraints, *instance, missing)) {
          continue;  // Cascades; retry in the cascading tier.
        }
        instance->Set(missing);
        accept_closure(missing, /*with_cascade=*/false);
        break;
      }
      if (!closed && allow_cascade_closures) {
        for (const KernelViolation& violation : violations) {
          const CorrespondenceId missing = violation.missing;
          if (!closure_eligible(missing)) continue;
          instance->Set(missing);
          scratch->introduced.clear();
          AppendConflictsInvolvingFast(constraints, *instance, missing,
                                       &scratch->introduced);
          accept_closure(missing, /*with_cascade=*/true);
          break;
        }
      }
      if (closed) continue;
    }

    // Phase 2: greedy removal of the most-violating correspondence. Reset
    // only the counters the previous iteration dirtied, then recount from
    // the (small) worklist.
    for (CorrespondenceId p : scratch->touched) scratch->counts[p] = 0;
    scratch->touched.clear();
    for (const KernelViolation& v : violations) {
      bump(v.a);
      if (v.b != kInvalidCorrespondence) bump(v.b);
    }
    // Highest count wins, ties broken toward the lowest id — the same
    // victim the naive ascending full-n scan with a strict `>` picks.
    auto pick_victim = [&](bool protect_added) -> CorrespondenceId {
      CorrespondenceId best = kInvalidCorrespondence;
      uint32_t best_count = 0;
      for (CorrespondenceId c : scratch->touched) {
        if (!instance->Test(c)) continue;
        if (feedback.IsApproved(c)) continue;
        if (protect_added && c == protected_added) continue;
        const uint32_t count = scratch->counts[c];
        if (count > best_count || (count == best_count && c < best)) {
          best_count = count;
          best = c;
        }
      }
      return best;
    };

    CorrespondenceId victim = pick_victim(added_protected);
    if (victim == kInvalidCorrespondence && added_protected) {
      // Only the added correspondence itself can resolve the violations.
      added_protected = false;
      victim = pick_victim(false);
    }
    if (victim == kInvalidCorrespondence) {
      // Leave the counters clean for the next kernel call before bailing.
      for (CorrespondenceId p : scratch->touched) scratch->counts[p] = 0;
      scratch->touched.clear();
      return false;  // Dead end: only approved correspondences involved.
    }

    instance->Reset(victim);
    scratch->pending.clear();
    for (const KernelViolation& v : violations) {
      if (!v.Involves(victim)) scratch->pending.push_back(v);
    }
    // Removals can re-open triangles of the cycle constraint.
    AppendConflictsCreatedByRemovalFast(constraints, *instance, victim,
                                        &scratch->pending);
    std::swap(violations, scratch->pending);
  }
  for (CorrespondenceId p : scratch->touched) scratch->counts[p] = 0;
  scratch->touched.clear();
  return true;
}

/// Message for the loop's dead-end outcome (see RepairLoop).
Status DeadEndStatus() {
  return Status::Internal(
      "repair: violations involve only approved correspondences; "
      "the approved set F+ is itself inconsistent");
}

}  // namespace

bool RepairProposal(const ConstraintSet& constraints, const Feedback& feedback,
                    CorrespondenceId added, DynamicBitset* instance,
                    WalkScratch* scratch, const RepairOptions& options) {
  instance->Set(added);
  scratch->worklist.clear();
  AppendConflictsInvolvingFast(constraints, *instance, added,
                               &scratch->worklist);
  return RepairLoop(constraints, feedback, added, instance, scratch, options,
                    /*allow_cascade_closures=*/false);
}

Status RepairInstance(const ConstraintSet& constraints, const Feedback& feedback,
                      CorrespondenceId added, DynamicBitset* instance,
                      WalkScratch* scratch, const RepairOptions& options) {
  if (added >= instance->size()) {
    return Status::OutOfRange("RepairInstance: correspondence id out of range");
  }
  if (instance->Test(added)) {
    // Already present in a consistent instance: nothing to do.
    return Status::OK();
  }
  scratch->Prepare(instance->size());
  // The base instance was consistent, so every violation involves `added`.
  if (!RepairProposal(constraints, feedback, added, instance, scratch,
                      options)) {
    return DeadEndStatus();
  }
  return Status::OK();
}

Status RepairAll(const ConstraintSet& constraints, const Feedback& feedback,
                 DynamicBitset* instance, WalkScratch* scratch,
                 const RepairOptions& options) {
  scratch->Prepare(instance->size());
  scratch->worklist.clear();
  constraints.AppendConflicts(*instance, &scratch->worklist);
  if (!RepairLoop(constraints, feedback, kInvalidCorrespondence, instance,
                  scratch, options, /*allow_cascade_closures=*/true)) {
    return DeadEndStatus();
  }
  return Status::OK();
}

Status RepairInstance(const ConstraintSet& constraints, const Feedback& feedback,
                      CorrespondenceId added, DynamicBitset* instance,
                      const RepairOptions& options) {
  return RepairInstance(constraints, feedback, added, instance,
                        &ThreadLocalWalkScratch(), options);
}

Status RepairAll(const ConstraintSet& constraints, const Feedback& feedback,
                 DynamicBitset* instance, const RepairOptions& options) {
  return RepairAll(constraints, feedback, instance, &ThreadLocalWalkScratch(),
                   options);
}

}  // namespace smn
