#include "core/repair.h"

#include <algorithm>
#include <vector>

namespace smn {
namespace {

/// Shared repair loop. `violations` must list exactly the violations present
/// in `*instance`; `protected_added` is the correspondence shielded from
/// removal alongside F+ (or kInvalidCorrespondence for none). When
/// `allow_cascade` is set, closures may introduce follow-up violations
/// (required to complete a chain-open F+ where removal is forbidden); the
/// conservative mode keeps the walk repair local and well-behaved.
Status RepairLoop(const ConstraintSet& constraints, const Feedback& feedback,
                  CorrespondenceId protected_added,
                  std::vector<Violation> violations, DynamicBitset* instance,
                  const RepairOptions& options, bool allow_cascade_closures) {
  const size_t n = instance->size();
  std::vector<uint32_t> counts(n, 0);
  bool added_protected = protected_added != kInvalidCorrespondence;
  // Each correspondence gets at most one closure attempt per repair call;
  // this bounds the additions and guarantees termination.
  DynamicBitset closure_tried(n);

  while (!violations.empty()) {
    // Phase 1: close an open chain. Tier one accepts only closings that
    // introduce no new violations; tier two (needed when the open chain sits
    // inside the protected F+, where removal is not an option) accepts a
    // closing that cascades, queueing the violations it introduces. The
    // once-per-correspondence closure bound keeps both tiers terminating.
    if (options.close_cycles) {
      bool closed = false;
      for (const bool allow_cascade : {false, true}) {
        if (allow_cascade && !allow_cascade_closures) break;
        for (const Violation& violation : violations) {
          const CorrespondenceId missing = violation.missing;
          if (missing == kInvalidCorrespondence || instance->Test(missing) ||
              feedback.IsDisapproved(missing) || closure_tried.Test(missing)) {
            continue;
          }
          instance->Set(missing);
          std::vector<Violation> introduced =
              constraints.FindViolationsInvolving(*instance, missing);
          if (!introduced.empty() && !allow_cascade) {
            instance->Reset(missing);  // Retry in the cascading tier.
            continue;
          }
          closure_tried.Set(missing);
          // Drop every violation this closing correspondence fixes; queue
          // whatever the cascade opened.
          std::vector<Violation> remaining;
          remaining.reserve(violations.size() + introduced.size());
          for (Violation& v : violations) {
            if (v.missing != missing) remaining.push_back(std::move(v));
          }
          for (Violation& v : introduced) remaining.push_back(std::move(v));
          violations = std::move(remaining);
          closed = true;
          break;
        }
        if (closed) break;
      }
      if (closed) continue;
    }

    // Phase 2: greedy removal of the most-violating correspondence.
    std::fill(counts.begin(), counts.end(), 0);
    for (const Violation& v : violations) {
      for (CorrespondenceId p : v.participants) ++counts[p];
    }
    auto pick_victim = [&](bool protect_added) -> CorrespondenceId {
      CorrespondenceId best = kInvalidCorrespondence;
      uint32_t best_count = 0;
      for (CorrespondenceId c = 0; c < n; ++c) {
        if (counts[c] == 0 || !instance->Test(c)) continue;
        if (feedback.IsApproved(c)) continue;
        if (protect_added && c == protected_added) continue;
        if (counts[c] > best_count) {
          best_count = counts[c];
          best = c;
        }
      }
      return best;
    };

    CorrespondenceId victim = pick_victim(added_protected);
    if (victim == kInvalidCorrespondence && added_protected) {
      // Only the added correspondence itself can resolve the violations.
      added_protected = false;
      victim = pick_victim(false);
    }
    if (victim == kInvalidCorrespondence) {
      return Status::Internal(
          "repair: violations involve only approved correspondences; "
          "the approved set F+ is itself inconsistent");
    }

    instance->Reset(victim);
    std::vector<Violation> next;
    next.reserve(violations.size());
    for (Violation& v : violations) {
      if (!v.Involves(victim)) next.push_back(std::move(v));
    }
    // Removals can re-open triangles of the cycle constraint.
    for (Violation& v :
         constraints.FindViolationsCreatedByRemoval(*instance, victim)) {
      next.push_back(std::move(v));
    }
    violations = std::move(next);
  }
  return Status::OK();
}

}  // namespace

Status RepairInstance(const ConstraintSet& constraints, const Feedback& feedback,
                      CorrespondenceId added, DynamicBitset* instance,
                      const RepairOptions& options) {
  if (added >= instance->size()) {
    return Status::OutOfRange("RepairInstance: correspondence id out of range");
  }
  if (instance->Test(added)) {
    // Already present in a consistent instance: nothing to do.
    return Status::OK();
  }
  instance->Set(added);
  // The base instance was consistent, so every violation involves `added`.
  std::vector<Violation> violations =
      constraints.FindViolationsInvolving(*instance, added);
  return RepairLoop(constraints, feedback, added, std::move(violations),
                    instance, options, /*allow_cascade_closures=*/false);
}

Status RepairAll(const ConstraintSet& constraints, const Feedback& feedback,
                 DynamicBitset* instance, const RepairOptions& options) {
  return RepairLoop(constraints, feedback, kInvalidCorrespondence,
                    constraints.FindViolations(*instance), instance, options,
                    /*allow_cascade_closures=*/true);
}

}  // namespace smn
