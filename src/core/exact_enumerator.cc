#include "core/exact_enumerator.h"

#include "core/matching_instance.h"

namespace smn {

ExactEnumerator::ExactEnumerator(const Network& network,
                                 const ConstraintSet& constraints,
                                 size_t max_candidates)
    : network_(network),
      constraints_(constraints),
      max_candidates_(max_candidates) {}

StatusOr<ExactEnumerationResult> ExactEnumerator::Enumerate(
    const Feedback& feedback) const {
  const size_t n = network_.correspondence_count();
  if (n > max_candidates_ || n > 63) {
    return Status::InvalidArgument(
        "ExactEnumerator: candidate set too large for exhaustive enumeration");
  }

  ExactEnumerationResult result;
  result.probabilities.assign(n, 0.0);

  uint64_t fplus = 0;
  uint64_t fminus = 0;
  for (CorrespondenceId c = 0; c < n; ++c) {
    if (feedback.IsApproved(c)) fplus |= (1ULL << c);
    if (feedback.IsDisapproved(c)) fminus |= (1ULL << c);
  }

  std::vector<size_t> counts(n, 0);
  const uint64_t limit = 1ULL << n;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    if ((mask & fplus) != fplus) continue;   // F+ ⊆ I
    if ((mask & fminus) != 0) continue;      // F- ∩ I = ∅
    DynamicBitset selection = DynamicBitset::FromWord(n, mask);
    if (!constraints_.IsSatisfied(selection)) continue;
    if (!IsMaximalInstance(constraints_, feedback, selection)) continue;
    selection.ForEachSetBit([&](size_t c) { ++counts[c]; });
    result.instances.push_back(std::move(selection));
  }

  if (!result.instances.empty()) {
    const double denom = static_cast<double>(result.instances.size());
    for (size_t c = 0; c < n; ++c) {
      result.probabilities[c] = static_cast<double>(counts[c]) / denom;
    }
  }
  return result;
}

StatusOr<size_t> ExactEnumerator::CountInstances(const Feedback& feedback) const {
  SMN_ASSIGN_OR_RETURN(ExactEnumerationResult result, Enumerate(feedback));
  return result.instances.size();
}

}  // namespace smn
