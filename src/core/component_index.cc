#include "core/component_index.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace smn {

StatusOr<DeterminedSet> PropagateFeedback(const ConstraintSet& constraints,
                                          const Feedback& feedback,
                                          size_t correspondence_count) {
  DeterminedSet determined;
  determined.approved = feedback.approved();
  determined.disapproved = feedback.disapproved();
  // Iterate constraint unit propagation to a fixpoint. Each productive round
  // determines at least one more correspondence, so the loop runs at most
  // |C| + 1 times.
  std::vector<std::pair<CorrespondenceId, bool>> forced;
  for (size_t round = 0; round <= correspondence_count; ++round) {
    forced.clear();
    SMN_RETURN_IF_ERROR(constraints.PropagateDetermined(
        determined.approved, determined.disapproved, &forced));
    bool changed = false;
    for (const auto& [c, value] : forced) {
      if (value) {
        if (determined.disapproved.Test(c)) {
          return Status::FailedPrecondition(
              "feedback closure contradiction: correspondence forced both in "
              "and out");
        }
        if (!determined.approved.Test(c)) {
          determined.approved.Set(c);
          changed = true;
        }
      } else {
        if (determined.approved.Test(c)) {
          return Status::FailedPrecondition(
              "feedback closure contradiction: correspondence forced both in "
              "and out");
        }
        if (!determined.disapproved.Test(c)) {
          determined.disapproved.Set(c);
          changed = true;
        }
      }
    }
    if (!changed) return determined;
  }
  return Status::Internal("feedback propagation failed to reach a fixpoint");
}

GroupIndex GroupIndex::Build(
    const std::vector<std::vector<CorrespondenceId>>& groups,
    size_t correspondence_count) {
  GroupIndex index;
  index.group_count_ = groups.size();
  index.offsets_.assign(correspondence_count + 1, 0);
  for (const auto& group : groups) {
    for (CorrespondenceId member : group) ++index.offsets_[member + 1];
  }
  for (size_t c = 0; c < correspondence_count; ++c) {
    index.offsets_[c + 1] += index.offsets_[c];
  }
  index.group_ids_.assign(index.offsets_[correspondence_count], 0);
  std::vector<uint32_t> fill(index.offsets_.begin(), index.offsets_.end() - 1);
  // Filling in group order keeps each row sorted by group id.
  for (uint32_t g = 0; g < groups.size(); ++g) {
    for (CorrespondenceId member : groups[g]) {
      index.group_ids_[fill[member]++] = g;
    }
  }
  return index;
}

namespace {

/// Plain union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
};

}  // namespace

ComponentIndex ComponentIndex::Build(
    const std::vector<std::vector<CorrespondenceId>>& groups,
    const DynamicBitset& active, size_t correspondence_count) {
  UnionFind uf(correspondence_count);
  for (const auto& group : groups) {
    CorrespondenceId previous = kInvalidCorrespondence;
    for (CorrespondenceId member : group) {
      if (!active.Test(member)) continue;  // Determined: transmits nothing.
      if (previous != kInvalidCorrespondence) uf.Union(previous, member);
      previous = member;
    }
  }

  ComponentIndex index;
  index.component_of_.assign(correspondence_count, kNoComponent);
  // Roots appear in ascending member order, so components come out sorted by
  // anchor and members ascending without an extra sort.
  std::vector<size_t> root_to_component(correspondence_count, kNoComponent);
  active.ForEachSetBit([&](size_t c) {
    const size_t root = uf.Find(c);
    size_t component = root_to_component[root];
    if (component == kNoComponent) {
      component = index.components_.size();
      root_to_component[root] = component;
      index.components_.push_back(
          ConstraintComponent{static_cast<CorrespondenceId>(c), {}});
    }
    index.components_[component].members.push_back(
        static_cast<CorrespondenceId>(c));
    index.component_of_[c] = component;
  });
  return index;
}

ComponentIndex ComponentIndex::BuildRestricted(
    const std::vector<std::vector<CorrespondenceId>>& groups,
    const GroupIndex& group_index, const DynamicBitset& active,
    size_t correspondence_count) {
  UnionFind uf(correspondence_count);
  // Union only over the groups incident to an active member; every other
  // group links nothing (all its active-set tests fail), so the resulting
  // partition matches the full Build exactly. The final partition is
  // independent of union order, and the component extraction below depends
  // only on the partition, so visiting groups in active-member order is
  // safe.
  DynamicBitset seen(group_index.group_count());
  active.ForEachSetBit([&](size_t c) {
    group_index.ForEachGroupOf(
        static_cast<CorrespondenceId>(c), [&](uint32_t g) {
          if (seen.Test(g)) return;
          seen.Set(g);
          CorrespondenceId previous = kInvalidCorrespondence;
          for (CorrespondenceId member : groups[g]) {
            if (!active.Test(member)) continue;
            if (previous != kInvalidCorrespondence) uf.Union(previous, member);
            previous = member;
          }
        });
  });

  ComponentIndex index;
  index.component_of_.assign(correspondence_count, kNoComponent);
  std::vector<size_t> root_to_component(correspondence_count, kNoComponent);
  active.ForEachSetBit([&](size_t c) {
    const size_t root = uf.Find(c);
    size_t component = root_to_component[root];
    if (component == kNoComponent) {
      component = index.components_.size();
      root_to_component[root] = component;
      index.components_.push_back(
          ConstraintComponent{static_cast<CorrespondenceId>(c), {}});
    }
    index.components_[component].members.push_back(
        static_cast<CorrespondenceId>(c));
    index.component_of_[c] = component;
  });
  return index;
}

ComponentIndex ComponentIndex::FromComponents(
    std::vector<ConstraintComponent> components, size_t correspondence_count) {
  ComponentIndex index;
  index.components_ = std::move(components);
  index.component_of_.assign(correspondence_count, kNoComponent);
  for (size_t i = 0; i < index.components_.size(); ++i) {
    for (CorrespondenceId member : index.components_[i].members) {
      index.component_of_[member] = i;
    }
  }
  return index;
}

StatusOr<ComponentSubproblem> BuildComponentSubproblem(
    const Network& network, const ConstraintSet& constraints,
    const std::vector<std::vector<CorrespondenceId>>& groups,
    const ConstraintComponent& component, const DeterminedSet& determined,
    const std::vector<CorrespondenceId>* candidates,
    const GroupIndex* group_index) {
  const size_t n = network.correspondence_count();

  DynamicBitset candidate_set(n);
  if (candidates != nullptr) {
    for (CorrespondenceId c : *candidates) candidate_set.Set(c);
  } else {
    // Fresh derivation: members plus the determined-in closure reachable
    // through coupling groups. Boundary approvals are needed so chains that
    // condition a member on determined-in partners still compile (dropping
    // them would lose "member implies closing" implications); determined-out
    // correspondences are simply omitted, which encodes their absence
    // exactly (a chain whose closing is absent compiles as a hard conflict,
    // which is precisely what a determined-out closing means).
    for (CorrespondenceId member : component.members) {
      candidate_set.Set(member);
    }
    if (group_index != nullptr) {
      // Worklist closure: process each candidate's incident groups once.
      // A group's contribution (its determined-in members) is fixed, so one
      // visit per group suffices; every group touching the final candidate
      // set is reached through the candidate that first touched it.
      DynamicBitset seen(group_index->group_count());
      std::vector<CorrespondenceId> worklist(component.members);
      while (!worklist.empty()) {
        const CorrespondenceId c = worklist.back();
        worklist.pop_back();
        group_index->ForEachGroupOf(c, [&](uint32_t g) {
          if (seen.Test(g)) return;
          seen.Set(g);
          for (CorrespondenceId member : groups[g]) {
            if (determined.approved.Test(member) &&
                !candidate_set.Test(member)) {
              candidate_set.Set(member);
              worklist.push_back(member);
            }
          }
        });
      }
    } else {
      for (bool changed = true; changed;) {
        changed = false;
        for (const auto& group : groups) {
          bool touches = false;
          bool missing_approved = false;
          for (CorrespondenceId member : group) {
            if (candidate_set.Test(member)) {
              touches = true;
            } else if (determined.approved.Test(member)) {
              missing_approved = true;
            }
          }
          if (!touches || !missing_approved) continue;
          for (CorrespondenceId member : group) {
            if (determined.approved.Test(member) &&
                !candidate_set.Test(member)) {
              candidate_set.Set(member);
              changed = true;
            }
          }
        }
      }
    }
  }

  ComponentSubproblem subproblem;

  // Induced projection: keep only the attributes touched by a candidate,
  // their schemas, and the edges between included schemas, renumbering ids
  // monotonically (ascending global order). Constraint compilation observes
  // exactly the same structure it saw under a wholesale copy — incidence
  // pair order, endpoint-schema identity, HasEdge between included schemas
  // are all invariant under monotone renumbering — so the compiled tables
  // enumerate conflicts and chains in the same order and subproblem
  // sampling stays bit-identical, at O(component) instead of O(network)
  // build cost.
  DynamicBitset attribute_included(network.attribute_count());
  candidate_set.ForEachSetBit([&](size_t c) {
    const Correspondence& correspondence = network.correspondence(c);
    attribute_included.Set(correspondence.left);
    attribute_included.Set(correspondence.right);
  });
  std::vector<SchemaId> schema_local(network.schemas().size(),
                                     kInvalidSchema);
  std::vector<AttributeId> attribute_local(network.attribute_count(),
                                           kInvalidAttribute);
  NetworkBuilder builder;
  attribute_included.ForEachSetBit([&](size_t a) {
    const SchemaId schema = network.attribute(a).schema;
    if (schema_local[schema] == kInvalidSchema) {
      schema_local[schema] = builder.AddSchema(network.schemas()[schema].name());
    }
  });
  Status projection_status = Status::OK();
  attribute_included.ForEachSetBit([&](size_t a) {
    if (!projection_status.ok()) return;
    const Attribute& attribute = network.attribute(a);
    StatusOr<AttributeId> local = builder.AddAttribute(
        schema_local[attribute.schema], attribute.name, attribute.type);
    if (!local.ok()) {
      projection_status = local.status();
      return;
    }
    attribute_local[a] = local.value();
  });
  SMN_RETURN_IF_ERROR(projection_status);
  for (const auto& [a, b] : network.graph().edges()) {
    if (schema_local[a] == kInvalidSchema || schema_local[b] == kInvalidSchema) {
      continue;
    }
    SMN_RETURN_IF_ERROR(builder.AddEdge(schema_local[a], schema_local[b]));
  }
  candidate_set.ForEachSetBit([&](size_t c) {
    if (!projection_status.ok()) return;
    const Correspondence& correspondence = network.correspondence(c);
    subproblem.local_to_global.push_back(static_cast<CorrespondenceId>(c));
    StatusOr<CorrespondenceId> local = builder.AddCorrespondence(
        attribute_local[correspondence.left],
        attribute_local[correspondence.right], correspondence.confidence);
    if (!local.ok()) projection_status = local.status();
  });
  SMN_RETURN_IF_ERROR(projection_status);
  SMN_ASSIGN_OR_RETURN(Network projected, builder.Build());
  subproblem.network = std::make_unique<Network>(std::move(projected));

  subproblem.constraints =
      std::make_unique<ConstraintSet>(constraints.CloneUncompiled());
  SMN_RETURN_IF_ERROR(subproblem.constraints->Compile(*subproblem.network));

  subproblem.feedback = Feedback(subproblem.local_to_global.size());
  DynamicBitset member_set(n);
  for (CorrespondenceId member : component.members) member_set.Set(member);
  for (size_t i = 0; i < subproblem.local_to_global.size(); ++i) {
    const CorrespondenceId local = static_cast<CorrespondenceId>(i);
    const CorrespondenceId global = subproblem.local_to_global[i];
    if (member_set.Test(global)) {
      subproblem.member_local_ids.push_back(local);
    } else if (determined.approved.Test(global)) {
      SMN_RETURN_IF_ERROR(subproblem.feedback.Approve(local));
    } else {
      // A frozen candidate that is neither a member nor determined-in can
      // only be a correspondence determined *after* the freeze; its absence
      // from every instance is encoded by a local disapproval.
      SMN_RETURN_IF_ERROR(subproblem.feedback.Disapprove(local));
    }
  }
  return subproblem;
}

}  // namespace smn
