#include "core/component_index.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace smn {

StatusOr<DeterminedSet> PropagateFeedback(const ConstraintSet& constraints,
                                          const Feedback& feedback,
                                          size_t correspondence_count) {
  DeterminedSet determined;
  determined.approved = feedback.approved();
  determined.disapproved = feedback.disapproved();
  // Iterate constraint unit propagation to a fixpoint. Each productive round
  // determines at least one more correspondence, so the loop runs at most
  // |C| + 1 times.
  std::vector<std::pair<CorrespondenceId, bool>> forced;
  for (size_t round = 0; round <= correspondence_count; ++round) {
    forced.clear();
    SMN_RETURN_IF_ERROR(constraints.PropagateDetermined(
        determined.approved, determined.disapproved, &forced));
    bool changed = false;
    for (const auto& [c, value] : forced) {
      if (value) {
        if (determined.disapproved.Test(c)) {
          return Status::FailedPrecondition(
              "feedback closure contradiction: correspondence forced both in "
              "and out");
        }
        if (!determined.approved.Test(c)) {
          determined.approved.Set(c);
          changed = true;
        }
      } else {
        if (determined.approved.Test(c)) {
          return Status::FailedPrecondition(
              "feedback closure contradiction: correspondence forced both in "
              "and out");
        }
        if (!determined.disapproved.Test(c)) {
          determined.disapproved.Set(c);
          changed = true;
        }
      }
    }
    if (!changed) return determined;
  }
  return Status::Internal("feedback propagation failed to reach a fixpoint");
}

namespace {

/// Plain union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
};

}  // namespace

ComponentIndex ComponentIndex::Build(
    const std::vector<std::vector<CorrespondenceId>>& groups,
    const DynamicBitset& active, size_t correspondence_count) {
  UnionFind uf(correspondence_count);
  for (const auto& group : groups) {
    CorrespondenceId previous = kInvalidCorrespondence;
    for (CorrespondenceId member : group) {
      if (!active.Test(member)) continue;  // Determined: transmits nothing.
      if (previous != kInvalidCorrespondence) uf.Union(previous, member);
      previous = member;
    }
  }

  ComponentIndex index;
  index.component_of_.assign(correspondence_count, kNoComponent);
  // Roots appear in ascending member order, so components come out sorted by
  // anchor and members ascending without an extra sort.
  std::vector<size_t> root_to_component(correspondence_count, kNoComponent);
  active.ForEachSetBit([&](size_t c) {
    const size_t root = uf.Find(c);
    size_t component = root_to_component[root];
    if (component == kNoComponent) {
      component = index.components_.size();
      root_to_component[root] = component;
      index.components_.push_back(
          ConstraintComponent{static_cast<CorrespondenceId>(c), {}});
    }
    index.components_[component].members.push_back(
        static_cast<CorrespondenceId>(c));
    index.component_of_[c] = component;
  });
  return index;
}

ComponentIndex ComponentIndex::FromComponents(
    std::vector<ConstraintComponent> components, size_t correspondence_count) {
  ComponentIndex index;
  index.components_ = std::move(components);
  index.component_of_.assign(correspondence_count, kNoComponent);
  for (size_t i = 0; i < index.components_.size(); ++i) {
    for (CorrespondenceId member : index.components_[i].members) {
      index.component_of_[member] = i;
    }
  }
  return index;
}

StatusOr<ComponentSubproblem> BuildComponentSubproblem(
    const Network& network, const ConstraintSet& constraints,
    const std::vector<std::vector<CorrespondenceId>>& groups,
    const ConstraintComponent& component, const DeterminedSet& determined,
    const std::vector<CorrespondenceId>* candidates) {
  const size_t n = network.correspondence_count();

  DynamicBitset candidate_set(n);
  if (candidates != nullptr) {
    for (CorrespondenceId c : *candidates) candidate_set.Set(c);
  } else {
    // Fresh derivation: members plus the determined-in closure reachable
    // through coupling groups. Boundary approvals are needed so chains that
    // condition a member on determined-in partners still compile (dropping
    // them would lose "member implies closing" implications); determined-out
    // correspondences are simply omitted, which encodes their absence
    // exactly (a chain whose closing is absent compiles as a hard conflict,
    // which is precisely what a determined-out closing means).
    for (CorrespondenceId member : component.members) {
      candidate_set.Set(member);
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (const auto& group : groups) {
        bool touches = false;
        bool missing_approved = false;
        for (CorrespondenceId member : group) {
          if (candidate_set.Test(member)) {
            touches = true;
          } else if (determined.approved.Test(member)) {
            missing_approved = true;
          }
        }
        if (!touches || !missing_approved) continue;
        for (CorrespondenceId member : group) {
          if (determined.approved.Test(member) &&
              !candidate_set.Test(member)) {
            candidate_set.Set(member);
            changed = true;
          }
        }
      }
    }
  }

  ComponentSubproblem subproblem;

  // Copy the full schema/attribute/edge structure with ids preserved:
  // constraint compilation needs the original interaction-graph triangles,
  // and identical attribute ids keep the projection trivially auditable.
  NetworkBuilder builder;
  for (const Schema& schema : network.schemas()) {
    builder.AddSchema(schema.name());
  }
  for (const Attribute& attribute : network.attributes()) {
    SMN_ASSIGN_OR_RETURN(
        AttributeId id,
        builder.AddAttribute(attribute.schema, attribute.name,
                             attribute.type));
    if (id != attribute.id) {
      return Status::Internal("subproblem attribute ids diverged");
    }
  }
  for (const auto& [a, b] : network.graph().edges()) {
    SMN_RETURN_IF_ERROR(builder.AddEdge(a, b));
  }
  candidate_set.ForEachSetBit([&](size_t c) {
    const Correspondence& correspondence = network.correspondence(c);
    subproblem.local_to_global.push_back(static_cast<CorrespondenceId>(c));
    builder
        .AddCorrespondence(correspondence.left, correspondence.right,
                           correspondence.confidence)
        .value();
  });
  SMN_ASSIGN_OR_RETURN(Network projected, builder.Build());
  subproblem.network = std::make_unique<Network>(std::move(projected));

  subproblem.constraints =
      std::make_unique<ConstraintSet>(constraints.CloneUncompiled());
  SMN_RETURN_IF_ERROR(subproblem.constraints->Compile(*subproblem.network));

  subproblem.feedback = Feedback(subproblem.local_to_global.size());
  DynamicBitset member_set(n);
  for (CorrespondenceId member : component.members) member_set.Set(member);
  for (size_t i = 0; i < subproblem.local_to_global.size(); ++i) {
    const CorrespondenceId local = static_cast<CorrespondenceId>(i);
    const CorrespondenceId global = subproblem.local_to_global[i];
    if (member_set.Test(global)) {
      subproblem.member_local_ids.push_back(local);
    } else if (determined.approved.Test(global)) {
      SMN_RETURN_IF_ERROR(subproblem.feedback.Approve(local));
    } else {
      // A frozen candidate that is neither a member nor determined-in can
      // only be a correspondence determined *after* the freeze; its absence
      // from every instance is encoded by a local disapproval.
      SMN_RETURN_IF_ERROR(subproblem.feedback.Disapprove(local));
    }
  }
  return subproblem;
}

}  // namespace smn
