#ifndef SMN_CORE_WALK_SCRATCH_H_
#define SMN_CORE_WALK_SCRATCH_H_

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "core/violation.h"
#include "util/dynamic_bitset.h"

namespace smn {

/// Reusable working memory for the compiled walk kernel: the violation
/// worklists, sparse victim counters, closure bookkeeping, and proposal
/// buffer that Sampler::Step, RepairInstance/RepairAll, Maximalize, and the
/// instantiation search thread through instead of allocating per call. After
/// a short warm-up (buffer capacities plateau at the network's conflict
/// degree), steady-state walk steps perform zero heap allocations.
///
/// Ownership and thread affinity: a WalkScratch belongs to exactly one walk
/// at a time — ParallelSampler creates one per chain task, the Instantiator
/// one per Instantiate call. Scratches are never shared across threads; the
/// Sampler itself stays stateless and const-shareable.
///
/// Buffer discipline: `counts` is all-zero and `touched` empty between
/// kernel calls (the repair loop resets exactly the entries it dirtied);
/// `worklist`/`introduced`/`pending` and `eligible` are overwritten by each
/// user; `closure_tried` is cleared lazily by the next repair that needs it.
class WalkScratch {
 public:
  /// An empty scratch; Prepare must run before first use (the kernel entry
  /// points call it themselves).
  WalkScratch() = default;

  /// A scratch pre-sized for `correspondence_count` candidates.
  explicit WalkScratch(size_t correspondence_count) {
    Prepare(correspondence_count);
  }

  /// Sizes every buffer for a candidate set of `n` correspondences and
  /// reserves steady-state capacities. Idempotent: repeated calls with the
  /// same `n` are a cheap no-op, so kernel entry points call it defensively.
  void Prepare(size_t n) {
    if (prepared_size_ == n) return;
    counts.assign(n, 0);
    touched.clear();
    touched.reserve(n);
    closure_tried = DynamicBitset(n);
    next_state = DynamicBitset(n);
    eligible.clear();
    eligible.reserve(n);
    walk_monotone_blocks.assign(n, 0);
    walk_reversible_blocks.assign(n, 0);
    fix_monotone_blocks.assign(n, 0);
    fix_reversible_blocks.assign(n, 0);
    tracker_state = DynamicBitset(n);
    tracker_compile_id = 0;
    worklist.clear();
    worklist.reserve(kInitialWorklistCapacity);
    introduced.clear();
    introduced.reserve(kInitialWorklistCapacity);
    pending.clear();
    pending.reserve(kInitialWorklistCapacity);
    prepared_size_ = n;
  }

  /// Candidate-set size the buffers are currently sized for, or SIZE_MAX
  /// before the first Prepare.
  size_t prepared_size() const { return prepared_size_; }

  /// Active violation worklist of the repair loop.
  std::vector<KernelViolation> worklist;
  /// Violations introduced by a tentative cycle closure.
  std::vector<KernelViolation> introduced;
  /// Compaction target the repair loop swaps with `worklist`.
  std::vector<KernelViolation> pending;
  /// Per-correspondence violation participation counts (victim selection).
  /// All-zero between kernel calls; only `touched` entries are ever dirty.
  std::vector<uint32_t> counts;
  /// Correspondences with a nonzero entry in `counts` — the sparse overlay
  /// that replaces the full-n fill + full-n victim scan of the naive loop.
  std::vector<CorrespondenceId> touched;
  /// Correspondences already given their one closure attempt this repair.
  DynamicBitset closure_tried;
  /// Proposal buffer for the sampler's in-place walk transition.
  DynamicBitset next_state;
  /// Candidate id buffer shared by PickCandidate's saturation fallback and
  /// Maximalize's shuffle (never live at the same time).
  std::vector<CorrespondenceId> eligible;
  /// Addition-tracker counters for `tracker_state` (see
  /// Constraint::SeedAdditionBlockCounts): blocks released only by
  /// removals, and blocks an addition can release. Maximalize keeps them in
  /// sync with its input selection by applying the (small) diff against the
  /// previous call instead of re-seeding from scratch — the consecutive
  /// emitted states of one chain differ by a handful of bits.
  std::vector<uint32_t> walk_monotone_blocks;
  /// Reversible-half of the tracker counters (see walk_monotone_blocks).
  std::vector<uint32_t> walk_reversible_blocks;
  /// Working copies of the tracker counters consumed (and mutated) by one
  /// Maximalize fixpoint run.
  std::vector<uint32_t> fix_monotone_blocks;
  /// Reversible-half of the fixpoint working copies.
  std::vector<uint32_t> fix_reversible_blocks;
  /// The selection the walk_* counters currently describe.
  DynamicBitset tracker_state;
  /// ConstraintSet::compile_id() the tracker was seeded against, or 0 when
  /// unseeded (fresh scratch, resize, or reuse against a different compiled
  /// set — the same scratch may serve several networks over its lifetime,
  /// e.g. through the thread-local convenience path).
  uint64_t tracker_compile_id = 0;

 private:
  /// Initial worklist capacity; grows to the walk's real violation fan-out
  /// during warm-up and then stays put.
  static constexpr size_t kInitialWorklistCapacity = 64;

  size_t prepared_size_ = static_cast<size_t>(-1);
};

/// Shared per-thread fallback scratch backing the convenience
/// (scratch-less) API overloads of repair, maximalization, and the sampler:
/// they stay allocation-free at steady state without making any engine
/// object stateful or thread-unsafe. The scratch persists for the thread's
/// lifetime, sized for the largest candidate set it has served; hot loops
/// should thread an explicitly owned scratch instead.
///
/// This is the repository's one sanctioned use of thread_local state: the
/// determinism linter (scripts/check_determinism.py, rule `thread-local`)
/// allowlists exactly this header and flags any other occurrence — scratch
/// memory is reusable precisely because its contents never influence which
/// samples the walk emits.
inline WalkScratch& ThreadLocalWalkScratch() {
  thread_local WalkScratch scratch;
  return scratch;
}

}  // namespace smn

#endif  // SMN_CORE_WALK_SCRATCH_H_
