#include "core/sampler.h"

#include <cmath>

#include "core/matching_instance.h"
#include "core/repair.h"

namespace smn {

Sampler::Sampler(const Network& network, const ConstraintSet& constraints,
                 SamplerOptions options)
    : network_(network), constraints_(constraints), options_(options) {}

CorrespondenceId Sampler::PickCandidate(const DynamicBitset& current,
                                        const Feedback& feedback,
                                        Rng* rng) const {
  const size_t n = network_.correspondence_count();
  if (n == 0) return kInvalidCorrespondence;
  // Rejection sampling is fast while candidates are plentiful; fall back to
  // an explicit scan when the walk has saturated most of C.
  for (int attempt = 0; attempt < 32; ++attempt) {
    const CorrespondenceId c = static_cast<CorrespondenceId>(rng->Index(n));
    if (!current.Test(c) && !feedback.IsDisapproved(c)) return c;
  }
  std::vector<CorrespondenceId> eligible;
  for (CorrespondenceId c = 0; c < n; ++c) {
    if (!current.Test(c) && !feedback.IsDisapproved(c)) eligible.push_back(c);
  }
  if (eligible.empty()) return kInvalidCorrespondence;
  return eligible[rng->Index(eligible.size())];
}

StatusOr<DynamicBitset> Sampler::NextInstance(const DynamicBitset& current,
                                              const Feedback& feedback,
                                              Rng* rng) const {
  const CorrespondenceId candidate = PickCandidate(current, feedback, rng);
  if (candidate == kInvalidCorrespondence) return current;

  DynamicBitset next = current;
  const Status repaired =
      RepairInstance(constraints_, feedback, candidate, &next, options_.repair);
  if (!repaired.ok()) {
    // Rare dead end: the proposal's violations cannot be resolved without
    // touching protected correspondences (e.g. re-opening an approved
    // triangle whose closing correspondence already had to go). Skip the
    // proposal; the chain state stays valid.
    return current;
  }

  if (!options_.annealing) return next;
  const double delta =
      static_cast<double>(current.SymmetricDifferenceCount(next));
  const double accept_probability = 1.0 - std::exp(-delta);
  if (rng->Bernoulli(accept_probability)) return next;
  return current;
}

StatusOr<DynamicBitset> Sampler::ChainStart(const Feedback& feedback,
                                            bool overdisperse,
                                            Rng* rng) const {
  DynamicBitset state = feedback.approved();
  if (!constraints_.IsSatisfied(state)) {
    // The cycle constraint is non-monotone: a partial F+ can be chain-open
    // even though consistent supersets exist (the expert approved two sides
    // of a triangle but not yet the third). Closure-repair finds the
    // smallest consistent superset to start the walk from; if none exists,
    // F+ is genuinely contradictory and the repair reports it.
    const Status repaired = RepairAll(constraints_, feedback, &state,
                                      options_.repair);
    if (!repaired.ok()) {
      return Status::FailedPrecondition(
          "ChainStart: the approved set F+ violates the integrity "
          "constraints and cannot be closure-repaired: " +
          repaired.message());
    }
  }
  if (overdisperse) Maximalize(constraints_, feedback, rng, &state);
  return state;
}

Status Sampler::SampleChain(const Feedback& feedback, size_t count, Rng* rng,
                            std::vector<DynamicBitset>* out) const {
  SMN_ASSIGN_OR_RETURN(DynamicBitset state,
                       ChainStart(feedback, /*overdisperse=*/false, rng));
  return ContinueChain(feedback, count, rng, &state, out);
}

Status Sampler::ContinueChain(const Feedback& feedback, size_t count, Rng* rng,
                              DynamicBitset* state_ptr,
                              std::vector<DynamicBitset>* out) const {
  DynamicBitset& state = *state_ptr;
  out->reserve(out->size() + count);
  for (size_t i = 0; i < count; ++i) {
    for (size_t step = 0; step < options_.walk_steps; ++step) {
      SMN_ASSIGN_OR_RETURN(DynamicBitset next,
                           NextInstance(state, feedback, rng));
      state = std::move(next);
    }
    if (options_.maximalize) {
      DynamicBitset sample = state;
      Maximalize(constraints_, feedback, rng, &sample);
      out->push_back(std::move(sample));
    } else {
      out->push_back(state);
    }
  }
  return Status::OK();
}

}  // namespace smn
