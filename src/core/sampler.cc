#include "core/sampler.h"

#include <array>
#include <cmath>
#include <utility>

#include "core/matching_instance.h"
#include "core/repair.h"

namespace smn {
namespace {

/// exp(-k) for the integral annealing jump sizes (Δ is a symmetric
/// difference count), filled at load time by the same std::exp the naive
/// path called per step — the acceptance probabilities are bit-identical,
/// the hot loop just stops paying libm (and, being namespace-scope, skips
/// the function-local static guard). Jumps beyond the table are
/// astronomically unlikely to be rejected but still computed exactly.
const std::array<double, 64> kNegExpTable = [] {
  std::array<double, 64> filled{};
  for (size_t k = 0; k < filled.size(); ++k) {
    filled[k] = std::exp(-static_cast<double>(k));
  }
  return filled;
}();

double NegExp(size_t delta) {
  if (delta < kNegExpTable.size()) return kNegExpTable[delta];
  return std::exp(-static_cast<double>(delta));
}

}  // namespace

Sampler::Sampler(const Network& network, const ConstraintSet& constraints,
                 SamplerOptions options)
    : network_(network), constraints_(constraints), options_(options) {}

CorrespondenceId Sampler::PickCandidate(const DynamicBitset& current,
                                        const Feedback& feedback, Rng* rng,
                                        WalkScratch* scratch) const {
  const size_t n = network_.correspondence_count();
  if (n == 0) return kInvalidCorrespondence;
  // Rejection sampling is fast while candidates are plentiful; fall back to
  // an explicit scan when the walk has saturated most of C. The scan reuses
  // the scratch's id buffer instead of building a fresh vector. The common
  // empty-F- case is hoisted out of the rejection loop.
  const bool no_disapproved = feedback.disapproved().None();
  for (int attempt = 0; attempt < 32; ++attempt) {
    const CorrespondenceId c = static_cast<CorrespondenceId>(rng->Index(n));
    if (!current.Test(c) && (no_disapproved || !feedback.IsDisapproved(c))) {
      return c;
    }
  }
  std::vector<CorrespondenceId>& eligible = scratch->eligible;
  eligible.clear();
  for (CorrespondenceId c = 0; c < n; ++c) {
    if (!current.Test(c) && !feedback.IsDisapproved(c)) eligible.push_back(c);
  }
  if (eligible.empty()) return kInvalidCorrespondence;
  return eligible[rng->Index(eligible.size())];
}

Status Sampler::Step(const Feedback& feedback, Rng* rng, DynamicBitset* state,
                     WalkScratch* scratch) const {
  scratch->Prepare(network_.correspondence_count());
  const CorrespondenceId candidate =
      PickCandidate(*state, feedback, rng, scratch);
  if (candidate == kInvalidCorrespondence) return Status::OK();

  DynamicBitset& next = scratch->next_state;
  next.CopyFrom(*state);  // Equal sizes: copies in place, no allocation.
  if (!RepairProposal(constraints_, feedback, candidate, &next, scratch,
                      options_.repair)) {
    // Rare dead end: the proposal's violations cannot be resolved without
    // touching protected correspondences (e.g. re-opening an approved
    // triangle whose closing correspondence already had to go). Skip the
    // proposal; the chain state stays valid.
    return Status::OK();
  }

  if (!options_.annealing) {
    std::swap(*state, next);
    return Status::OK();
  }
  const double accept_probability =
      1.0 - NegExp(state->SymmetricDifferenceCount(next));
  if (rng->Bernoulli(accept_probability)) std::swap(*state, next);
  return Status::OK();
}

StatusOr<DynamicBitset> Sampler::NextInstance(const DynamicBitset& current,
                                              const Feedback& feedback,
                                              Rng* rng) const {
  DynamicBitset state = current;
  SMN_RETURN_IF_ERROR(Step(feedback, rng, &state, &ThreadLocalWalkScratch()));
  return state;
}

StatusOr<DynamicBitset> Sampler::ChainStart(const Feedback& feedback,
                                            bool overdisperse, Rng* rng,
                                            WalkScratch* scratch) const {
  scratch->Prepare(network_.correspondence_count());
  DynamicBitset state = feedback.approved();
  if (!constraints_.IsSatisfied(state)) {
    // The cycle constraint is non-monotone: a partial F+ can be chain-open
    // even though consistent supersets exist (the expert approved two sides
    // of a triangle but not yet the third). Closure-repair finds the
    // smallest consistent superset to start the walk from; if none exists,
    // F+ is genuinely contradictory and the repair reports it.
    const Status repaired = RepairAll(constraints_, feedback, &state, scratch,
                                      options_.repair);
    if (!repaired.ok()) {
      return Status::FailedPrecondition(
          "ChainStart: the approved set F+ violates the integrity "
          "constraints and cannot be closure-repaired: " +
          repaired.message());
    }
  }
  if (overdisperse) Maximalize(constraints_, feedback, rng, &state, scratch);
  return state;
}

StatusOr<DynamicBitset> Sampler::ChainStart(const Feedback& feedback,
                                            bool overdisperse,
                                            Rng* rng) const {
  return ChainStart(feedback, overdisperse, rng, &ThreadLocalWalkScratch());
}

Status Sampler::SampleChain(const Feedback& feedback, size_t count, Rng* rng,
                            std::vector<DynamicBitset>* out) const {
  WalkScratch& scratch = ThreadLocalWalkScratch();
  SMN_ASSIGN_OR_RETURN(
      DynamicBitset state,
      ChainStart(feedback, /*overdisperse=*/false, rng, &scratch));
  return ContinueChain(feedback, count, rng, &state, out, &scratch);
}

Status Sampler::ContinueChain(const Feedback& feedback, size_t count, Rng* rng,
                              DynamicBitset* state_ptr,
                              std::vector<DynamicBitset>* out,
                              WalkScratch* scratch) const {
  DynamicBitset& state = *state_ptr;
  out->reserve(out->size() + count);
  for (size_t i = 0; i < count; ++i) {
    for (size_t step = 0; step < options_.walk_steps; ++step) {
      SMN_RETURN_IF_ERROR(Step(feedback, rng, &state, scratch));
    }
    if (options_.maximalize) {
      DynamicBitset sample = state;
      Maximalize(constraints_, feedback, rng, &sample, scratch);
      out->push_back(std::move(sample));
    } else {
      out->push_back(state);
    }
  }
  return Status::OK();
}

Status Sampler::ContinueChain(const Feedback& feedback, size_t count, Rng* rng,
                              DynamicBitset* state_ptr,
                              std::vector<DynamicBitset>* out) const {
  return ContinueChain(feedback, count, rng, state_ptr, out,
                       &ThreadLocalWalkScratch());
}

}  // namespace smn
