#include "core/constraint_set.h"

#include <atomic>
#include <cassert>

namespace smn {

void ConstraintSet::Add(std::unique_ptr<Constraint> constraint) {
  assert(!compiled_ && "Add must precede Compile");
  constraints_.push_back(std::move(constraint));
}

Status ConstraintSet::Compile(const Network& network) {
  for (auto& c : constraints_) {
    SMN_RETURN_IF_ERROR(c->Compile(network));
  }
  compiled_ = true;
  // Stamp this compilation with a process-unique id (see compile_id()).
  static std::atomic<uint64_t> next_compile_id{1};
  compile_id_ = next_compile_id.fetch_add(1, std::memory_order_relaxed);
  // Compile the addition tracker's flat delta table (see
  // ApplyAdditionBlockDelta): one CSR row of merged per-constraint ops per
  // correspondence.
  delta_offsets_.clear();
  delta_ops_.clear();
  if (SupportsAdditionTracking()) {
    const size_t n = network.correspondence_count();
    delta_offsets_.reserve(n + 1);
    delta_offsets_.push_back(0);
    for (CorrespondenceId c = 0; c < n; ++c) {
      for (const auto& constraint : constraints_) {
        constraint->AppendAdditionDeltaOps(c, &delta_ops_);
      }
      delta_offsets_.push_back(static_cast<uint32_t>(delta_ops_.size()));
    }
  }
  return Status::OK();
}

bool ConstraintSet::IsSatisfied(const DynamicBitset& selection) const {
  assert(compiled_);
  for (const auto& c : constraints_) {
    if (!c->IsSatisfied(selection)) return false;
  }
  return true;
}

std::vector<Violation> ConstraintSet::FindViolations(
    const DynamicBitset& selection) const {
  assert(compiled_);
  std::vector<Violation> violations;
  for (const auto& c : constraints_) {
    c->FindViolations(selection, &violations);
  }
  return violations;
}

std::vector<Violation> ConstraintSet::FindViolationsInvolving(
    const DynamicBitset& selection, CorrespondenceId c) const {
  assert(compiled_);
  std::vector<Violation> violations;
  for (const auto& constraint : constraints_) {
    constraint->FindViolationsInvolving(selection, c, &violations);
  }
  return violations;
}

std::vector<Violation> ConstraintSet::FindViolationsCreatedByRemoval(
    const DynamicBitset& selection, CorrespondenceId removed) const {
  assert(compiled_);
  std::vector<Violation> violations;
  for (const auto& constraint : constraints_) {
    constraint->FindViolationsCreatedByRemoval(selection, removed, &violations);
  }
  return violations;
}

void ConstraintSet::AppendConflicts(const DynamicBitset& selection,
                                    std::vector<KernelViolation>* out) const {
  assert(compiled_);
  for (const auto& constraint : constraints_) {
    constraint->AppendConflicts(selection, out);
  }
}

void ConstraintSet::AppendConflictsInvolving(
    const DynamicBitset& selection, CorrespondenceId c,
    std::vector<KernelViolation>* out) const {
  assert(compiled_);
  for (const auto& constraint : constraints_) {
    constraint->AppendConflictsInvolving(selection, c, out);
  }
}

void ConstraintSet::AppendConflictsCreatedByRemoval(
    const DynamicBitset& selection, CorrespondenceId removed,
    std::vector<KernelViolation>* out) const {
  assert(compiled_);
  for (const auto& constraint : constraints_) {
    constraint->AppendConflictsCreatedByRemoval(selection, removed, out);
  }
}

bool ConstraintSet::SupportsAdditionTracking() const {
  assert(compiled_);
  for (const auto& constraint : constraints_) {
    if (!constraint->SupportsAdditionTracking()) return false;
  }
  return true;
}

void ConstraintSet::SeedAdditionBlockCounts(const DynamicBitset& selection,
                                            uint32_t* monotone_blocks,
                                            uint32_t* reversible_blocks) const {
  assert(compiled_);
  for (const auto& constraint : constraints_) {
    constraint->SeedAdditionBlockCounts(selection, monotone_blocks,
                                        reversible_blocks);
  }
}


bool ConstraintSet::AdditionViolates(const DynamicBitset& selection,
                                     CorrespondenceId candidate) const {
  assert(compiled_);
  for (const auto& c : constraints_) {
    if (c->AdditionViolates(selection, candidate)) return true;
  }
  return false;
}

size_t ConstraintSet::CountViolationsInvolving(const DynamicBitset& selection,
                                               CorrespondenceId c) const {
  assert(compiled_);
  size_t total = 0;
  for (const auto& constraint : constraints_) {
    total += constraint->CountViolationsInvolving(selection, c);
  }
  return total;
}

std::vector<std::vector<CorrespondenceId>> ConstraintSet::CouplingGroups()
    const {
  assert(compiled_);
  std::vector<std::vector<CorrespondenceId>> groups;
  for (const auto& constraint : constraints_) {
    constraint->AppendCouplingGroups(&groups);
  }
  return groups;
}

Status ConstraintSet::PropagateDetermined(
    const DynamicBitset& approved, const DynamicBitset& disapproved,
    std::vector<std::pair<CorrespondenceId, bool>>* out) const {
  assert(compiled_);
  for (const auto& constraint : constraints_) {
    SMN_RETURN_IF_ERROR(
        constraint->PropagateDetermined(approved, disapproved, out));
  }
  return Status::OK();
}

ConstraintSet ConstraintSet::CloneUncompiled() const {
  ConstraintSet clone;
  for (const auto& constraint : constraints_) {
    clone.Add(constraint->CloneUncompiled());
  }
  return clone;
}

}  // namespace smn
