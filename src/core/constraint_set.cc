#include "core/constraint_set.h"

#include <cassert>

namespace smn {

void ConstraintSet::Add(std::unique_ptr<Constraint> constraint) {
  assert(!compiled_ && "Add must precede Compile");
  constraints_.push_back(std::move(constraint));
}

Status ConstraintSet::Compile(const Network& network) {
  for (auto& c : constraints_) {
    SMN_RETURN_IF_ERROR(c->Compile(network));
  }
  compiled_ = true;
  return Status::OK();
}

bool ConstraintSet::IsSatisfied(const DynamicBitset& selection) const {
  assert(compiled_);
  for (const auto& c : constraints_) {
    if (!c->IsSatisfied(selection)) return false;
  }
  return true;
}

std::vector<Violation> ConstraintSet::FindViolations(
    const DynamicBitset& selection) const {
  assert(compiled_);
  std::vector<Violation> violations;
  for (const auto& c : constraints_) {
    c->FindViolations(selection, &violations);
  }
  return violations;
}

std::vector<Violation> ConstraintSet::FindViolationsInvolving(
    const DynamicBitset& selection, CorrespondenceId c) const {
  assert(compiled_);
  std::vector<Violation> violations;
  for (const auto& constraint : constraints_) {
    constraint->FindViolationsInvolving(selection, c, &violations);
  }
  return violations;
}

std::vector<Violation> ConstraintSet::FindViolationsCreatedByRemoval(
    const DynamicBitset& selection, CorrespondenceId removed) const {
  assert(compiled_);
  std::vector<Violation> violations;
  for (const auto& constraint : constraints_) {
    constraint->FindViolationsCreatedByRemoval(selection, removed, &violations);
  }
  return violations;
}

bool ConstraintSet::AdditionViolates(const DynamicBitset& selection,
                                     CorrespondenceId candidate) const {
  assert(compiled_);
  for (const auto& c : constraints_) {
    if (c->AdditionViolates(selection, candidate)) return true;
  }
  return false;
}

size_t ConstraintSet::CountViolationsInvolving(const DynamicBitset& selection,
                                               CorrespondenceId c) const {
  assert(compiled_);
  size_t total = 0;
  for (const auto& constraint : constraints_) {
    total += constraint->CountViolationsInvolving(selection, c);
  }
  return total;
}

std::vector<std::vector<CorrespondenceId>> ConstraintSet::CouplingGroups()
    const {
  assert(compiled_);
  std::vector<std::vector<CorrespondenceId>> groups;
  for (const auto& constraint : constraints_) {
    constraint->AppendCouplingGroups(&groups);
  }
  return groups;
}

Status ConstraintSet::PropagateDetermined(
    const DynamicBitset& approved, const DynamicBitset& disapproved,
    std::vector<std::pair<CorrespondenceId, bool>>* out) const {
  assert(compiled_);
  for (const auto& constraint : constraints_) {
    SMN_RETURN_IF_ERROR(
        constraint->PropagateDetermined(approved, disapproved, out));
  }
  return Status::OK();
}

ConstraintSet ConstraintSet::CloneUncompiled() const {
  ConstraintSet clone;
  for (const auto& constraint : constraints_) {
    clone.Add(constraint->CloneUncompiled());
  }
  return clone;
}

}  // namespace smn
