#ifndef SMN_CORE_CONSTRAINT_H_
#define SMN_CORE_CONSTRAINT_H_

#include <string_view>
#include <vector>

#include "core/network.h"
#include "core/types.h"
#include "core/violation.h"
#include "util/dynamic_bitset.h"
#include "util/status.h"

namespace smn {

/// A network-level integrity constraint γ ∈ Γ. Implementations compile the
/// constraint against a concrete Network once (building whatever lookup
/// tables they need) and then answer violation queries over correspondence
/// selections, which are bitsets over the candidate set C.
///
/// The engine relies on a structural property shared by the constraints
/// studied in the paper: in a selection that currently satisfies the
/// constraint, adding one correspondence can only introduce violations that
/// involve the added correspondence, and removing one correspondence can only
/// introduce violations reported by FindViolationsCreatedByRemoval. This is
/// what makes the maximality check of Definition 1 and the incremental repair
/// of Algorithm 4 sound.
class Constraint {
 public:
  virtual ~Constraint() = default;

  /// Stable name used in violation reports ("one-to-one", "cycle").
  virtual std::string_view name() const = 0;

  /// Builds internal tables for `network`. Must be called before any query.
  /// The network must outlive this constraint.
  virtual Status Compile(const Network& network) = 0;

  /// True when `selection` satisfies this constraint.
  virtual bool IsSatisfied(const DynamicBitset& selection) const = 0;

  /// Appends all violations present in `selection` to `out`.
  virtual void FindViolations(const DynamicBitset& selection,
                              std::vector<Violation>* out) const = 0;

  /// Appends the violations in `selection` that involve `c` (which must be
  /// selected) to `out`.
  virtual void FindViolationsInvolving(const DynamicBitset& selection,
                                       CorrespondenceId c,
                                       std::vector<Violation>* out) const = 0;

  /// Appends violations that exist in `selection` only because `removed` was
  /// just cleared from it. Anti-monotone constraints (one-to-one) never
  /// produce any; the cycle constraint does when `removed` closed a triangle
  /// whose two chain members are still selected.
  virtual void FindViolationsCreatedByRemoval(
      const DynamicBitset& selection, CorrespondenceId removed,
      std::vector<Violation>* out) const {
    (void)selection;
    (void)removed;
    (void)out;
  }

  /// True when adding `candidate` (not currently selected) to a selection
  /// that satisfies this constraint would create at least one violation.
  virtual bool AdditionViolates(const DynamicBitset& selection,
                                CorrespondenceId candidate) const = 0;

  /// Number of violations in `selection` that involve `c`.
  virtual size_t CountViolationsInvolving(const DynamicBitset& selection,
                                          CorrespondenceId c) const = 0;
};

}  // namespace smn

#endif  // SMN_CORE_CONSTRAINT_H_
