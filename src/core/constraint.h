#ifndef SMN_CORE_CONSTRAINT_H_
#define SMN_CORE_CONSTRAINT_H_

#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "core/network.h"
#include "core/types.h"
#include "core/violation.h"
#include "util/dynamic_bitset.h"
#include "util/status.h"

namespace smn {

/// A network-level integrity constraint γ ∈ Γ. Implementations compile the
/// constraint against a concrete Network once (building whatever lookup
/// tables they need) and then answer violation queries over correspondence
/// selections, which are bitsets over the candidate set C.
///
/// The engine relies on a structural property shared by the constraints
/// studied in the paper: in a selection that currently satisfies the
/// constraint, adding one correspondence can only introduce violations that
/// involve the added correspondence, and removing one correspondence can only
/// introduce violations reported by FindViolationsCreatedByRemoval. This is
/// what makes the maximality check of Definition 1 and the incremental repair
/// of Algorithm 4 sound.
///
/// Compiled constraints additionally expose their *coupling structure*
/// (AppendCouplingGroups) and a unit-propagation rule (PropagateDetermined).
/// Both feed the component-decomposed reconciliation engine: coupling groups
/// define the constraint-connected components of C (the paper's §4
/// interaction structure projected onto correspondences), and propagation
/// derives the correspondences whose value is already logically determined by
/// the expert feedback, which is what lets components split as reconciliation
/// pins variables.
class Constraint {
 public:
  /// Virtual destructor: constraints are held via base-class pointers.
  virtual ~Constraint() = default;

  /// Stable name used in violation reports ("one-to-one", "cycle").
  virtual std::string_view name() const = 0;

  /// Builds internal tables for `network`. Must be called before any query.
  /// The network must outlive this constraint.
  virtual Status Compile(const Network& network) = 0;

  /// Creates a fresh, uncompiled instance of the same constraint kind.
  /// The component engine uses this to compile the constraint against
  /// per-component sub-networks.
  virtual std::unique_ptr<Constraint> CloneUncompiled() const = 0;

  /// True when `selection` satisfies this constraint.
  virtual bool IsSatisfied(const DynamicBitset& selection) const = 0;

  /// Appends all violations present in `selection` to `out`.
  virtual void FindViolations(const DynamicBitset& selection,
                              std::vector<Violation>* out) const = 0;

  /// Appends the violations in `selection` that involve `c` (which must be
  /// selected) to `out`.
  virtual void FindViolationsInvolving(const DynamicBitset& selection,
                                       CorrespondenceId c,
                                       std::vector<Violation>* out) const = 0;

  /// Appends violations that exist in `selection` only because `removed` was
  /// just cleared from it. Anti-monotone constraints (one-to-one) never
  /// produce any; the cycle constraint does when `removed` closed a triangle
  /// whose two chain members are still selected.
  virtual void FindViolationsCreatedByRemoval(
      const DynamicBitset& selection, CorrespondenceId removed,
      std::vector<Violation>* out) const {
    (void)selection;
    (void)removed;
    (void)out;
  }

  /// True when adding `candidate` (not currently selected) to a selection
  /// that satisfies this constraint would create at least one violation.
  virtual bool AdditionViolates(const DynamicBitset& selection,
                                CorrespondenceId candidate) const = 0;

  /// Number of violations in `selection` that involve `c`.
  virtual size_t CountViolationsInvolving(const DynamicBitset& selection,
                                          CorrespondenceId c) const = 0;

  /// Appends one entry per compiled constraint element: the set of
  /// correspondences that element jointly constrains (a conflicting pair for
  /// one-to-one, a chain's {first, second, closing} for the cycle
  /// constraint). Two correspondences interact — their marginals can depend
  /// on each other under this constraint — only if they share a group, so
  /// the transitive closure of group co-membership over unasserted
  /// correspondences yields the constraint-connected components used by the
  /// incremental reconciliation engine. The default is no couplings
  /// (an always-satisfied constraint).
  virtual void AppendCouplingGroups(
      std::vector<std::vector<CorrespondenceId>>* out) const {
    (void)out;
  }

  /// Unit propagation: given the correspondences already determined to be in
  /// every instance (`approved`) or in no instance (`disapproved`), appends
  /// (correspondence, value) pairs this constraint now forces. Examples for
  /// the cycle constraint: both chain members determined-in forces the
  /// closing correspondence in; one member in with the closing out (or
  /// non-candidate) forces the other member out. Returns FailedPrecondition
  /// when the determined sets already contradict the constraint (e.g. two
  /// conflicting correspondences both approved). Implementations may emit
  /// assignments already present in the input sets; the caller deduplicates.
  /// The default forces nothing.
  virtual Status PropagateDetermined(
      const DynamicBitset& approved, const DynamicBitset& disapproved,
      std::vector<std::pair<CorrespondenceId, bool>>* out) const {
    (void)approved;
    (void)disapproved;
    (void)out;
    return Status::OK();
  }
};

}  // namespace smn

#endif  // SMN_CORE_CONSTRAINT_H_
