#ifndef SMN_CORE_CONSTRAINT_H_
#define SMN_CORE_CONSTRAINT_H_

#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "core/network.h"
#include "core/types.h"
#include "core/violation.h"
#include "util/dynamic_bitset.h"
#include "util/status.h"

namespace smn {

/// One compiled instruction of the addition-block tracker (see
/// Constraint::AppendAdditionDeltaOps). Applied for a selection change of
/// correspondence c with sign s (+1 when c was just set, -1 when just
/// cleared):
///   kMonotone:          monotone_blocks[target] += s
///   kReversibleIfOpen:  if `cond` is unselected, reversible_blocks[target]
///                       += s (an open chain gained/lost its selected
///                       member)
///   kReleaseIfSelected: if `cond` is selected, reversible_blocks[target]
///                       -= s (c is the chain's closing correspondence:
///                       adding it releases the block on the opposite
///                       member, removing it re-imposes it)
struct AdditionDeltaOp {
  /// Instruction kinds (see the struct comment).
  enum class Kind : uint8_t {
    kMonotone,           ///< Unconditional monotone-counter adjustment.
    kReversibleIfOpen,   ///< Reversible adjustment gated on `cond` unselected.
    kReleaseIfSelected,  ///< Reversible release gated on `cond` selected.
  };
  /// What to do with `target`'s counter.
  Kind kind;
  /// Correspondence whose block counter is adjusted.
  CorrespondenceId target;
  /// Guard correspondence for the conditional kinds (unused by kMonotone).
  CorrespondenceId cond;
};

/// Concrete-type tag of a compiled constraint. The walk kernel's inner loop
/// uses it to dispatch the hot violation queries with static_cast direct
/// calls to the (final) built-in constraint classes instead of virtual
/// dispatch; kGeneric constraints take the virtual path.
enum class ConstraintKind : uint8_t {
  kGeneric,   ///< Unknown concrete type; virtual dispatch only.
  kOneToOne,  ///< OneToOneConstraint (final).
  kCycle,     ///< CycleConstraint (final).
};

/// A network-level integrity constraint γ ∈ Γ. Implementations compile the
/// constraint against a concrete Network once (building whatever lookup
/// tables they need) and then answer violation queries over correspondence
/// selections, which are bitsets over the candidate set C.
///
/// The engine relies on a structural property shared by the constraints
/// studied in the paper: in a selection that currently satisfies the
/// constraint, adding one correspondence can only introduce violations that
/// involve the added correspondence, and removing one correspondence can only
/// introduce violations reported by FindViolationsCreatedByRemoval. This is
/// what makes the maximality check of Definition 1 and the incremental repair
/// of Algorithm 4 sound.
///
/// Compiled constraints additionally expose their *coupling structure*
/// (AppendCouplingGroups) and a unit-propagation rule (PropagateDetermined).
/// Both feed the component-decomposed reconciliation engine: coupling groups
/// define the constraint-connected components of C (the paper's §4
/// interaction structure projected onto correspondences), and propagation
/// derives the correspondences whose value is already logically determined by
/// the expert feedback, which is what lets components split as reconciliation
/// pins variables.
class Constraint {
 public:
  /// Virtual destructor: constraints are held via base-class pointers.
  virtual ~Constraint() = default;

  /// Stable name used in violation reports ("one-to-one", "cycle").
  virtual std::string_view name() const = 0;

  /// Concrete-type tag for the kernel's devirtualized dispatch (see
  /// ConstraintKind). Only the built-in final classes return a non-generic
  /// kind; returning kGeneric is always safe.
  virtual ConstraintKind kind() const { return ConstraintKind::kGeneric; }

  /// Builds internal tables for `network`. Must be called before any query.
  /// The network must outlive this constraint.
  virtual Status Compile(const Network& network) = 0;

  /// Creates a fresh, uncompiled instance of the same constraint kind.
  /// The component engine uses this to compile the constraint against
  /// per-component sub-networks.
  virtual std::unique_ptr<Constraint> CloneUncompiled() const = 0;

  /// True when `selection` satisfies this constraint.
  virtual bool IsSatisfied(const DynamicBitset& selection) const = 0;

  /// Appends all violations present in `selection` to `out`.
  virtual void FindViolations(const DynamicBitset& selection,
                              std::vector<Violation>* out) const = 0;

  /// Appends the violations in `selection` that involve `c` (which must be
  /// selected) to `out`.
  virtual void FindViolationsInvolving(const DynamicBitset& selection,
                                       CorrespondenceId c,
                                       std::vector<Violation>* out) const = 0;

  /// Appends violations that exist in `selection` only because `removed` was
  /// just cleared from it. Anti-monotone constraints (one-to-one) never
  /// produce any; the cycle constraint does when `removed` closed a triangle
  /// whose two chain members are still selected.
  virtual void FindViolationsCreatedByRemoval(
      const DynamicBitset& selection, CorrespondenceId removed,
      std::vector<Violation>* out) const {
    (void)selection;
    (void)removed;
    (void)out;
  }

  /// True when adding `candidate` (not currently selected) to a selection
  /// that satisfies this constraint would create at least one violation.
  virtual bool AdditionViolates(const DynamicBitset& selection,
                                CorrespondenceId candidate) const = 0;

  /// Kernel query: appends every violation in `selection` as a fixed-size
  /// KernelViolation. The default adapts the Violation-based path (and
  /// allocates); the built-in constraints override it with allocation-free
  /// scans over their compiled adjacency tables. Used to seed RepairAll's
  /// worklist and as the slow-path oracle in the kernel differential tests.
  virtual void AppendConflicts(const DynamicBitset& selection,
                               std::vector<KernelViolation>* out) const {
    std::vector<Violation> violations;
    FindViolations(selection, &violations);
    for (const Violation& v : violations) out->push_back(ToKernelViolation(v));
  }

  /// Kernel query: appends the violations in `selection` that involve the
  /// selected correspondence `c`. The built-in overrides are O(degree) in
  /// the compiled adjacency index — a word-parallel conflict-row
  /// intersection for one-to-one, a CSR chain-row walk for the cycle
  /// constraint — and never allocate once `out` has warmed-up capacity.
  virtual void AppendConflictsInvolving(const DynamicBitset& selection,
                                        CorrespondenceId c,
                                        std::vector<KernelViolation>* out) const {
    std::vector<Violation> violations;
    FindViolationsInvolving(selection, c, &violations);
    for (const Violation& v : violations) out->push_back(ToKernelViolation(v));
  }

  /// Kernel query: appends violations that exist in `selection` only because
  /// `removed` was just cleared from it (see FindViolationsCreatedByRemoval).
  /// The default adapter is allocation-free for constraints that keep the
  /// base no-op FindViolationsCreatedByRemoval.
  virtual void AppendConflictsCreatedByRemoval(
      const DynamicBitset& selection, CorrespondenceId removed,
      std::vector<KernelViolation>* out) const {
    std::vector<Violation> violations;
    FindViolationsCreatedByRemoval(selection, removed, &violations);
    for (const Violation& v : violations) out->push_back(ToKernelViolation(v));
  }

  /// True when this constraint implements the incremental addition-block
  /// counters below. The counters power Maximalize's fast path (and its
  /// cross-sample incremental seeding): instead of probing AdditionViolates
  /// for every candidate on every fixpoint pass, per-candidate block counts
  /// are seeded once and maintained per selection change. Constraints
  /// answering false force callers back to the generic per-candidate
  /// probing loop.
  virtual bool SupportsAdditionTracking() const { return false; }

  /// Seeds the addition-block counters for `selection` (an arbitrary subset
  /// of C): for every correspondence x, adds to `monotone_blocks[x]` the
  /// number of this constraint's elements that currently forbid adding x
  /// and can only stop doing so when a selected correspondence is REMOVED
  /// (a one-to-one conflict with a selected correspondence, a hard-conflict
  /// chain), and to `reversible_blocks[x]` the number that could also be
  /// released by a further ADDITION (an open chain whose closing
  /// correspondence may yet be selected). x is addable under this
  /// constraint exactly when both its counts are zero; the split lets
  /// grow-only fixpoints drop monotonically-blocked candidates for good.
  /// Only called when SupportsAdditionTracking() is true.
  virtual void SeedAdditionBlockCounts(const DynamicBitset& selection,
                                       uint32_t* monotone_blocks,
                                       uint32_t* reversible_blocks) const {
    (void)selection;
    (void)monotone_blocks;
    (void)reversible_blocks;
  }

  /// Exports the compiled delta program for `changed`: the op sequence
  /// that, applied with sign +1 after setting `changed` in a selection (or
  /// sign -1 after clearing it), keeps the addition-block counters of
  /// SeedAdditionBlockCounts exact — for arbitrary, even transiently
  /// inconsistent, selections. ConstraintSet::Compile concatenates every
  /// constraint's ops per correspondence into one flat CSR table so the
  /// tracker's hot path applies them without virtual dispatch or pointer
  /// chasing. Only called when SupportsAdditionTracking() is true.
  virtual void AppendAdditionDeltaOps(CorrespondenceId changed,
                                      std::vector<AdditionDeltaOp>* out) const {
    (void)changed;
    (void)out;
  }

  /// Number of violations in `selection` that involve `c`.
  virtual size_t CountViolationsInvolving(const DynamicBitset& selection,
                                          CorrespondenceId c) const = 0;

  /// Appends one entry per compiled constraint element: the set of
  /// correspondences that element jointly constrains (a conflicting pair for
  /// one-to-one, a chain's {first, second, closing} for the cycle
  /// constraint). Two correspondences interact — their marginals can depend
  /// on each other under this constraint — only if they share a group, so
  /// the transitive closure of group co-membership over unasserted
  /// correspondences yields the constraint-connected components used by the
  /// incremental reconciliation engine. The default is no couplings
  /// (an always-satisfied constraint).
  virtual void AppendCouplingGroups(
      std::vector<std::vector<CorrespondenceId>>* out) const {
    (void)out;
  }

  /// Unit propagation: given the correspondences already determined to be in
  /// every instance (`approved`) or in no instance (`disapproved`), appends
  /// (correspondence, value) pairs this constraint now forces. Examples for
  /// the cycle constraint: both chain members determined-in forces the
  /// closing correspondence in; one member in with the closing out (or
  /// non-candidate) forces the other member out. Returns FailedPrecondition
  /// when the determined sets already contradict the constraint (e.g. two
  /// conflicting correspondences both approved). Implementations may emit
  /// assignments already present in the input sets; the caller deduplicates.
  /// The default forces nothing.
  virtual Status PropagateDetermined(
      const DynamicBitset& approved, const DynamicBitset& disapproved,
      std::vector<std::pair<CorrespondenceId, bool>>* out) const {
    (void)approved;
    (void)disapproved;
    (void)out;
    return Status::OK();
  }
};

}  // namespace smn

#endif  // SMN_CORE_CONSTRAINT_H_
