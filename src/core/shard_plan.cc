#include "core/shard_plan.h"

#include <algorithm>

namespace smn {

ShardPlan ShardPlan::Build(const ComponentIndex& index, size_t shard_count,
                           size_t correspondence_count) {
  if (shard_count == 0) shard_count = 1;
  ShardPlan plan;
  plan.components_.assign(shard_count, {});
  plan.weights_.assign(shard_count, 0);
  plan.shard_of_component_.assign(index.component_count(), kNoShard);
  plan.shard_of_correspondence_.assign(correspondence_count, kNoShard);

  // Longest-processing-time placement: largest component first (ascending
  // component index on ties), each onto the lightest shard (lowest id on
  // ties). Both tie-breaks are total orders, so the plan is deterministic.
  std::vector<size_t> order(index.component_count());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const size_t wa = index.component(a).members.size();
    const size_t wb = index.component(b).members.size();
    if (wa != wb) return wa > wb;
    return a < b;
  });
  for (size_t component : order) {
    size_t lightest = 0;
    for (size_t s = 1; s < shard_count; ++s) {
      if (plan.weights_[s] < plan.weights_[lightest]) lightest = s;
    }
    plan.components_[lightest].push_back(component);
    plan.weights_[lightest] += index.component(component).members.size();
    plan.shard_of_component_[component] = lightest;
    for (CorrespondenceId member : index.component(component).members) {
      plan.shard_of_correspondence_[member] = lightest;
    }
  }
  // ProbabilisticNetwork's component_filter requires ascending indices.
  for (auto& owned : plan.components_) {
    std::sort(owned.begin(), owned.end());
  }
  return plan;
}

}  // namespace smn
