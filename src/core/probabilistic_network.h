#ifndef SMN_CORE_PROBABILISTIC_NETWORK_H_
#define SMN_CORE_PROBABILISTIC_NETWORK_H_

#include <memory>
#include <vector>

#include "core/constraint_set.h"
#include "core/feedback.h"
#include "core/network.h"
#include "core/sample_store.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace smn {

/// Tuning knobs for the probabilistic matching network.
struct ProbabilisticNetworkOptions {
  SampleStoreOptions store;
};

/// The probabilistic matching network <N, P> of the paper: the single state
/// carried through reconciliation. Wraps the candidate network, the
/// maintained sample set Ω*, the user feedback F and the derived
/// correspondence probabilities P, and answers the decision-theoretic
/// queries (network uncertainty, information gain) that drive uncertainty
/// reduction.
///
/// The wrapped Network and ConstraintSet must outlive this object.
class ProbabilisticNetwork {
 public:
  /// Builds the network state and draws the initial sample set.
  static StatusOr<ProbabilisticNetwork> Create(
      const Network& network, const ConstraintSet& constraints,
      ProbabilisticNetworkOptions options, Rng* rng);

  ProbabilisticNetwork(ProbabilisticNetwork&&) = default;
  ProbabilisticNetwork& operator=(ProbabilisticNetwork&&) = default;

  const Network& network() const { return *network_; }
  const ConstraintSet& constraints() const { return *constraints_; }
  const Feedback& feedback() const { return feedback_; }

  /// Current probabilities P (Equation 2). Asserted correspondences have
  /// probability exactly 1 or 0.
  const std::vector<double>& probabilities() const { return probabilities_; }
  double probability(CorrespondenceId c) const { return probabilities_[c]; }

  /// Records an expert assertion, runs view maintenance on Ω*, and refreshes
  /// P. Fails when `c` contradicts an earlier assertion.
  Status Assert(CorrespondenceId c, bool approved, Rng* rng);

  /// The network uncertainty H(C, P) of Equation 3, in bits.
  double Uncertainty() const;

  /// All correspondences whose probability is strictly between 0 and 1 —
  /// the candidates eligible for assertion in Algorithm 1.
  std::vector<CorrespondenceId> UncertainCorrespondences() const;

  /// Information gain IG(c) of Equations 4-5 for every correspondence,
  /// computed by partitioning Ω* on membership of c (certain correspondences
  /// get 0). One pass over the sample/correspondence membership matrix; no
  /// re-sampling involved.
  std::vector<double> InformationGains() const;

  /// The maintained sample multiset Ω*.
  const std::vector<DynamicBitset>& samples() const { return store_.samples(); }

  /// True when Ω* provably holds every matching instance.
  bool exhausted() const { return store_.exhausted(); }

  /// Cross-chain convergence diagnostic of the most recent sampling round
  /// (see SampleStore::chain_diagnostics). Callers gate trust in the
  /// probability estimates on diagnostics().Converged().
  const ChainDiagnostics& chain_diagnostics() const {
    return store_.chain_diagnostics();
  }

 private:
  ProbabilisticNetwork(const Network& network, const ConstraintSet& constraints,
                       ProbabilisticNetworkOptions options);

  void RefreshProbabilities();

  /// Membership column of each correspondence over the current samples:
  /// bit i of column c is set iff sample i contains c.
  std::vector<DynamicBitset> BuildMembershipColumns() const;

  const Network* network_;
  const ConstraintSet* constraints_;
  SampleStore store_;
  Feedback feedback_;
  std::vector<double> probabilities_;
};

}  // namespace smn

#endif  // SMN_CORE_PROBABILISTIC_NETWORK_H_
