#ifndef SMN_CORE_PROBABILISTIC_NETWORK_H_
#define SMN_CORE_PROBABILISTIC_NETWORK_H_

#include <memory>
#include <vector>

#include "core/compiled_artifact.h"
#include "core/component_index.h"
#include "core/constraint_set.h"
#include "core/feedback.h"
#include "core/network.h"
#include "core/sample_store.h"
#include "core/soft_feedback.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace smn {

/// Tuning knobs for the probabilistic matching network.
struct ProbabilisticNetworkOptions {
  /// Per-component sample-set configuration (|Ω*_K| targets, the exact
  /// threshold, and the multi-chain sampling engine knobs).
  SampleStoreOptions store;
  /// Incremental (component-cached) reconciliation. When true, integrating
  /// an assertion re-samples only the constraint-connected component the
  /// asserted correspondence belongs to; all other components keep their
  /// cached sample sets, which conditional independence across components
  /// proves unchanged. When false, every component is recomputed from
  /// scratch on every assertion — the O(|C|) baseline. Both modes derive
  /// per-component RNG streams purely from (component anchor, rebuild
  /// generation), so they produce bit-identical probabilities, H(C, P), and
  /// reconciliation traces; `false` exists for equivalence testing and A/B
  /// benchmarking (bench_incremental_reconcile).
  bool incremental = true;
  /// Upper bound on the materialized samples() view. When every component is
  /// exhausted and the cross-product of the per-component instance sets has
  /// at most this many elements, samples() is the complete instance space Ω
  /// and exhausted() reports true.
  size_t sample_view_cap = 4096;
};

/// The probabilistic matching network <N, P> of the paper: the single state
/// carried through reconciliation. Wraps the candidate network, the user
/// feedback F and the derived correspondence probabilities P, and answers
/// the decision-theoretic queries (network uncertainty, information gain)
/// that drive uncertainty reduction.
///
/// Internally the candidate set is partitioned into constraint-connected
/// components (ComponentIndex): conditioned on the feedback closure,
/// distinct components are mutually independent, so the network keeps one
/// sample set Ω*_K per component K and Assert re-samples only the touched
/// component. Per-component RNG streams are forked purely from the
/// component anchor and its rebuild generation, making every derived
/// quantity a deterministic function of the Create-time seed and the
/// assertion sequence — independent of thread count and of whether the
/// incremental cache is enabled.
///
/// The state is explicitly split: everything compile-time immutable —
/// network, compiled constraints, coupling groups, the empty-feedback
/// closure and partition — lives in a shared CompiledArtifact, while this
/// object holds only the per-session mutable state (the feedback and
/// soft-evidence ledgers, the per-component sample/gains caches). Under the
/// borrowing Create the wrapped Network and ConstraintSet must outlive this
/// object; under the artifact Create the shared_ptr keeps them alive.
///
/// Concurrency contract: const accessors — probabilities(), Uncertainty(),
/// InformationGains(), ComponentGains(), samples(), the diagnostics — are
/// safe to call concurrently from any number of threads on one instance;
/// the lazily memoized state they share (the per-component gain caches and
/// the stitched sample view) is protected by annotated locks, enforced at
/// compile time by -Wthread-safety. The mutating entry points (Assert,
/// AssertSoft) require exclusive access: callers serialize writes against
/// all other calls, the discipline a session manager provides naturally
/// (snapshot-consistent reads between asserts).
class ProbabilisticNetwork {
 public:
  /// Builds the network state and draws the initial per-component sample
  /// sets. Advances `*rng` exactly once (the split seeds every
  /// per-component stream). Compiles a private CompiledArtifact internally;
  /// `network` and `constraints` must outlive this object.
  static StatusOr<ProbabilisticNetwork> Create(
      const Network& network, const ConstraintSet& constraints,
      ProbabilisticNetworkOptions options, Rng* rng);

  /// Session-style construction over a shared compiled artifact: copies only
  /// the cheap mutable seeds (the initial closure and partition) from the
  /// artifact and draws the initial per-component sample sets. N sessions
  /// over one tenant share one artifact — the compiled constraint tables and
  /// coupling groups are never duplicated. Bit-identical to the borrowing
  /// Create for the same network, constraints, options, and rng stream.
  /// `component_filter`, when non-null, restricts the session to the given
  /// *initial* component indices (ascending indices into
  /// artifact->initial_index()): only those components get caches and
  /// marginals; every other correspondence reads probability 0. This is the
  /// shard projection — because coupling groups never span initial
  /// components, a filtered session's state over its components is bitwise
  /// identical to the same components inside an unfiltered session, provided
  /// asserts are stamped with the global revision (see AssertStamped).
  static StatusOr<ProbabilisticNetwork> Create(
      std::shared_ptr<const CompiledArtifact> artifact,
      ProbabilisticNetworkOptions options, Rng* rng,
      const std::vector<size_t>* component_filter = nullptr);

  /// Movable, not copyable (per-component caches are owned exclusively).
  ProbabilisticNetwork(ProbabilisticNetwork&&) = default;
  /// Move assignment.
  ProbabilisticNetwork& operator=(ProbabilisticNetwork&&) = default;

  /// The wrapped candidate network.
  const Network& network() const { return artifact_->network(); }
  /// The compiled constraints Γ.
  const ConstraintSet& constraints() const { return artifact_->constraints(); }

  /// The shared immutable compiled artifact this session state derives from.
  /// Sessions created over the same tenant return the same object.
  const std::shared_ptr<const CompiledArtifact>& artifact() const {
    return artifact_;
  }
  /// The raw expert feedback F = <F+, F->.
  const Feedback& feedback() const { return feedback_; }

  /// Current probabilities P (Equation 2). Asserted correspondences — and
  /// correspondences logically forced by the feedback closure — have
  /// probability exactly 1 or 0.
  const std::vector<double>& probabilities() const { return probabilities_; }
  /// Probability of a single correspondence.
  double probability(CorrespondenceId c) const { return probabilities_[c]; }

  /// Records an expert assertion, recomputes the feedback closure, and
  /// re-samples the touched component (every component when
  /// options.incremental is false). Fails when `c` contradicts an earlier
  /// assertion or the feedback closure becomes logically inconsistent.
  /// `rng` is accepted for interface stability but not consumed: all
  /// sampling randomness derives from per-component streams forked off the
  /// Create-time split, which is what keeps incremental and full re-sampling
  /// bit-identical.
  Status Assert(CorrespondenceId c, bool approved, Rng* rng);

  /// Assert with an explicit revision stamp: integrates the assertion as if
  /// it were the `revision`-th successful assert of a monolithic session
  /// (the rebuilt caches' RNG streams fork on `revision`, and
  /// assertion_count() jumps to it). Assert(c, a, rng) is exactly
  /// AssertStamped(c, a, assertion_count() + 1). Sharded execution routes
  /// each globally accepted assert to the owning shard with the
  /// coordinator's global revision, which is what keeps a
  /// component-filtered session's sample streams bitwise identical to the
  /// monolithic path. `revision` must be greater than assertion_count().
  Status AssertStamped(CorrespondenceId c, bool approved, uint64_t revision);

  /// Records one noisy expert answer on `c` under the worker error-rate
  /// model (see SoftEvidence) and reweights the touched component's
  /// marginals by importance-weighting its stored samples with the feedback
  /// likelihood — no re-sampling, no closure change, and no `rng`
  /// consumption (the parameter mirrors Assert for interface stability).
  ///
  /// `error_rate` exactly 0 is the perfect-expert limit and delegates to
  /// the hard Assert verbatim, so the soft path at ε = 0 is bit-identical
  /// to the paper's Algorithm 1 by construction; rates outside [0, 0.5]
  /// (negative, NaN, > 0.5) are rejected. Evidence on a correspondence
  /// already determined by the feedback closure is recorded in the ledger
  /// but cannot move its pinned probability. Fails with OutOfRange /
  /// InvalidArgument on bad inputs (and, in the ε = 0 case, with whatever
  /// Assert fails with).
  Status AssertSoft(CorrespondenceId c, bool approved, double error_rate,
                    Rng* rng);

  /// The accumulated noisy-answer ledger driving the likelihood reweighting.
  const SoftEvidence& soft_evidence() const { return soft_evidence_; }

  /// The network uncertainty H(C, P) of Equation 3, in bits: the sum of the
  /// maintained per-component entropies (determined correspondences
  /// contribute zero).
  double Uncertainty() const;

  /// All correspondences whose probability is strictly between 0 and 1 —
  /// the candidates eligible for assertion in Algorithm 1.
  std::vector<CorrespondenceId> UncertainCorrespondences() const;

  /// Information gain IG(c) of Equations 4-5 for every correspondence
  /// (certain correspondences get 0). Assembled from per-component gain
  /// caches: conditioning on c only changes marginals inside c's component,
  /// so the cross-component entropy terms cancel and IG(c) is computed from
  /// the component's samples alone — O(|K|² · |Ω*_K|) instead of
  /// O(|C|² · |Ω*|). Caches are memoized per component generation.
  std::vector<double> InformationGains() const;

  /// A deterministic whole-network view of the maintained samples. When
  /// every component is exhausted and the instance-space cross-product fits
  /// options.sample_view_cap, this is exactly Ω (each instance once);
  /// otherwise it cyclically stitches the per-component sample sets into
  /// |Ω*| = max_K |Ω*_K| full instances. Every stitched element is a valid
  /// matching instance, but the view is an approximation: the joint is
  /// independent across components by construction, and a component whose
  /// sample count does not divide the stitch length has its early samples
  /// slightly over-weighted — use probabilities() for marginals, never
  /// frequencies over this view.
  const std::vector<DynamicBitset>& samples() const;

  /// True when samples() provably holds every matching instance.
  bool exhausted() const { return exhausted_; }

  /// Cross-chain convergence diagnostic merged over the per-component
  /// sampling rounds: `exact` when every component was enumerated
  /// exhaustively, otherwise the pessimistic combination (minimum usable
  /// chains, maximum R̂, per-correspondence R̂ mapped back to global ids).
  /// Callers gate trust in the probability estimates on
  /// chain_diagnostics().Converged().
  const ChainDiagnostics& chain_diagnostics() const {
    return merged_diagnostics_;
  }

  /// The feedback closure: correspondences logically determined in or out
  /// by the assertions made so far (see PropagateFeedback).
  const DeterminedSet& determined() const { return determined_; }

  /// Number of constraint-connected components among the undetermined
  /// correspondences.
  size_t component_count() const { return index_.component_count(); }

  /// Component `i` (ascending anchor order).
  const ConstraintComponent& component(size_t i) const {
    return index_.component(i);
  }

  /// Index of the component containing `c`, or ComponentIndex::kNoComponent
  /// when `c` is determined.
  size_t ComponentOf(CorrespondenceId c) const { return index_.ComponentOf(c); }

  /// Generation of component `i`: the assertion count at which its cache was
  /// last rebuilt. A (anchor, generation) pair uniquely identifies a cache's
  /// *sample set*; selection strategies key their incremental gain
  /// bookkeeping on it together with component_evidence_revision (soft
  /// evidence changes marginals and gains without re-sampling).
  uint64_t component_generation(size_t i) const;

  /// Number of soft-evidence reweights applied to component `i` since its
  /// cache was last rebuilt (0 right after a rebuild). The pair
  /// (generation, evidence revision) uniquely identifies the component's
  /// marginal/gain state.
  uint64_t component_evidence_revision(size_t i) const;

  /// Kish effective sample size of component `i` under the current
  /// importance weights: |Ω*_K| when no soft evidence touches the component,
  /// shrinking toward 1 as evidence concentrates the weight mass. A
  /// collapsed ESS means the reweighted marginals have little resolution
  /// left and the caller should either commit a hard assertion (which
  /// re-samples under the new closure) or distrust the estimates.
  double ComponentEffectiveSampleSize(size_t i) const;

  /// Per-member information gains of component `i` (aligned with
  /// component(i).members). Computed lazily and memoized until the component
  /// is rebuilt.
  const std::vector<double>& ComponentGains(size_t i) const;

  /// Entropy contribution of component `i` to H(C, P), in bits.
  double ComponentEntropy(size_t i) const;

  /// True when component `i`'s sample set provably holds its every
  /// sub-instance.
  bool ComponentExhausted(size_t i) const;

  /// Number of maintained samples of component `i` (|Ω*_K|). Snapshot
  /// merging uses (anchor, exhausted, sample count) triples to reproduce the
  /// monolithic exhausted() cross-product check across shards.
  size_t ComponentSampleCount(size_t i) const;

  /// Number of assertions integrated so far. Also serves as a partition
  /// version: the component structure only changes when this advances.
  uint64_t assertion_count() const { return assertion_count_; }

  /// Process-unique id of this network instance, assigned at Create and
  /// preserved across moves. Selection strategies key their incremental
  /// caches on it: a fresh network reusing a destroyed one's address must
  /// not alias its cached per-component state.
  uint64_t instance_id() const { return instance_id_; }

 private:
  /// One component's cached reconciliation state: its projected subproblem,
  /// the maintained sample set in global coordinates, and the derived
  /// marginals/entropy/gains. Invariant: the cache is a pure function of
  /// (subproblem candidates, restricted feedback, anchor, built_at), which
  /// is what makes incremental reuse and full recomputation bit-identical.
  struct ComponentCache {
    ComponentSubproblem subproblem;
    /// Sampling engine; null when the member-exact path enumerated Ω_K.
    std::unique_ptr<SampleStore> store;
    /// Ω*_K in *subproblem-local* coordinates (width = subproblem candidate
    /// count, not the global network width — O(component), which is what
    /// keeps million-candidate sessions resident). Consumers index members
    /// through subproblem.member_local_ids; the stitched samples() view
    /// globalizes lazily.
    std::vector<DynamicBitset> samples;
    /// Marginals of the component members (aligned with members).
    std::vector<double> member_probabilities;
    /// Σ h(p_member) over the component, in bits.
    double entropy = 0.0;
    /// True when `samples` is provably all of Ω_K.
    bool exhausted = false;
    /// Diagnostics of the fill (psrf in local ids; exact for enumeration).
    ChainDiagnostics diagnostics;
    /// Assertion count at the time this cache was built.
    uint64_t built_at = 0;
    /// Unnormalized importance weights over `samples` under the soft
    /// evidence restricted to the component members (max weight exactly 1).
    /// Empty = uniform (no member evidence, or evidence that zero-weights
    /// every sample): marginals then use the exact unweighted counts, which
    /// keeps the evidence-free path bit-identical to the pre-soft engine.
    std::vector<double> weights;
    /// Reweights applied since the cache was built (see
    /// component_evidence_revision).
    uint64_t evidence_revision = 0;
    /// Guards the lazy gain memoization below — the only cache state
    /// mutated under const accessors (everything above is written solely by
    /// the exclusive Assert/AssertSoft paths). Caches live behind
    /// unique_ptr, so the non-movable mutex never has to move.
    mutable Mutex gains_mu_{"pn.component_gains", LockRank::kComponentGains};
    /// Lazily computed member gains (aligned with members).
    mutable std::vector<double> member_gains SMN_GUARDED_BY(gains_mu_);
    /// True when member_gains is up to date.
    mutable bool gains_valid SMN_GUARDED_BY(gains_mu_) = false;
  };

  ProbabilisticNetwork(std::shared_ptr<const CompiledArtifact> artifact,
                       ProbabilisticNetworkOptions options);

  /// Builds (or rebuilds) the cache for `component` under the given feedback
  /// closure. `frozen_candidates` reproduces a previous projection
  /// bit-for-bit (full-resample mode); nullptr derives the candidate set
  /// fresh. Pure with respect to network state: Assert stages caches through
  /// this before committing anything.
  StatusOr<std::unique_ptr<ComponentCache>> BuildCache(
      const ConstraintComponent& component,
      const std::vector<CorrespondenceId>* frozen_candidates,
      uint64_t built_at, const DeterminedSet& determined) const;

  /// Recomputes probabilities_, the exhausted flag, and merged diagnostics
  /// from the component caches and the determined closure.
  void RefreshDerivedState();

  /// Recomputes `cache`'s importance weights, member marginals, and entropy
  /// from the soft evidence on the component's members. No-op (weights stay
  /// empty, unweighted marginals untouched) when no member carries
  /// evidence; falls back to the unweighted marginals when the evidence
  /// zero-weights every stored sample. Invalidates the cached gains.
  void ApplyEvidence(ComponentCache* cache,
                     const ConstraintComponent& component) const;

  /// Exact integer-count marginals and entropy of an unweighted sample set —
  /// the evidence-free baseline both BuildCache and the zero-likelihood
  /// fallback of ApplyEvidence derive from.
  static void ComputeUnweightedMarginals(ComponentCache* cache,
                                         const ConstraintComponent& component);

  /// Computes a cache's member gains from its samples (see
  /// InformationGains). Caller holds the cache's gain lock (ComponentGains
  /// is the single call site).
  void ComputeGains(const ComponentCache& cache,
                    const ConstraintComponent& component) const
      SMN_REQUIRES(cache.gains_mu_);

  /// Shared immutable compiled state: network, compiled constraints,
  /// coupling groups, and the empty-feedback baseline. Everything below is
  /// this session's private mutable state.
  std::shared_ptr<const CompiledArtifact> artifact_;
  ProbabilisticNetworkOptions options_;
  Feedback feedback_;
  SoftEvidence soft_evidence_;
  DeterminedSet determined_;
  ComponentIndex index_;
  /// Parallel to index_ components (ascending anchor order).
  std::vector<std::unique_ptr<ComponentCache>> caches_;
  /// Seed generator split off the Create-time rng; every per-component
  /// stream is a pure Fork of it keyed by (anchor, built_at).
  Rng base_;
  uint64_t assertion_count_ = 0;
  uint64_t instance_id_ = 0;
  std::vector<double> probabilities_;
  ChainDiagnostics merged_diagnostics_;
  bool exhausted_ = false;
  /// Guards the lazily stitched whole-network sample view (samples()
  /// materializes it on first use after an assertion). Held via unique_ptr
  /// so the network stays movable; never null on a live instance.
  mutable std::unique_ptr<Mutex> lazy_mu_;
  mutable std::vector<DynamicBitset> sample_view_ SMN_GUARDED_BY(*lazy_mu_);
  mutable bool sample_view_valid_ SMN_GUARDED_BY(*lazy_mu_) = false;
};

}  // namespace smn

#endif  // SMN_CORE_PROBABILISTIC_NETWORK_H_
