#ifndef SMN_CORE_INTERACTION_GRAPH_H_
#define SMN_CORE_INTERACTION_GRAPH_H_

#include <array>
#include <cstddef>
#include <vector>

#include "core/types.h"
#include "util/status.h"

namespace smn {

/// The interaction graph G_S: vertices are schemas, and an edge (si, sj)
/// means the pair needs to be matched. Undirected, no self-loops.
class InteractionGraph {
 public:
  /// Creates a graph over `schema_count` vertices with no edges.
  explicit InteractionGraph(size_t schema_count);

  /// Number of vertices (schemas).
  size_t schema_count() const { return schema_count_; }
  /// Number of undirected edges.
  size_t edge_count() const { return edges_.size(); }

  /// Adds the undirected edge (a, b). Fails on self-loops, out-of-range
  /// vertices, or duplicate edges.
  Status AddEdge(SchemaId a, SchemaId b);

  /// True when the undirected edge (a, b) is present; false for unknown
  /// vertices.
  bool HasEdge(SchemaId a, SchemaId b) const;

  /// All edges as (min, max) schema-id pairs, in insertion order.
  const std::vector<std::pair<SchemaId, SchemaId>>& edges() const {
    return edges_;
  }

  /// Neighbors of schema `s`.
  const std::vector<SchemaId>& Neighbors(SchemaId s) const {
    return adjacency_[s];
  }

  /// All triangles {a < b < c} with all three pairwise edges present. The
  /// cycle constraint is compiled over these (3-cycles are the building block
  /// of the closed-cycle condition; longer cycles decompose into chained
  /// triangles on complete graphs).
  std::vector<std::array<SchemaId, 3>> Triangles() const;

  /// True when every pair of schemas is connected.
  bool IsComplete() const;

 private:
  size_t schema_count_;
  std::vector<std::vector<SchemaId>> adjacency_;
  std::vector<std::pair<SchemaId, SchemaId>> edges_;
};

}  // namespace smn

#endif  // SMN_CORE_INTERACTION_GRAPH_H_
