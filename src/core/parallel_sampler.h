#ifndef SMN_CORE_PARALLEL_SAMPLER_H_
#define SMN_CORE_PARALLEL_SAMPLER_H_

#include <vector>

#include "core/sampler.h"
#include "util/statusor.h"

namespace smn {

/// Tuning knobs for the multi-chain sampling engine.
struct ParallelSamplerOptions {
  /// Independent chains (the m of multi-chain MCMC). 1 degenerates to the
  /// serial sampler plus burn-in.
  size_t num_chains = 4;
  /// Worker threads; 0 means min(num_chains, hardware threads). The thread
  /// count only affects how fast samples arrive — never which samples.
  size_t num_threads = 0;
  /// Samples discarded from the head of every chain before it is returned,
  /// letting the walk forget its starting point.
  size_t burn_in = 0;
  /// Start every chain from an independent random maximal instance extending
  /// F+ instead of from F+ itself. These are the overdispersed starting
  /// points cross-chain convergence diagnostics assume; the walk's
  /// stationary distribution is unchanged either way. Set to false for the
  /// literal Algorithm 3 start.
  bool overdispersed_starts = true;
  /// Per-chain walk configuration (Algorithm 3).
  SamplerOptions sampler;
};

/// Runs N independent random-walk chains — each a serial Algorithm 3 — on a
/// thread pool and merges their samples in chain-major order. Every chain
/// draws from its own RNG stream forked off the caller's generator
/// (Rng::Fork with the chain index as stream id), so for a given seed the
/// output is bit-identical regardless of num_threads or OS scheduling.
class ParallelSampler {
 public:
  /// Both `network` and `constraints` must outlive the sampler; the
  /// constraint set must be compiled against `network`.
  ParallelSampler(const Network& network, const ConstraintSet& constraints,
                  ParallelSamplerOptions options = {});

  /// Draws `count` samples in total, split as evenly as possible across the
  /// chains (earlier chains absorb the remainder). Returns one sample vector
  /// per chain with burn-in already discarded. Advances `*rng` exactly once,
  /// so back-to-back calls explore fresh streams. Fails when F+ violates the
  /// constraints beyond repair.
  StatusOr<std::vector<std::vector<DynamicBitset>>> SampleChains(
      const Feedback& feedback, size_t count, Rng* rng) const;

  /// SampleChains + chain-major concatenation appended to `*out`.
  Status SampleMerged(const Feedback& feedback, size_t count, Rng* rng,
                      std::vector<DynamicBitset>* out) const;

  /// The active configuration.
  const ParallelSamplerOptions& options() const { return options_; }
  /// The underlying per-chain serial sampler.
  const Sampler& sampler() const { return sampler_; }

 private:
  Sampler sampler_;
  ParallelSamplerOptions options_;
};

}  // namespace smn

#endif  // SMN_CORE_PARALLEL_SAMPLER_H_
