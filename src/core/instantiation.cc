#include "core/instantiation.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <vector>

#include "core/matching_instance.h"
#include "core/repair.h"

namespace smn {

double InstanceLogLikelihood(const DynamicBitset& instance,
                             const std::vector<double>& probabilities) {
  constexpr double kFloor = 1e-12;
  double total = 0.0;
  instance.ForEachSetBit([&](size_t c) {
    total += std::log(std::max(probabilities[c], kFloor));
  });
  return total;
}

Instantiator::Instantiator(InstantiationOptions options) : options_(options) {}

StatusOr<InstantiationResult> Instantiator::Instantiate(
    const ProbabilisticNetwork& pmn, Rng* rng) const {
  const Network& network = pmn.network();
  const ConstraintSet& constraints = pmn.constraints();
  const Feedback& feedback = pmn.feedback();
  const std::vector<double>& probabilities = pmn.probabilities();
  const size_t n = network.correspondence_count();

  // Ranks (repair distance, likelihood) lexicographically; likelihood only
  // participates when enabled (Fig. 11 ablation).
  auto better = [&](size_t dist_a, double ll_a, size_t dist_b, double ll_b) {
    if (dist_a != dist_b) return dist_a < dist_b;
    return options_.use_likelihood && ll_a > ll_b;
  };

  // One scratch for every repair/maximalize in this search: the local
  // search's inner loop rides the same zero-allocation kernel as the walk.
  WalkScratch scratch(n);

  // Step 1: initialization — greedy pick-up among the maintained samples.
  DynamicBitset best(n);
  bool have_best = false;
  size_t best_distance = n + 1;
  double best_ll = -std::numeric_limits<double>::infinity();
  for (const DynamicBitset& sample : pmn.samples()) {
    const size_t distance = RepairDistance(sample, n);
    const double ll = InstanceLogLikelihood(sample, probabilities);
    if (!have_best || better(distance, ll, best_distance, best_ll)) {
      best = sample;
      best_distance = distance;
      best_ll = ll;
      have_best = true;
    }
  }
  if (!have_best) {
    // No samples (empty store): fall back to the smallest consistent seed.
    // F+ may be chain-open (non-monotone cycle constraint); closure-repair
    // completes it or reports a genuinely contradictory approval set.
    best = feedback.approved();
    if (!constraints.IsSatisfied(best)) {
      SMN_RETURN_IF_ERROR(RepairAll(constraints, feedback, &best, &scratch));
    }
    Maximalize(constraints, feedback, rng, &best, &scratch);
    best_distance = RepairDistance(best, n);
    best_ll = InstanceLogLikelihood(best, probabilities);
  }

  // Step 2: optimization — randomized local search with tabu memory.
  DynamicBitset current = best;
  std::deque<CorrespondenceId> tabu;
  DynamicBitset tabu_member(n);
  std::vector<CorrespondenceId> eligible;
  std::vector<double> weights;
  for (size_t iteration = 0; iteration < options_.iterations; ++iteration) {
    eligible.clear();
    weights.clear();
    for (CorrespondenceId c = 0; c < n; ++c) {
      if (current.Test(c) || feedback.IsDisapproved(c) || tabu_member.Test(c)) {
        continue;
      }
      eligible.push_back(c);
      weights.push_back(probabilities[c]);
    }
    if (eligible.empty()) break;  // Everything tried recently or selected.

    // Fitness-proportionate selection: high-probability correspondences are
    // likelier to be consistent with the rest of the instance.
    const CorrespondenceId chosen = eligible[rng->RouletteWheel(weights)];
    tabu.push_back(chosen);
    tabu_member.Set(chosen);
    if (tabu.size() > options_.tabu_size) {
      tabu_member.Reset(tabu.front());
      tabu.pop_front();
    }

    SMN_RETURN_IF_ERROR(
        RepairInstance(constraints, feedback, chosen, &current, &scratch));

    const size_t distance = RepairDistance(current, n);
    const double ll = InstanceLogLikelihood(current, probabilities);
    if (better(distance, ll, best_distance, best_ll)) {
      best = current;
      best_distance = distance;
      best_ll = ll;
    }
  }

  if (options_.maximalize_result) {
    Maximalize(constraints, feedback, rng, &best, &scratch);
    best_distance = RepairDistance(best, n);
    best_ll = InstanceLogLikelihood(best, probabilities);
  }

  InstantiationResult result;
  result.instance = std::move(best);
  result.repair_distance = best_distance;
  result.log_likelihood = best_ll;
  return result;
}

}  // namespace smn
