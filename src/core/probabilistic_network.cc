#include "core/probabilistic_network.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <utility>

#include "core/entropy.h"
#include "core/matching_instance.h"

namespace smn {
namespace {

/// Source of process-unique network instance ids (see instance_id()).
std::atomic<uint64_t> g_next_instance_id{1};

/// Pure per-component stream id: distinct (anchor, built_at) pairs map to
/// distinct ids (built_at is bounded by the assertion count, far below 2^32),
/// and Rng::Fork's finalizer decorrelates adjacent ids.
uint64_t StreamId(CorrespondenceId anchor, uint64_t built_at) {
  return (static_cast<uint64_t>(anchor) << 32) ^ built_at;
}

/// ORs a subproblem-local sample into a global-width bitset.
void OrGlobalized(const DynamicBitset& local_sample,
                  const std::vector<CorrespondenceId>& local_to_global,
                  DynamicBitset* global) {
  local_sample.ForEachSetBit(
      [&](size_t local) { global->Set(local_to_global[local]); });
}

}  // namespace

void ProbabilisticNetwork::ComputeUnweightedMarginals(
    ComponentCache* cache, const ConstraintComponent& component) {
  // Samples are in subproblem-local coordinates: member j of the component
  // is bit member_local_ids[j] of every sample.
  const std::vector<CorrespondenceId>& member_local =
      cache->subproblem.member_local_ids;
  cache->member_probabilities.assign(component.members.size(), 0.0);
  if (!cache->samples.empty()) {
    const double denom = static_cast<double>(cache->samples.size());
    for (size_t j = 0; j < component.members.size(); ++j) {
      size_t count = 0;
      for (const DynamicBitset& sample : cache->samples) {
        if (sample.Test(member_local[j])) ++count;
      }
      cache->member_probabilities[j] = static_cast<double>(count) / denom;
    }
  }
  cache->entropy = 0.0;
  for (double p : cache->member_probabilities) {
    cache->entropy += BinaryEntropy(p);
  }
}

ProbabilisticNetwork::ProbabilisticNetwork(
    std::shared_ptr<const CompiledArtifact> artifact,
    ProbabilisticNetworkOptions options)
    : artifact_(std::move(artifact)),
      options_(options),
      feedback_(artifact_->network().correspondence_count()),
      soft_evidence_(artifact_->network().correspondence_count()),
      lazy_mu_(std::make_unique<Mutex>("pn.sample_view",
                                       LockRank::kSampleView)) {}

StatusOr<ProbabilisticNetwork> ProbabilisticNetwork::Create(
    const Network& network, const ConstraintSet& constraints,
    ProbabilisticNetworkOptions options, Rng* rng) {
  // Borrowing path: compile a private artifact over the caller's objects.
  // The derived state is a pure function of (network, constraints), so this
  // is bit-identical to sharing a prebuilt artifact.
  SMN_ASSIGN_OR_RETURN(CompiledArtifact artifact,
                       CompiledArtifact::Build(network, constraints));
  return Create(std::make_shared<const CompiledArtifact>(std::move(artifact)),
                options, rng);
}

StatusOr<ProbabilisticNetwork> ProbabilisticNetwork::Create(
    std::shared_ptr<const CompiledArtifact> artifact,
    ProbabilisticNetworkOptions options, Rng* rng,
    const std::vector<size_t>* component_filter) {
  if (artifact == nullptr) {
    return Status::InvalidArgument("Create: artifact must be non-null");
  }
  ProbabilisticNetwork pmn(std::move(artifact), options);
  pmn.instance_id_ =
      g_next_instance_id.fetch_add(1, std::memory_order_relaxed);
  pmn.base_ = rng->Split();
  // Seed the session's mutable state from the artifact's empty-feedback
  // baseline: the closure and partition are copied (they diverge as this
  // session's feedback pins variables), the coupling groups are read through
  // the artifact and never duplicated.
  pmn.determined_ = pmn.artifact_->initial_determined();
  const ComponentIndex& initial = pmn.artifact_->initial_index();
  if (component_filter == nullptr) {
    pmn.index_ = initial;
  } else {
    // Shard projection: keep only the filtered initial components. The
    // fresh rng->Split() above matches an unfiltered session's base stream,
    // and each cache's stream forks on (anchor, built_at) alone, so the
    // filtered caches are bitwise identical to their unfiltered twins.
    std::vector<ConstraintComponent> owned;
    owned.reserve(component_filter->size());
    for (size_t i : *component_filter) {
      if (i >= initial.component_count()) {
        return Status::InvalidArgument(
            "Create: component_filter index out of range");
      }
      if (!owned.empty() && initial.component(i).anchor <= owned.back().anchor) {
        return Status::InvalidArgument(
            "Create: component_filter must be strictly ascending");
      }
      owned.push_back(initial.component(i));
    }
    pmn.index_ = ComponentIndex::FromComponents(
        std::move(owned), pmn.artifact_->network().correspondence_count());
  }
  for (size_t i = 0; i < pmn.index_.component_count(); ++i) {
    SMN_ASSIGN_OR_RETURN(
        std::unique_ptr<ComponentCache> cache,
        pmn.BuildCache(pmn.index_.component(i), nullptr, /*built_at=*/0,
                       pmn.determined_));
    pmn.caches_.push_back(std::move(cache));
  }
  pmn.RefreshDerivedState();
  return pmn;
}

StatusOr<std::unique_ptr<ProbabilisticNetwork::ComponentCache>>
ProbabilisticNetwork::BuildCache(
    const ConstraintComponent& component,
    const std::vector<CorrespondenceId>* frozen_candidates,
    uint64_t built_at, const DeterminedSet& determined) const {
  auto cache = std::make_unique<ComponentCache>();
  SMN_ASSIGN_OR_RETURN(
      cache->subproblem,
      BuildComponentSubproblem(artifact_->network(), artifact_->constraints(),
                               artifact_->coupling_groups(), component,
                               determined, frozen_candidates,
                               &artifact_->group_index()));
  cache->built_at = built_at;
  const ComponentSubproblem& sub = cache->subproblem;
  const size_t member_count = sub.member_local_ids.size();

  const size_t exact_threshold = options_.store.exact_threshold;
  if (exact_threshold > 0 && member_count <= exact_threshold &&
      member_count <= 63) {
    // Member-exact path: enumerate the 2^|K| member subsets on top of the
    // approved boundary. Equivalent to ExactEnumerator but exponential only
    // in the member count, not in the boundary size. Consumes no randomness,
    // so exact components are bit-stable across modes by construction.
    const size_t local_n = sub.local_to_global.size();
    DynamicBitset base(local_n);
    sub.feedback.approved().ForEachSetBit([&](size_t c) { base.Set(c); });
    const uint64_t limit = 1ULL << member_count;
    for (uint64_t mask = 0; mask < limit; ++mask) {
      DynamicBitset selection = base;
      for (size_t j = 0; j < member_count; ++j) {
        if ((mask >> j) & 1ULL) selection.Set(sub.member_local_ids[j]);
      }
      if (!sub.constraints->IsSatisfied(selection)) continue;
      if (!IsMaximalInstance(*sub.constraints, sub.feedback, selection)) {
        continue;
      }
      cache->samples.push_back(std::move(selection));
    }
    cache->exhausted = true;
    cache->diagnostics = ChainDiagnostics{};
    cache->diagnostics.exact = true;
  } else {
    // Sampling path: the member-exact path above subsumes the store's own
    // exact-enumeration shortcut (which keys on the total candidate count,
    // boundary included), so disable it and sample.
    SampleStoreOptions store_options = options_.store;
    store_options.exact_threshold = 0;
    cache->store = std::make_unique<SampleStore>(
        *sub.network, *sub.constraints, store_options);
    Rng stream = base_.Fork(StreamId(component.anchor, built_at));
    SMN_RETURN_IF_ERROR(cache->store->Initialize(sub.feedback, &stream));
    cache->samples = cache->store->samples();
    cache->exhausted = cache->store->exhausted();
    cache->diagnostics = cache->store->chain_diagnostics();
  }

  // Member marginals and the component's entropy contribution.
  ComputeUnweightedMarginals(cache.get(), component);
  // A rebuilt cache starts from fresh unweighted marginals; standing soft
  // evidence on its members must be reapplied so incremental and
  // full-resample modes derive identical weighted state from identical
  // sample sets.
  ApplyEvidence(cache.get(), component);
  return cache;
}

void ProbabilisticNetwork::ApplyEvidence(
    ComponentCache* cache, const ConstraintComponent& component) const {
  cache->weights.clear();
  cache->evidence_revision = 0;
  if (cache->samples.empty()) return;
  // Evidence-free components keep the exact integer-count marginals: the
  // weighted formula (c·w)/(m·w) is mathematically but not bitwise equal to
  // c/m, and the evidence-free path must stay bit-identical to the pre-soft
  // engine. Contradictory hard evidence is uninformative (every sample gets
  // the same unit weight), so it counts as no evidence here.
  bool any_member_evidence = false;
  for (CorrespondenceId member : component.members) {
    if (soft_evidence_.HasEvidence(member) &&
        !soft_evidence_.Contradictory(member)) {
      any_member_evidence = true;
      break;
    }
  }
  if (!any_member_evidence) return;

  // Member-restricted importance weights, accumulated directly over the
  // component's members — an AssertSoft happens once per elicited answer,
  // and scanning the whole network's evidence ledger (or allocating a
  // full-|C| mask) per answer would scale with network size instead of
  // component size. Restriction to members is exact: evidence on any other
  // correspondence contributes the same constant factor to every sample of
  // this component and cancels under the max-shift.
  const size_t m = cache->samples.size();
  const std::vector<CorrespondenceId>& member_local =
      cache->subproblem.member_local_ids;
  std::vector<double> log_weights(m, 0.0);
  for (size_t j = 0; j < component.members.size(); ++j) {
    const CorrespondenceId member = component.members[j];
    if (!soft_evidence_.HasEvidence(member) ||
        soft_evidence_.Contradictory(member)) {
      continue;
    }
    const double log_in = soft_evidence_.LogLikelihoodIn(member);
    const double log_out = soft_evidence_.LogLikelihoodOut(member);
    for (size_t i = 0; i < m; ++i) {
      log_weights[i] += cache->samples[i].Test(member_local[j]) ? log_in
                                                                : log_out;
    }
  }
  double max_log = -std::numeric_limits<double>::infinity();
  for (double lw : log_weights) max_log = std::max(max_log, lw);
  {
    MutexLock lock(cache->gains_mu_);
    cache->gains_valid = false;
  }
  double total = 0.0;
  if (max_log != -std::numeric_limits<double>::infinity()) {
    cache->weights.resize(m);
    for (size_t i = 0; i < m; ++i) {
      cache->weights[i] = std::exp(log_weights[i] - max_log);
      total += cache->weights[i];
    }
  }
  // Zero likelihood on every sample (contradiction-free evidence on one
  // correspondence cannot do this; conflicting hard answers across coupled
  // members can): fall back to the unweighted marginals rather than divide
  // by zero.
  if (cache->weights.empty() || total <= 0.0) {
    cache->weights.clear();
    ComputeUnweightedMarginals(cache, component);
    return;
  }
  for (size_t j = 0; j < component.members.size(); ++j) {
    double with_member = 0.0;
    for (size_t i = 0; i < cache->samples.size(); ++i) {
      if (cache->samples[i].Test(member_local[j])) {
        with_member += cache->weights[i];
      }
    }
    cache->member_probabilities[j] = with_member / total;
  }
  cache->entropy = 0.0;
  for (double p : cache->member_probabilities) {
    cache->entropy += BinaryEntropy(p);
  }
}

Status ProbabilisticNetwork::AssertSoft(CorrespondenceId c, bool approved,
                                        double error_rate, Rng* rng) {
  // The perfect-expert limit: a zero-error answer is ground truth and takes
  // the hard path verbatim (closure propagation + component re-sampling),
  // making soft reconciliation at ε = 0 bit-identical to Algorithm 1.
  // Anything else outside (0, 0.5] — negative, NaN, > 0.5 — falls through
  // to Record, which rejects it.
  if (error_rate == 0.0) {
    return Assert(c, approved, rng);
  }
  (void)rng;  // Reweighting is deterministic; no randomness consumed.
  SMN_RETURN_IF_ERROR(soft_evidence_.Record(c, approved, error_rate));
  const size_t touched = index_.ComponentOf(c);
  if (touched == ComponentIndex::kNoComponent) {
    // Determined by the feedback closure: the answer joins the ledger (it
    // still cost an elicitation) but cannot move a logically pinned value.
    return Status::OK();
  }
  ComponentCache& cache = *caches_[touched];
  const uint64_t revision = cache.evidence_revision + 1;
  ApplyEvidence(&cache, index_.component(touched));
  cache.evidence_revision = revision;
  {
    // ApplyEvidence already invalidated the gains on the evidence path;
    // this also covers its early returns (contradictory-only evidence).
    MutexLock lock(cache.gains_mu_);
    cache.gains_valid = false;
  }
  const ConstraintComponent& component = index_.component(touched);
  for (size_t j = 0; j < component.members.size(); ++j) {
    probabilities_[component.members[j]] = cache.member_probabilities[j];
  }
  return Status::OK();
}

Status ProbabilisticNetwork::Assert(CorrespondenceId c, bool approved,
                                    Rng* rng) {
  (void)rng;  // See the header: randomness derives from per-component forks.
  return AssertStamped(c, approved, assertion_count_ + 1);
}

Status ProbabilisticNetwork::AssertStamped(CorrespondenceId c, bool approved,
                                           uint64_t revision) {
  if (revision <= assertion_count_) {
    return Status::InvalidArgument(
        "AssertStamped: revision must exceed the current assertion count");
  }
  // Stage every fallible step against local state; commit only once nothing
  // can fail anymore, so a rejected assertion (contradictory feedback
  // closure, sampler failure) leaves the network exactly as it was.
  const size_t n = artifact_->network().correspondence_count();
  Feedback feedback = feedback_;
  SMN_RETURN_IF_ERROR(feedback.Assert(c, approved));
  SMN_ASSIGN_OR_RETURN(DeterminedSet determined,
                       PropagateFeedback(artifact_->constraints(), feedback, n));
  const uint64_t assertion_count = revision;
  const size_t touched = index_.ComponentOf(c);

  std::vector<ConstraintComponent> split_components;
  std::vector<std::unique_ptr<ComponentCache>> split_caches;
  if (touched != ComponentIndex::kNoComponent) {
    // The feedback closure only pins variables inside the touched component
    // (any newly forced correspondence shares a coupling chain with `c`), so
    // re-partitioning the touched component's surviving members is a
    // complete rebuild of the partition.
    DynamicBitset touched_active(n);
    for (CorrespondenceId member : index_.component(touched).members) {
      if (!determined.IsDetermined(member)) touched_active.Set(member);
    }
    const ComponentIndex split = ComponentIndex::BuildRestricted(
        artifact_->coupling_groups(), artifact_->group_index(), touched_active,
        n);
    for (size_t i = 0; i < split.component_count(); ++i) {
      SMN_ASSIGN_OR_RETURN(std::unique_ptr<ComponentCache> cache,
                           BuildCache(split.component(i), nullptr,
                                      assertion_count, determined));
      split_components.push_back(split.component(i));
      split_caches.push_back(std::move(cache));
    }
  }

  // Full-resample baseline: recompute every untouched cache from scratch
  // with its frozen candidate projection and original stream. Unchanged
  // restricted feedback makes this bit-identical to the cached state — the
  // equivalence the incremental mode's correctness rests on.
  std::vector<std::unique_ptr<ComponentCache>> rebuilt(
      index_.component_count());
  if (!options_.incremental) {
    for (size_t i = 0; i < index_.component_count(); ++i) {
      if (i == touched) continue;
      SMN_ASSIGN_OR_RETURN(
          rebuilt[i],
          BuildCache(index_.component(i),
                     &caches_[i]->subproblem.local_to_global,
                     caches_[i]->built_at, determined));
      // BuildCache resets the evidence revision (correct for the touched
      // component, whose generation advances); an untouched component keeps
      // its generation, so it must keep its revision too — a reissued
      // (generation, revision = 0) key would alias the pre-evidence state
      // in selection-strategy caches, and the accessor would diverge from
      // incremental mode.
      rebuilt[i]->evidence_revision = caches_[i]->evidence_revision;
    }
  }

  // Commit: infallible from here on.
  feedback_ = std::move(feedback);
  determined_ = std::move(determined);
  assertion_count_ = assertion_count;
  std::vector<ConstraintComponent> components = std::move(split_components);
  std::vector<std::unique_ptr<ComponentCache>> caches =
      std::move(split_caches);
  for (size_t i = 0; i < index_.component_count(); ++i) {
    if (i == touched) continue;
    components.push_back(index_.component(i));
    caches.push_back(rebuilt[i] != nullptr ? std::move(rebuilt[i])
                                           : std::move(caches_[i]));
  }

  // Re-establish ascending anchor order (the untouched tail is sorted but
  // the split components interleave).
  std::vector<size_t> order(components.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return components[a].anchor < components[b].anchor;
  });
  std::vector<ConstraintComponent> sorted_components;
  caches_.clear();
  for (size_t i : order) {
    sorted_components.push_back(std::move(components[i]));
    caches_.push_back(std::move(caches[i]));
  }
  index_ = ComponentIndex::FromComponents(std::move(sorted_components), n);

  RefreshDerivedState();
  return Status::OK();
}

void ProbabilisticNetwork::RefreshDerivedState() {
  const size_t n = artifact_->network().correspondence_count();
  probabilities_.assign(n, 0.0);
  for (size_t i = 0; i < caches_.size(); ++i) {
    const ConstraintComponent& component = index_.component(i);
    for (size_t j = 0; j < component.members.size(); ++j) {
      probabilities_[component.members[j]] =
          caches_[i]->member_probabilities[j];
    }
  }
  // The feedback closure is ground truth: pin it regardless of sampling.
  determined_.approved.ForEachSetBit(
      [&](size_t c) { probabilities_[c] = 1.0; });
  determined_.disapproved.ForEachSetBit(
      [&](size_t c) { probabilities_[c] = 0.0; });

  bool all_exhausted = true;
  bool product_overflow = false;
  size_t product = 1;
  for (const auto& cache : caches_) {
    all_exhausted = all_exhausted && cache->exhausted;
    const size_t size = cache->samples.size();
    if (size == 0) {
      product = 0;
    } else if (product >
               std::numeric_limits<size_t>::max() / size) {
      product_overflow = true;  // Cross-product far beyond any view cap.
    } else {
      product *= size;
    }
  }
  exhausted_ = all_exhausted && !product_overflow &&
               product <= options_.sample_view_cap;

  // Merge per-component diagnostics pessimistically.
  ChainDiagnostics merged;
  merged.exact = true;
  merged.psrf.assign(n, 1.0);
  bool any_sampled = false;
  for (size_t i = 0; i < caches_.size(); ++i) {
    const ChainDiagnostics& diagnostics = caches_[i]->diagnostics;
    if (diagnostics.exact) continue;
    merged.exact = false;
    const ComponentSubproblem& sub = caches_[i]->subproblem;
    for (size_t j = 0; j < sub.member_local_ids.size(); ++j) {
      const CorrespondenceId local = sub.member_local_ids[j];
      if (local < diagnostics.psrf.size()) {
        merged.psrf[sub.local_to_global[local]] = diagnostics.psrf[local];
      }
    }
    merged.max_psrf = std::max(merged.max_psrf, diagnostics.max_psrf);
    if (!any_sampled) {
      merged.usable_chains = diagnostics.usable_chains;
      merged.min_chain_length = diagnostics.min_chain_length;
      any_sampled = true;
    } else {
      merged.usable_chains =
          std::min(merged.usable_chains, diagnostics.usable_chains);
      merged.min_chain_length =
          std::min(merged.min_chain_length, diagnostics.min_chain_length);
    }
  }
  merged_diagnostics_ = std::move(merged);

  MutexLock lock(*lazy_mu_);
  sample_view_valid_ = false;
}

double ProbabilisticNetwork::Uncertainty() const {
  double total = 0.0;
  for (const auto& cache : caches_) total += cache->entropy;
  return total;
}

std::vector<CorrespondenceId> ProbabilisticNetwork::UncertainCorrespondences()
    const {
  std::vector<CorrespondenceId> result;
  for (CorrespondenceId c = 0; c < probabilities_.size(); ++c) {
    if (probabilities_[c] > 0.0 && probabilities_[c] < 1.0) {
      result.push_back(c);
    }
  }
  return result;
}

void ProbabilisticNetwork::ComputeGains(
    const ComponentCache& cache, const ConstraintComponent& component) const {
  const size_t k = component.members.size();
  const size_t m = cache.samples.size();
  const std::vector<CorrespondenceId>& member_local =
      cache.subproblem.member_local_ids;
  cache.member_gains.assign(k, 0.0);
  cache.gains_valid = true;
  if (m == 0) return;

  if (!cache.weights.empty()) {
    // Importance-weighted gains: the same Equations 4-5 with every sample
    // count replaced by its weight mass, so conditioning respects the soft
    // evidence exactly like the marginals do. Kept separate from the
    // integer-count path below, which must stay bit-identical when no
    // evidence touches the component.
    double total = 0.0;
    for (double w : cache.weights) total += w;
    if (total <= 0.0) return;
    std::vector<double> member_mass(k, 0.0);
    std::vector<double> joint(k * k, 0.0);
    std::vector<size_t> present;
    present.reserve(k);
    for (size_t i = 0; i < m; ++i) {
      const double w = cache.weights[i];
      if (w <= 0.0) continue;
      present.clear();
      for (size_t j = 0; j < k; ++j) {
        if (cache.samples[i].Test(member_local[j])) present.push_back(j);
      }
      for (size_t a : present) {
        member_mass[a] += w;
        for (size_t b : present) joint[a * k + b] += w;
      }
    }
    const double h_now = cache.entropy;
    for (size_t j = 0; j < k; ++j) {
      const double mass = member_mass[j];
      if (mass <= 0.0 || mass >= total) continue;  // Certain: IG is zero.
      const double p_c = mass / total;
      const double without = total - mass;
      double h_plus = 0.0;
      double h_minus = 0.0;
      for (size_t x = 0; x < k; ++x) {
        const double j_mass = joint[x * k + j];
        h_plus += BinaryEntropy(j_mass / mass);
        h_minus += BinaryEntropy((member_mass[x] - j_mass) / without);
      }
      const double h_conditional = p_c * h_plus + (1.0 - p_c) * h_minus;
      cache.member_gains[j] = h_now - h_conditional;
    }
    return;
  }

  // Membership column per member over the component's samples.
  std::vector<DynamicBitset> columns(k, DynamicBitset(m));
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < k; ++j) {
      if (cache.samples[i].Test(member_local[j])) columns[j].Set(i);
    }
  }
  std::vector<size_t> totals(k, 0);
  for (size_t j = 0; j < k; ++j) totals[j] = columns[j].Count();

  // IG(c) over the component only: conditioning on c leaves every other
  // component's marginals untouched, so the cross-component entropy terms of
  // Equations 4-5 cancel exactly.
  const double h_now = cache.entropy;
  for (size_t j = 0; j < k; ++j) {
    const size_t with_c = totals[j];
    if (with_c == 0 || with_c == m) continue;  // Certain: IG is zero.
    const double p_c = static_cast<double>(with_c) / static_cast<double>(m);
    const size_t without_c = m - with_c;
    double h_plus = 0.0;
    double h_minus = 0.0;
    for (size_t x = 0; x < k; ++x) {
      const size_t joint = columns[x].IntersectionCount(columns[j]);
      h_plus += BinaryEntropy(static_cast<double>(joint) /
                              static_cast<double>(with_c));
      h_minus += BinaryEntropy(static_cast<double>(totals[x] - joint) /
                               static_cast<double>(without_c));
    }
    const double h_conditional = p_c * h_plus + (1.0 - p_c) * h_minus;
    cache.member_gains[j] = h_now - h_conditional;
  }
}

const std::vector<double>& ProbabilisticNetwork::ComponentGains(
    size_t i) const {
  const ComponentCache& cache = *caches_[i];
  // Compute-once latch: the lock covers the validity check, the fill, and
  // the return expression, so concurrent readers race neither the flag nor
  // the vector. The reference stays valid after release — only the
  // exclusive Assert/AssertSoft paths invalidate or replace the cache.
  MutexLock lock(cache.gains_mu_);
  if (!cache.gains_valid) ComputeGains(cache, index_.component(i));
  return cache.member_gains;
}

std::vector<double> ProbabilisticNetwork::InformationGains() const {
  std::vector<double> gains(artifact_->network().correspondence_count(), 0.0);
  for (size_t i = 0; i < caches_.size(); ++i) {
    const ConstraintComponent& component = index_.component(i);
    const std::vector<double>& member_gains = ComponentGains(i);
    for (size_t j = 0; j < component.members.size(); ++j) {
      gains[component.members[j]] = member_gains[j];
    }
  }
  return gains;
}

uint64_t ProbabilisticNetwork::component_generation(size_t i) const {
  return caches_[i]->built_at;
}

uint64_t ProbabilisticNetwork::component_evidence_revision(size_t i) const {
  return caches_[i]->evidence_revision;
}

double ProbabilisticNetwork::ComponentEffectiveSampleSize(size_t i) const {
  const ComponentCache& cache = *caches_[i];
  if (cache.weights.empty()) {
    return static_cast<double>(cache.samples.size());
  }
  return EffectiveSampleSize(cache.weights);
}

double ProbabilisticNetwork::ComponentEntropy(size_t i) const {
  return caches_[i]->entropy;
}

bool ProbabilisticNetwork::ComponentExhausted(size_t i) const {
  return caches_[i]->exhausted;
}

size_t ProbabilisticNetwork::ComponentSampleCount(size_t i) const {
  return caches_[i]->samples.size();
}

const std::vector<DynamicBitset>& ProbabilisticNetwork::samples() const {
  // Same latch pattern as ComponentGains: lock spans check, materialize,
  // and return; the view only changes under an exclusive assertion.
  MutexLock lock(*lazy_mu_);
  if (sample_view_valid_) return sample_view_;
  sample_view_.clear();

  DynamicBitset base = determined_.approved;
  if (caches_.empty()) {
    sample_view_.push_back(std::move(base));
  } else if (exhausted_) {
    // Complete instance space: the cross-product of the per-component
    // instance sets grafted onto the determined-in base.
    sample_view_.push_back(std::move(base));
    for (const auto& cache : caches_) {
      std::vector<DynamicBitset> next;
      next.reserve(sample_view_.size() * cache->samples.size());
      for (const DynamicBitset& partial : sample_view_) {
        for (const DynamicBitset& sample : cache->samples) {
          DynamicBitset instance = partial;
          OrGlobalized(sample, cache->subproblem.local_to_global, &instance);
          next.push_back(std::move(instance));
        }
      }
      sample_view_ = std::move(next);
    }
  } else {
    // Cyclic stitch: exact per-component marginals, independent joint.
    size_t length = 0;
    bool any_empty = false;
    for (const auto& cache : caches_) {
      length = std::max(length, cache->samples.size());
      any_empty = any_empty || cache->samples.empty();
    }
    if (!any_empty) {
      sample_view_.reserve(length);
      for (size_t i = 0; i < length; ++i) {
        DynamicBitset instance = base;
        for (const auto& cache : caches_) {
          OrGlobalized(cache->samples[i % cache->samples.size()],
                       cache->subproblem.local_to_global, &instance);
        }
        sample_view_.push_back(std::move(instance));
      }
    }
  }
  sample_view_valid_ = true;
  return sample_view_;
}

}  // namespace smn
