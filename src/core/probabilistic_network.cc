#include "core/probabilistic_network.h"

#include "core/entropy.h"

namespace smn {

ProbabilisticNetwork::ProbabilisticNetwork(const Network& network,
                                           const ConstraintSet& constraints,
                                           ProbabilisticNetworkOptions options)
    : network_(&network),
      constraints_(&constraints),
      store_(network, constraints, options.store),
      feedback_(network.correspondence_count()) {}

StatusOr<ProbabilisticNetwork> ProbabilisticNetwork::Create(
    const Network& network, const ConstraintSet& constraints,
    ProbabilisticNetworkOptions options, Rng* rng) {
  ProbabilisticNetwork pmn(network, constraints, options);
  SMN_RETURN_IF_ERROR(pmn.store_.Initialize(pmn.feedback_, rng));
  pmn.RefreshProbabilities();
  return pmn;
}

Status ProbabilisticNetwork::Assert(CorrespondenceId c, bool approved,
                                    Rng* rng) {
  SMN_RETURN_IF_ERROR(feedback_.Assert(c, approved));
  SMN_RETURN_IF_ERROR(store_.ApplyAssertion(c, approved, feedback_, rng));
  RefreshProbabilities();
  return Status::OK();
}

void ProbabilisticNetwork::RefreshProbabilities() {
  probabilities_ = store_.ComputeProbabilities();
  // Assertions are ground truth: pin them regardless of sampling noise.
  for (CorrespondenceId c = 0; c < probabilities_.size(); ++c) {
    if (feedback_.IsApproved(c)) probabilities_[c] = 1.0;
    if (feedback_.IsDisapproved(c)) probabilities_[c] = 0.0;
  }
}

double ProbabilisticNetwork::Uncertainty() const {
  return NetworkUncertainty(probabilities_);
}

std::vector<CorrespondenceId> ProbabilisticNetwork::UncertainCorrespondences()
    const {
  std::vector<CorrespondenceId> result;
  for (CorrespondenceId c = 0; c < probabilities_.size(); ++c) {
    if (probabilities_[c] > 0.0 && probabilities_[c] < 1.0) {
      result.push_back(c);
    }
  }
  return result;
}

std::vector<DynamicBitset> ProbabilisticNetwork::BuildMembershipColumns() const {
  const size_t n = network_->correspondence_count();
  const auto& samples = store_.samples();
  std::vector<DynamicBitset> columns(n, DynamicBitset(samples.size()));
  for (size_t i = 0; i < samples.size(); ++i) {
    samples[i].ForEachSetBit([&](size_t c) { columns[c].Set(i); });
  }
  return columns;
}

std::vector<double> ProbabilisticNetwork::InformationGains() const {
  const size_t n = network_->correspondence_count();
  std::vector<double> gains(n, 0.0);
  const auto& samples = store_.samples();
  const size_t m = samples.size();
  if (m == 0) return gains;

  const std::vector<DynamicBitset> columns = BuildMembershipColumns();
  std::vector<size_t> totals(n, 0);
  for (size_t c = 0; c < n; ++c) totals[c] = columns[c].Count();

  const double h_now = Uncertainty();
  for (CorrespondenceId c = 0; c < n; ++c) {
    const size_t with_c = totals[c];
    if (with_c == 0 || with_c == m) continue;  // Certain: IG is zero.
    const double p_c = static_cast<double>(with_c) / static_cast<double>(m);
    // Partition Ω* on membership of c. H(C, P+) uses the samples containing
    // c; H(C, P-) the rest. The intersection counts give both at once.
    double h_plus = 0.0;
    double h_minus = 0.0;
    const size_t without_c = m - with_c;
    for (size_t x = 0; x < n; ++x) {
      const size_t joint = columns[x].IntersectionCount(columns[c]);
      h_plus += BinaryEntropy(static_cast<double>(joint) /
                              static_cast<double>(with_c));
      h_minus += BinaryEntropy(static_cast<double>(totals[x] - joint) /
                               static_cast<double>(without_c));
    }
    const double h_conditional = p_c * h_plus + (1.0 - p_c) * h_minus;
    gains[c] = h_now - h_conditional;
  }
  return gains;
}

}  // namespace smn
