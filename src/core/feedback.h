#ifndef SMN_CORE_FEEDBACK_H_
#define SMN_CORE_FEEDBACK_H_

#include <vector>

#include "core/types.h"
#include "util/dynamic_bitset.h"
#include "util/status.h"

namespace smn {

/// The user input F = <F+, F-> of the paper: the sets of approved and
/// disapproved correspondences collected during reconciliation. The two sets
/// stay disjoint; assertions are treated as ground truth (probability 1/0).
class Feedback {
 public:
  /// Creates empty feedback over a candidate set of `correspondence_count`.
  explicit Feedback(size_t correspondence_count)
      : approved_(correspondence_count), disapproved_(correspondence_count) {}

  /// Records the expert's approval of `c`. Fails when c was already
  /// disapproved (assertions are final) ; re-approving is a no-op.
  Status Approve(CorrespondenceId c);

  /// Records the expert's disapproval of `c`. Fails when c was already
  /// approved; re-disapproving is a no-op.
  Status Disapprove(CorrespondenceId c);

  /// Records an assertion in one call: approve when `approved` is true.
  Status Assert(CorrespondenceId c, bool approved) {
    return approved ? Approve(c) : Disapprove(c);
  }

  /// True when `c` ∈ F+.
  bool IsApproved(CorrespondenceId c) const { return approved_.Test(c); }
  /// True when `c` ∈ F-.
  bool IsDisapproved(CorrespondenceId c) const { return disapproved_.Test(c); }
  /// True when the expert has asserted `c` either way.
  bool IsAsserted(CorrespondenceId c) const {
    return IsApproved(c) || IsDisapproved(c);
  }

  /// |F+ ∪ F-|, the numerator of the paper's user-effort measure.
  size_t asserted_count() const {
    return approved_.Count() + disapproved_.Count();
  }

  /// |F+|.
  size_t approved_count() const { return approved_.Count(); }
  /// |F-|.
  size_t disapproved_count() const { return disapproved_.Count(); }
  /// Size of the candidate set this feedback ranges over.
  size_t correspondence_count() const { return approved_.size(); }

  /// F+ as a bitset over C.
  const DynamicBitset& approved() const { return approved_; }
  /// F- as a bitset over C.
  const DynamicBitset& disapproved() const { return disapproved_; }

  /// True when `instance` respects the feedback: F+ ⊆ I and F- ∩ I = ∅.
  bool IsRespectedBy(const DynamicBitset& instance) const {
    return instance.Contains(approved_) && !instance.Intersects(disapproved_);
  }

 private:
  DynamicBitset approved_;
  DynamicBitset disapproved_;
};

}  // namespace smn

#endif  // SMN_CORE_FEEDBACK_H_
