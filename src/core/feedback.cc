#include "core/feedback.h"

namespace smn {

Status Feedback::Approve(CorrespondenceId c) {
  if (c >= approved_.size()) {
    return Status::OutOfRange("Approve: correspondence id out of range");
  }
  if (disapproved_.Test(c)) {
    return Status::FailedPrecondition(
        "Approve: correspondence was already disapproved");
  }
  approved_.Set(c);
  return Status::OK();
}

Status Feedback::Disapprove(CorrespondenceId c) {
  if (c >= disapproved_.size()) {
    return Status::OutOfRange("Disapprove: correspondence id out of range");
  }
  if (approved_.Test(c)) {
    return Status::FailedPrecondition(
        "Disapprove: correspondence was already approved");
  }
  disapproved_.Set(c);
  return Status::OK();
}

}  // namespace smn
