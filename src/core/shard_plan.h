#ifndef SMN_CORE_SHARD_PLAN_H_
#define SMN_CORE_SHARD_PLAN_H_

#include <cstddef>
#include <vector>

#include "core/component_index.h"

namespace smn {

/// Deterministic size-balanced partition of a compiled artifact's initial
/// constraint-connected components into K shards. Built once per sharded
/// session from the artifact's initial ComponentIndex: components never
/// migrate (per-assert splits stay inside their initial component because
/// coupling groups never span components), so the owner of any
/// correspondence is fixed for the session's lifetime.
///
/// Balancing is longest-processing-time: components are placed largest
/// first (ties broken by ascending component index) onto the currently
/// lightest shard (ties broken by ascending shard id). The plan is a pure
/// function of (initial partition, shard count) — no randomness, no
/// iteration-order dependence — so equal inputs give equal routing on every
/// run, which the shard-equivalence differential suite relies on.
class ShardPlan {
 public:
  /// ShardOfComponent/ShardOfCorrespondence result for inputs no shard owns
  /// (initially determined correspondences).
  static constexpr size_t kNoShard = static_cast<size_t>(-1);

  /// Empty plan (no shards).
  ShardPlan() = default;

  /// Partitions `index`'s components into `shard_count` shards (clamped to
  /// at least 1; shards may own zero components when there are fewer
  /// components than shards). `correspondence_count` sizes the
  /// correspondence routing table.
  static ShardPlan Build(const ComponentIndex& index, size_t shard_count,
                         size_t correspondence_count);

  /// Number of shards.
  size_t shard_count() const { return components_.size(); }

  /// Initial-component indices owned by `shard`, strictly ascending — the
  /// exact component_filter a shard passes to ProbabilisticNetwork::Create.
  const std::vector<size_t>& components_of(size_t shard) const {
    return components_[shard];
  }

  /// Shard owning initial component `component`.
  size_t ShardOfComponent(size_t component) const {
    return shard_of_component_[component];
  }

  /// Shard owning `c`'s initial component, or kNoShard when `c` is
  /// determined by the empty-feedback closure (no shard samples it).
  size_t ShardOfCorrespondence(CorrespondenceId c) const {
    return shard_of_correspondence_[c];
  }

  /// Total member count of the components owned by `shard` (the balance
  /// weight used by Build; exposed for tests and load reporting).
  size_t shard_weight(size_t shard) const { return weights_[shard]; }

 private:
  std::vector<std::vector<size_t>> components_;
  std::vector<size_t> weights_;
  std::vector<size_t> shard_of_component_;
  std::vector<size_t> shard_of_correspondence_;
};

}  // namespace smn

#endif  // SMN_CORE_SHARD_PLAN_H_
