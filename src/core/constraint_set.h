#ifndef SMN_CORE_CONSTRAINT_SET_H_
#define SMN_CORE_CONSTRAINT_SET_H_

#include <cassert>
#include <memory>
#include <vector>

#include "core/constraint.h"
#include "util/status.h"

namespace smn {

/// The conjunction Γ = {γ1, ..., γn} of integrity constraints, compiled
/// against one Network. A selection satisfies the set when it satisfies every
/// member ("C' ⊨ Γ").
class ConstraintSet {
 public:
  /// An empty, uncompiled set.
  ConstraintSet() = default;
  /// Movable, not copyable (constraints are owned exclusively).
  ConstraintSet(ConstraintSet&&) = default;
  /// Move assignment.
  ConstraintSet& operator=(ConstraintSet&&) = default;

  /// Adds a constraint. Must happen before Compile.
  void Add(std::unique_ptr<Constraint> constraint);

  /// Compiles every constraint against `network`; the network must outlive
  /// this set.
  Status Compile(const Network& network);

  /// Number of constraints in the conjunction.
  size_t size() const { return constraints_.size(); }
  /// The i-th constraint, in Add order.
  const Constraint& constraint(size_t i) const { return *constraints_[i]; }

  /// True when `selection` satisfies all constraints.
  bool IsSatisfied(const DynamicBitset& selection) const;

  /// All violations across all constraints.
  std::vector<Violation> FindViolations(const DynamicBitset& selection) const;

  /// Violations in `selection` involving the selected correspondence `c`.
  std::vector<Violation> FindViolationsInvolving(const DynamicBitset& selection,
                                                 CorrespondenceId c) const;

  /// Violations that exist only because `removed` was just cleared from
  /// `selection` (e.g. re-opened triangles of the cycle constraint).
  std::vector<Violation> FindViolationsCreatedByRemoval(
      const DynamicBitset& selection, CorrespondenceId removed) const;

  /// True when adding `candidate` to a currently-consistent `selection`
  /// would violate some constraint.
  bool AdditionViolates(const DynamicBitset& selection,
                        CorrespondenceId candidate) const;

  /// Kernel query: appends all violations across all constraints as
  /// fixed-size records, in constraint Add order (the same order the
  /// Violation-based queries report). Appends into a caller-owned buffer so
  /// hot loops reuse capacity instead of allocating a fresh vector.
  void AppendConflicts(const DynamicBitset& selection,
                       std::vector<KernelViolation>* out) const;

  /// Kernel query: appends the violations involving the selected
  /// correspondence `c`, in constraint Add order. O(degree of c) for the
  /// built-in constraints.
  void AppendConflictsInvolving(const DynamicBitset& selection,
                                CorrespondenceId c,
                                std::vector<KernelViolation>* out) const;

  /// Kernel query: appends the violations created by clearing `removed`
  /// from `selection`, in constraint Add order.
  void AppendConflictsCreatedByRemoval(const DynamicBitset& selection,
                                       CorrespondenceId removed,
                                       std::vector<KernelViolation>* out) const;

  /// True when every member constraint implements the incremental
  /// addition-block counters (see Constraint::SupportsAdditionTracking),
  /// i.e. Maximalize may use the tracked fast path instead of per-candidate
  /// AdditionViolates probing.
  bool SupportsAdditionTracking() const;

  /// Process-unique id assigned by each Compile call. Walk scratches stamp
  /// their incremental tracker state with it, so a scratch reused against a
  /// different compiled set (even one with the same candidate count) detects
  /// the mismatch and reseeds instead of syncing against foreign counters.
  /// 0 means "never compiled".
  uint64_t compile_id() const { return compile_id_; }

  /// Seeds the aggregate addition-block counters across all constraints
  /// (see Constraint::SeedAdditionBlockCounts).
  void SeedAdditionBlockCounts(const DynamicBitset& selection,
                               uint32_t* monotone_blocks,
                               uint32_t* reversible_blocks) const;

  /// Propagates a single-element selection change (`changed` already
  /// flipped in `selection`; `added` says in which direction) through the
  /// compiled delta table, keeping the addition-block counters exact and
  /// flipping `*unblocked_any` when a reversible block is released by an
  /// addition. Inline and virtual-free: this runs once per committed
  /// Maximalize addition and once per walk-state diff bit, the two hottest
  /// tracker paths. Requires SupportsAdditionTracking() (the table is built
  /// by Compile exactly in that case).
  void ApplyAdditionBlockDelta(const DynamicBitset& selection,
                               CorrespondenceId changed, bool added,
                               uint32_t* monotone_blocks,
                               uint32_t* reversible_blocks,
                               bool* unblocked_any) const {
    assert(!delta_offsets_.empty() && "requires SupportsAdditionTracking()");
    const int sign = added ? 1 : -1;
    const uint32_t begin = delta_offsets_[changed];
    const uint32_t end = delta_offsets_[changed + 1];
    for (uint32_t i = begin; i < end; ++i) {
      const AdditionDeltaOp& op = delta_ops_[i];
      switch (op.kind) {
        case AdditionDeltaOp::Kind::kMonotone:
          monotone_blocks[op.target] = static_cast<uint32_t>(
              static_cast<int>(monotone_blocks[op.target]) + sign);
          break;
        case AdditionDeltaOp::Kind::kReversibleIfOpen:
          if (!selection.Test(op.cond)) {
            reversible_blocks[op.target] = static_cast<uint32_t>(
                static_cast<int>(reversible_blocks[op.target]) + sign);
          }
          break;
        case AdditionDeltaOp::Kind::kReleaseIfSelected:
          if (selection.Test(op.cond)) {
            reversible_blocks[op.target] = static_cast<uint32_t>(
                static_cast<int>(reversible_blocks[op.target]) - sign);
            if (added) *unblocked_any = true;
          }
          break;
      }
    }
  }

  /// Total number of violations involving `c` across all constraints.
  size_t CountViolationsInvolving(const DynamicBitset& selection,
                                  CorrespondenceId c) const;

  /// All coupling groups of all compiled constraints (see
  /// Constraint::AppendCouplingGroups). The groups define the
  /// constraint-connected components of the candidate set.
  std::vector<std::vector<CorrespondenceId>> CouplingGroups() const;

  /// Runs every constraint's unit propagation once (see
  /// Constraint::PropagateDetermined); callers iterate to a fixpoint.
  Status PropagateDetermined(
      const DynamicBitset& approved, const DynamicBitset& disapproved,
      std::vector<std::pair<CorrespondenceId, bool>>* out) const;

  /// A fresh, uncompiled constraint set with the same constraint kinds, for
  /// compiling against a per-component sub-network.
  ConstraintSet CloneUncompiled() const;

 private:
  std::vector<std::unique_ptr<Constraint>> constraints_;
  // Flat CSR delta table of the addition tracker: row c holds the
  // concatenated AppendAdditionDeltaOps of every constraint for c. Built by
  // Compile when all constraints support tracking; empty otherwise.
  std::vector<uint32_t> delta_offsets_;
  std::vector<AdditionDeltaOp> delta_ops_;
  uint64_t compile_id_ = 0;
  bool compiled_ = false;
};

}  // namespace smn

#endif  // SMN_CORE_CONSTRAINT_SET_H_
