#ifndef SMN_CORE_CONSTRAINT_SET_H_
#define SMN_CORE_CONSTRAINT_SET_H_

#include <memory>
#include <vector>

#include "core/constraint.h"
#include "util/status.h"

namespace smn {

/// The conjunction Γ = {γ1, ..., γn} of integrity constraints, compiled
/// against one Network. A selection satisfies the set when it satisfies every
/// member ("C' ⊨ Γ").
class ConstraintSet {
 public:
  /// An empty, uncompiled set.
  ConstraintSet() = default;
  /// Movable, not copyable (constraints are owned exclusively).
  ConstraintSet(ConstraintSet&&) = default;
  /// Move assignment.
  ConstraintSet& operator=(ConstraintSet&&) = default;

  /// Adds a constraint. Must happen before Compile.
  void Add(std::unique_ptr<Constraint> constraint);

  /// Compiles every constraint against `network`; the network must outlive
  /// this set.
  Status Compile(const Network& network);

  /// Number of constraints in the conjunction.
  size_t size() const { return constraints_.size(); }
  /// The i-th constraint, in Add order.
  const Constraint& constraint(size_t i) const { return *constraints_[i]; }

  /// True when `selection` satisfies all constraints.
  bool IsSatisfied(const DynamicBitset& selection) const;

  /// All violations across all constraints.
  std::vector<Violation> FindViolations(const DynamicBitset& selection) const;

  /// Violations in `selection` involving the selected correspondence `c`.
  std::vector<Violation> FindViolationsInvolving(const DynamicBitset& selection,
                                                 CorrespondenceId c) const;

  /// Violations that exist only because `removed` was just cleared from
  /// `selection` (e.g. re-opened triangles of the cycle constraint).
  std::vector<Violation> FindViolationsCreatedByRemoval(
      const DynamicBitset& selection, CorrespondenceId removed) const;

  /// True when adding `candidate` to a currently-consistent `selection`
  /// would violate some constraint.
  bool AdditionViolates(const DynamicBitset& selection,
                        CorrespondenceId candidate) const;

  /// Total number of violations involving `c` across all constraints.
  size_t CountViolationsInvolving(const DynamicBitset& selection,
                                  CorrespondenceId c) const;

  /// All coupling groups of all compiled constraints (see
  /// Constraint::AppendCouplingGroups). The groups define the
  /// constraint-connected components of the candidate set.
  std::vector<std::vector<CorrespondenceId>> CouplingGroups() const;

  /// Runs every constraint's unit propagation once (see
  /// Constraint::PropagateDetermined); callers iterate to a fixpoint.
  Status PropagateDetermined(
      const DynamicBitset& approved, const DynamicBitset& disapproved,
      std::vector<std::pair<CorrespondenceId, bool>>* out) const;

  /// A fresh, uncompiled constraint set with the same constraint kinds, for
  /// compiling against a per-component sub-network.
  ConstraintSet CloneUncompiled() const;

 private:
  std::vector<std::unique_ptr<Constraint>> constraints_;
  bool compiled_ = false;
};

}  // namespace smn

#endif  // SMN_CORE_CONSTRAINT_SET_H_
