#ifndef SMN_CORE_SAMPLE_STORE_H_
#define SMN_CORE_SAMPLE_STORE_H_

#include <vector>

#include "core/chain_diagnostics.h"
#include "core/constraint_set.h"
#include "core/feedback.h"
#include "core/network.h"
#include "core/parallel_sampler.h"
#include "core/soft_feedback.h"
#include "util/dynamic_bitset.h"
#include "util/rng.h"
#include "util/status.h"

namespace smn {

/// Tuning knobs for the maintained sample set Ω*.
struct SampleStoreOptions {
  /// Number of samples the store tries to keep (|Ω*|).
  size_t target_samples = 1000;
  /// The paper's tolerance threshold n_min: re-sample whenever fewer than
  /// this many samples survive view maintenance.
  size_t min_samples = 200;
  /// Networks with at most this many candidate correspondences are handled
  /// by exhaustive enumeration instead of sampling: Ω* then provably equals
  /// Ω. This subsumes the paper's two-round exhaustion heuristic, which can
  /// silently miss narrow-basin instances (e.g. singleton instances whose
  /// every extension opens a chain). Set to 0 to force pure sampling.
  size_t exact_threshold = 16;
  /// Multi-chain sampling engine configuration: chain count, worker threads,
  /// burn-in, and the per-chain walk knobs (`sampling.sampler`).
  ParallelSamplerOptions sampling;
};

/// Maintains the sample set Ω* across a stream of user assertions
/// (Section III-B, "View Maintenance"). On an assertion the store filters the
/// surviving samples — approvals keep instances containing c, disapprovals
/// keep instances without c — and re-samples when fewer than n_min samples
/// remain. When two consecutive sampling rounds cannot produce n_min distinct
/// instances, the instance space is declared exhausted: Ω* then holds every
/// matching instance exactly once and the probabilities of Equation 1 are
/// exact.
///
/// Concurrency contract: a SampleStore holds no internal locks. Const
/// accessors are safe to share across threads (they read state only written
/// by the mutating calls); Initialize/ApplyAssertion require exclusive
/// access. In the component-decomposed engine each store belongs to exactly
/// one ComponentCache, whose ownership discipline ProbabilisticNetwork
/// documents and -Wthread-safety enforces; in the service layer that whole
/// network (caches included) is in turn owned by exactly one
/// server::Session, whose per-session mutex serializes every mutating
/// request against snapshot reads.
class SampleStore {
 public:
  /// `network` and `constraints` must outlive the store.
  SampleStore(const Network& network, const ConstraintSet& constraints,
              SampleStoreOptions options = {});

  /// Fills the store from scratch under `feedback` (normally empty feedback
  /// at reconciliation start).
  Status Initialize(const Feedback& feedback, Rng* rng);

  /// View maintenance for the assertion of `c`. `feedback` must already
  /// include the assertion. Filters Ω' and re-samples if necessary.
  ///
  /// Note: the component-decomposed ProbabilisticNetwork engine does not
  /// route assertions through this — it rebuilds the touched component's
  /// store from a pure (anchor, generation) RNG stream instead, which is
  /// what keeps incremental and full-resample modes bit-identical. This
  /// remains the store-level view-maintenance API for direct SampleStore
  /// users (survivor filtering is cheaper than a re-sample when determinism
  /// across cache modes is not required).
  Status ApplyAssertion(CorrespondenceId c, bool approved,
                        const Feedback& feedback, Rng* rng);

  /// Current sample multiset Ω*.
  const std::vector<DynamicBitset>& samples() const { return samples_; }

  /// Per-correspondence probabilities p_c = |{I ∈ Ω* | c ∈ I}| / |Ω*|
  /// (Equation 2). Returns an all-zero vector when the store is empty.
  std::vector<double> ComputeProbabilities() const;

  /// Likelihood-reweighted marginals under noisy-expert evidence:
  /// p_c = Σ_{I ∈ Ω*, c ∈ I} w(I) / Σ_{I ∈ Ω*} w(I) with
  /// w(I) ∝ Π_x P(answers on x | 1[x ∈ I]) — Equation 2 importance-weighted
  /// by the feedback likelihood (see ComputeImportanceWeights). With no
  /// recorded evidence, or evidence that zero-weights every stored sample,
  /// this returns exactly ComputeProbabilities(); with hard (ε = 0)
  /// consistent evidence it equals the post-filter marginals of the
  /// Assert/view-maintenance path over the same sample set — the soft layer
  /// degenerates to the paper's hard semantics in the ε → 0 limit.
  std::vector<double> ComputeWeightedProbabilities(
      const SoftEvidence& evidence) const;

  /// True when Ω* provably contains every matching instance (probabilities
  /// are exact).
  bool exhausted() const { return exhausted_; }

  /// Cross-chain Gelman–Rubin-style diagnostic of the most recent sampling
  /// round (see ChainDiagnostics). After an exact-enumeration fill the
  /// diagnostic reports `exact` (and therefore Converged()) — an exhausted
  /// store has nothing left to disagree about.
  const ChainDiagnostics& chain_diagnostics() const {
    return chain_diagnostics_;
  }

  /// Number of distinct instances currently in the store.
  size_t DistinctCount() const;

  /// The active configuration.
  const SampleStoreOptions& options() const { return options_; }

 private:
  /// Tops the store up to target_samples, deduplicating when the space turns
  /// out to be smaller than n_min (exhaustion detection).
  Status TopUp(const Feedback& feedback, Rng* rng);

  /// Drops duplicate instances in place.
  void Deduplicate();

  const Network& network_;
  const ConstraintSet& constraints_;
  ParallelSampler sampler_;
  SampleStoreOptions options_;
  std::vector<DynamicBitset> samples_;
  ChainDiagnostics chain_diagnostics_;
  bool exhausted_ = false;
};

}  // namespace smn

#endif  // SMN_CORE_SAMPLE_STORE_H_
