#ifndef SMN_CORE_RECONCILER_H_
#define SMN_CORE_RECONCILER_H_

#include <functional>
#include <optional>
#include <vector>

#include "core/probabilistic_network.h"
#include "core/selection_strategy.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace smn {

/// Answers assertion requests during reconciliation: returns true to approve
/// the correspondence, false to disapprove. In experiments this is backed by
/// the ground-truth oracle; in production it would prompt a human expert.
using AssertionOracle = std::function<bool(CorrespondenceId)>;

/// The reconciliation goal δ of Algorithm 1. Reconciliation stops when any
/// configured bound is reached, or when no uncertain correspondence remains.
struct ReconcileGoal {
  /// Effort budget: maximum number of assertions (the paper's k).
  std::optional<size_t> max_assertions;
  /// Stop once H(C, P) drops to or below this threshold.
  std::optional<double> uncertainty_threshold;
};

/// One executed feedback step.
struct ReconcileStep {
  CorrespondenceId correspondence = kInvalidCorrespondence;
  bool approved = false;
  /// H(C, P') after integrating this assertion.
  double uncertainty_after = 0.0;
  /// User effort E = |F+ ∪ F-| / |C| after this assertion.
  double effort_after = 0.0;
};

/// Full record of a reconciliation run, for effort/uncertainty curves.
struct ReconcileTrace {
  double initial_uncertainty = 0.0;
  std::vector<ReconcileStep> steps;
};

/// The generic uncertainty-reduction procedure of Algorithm 1: repeatedly
/// select an uncertain correspondence (strategy), elicit its assertion
/// (oracle), and integrate the feedback into the probabilistic matching
/// network.
class Reconciler {
 public:
  /// All three collaborators must outlive the reconciler.
  Reconciler(ProbabilisticNetwork* pmn, SelectionStrategy* strategy,
             AssertionOracle oracle);

  /// Executes one select-elicit-integrate iteration. Returns NotFound when
  /// no uncertain correspondence remains.
  StatusOr<ReconcileStep> Step(Rng* rng);

  /// Runs Algorithm 1 until the goal is met or the network is certain.
  StatusOr<ReconcileTrace> Run(const ReconcileGoal& goal, Rng* rng);

 private:
  ProbabilisticNetwork* pmn_;
  SelectionStrategy* strategy_;
  AssertionOracle oracle_;
};

}  // namespace smn

#endif  // SMN_CORE_RECONCILER_H_
