#ifndef SMN_CORE_RECONCILER_H_
#define SMN_CORE_RECONCILER_H_

#include <functional>
#include <optional>
#include <vector>

#include "core/probabilistic_network.h"
#include "core/selection_strategy.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace smn {

/// Answers assertion requests during reconciliation: returns true to approve
/// the correspondence, false to disapprove. In experiments this is backed by
/// the ground-truth oracle; in production it would prompt a human expert.
using AssertionOracle = std::function<bool(CorrespondenceId)>;

/// The reconciliation goal δ of Algorithm 1. Reconciliation stops when any
/// configured bound is reached, or when no uncertain correspondence remains.
struct ReconcileGoal {
  /// Effort budget: maximum number of select-elicit-integrate steps (the
  /// paper's k; under a repeated-questioning policy one step may spend
  /// several elicitations — bound those with max_elicitations).
  std::optional<size_t> max_assertions;
  /// Elicitation budget: maximum number of oracle answers, counting every
  /// re-ask of a repeated-questioning policy. The bound is checked between
  /// steps, so the final step may overshoot by at most its own panel size.
  std::optional<size_t> max_elicitations;
  /// Stop once H(C, P) drops to or below this threshold.
  std::optional<double> uncertainty_threshold;
};

/// Noisy-expert elicitation policy: how many answers to gather per selected
/// correspondence and how to integrate them. The default (error_rate = 0,
/// one question, hard commit) is the paper's perfect-expert Algorithm 1,
/// bit-identical to the pre-policy Reconciler.
struct ElicitationPolicy {
  /// Assumed per-answer worker error rate ε of the evidence model, in
  /// [0, 0.5]. Exactly 0 trusts every answer as ground truth and takes the
  /// hard Assert path (single question, no soft evidence) regardless of
  /// the other knobs; rates outside the domain (negative, NaN, > 0.5) make
  /// Step fail fast with InvalidArgument before eliciting anything.
  double error_rate = 0.0;
  /// Maximum answers elicited per selected correspondence (majority-of-k;
  /// odd k recommended). Values < 1 behave as 1.
  size_t max_questions = 1;
  /// Stop re-asking early once max(posterior, 1 - posterior) reaches this
  /// confidence τ, where the posterior is the network's likelihood-weighted
  /// marginal of the selected correspondence after each answer. τ > 1 never
  /// stops early (always asks max_questions).
  double confidence = 0.95;
  /// After the panel, integrate the posterior-majority decision as a hard
  /// assertion (closure propagation + component re-sampling). When false the
  /// answers stay soft evidence only: probabilities sharpen but nothing is
  /// ever logically pinned, so runs need an explicit budget to terminate.
  bool commit_hard = true;
};

/// One executed feedback step.
struct ReconcileStep {
  /// The correspondence whose assertion was elicited.
  CorrespondenceId correspondence = kInvalidCorrespondence;
  /// The integrated decision: the expert's answer under the default policy,
  /// the posterior-majority decision under a repeated-questioning policy.
  bool approved = false;
  /// Oracle answers elicited by this step (1 under the default policy).
  size_t questions = 0;
  /// How many of those answers approved.
  size_t approvals = 0;
  /// Posterior P(c ∈ I | answers) when the step ended: exactly 1/0 under
  /// the hard path, the likelihood-weighted marginal under a soft policy.
  /// On a rejected step this reports the forced complement the network
  /// actually integrated (1/0), not the expert-side decision.
  double posterior = 0.0;
  /// True when the decision contradicted the feedback closure: the network
  /// rejected the assertion, the logically forced complement was integrated
  /// instead (see Reconciler), and `approved` reflects the expert-side
  /// decision that was rejected — not what entered the feedback.
  bool rejected = false;
  /// True when a hard assertion (the decision or its forced complement) was
  /// integrated this step; false for soft-only (commit_hard = false) steps.
  bool committed = false;
  /// H(C, P') after integrating this assertion.
  double uncertainty_after = 0.0;
  /// User effort after this step. Exact definition:
  /// E = |oracle answers elicited by this reconciler| / |C_u(0)|, where
  /// C_u(0) is the set of correspondences that were *uncertain*
  /// (0 < p < 1) when the Reconciler was constructed; elicitations and
  /// assertions that predate construction count toward neither side.
  /// Counting elicitations (not integrated assertions) makes re-asked
  /// questions and closure-rejected answers cost what they cost the user —
  /// a no-op re-assertion is still a question someone answered. Under the
  /// default single-question policy this coincides with the historical
  /// |F_new| / |C_u(0)| definition on every run that integrates each
  /// answer exactly once.
  /// Correspondences already certain at reconciliation start — pre-asserted,
  /// logically forced by constraints, or pinned to probability 0/1 by the
  /// initial sample set — can never be selected, so they are excluded from
  /// the denominator: asking one question per initially-reconcilable
  /// correspondence reads E = 1.0, and a majority-of-k policy reads k
  /// times that. Zero when nothing was uncertain at start. Caveat: in the
  /// sampling regime a correspondence pinned to 0/1 by sampling noise can
  /// become uncertain again after its component is re-sampled, so E can
  /// marginally exceed the per-policy bound on such runs; under exact
  /// enumeration and the default policy E ≤ 1 always.
  double effort_after = 0.0;
};

/// Full record of a reconciliation run, for effort/uncertainty curves.
struct ReconcileTrace {
  /// H(C, P) before the first assertion.
  double initial_uncertainty = 0.0;
  /// Number of uncertain correspondences at Reconciler construction — the
  /// effort denominator (see ReconcileStep::effort_after).
  size_t initially_uncertain = 0;
  /// Total oracle answers elicited across all steps (the effort numerator).
  size_t total_elicitations = 0;
  /// Steps whose decision the network rejected as contradicting the
  /// feedback closure (their forced complements were integrated instead).
  size_t rejected_assertions = 0;
  /// Every executed select-elicit-integrate step, in order. On goal-bounded
  /// or converged runs this is the full history; it is never discarded on a
  /// rejected assertion.
  std::vector<ReconcileStep> steps;
};

/// The generic uncertainty-reduction procedure of Algorithm 1: repeatedly
/// select an uncertain correspondence (strategy), elicit its assertion —
/// once, or repeatedly under a noisy-expert ElicitationPolicy — and
/// integrate the feedback into the probabilistic matching network.
///
/// Noisy answers can contradict the feedback closure (approve a
/// correspondence the earlier answers logically force out). The network
/// rejects such assertions atomically; the reconciler records the rejection
/// in the step/trace instead of aborting, and integrates the logically
/// forced complement — sound because a rejection proves every instance
/// consistent with the integrated feedback takes the opposite value — so a
/// run under an imperfect oracle always completes with a full trace.
class Reconciler {
 public:
  /// All three collaborators must outlive the reconciler. The default
  /// policy reproduces the paper's perfect-expert loop exactly.
  Reconciler(ProbabilisticNetwork* pmn, SelectionStrategy* strategy,
             AssertionOracle oracle, ElicitationPolicy policy = {});

  /// Executes one select-elicit-integrate iteration. Returns NotFound when
  /// no uncertain correspondence remains.
  StatusOr<ReconcileStep> Step(Rng* rng);

  /// Runs Algorithm 1 until the goal is met or the network is certain.
  StatusOr<ReconcileTrace> Run(const ReconcileGoal& goal, Rng* rng);

  /// Oracle answers elicited by this reconciler so far (every question
  /// counts: re-asks of a repeated-questioning policy and answers whose
  /// integration was rejected included — cf. Oracle::assertion_count()).
  size_t elicitation_count() const { return elicitations_; }

  /// Steps so far whose decision the network rejected as contradicting the
  /// feedback closure.
  size_t rejected_count() const { return rejected_; }

  /// The active elicitation policy.
  const ElicitationPolicy& policy() const { return policy_; }

 private:
  /// Integrates `approved` as a hard assertion; on a closure contradiction
  /// records the rejection and integrates the forced complement.
  Status IntegrateHard(CorrespondenceId c, bool approved, Rng* rng,
                       ReconcileStep* step);

  ProbabilisticNetwork* pmn_;
  SelectionStrategy* strategy_;
  AssertionOracle oracle_;
  ElicitationPolicy policy_;
  /// |C_u(0)|: uncertain correspondences at construction, the effort
  /// denominator (see ReconcileStep::effort_after).
  size_t initially_uncertain_;
  /// Oracle answers elicited by this reconciler (the effort numerator).
  size_t elicitations_ = 0;
  /// Rejected (closure-contradicting) step decisions so far.
  size_t rejected_ = 0;
};

}  // namespace smn

#endif  // SMN_CORE_RECONCILER_H_
