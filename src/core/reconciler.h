#ifndef SMN_CORE_RECONCILER_H_
#define SMN_CORE_RECONCILER_H_

#include <functional>
#include <optional>
#include <vector>

#include "core/probabilistic_network.h"
#include "core/selection_strategy.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace smn {

/// Answers assertion requests during reconciliation: returns true to approve
/// the correspondence, false to disapprove. In experiments this is backed by
/// the ground-truth oracle; in production it would prompt a human expert.
using AssertionOracle = std::function<bool(CorrespondenceId)>;

/// The reconciliation goal δ of Algorithm 1. Reconciliation stops when any
/// configured bound is reached, or when no uncertain correspondence remains.
struct ReconcileGoal {
  /// Effort budget: maximum number of assertions (the paper's k).
  std::optional<size_t> max_assertions;
  /// Stop once H(C, P) drops to or below this threshold.
  std::optional<double> uncertainty_threshold;
};

/// One executed feedback step.
struct ReconcileStep {
  /// The correspondence whose assertion was elicited.
  CorrespondenceId correspondence = kInvalidCorrespondence;
  /// The expert's answer.
  bool approved = false;
  /// H(C, P') after integrating this assertion.
  double uncertainty_after = 0.0;
  /// User effort after this assertion. Exact definition:
  /// E = |assertions elicited by this reconciler| / |C_u(0)|, where C_u(0)
  /// is the set of correspondences that were *uncertain* (0 < p < 1) when
  /// the Reconciler was constructed; assertions integrated into the network
  /// before construction count toward neither side.
  /// Correspondences already certain at reconciliation start — pre-asserted,
  /// logically forced by constraints, or pinned to probability 0/1 by the
  /// initial sample set — can never be selected, so they are excluded from
  /// the denominator: asserting every initially-reconcilable correspondence
  /// reads E = 1.0. (The paper's E = |F| / |C| coincides with this when
  /// every candidate starts uncertain; dividing by |C| understates effort on
  /// networks with pre-certain correspondences and caps E below 1 even when
  /// the expert has answered every question that could be asked.) Zero when
  /// nothing was uncertain at start. Caveat: in the sampling regime a
  /// correspondence pinned to 0/1 by sampling noise can become uncertain
  /// again after its component is re-sampled, so E can marginally exceed 1
  /// on such runs; under exact enumeration E ≤ 1 always.
  double effort_after = 0.0;
};

/// Full record of a reconciliation run, for effort/uncertainty curves.
struct ReconcileTrace {
  /// H(C, P) before the first assertion.
  double initial_uncertainty = 0.0;
  /// Number of uncertain correspondences at Reconciler construction — the
  /// effort denominator (see ReconcileStep::effort_after).
  size_t initially_uncertain = 0;
  /// Every executed select-elicit-integrate step, in order.
  std::vector<ReconcileStep> steps;
};

/// The generic uncertainty-reduction procedure of Algorithm 1: repeatedly
/// select an uncertain correspondence (strategy), elicit its assertion
/// (oracle), and integrate the feedback into the probabilistic matching
/// network.
class Reconciler {
 public:
  /// All three collaborators must outlive the reconciler.
  Reconciler(ProbabilisticNetwork* pmn, SelectionStrategy* strategy,
             AssertionOracle oracle);

  /// Executes one select-elicit-integrate iteration. Returns NotFound when
  /// no uncertain correspondence remains.
  StatusOr<ReconcileStep> Step(Rng* rng);

  /// Runs Algorithm 1 until the goal is met or the network is certain.
  StatusOr<ReconcileTrace> Run(const ReconcileGoal& goal, Rng* rng);

 private:
  ProbabilisticNetwork* pmn_;
  SelectionStrategy* strategy_;
  AssertionOracle oracle_;
  /// |C_u(0)|: uncertain correspondences at construction, the effort
  /// denominator (see ReconcileStep::effort_after).
  size_t initially_uncertain_;
  /// |F| at construction: pre-existing assertions are excluded from the
  /// effort numerator.
  size_t initially_asserted_;
};

}  // namespace smn

#endif  // SMN_CORE_RECONCILER_H_
