#include "core/compiled_artifact.h"

#include <utility>

namespace smn {

StatusOr<CompiledArtifact> CompiledArtifact::Build(
    const Network& network, const ConstraintSet& constraints) {
  CompiledArtifact artifact;
  artifact.network_ = &network;
  artifact.constraints_ = &constraints;
  artifact.groups_ = constraints.CouplingGroups();
  const size_t n = network.correspondence_count();
  artifact.group_index_ = GroupIndex::Build(artifact.groups_, n);
  const Feedback empty(n);
  SMN_ASSIGN_OR_RETURN(artifact.initial_determined_,
                       PropagateFeedback(constraints, empty, n));
  DynamicBitset active(n);
  for (CorrespondenceId c = 0; c < n; ++c) {
    if (!artifact.initial_determined_.IsDetermined(c)) active.Set(c);
  }
  artifact.initial_index_ = ComponentIndex::Build(artifact.groups_, active, n);
  return artifact;
}

StatusOr<std::shared_ptr<const CompiledArtifact>>
CompiledArtifact::TakeOwnership(std::unique_ptr<const Network> network,
                                std::unique_ptr<const ConstraintSet> constraints) {
  if (network == nullptr || constraints == nullptr) {
    return Status::InvalidArgument(
        "TakeOwnership: network and constraints must be non-null");
  }
  SMN_ASSIGN_OR_RETURN(CompiledArtifact artifact,
                       Build(*network, *constraints));
  // Adopt after Build so the internal pointers already reference the heap
  // objects whose addresses ownership transfer preserves.
  artifact.owned_network_ = std::move(network);
  artifact.owned_constraints_ = std::move(constraints);
  return std::make_shared<const CompiledArtifact>(std::move(artifact));
}

}  // namespace smn
