#include "core/reconciler.h"

namespace smn {

Reconciler::Reconciler(ProbabilisticNetwork* pmn, SelectionStrategy* strategy,
                       AssertionOracle oracle)
    : pmn_(pmn), strategy_(strategy), oracle_(std::move(oracle)) {}

StatusOr<ReconcileStep> Reconciler::Step(Rng* rng) {
  const std::optional<CorrespondenceId> selected = strategy_->Select(*pmn_, rng);
  if (!selected.has_value()) {
    return Status::NotFound("reconciliation complete: no uncertain correspondence");
  }
  const bool approved = oracle_(*selected);
  SMN_RETURN_IF_ERROR(pmn_->Assert(*selected, approved, rng));

  ReconcileStep step;
  step.correspondence = *selected;
  step.approved = approved;
  step.uncertainty_after = pmn_->Uncertainty();
  const size_t total = pmn_->network().correspondence_count();
  step.effort_after =
      total == 0 ? 0.0
                 : static_cast<double>(pmn_->feedback().asserted_count()) /
                       static_cast<double>(total);
  return step;
}

StatusOr<ReconcileTrace> Reconciler::Run(const ReconcileGoal& goal, Rng* rng) {
  ReconcileTrace trace;
  trace.initial_uncertainty = pmn_->Uncertainty();
  for (;;) {
    if (goal.max_assertions.has_value() &&
        trace.steps.size() >= *goal.max_assertions) {
      break;
    }
    if (goal.uncertainty_threshold.has_value() &&
        pmn_->Uncertainty() <= *goal.uncertainty_threshold) {
      break;
    }
    auto step = Step(rng);
    if (!step.ok()) {
      if (step.status().code() == StatusCode::kNotFound) break;  // Converged.
      return step.status();
    }
    trace.steps.push_back(*step);
  }
  return trace;
}

}  // namespace smn
