#include "core/reconciler.h"

namespace smn {

Reconciler::Reconciler(ProbabilisticNetwork* pmn, SelectionStrategy* strategy,
                       AssertionOracle oracle)
    : pmn_(pmn),
      strategy_(strategy),
      oracle_(std::move(oracle)),
      initially_uncertain_(pmn->UncertainCorrespondences().size()),
      initially_asserted_(pmn->feedback().asserted_count()) {}

StatusOr<ReconcileStep> Reconciler::Step(Rng* rng) {
  const std::optional<CorrespondenceId> selected = strategy_->Select(*pmn_, rng);
  if (!selected.has_value()) {
    return Status::NotFound("reconciliation complete: no uncertain correspondence");
  }
  const bool approved = oracle_(*selected);
  SMN_RETURN_IF_ERROR(pmn_->Assert(*selected, approved, rng));

  ReconcileStep step;
  step.correspondence = *selected;
  step.approved = approved;
  step.uncertainty_after = pmn_->Uncertainty();
  // Effort counts assertions elicited by this reconciler over the
  // initially-uncertain count, not |F|/|C|: pre-certain correspondences
  // never need expert attention and pre-existing assertions were not this
  // run's effort (see ReconcileStep).
  step.effort_after =
      initially_uncertain_ == 0
          ? 0.0
          : static_cast<double>(pmn_->feedback().asserted_count() -
                                initially_asserted_) /
                static_cast<double>(initially_uncertain_);
  return step;
}

StatusOr<ReconcileTrace> Reconciler::Run(const ReconcileGoal& goal, Rng* rng) {
  ReconcileTrace trace;
  trace.initial_uncertainty = pmn_->Uncertainty();
  trace.initially_uncertain = initially_uncertain_;
  for (;;) {
    if (goal.max_assertions.has_value() &&
        trace.steps.size() >= *goal.max_assertions) {
      break;
    }
    if (goal.uncertainty_threshold.has_value() &&
        pmn_->Uncertainty() <= *goal.uncertainty_threshold) {
      break;
    }
    auto step = Step(rng);
    if (!step.ok()) {
      if (step.status().code() == StatusCode::kNotFound) break;  // Converged.
      return step.status();
    }
    trace.steps.push_back(*step);
  }
  return trace;
}

}  // namespace smn
