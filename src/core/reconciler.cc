#include "core/reconciler.h"

#include <algorithm>

namespace smn {

Reconciler::Reconciler(ProbabilisticNetwork* pmn, SelectionStrategy* strategy,
                       AssertionOracle oracle, ElicitationPolicy policy)
    : pmn_(pmn),
      strategy_(strategy),
      oracle_(std::move(oracle)),
      policy_(policy),
      initially_uncertain_(pmn->UncertainCorrespondences().size()) {}

Status Reconciler::IntegrateHard(CorrespondenceId c, bool approved, Rng* rng,
                                 ReconcileStep* step) {
  Status status = pmn_->Assert(c, approved, rng);
  if (status.ok()) {
    step->committed = true;
    return status;
  }
  if (status.code() != StatusCode::kFailedPrecondition) {
    return status;  // Sampler or input failure: a real error, propagate.
  }
  // The decision contradicts the feedback closure (Assert rejected it
  // atomically, leaving the network untouched). The feedback integrated so
  // far is consistent, so a proven contradiction of c = approved means every
  // remaining instance fixes c to the complement: record the rejection and
  // integrate that forced value instead of aborting the run. Unit
  // propagation cannot fail on it — it only derives facts true in all
  // consistent instances.
  ++rejected_;
  step->rejected = true;
  Status complement = pmn_->Assert(c, !approved, rng);
  if (complement.ok()) {
    step->committed = true;
    // The step ends with c pinned to the complement, not to the expert-side
    // decision: report the posterior the network actually holds.
    step->posterior = approved ? 0.0 : 1.0;
  }
  return complement;
}

StatusOr<ReconcileStep> Reconciler::Step(Rng* rng) {
  const std::optional<CorrespondenceId> selected = strategy_->Select(*pmn_, rng);
  if (!selected.has_value()) {
    return Status::NotFound("reconciliation complete: no uncertain correspondence");
  }
  ReconcileStep step;
  step.correspondence = *selected;

  if (policy_.error_rate == 0.0) {
    // Perfect-expert path (the paper's Algorithm 1): one question, the
    // answer is ground truth. Bit-identical to the pre-policy reconciler.
    const bool approved = oracle_(*selected);
    ++elicitations_;
    step.questions = 1;
    step.approvals = approved ? 1 : 0;
    step.approved = approved;
    step.posterior = approved ? 1.0 : 0.0;
    SMN_RETURN_IF_ERROR(IntegrateHard(*selected, approved, rng, &step));
  } else {
    // Repeated questioning: elicit up to max_questions answers, integrating
    // each as soft evidence, and stop early once the likelihood-weighted
    // marginal is confident. Every answer costs one elicitation. Reject a
    // malformed error model (negative, NaN, > 0.5) before spending any:
    // AssertSoft would refuse it anyway, but only after the oracle answered.
    if (!(policy_.error_rate > 0.0) || policy_.error_rate > 0.5) {
      return Status::InvalidArgument(
          "Step: policy error_rate must be in [0, 0.5]");
    }
    const size_t budget = std::max<size_t>(1, policy_.max_questions);
    double posterior = pmn_->probability(*selected);
    while (step.questions < budget) {
      const bool answer = oracle_(*selected);
      ++elicitations_;
      ++step.questions;
      if (answer) ++step.approvals;
      SMN_RETURN_IF_ERROR(
          pmn_->AssertSoft(*selected, answer, policy_.error_rate, rng));
      posterior = pmn_->probability(*selected);
      if (std::max(posterior, 1.0 - posterior) >= policy_.confidence) break;
    }
    step.posterior = posterior;
    // Posterior-majority decision; at an exactly balanced posterior the raw
    // answer majority breaks the tie (approve on an answer tie, matching
    // p = 1/2 indifference).
    step.approved = posterior > 0.5 ||
                    (posterior == 0.5 && 2 * step.approvals >= step.questions);
    if (policy_.commit_hard) {
      SMN_RETURN_IF_ERROR(IntegrateHard(*selected, step.approved, rng, &step));
    }
  }

  step.uncertainty_after = pmn_->Uncertainty();
  // Effort counts every elicited answer over the initially-uncertain count
  // (see ReconcileStep::effort_after): re-asked and rejected questions are
  // real user effort even when their integration is a no-op.
  step.effort_after =
      initially_uncertain_ == 0
          ? 0.0
          : static_cast<double>(elicitations_) /
                static_cast<double>(initially_uncertain_);
  return step;
}

StatusOr<ReconcileTrace> Reconciler::Run(const ReconcileGoal& goal, Rng* rng) {
  ReconcileTrace trace;
  trace.initial_uncertainty = pmn_->Uncertainty();
  trace.initially_uncertain = initially_uncertain_;
  const size_t elicitations_before = elicitations_;
  const size_t rejected_before = rejected_;
  for (;;) {
    if (goal.max_assertions.has_value() &&
        trace.steps.size() >= *goal.max_assertions) {
      break;
    }
    if (goal.max_elicitations.has_value() &&
        elicitations_ - elicitations_before >= *goal.max_elicitations) {
      break;
    }
    if (goal.uncertainty_threshold.has_value() &&
        pmn_->Uncertainty() <= *goal.uncertainty_threshold) {
      break;
    }
    auto step = Step(rng);
    if (!step.ok()) {
      if (step.status().code() == StatusCode::kNotFound) break;  // Converged.
      return step.status();
    }
    trace.steps.push_back(*step);
  }
  trace.total_elicitations = elicitations_ - elicitations_before;
  trace.rejected_assertions = rejected_ - rejected_before;
  return trace;
}

}  // namespace smn
