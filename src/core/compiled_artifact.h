#ifndef SMN_CORE_COMPILED_ARTIFACT_H_
#define SMN_CORE_COMPILED_ARTIFACT_H_

#include <memory>
#include <vector>

#include "core/component_index.h"
#include "core/constraint_set.h"
#include "core/network.h"
#include "util/statusor.h"

namespace smn {

/// The immutable compile-time state shared by every reconciliation session
/// over one tenant network: the candidate network, the compiled constraint
/// set (conflict-word matrices, CSR cycle tables, the addition-delta table —
/// everything ConstraintSet::Compile produces), the derived coupling groups,
/// and the empty-feedback baseline — the initial determined closure and the
/// initial constraint-connected component partition.
///
/// Splitting this out of ProbabilisticNetwork is what makes the service
/// layer cheap: N concurrent sessions over one tenant hold N shared_ptrs to
/// one artifact instead of N private copies of the coupling groups and N
/// recomputations of the initial closure/partition. Per-session *mutable*
/// state — the feedback and soft-evidence ledgers, the per-component
/// SampleStore caches, the gains caches — stays inside each
/// ProbabilisticNetwork.
///
/// Thread safety: deeply immutable after Build/TakeOwnership; safe to share
/// across any number of threads without locks. The artifact id (the wrapped
/// set's compile_id) identifies the compiled tables for cache keying.
class CompiledArtifact {
 public:
  /// Borrowing build: derives the coupling groups, the empty-feedback
  /// closure, and the initial partition from an already compiled set.
  /// `network` and `constraints` must outlive the artifact. Fails when the
  /// constraints declare an empty network contradictory (cannot happen for
  /// the built-in constraint kinds).
  static StatusOr<CompiledArtifact> Build(const Network& network,
                                          const ConstraintSet& constraints);

  /// Owning build for long-lived tenants: the artifact keeps the network and
  /// its compiled constraint set alive for as long as any session holds the
  /// returned shared_ptr. `constraints` must already be compiled against the
  /// contents of `*network`: Compile copies the tables it derives (conflict
  /// words, cycle CSR), so a compiled set moved together with its network
  /// stays consistent, but compiling against one network and pairing with
  /// another silently mismatches correspondence ids.
  static StatusOr<std::shared_ptr<const CompiledArtifact>> TakeOwnership(
      std::unique_ptr<const Network> network,
      std::unique_ptr<const ConstraintSet> constraints);

  /// Movable, not copyable — the point of the artifact is to be shared, not
  /// duplicated.
  CompiledArtifact(CompiledArtifact&&) = default;
  CompiledArtifact& operator=(CompiledArtifact&&) = default;

  /// The candidate network this artifact was compiled against.
  const Network& network() const { return *network_; }
  /// The compiled constraints Γ.
  const ConstraintSet& constraints() const { return *constraints_; }

  /// All coupling groups of the compiled constraints (see
  /// ConstraintSet::CouplingGroups), computed once at Build.
  const std::vector<std::vector<CorrespondenceId>>& coupling_groups() const {
    return groups_;
  }

  /// CSR index from correspondence to the coupling groups containing it,
  /// computed once at Build. Sessions use it to keep per-assert closure and
  /// re-partition work O(touched component) instead of O(all groups).
  const GroupIndex& group_index() const { return group_index_; }

  /// The determined closure of *empty* feedback: correspondences forced in
  /// or out by the constraints alone. The starting closure of every session.
  const DeterminedSet& initial_determined() const {
    return initial_determined_;
  }

  /// The constraint-connected component partition of the initially
  /// undetermined correspondences — the starting partition of every session
  /// (sessions re-split components privately as their feedback pins
  /// variables).
  const ComponentIndex& initial_index() const { return initial_index_; }

  /// The compile id of the wrapped constraint set (see
  /// ConstraintSet::compile_id): process-unique per Compile call, the
  /// artifact's identity for cache keying.
  uint64_t artifact_id() const { return constraints_->compile_id(); }

 private:
  CompiledArtifact() = default;

  /// Non-null only for TakeOwnership artifacts; `network_`/`constraints_`
  /// point at the owned objects then.
  std::unique_ptr<const Network> owned_network_;
  std::unique_ptr<const ConstraintSet> owned_constraints_;

  const Network* network_ = nullptr;
  const ConstraintSet* constraints_ = nullptr;
  std::vector<std::vector<CorrespondenceId>> groups_;
  GroupIndex group_index_;
  DeterminedSet initial_determined_;
  ComponentIndex initial_index_;
};

}  // namespace smn

#endif  // SMN_CORE_COMPILED_ARTIFACT_H_
