#ifndef SMN_CORE_ENTROPY_H_
#define SMN_CORE_ENTROPY_H_

#include <vector>

namespace smn {

/// Entropy of a Bernoulli(p) variable in bits:
/// -p·log2(p) - (1-p)·log2(1-p); 0 at p ∈ {0, 1}.
double BinaryEntropy(double p);

/// The network uncertainty H(C, P) of Equation 3: the sum of the binary
/// entropies of all correspondence probabilities. Certain correspondences
/// (p ∈ {0, 1}) contribute nothing, so H = 0 iff exactly one matching
/// instance remains.
double NetworkUncertainty(const std::vector<double>& probabilities);

}  // namespace smn

#endif  // SMN_CORE_ENTROPY_H_
