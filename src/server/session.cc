#include "server/session.h"

#include <utility>

namespace smn {
namespace server {

Session::Session(SessionId id, uint64_t seed)
    : id_(id), seed_(seed), rng_(seed) {}

StatusOr<std::unique_ptr<Session>> Session::Create(
    SessionId id, std::shared_ptr<const CompiledArtifact> artifact,
    const ProbabilisticNetworkOptions& options, uint64_t seed, size_t shards) {
  if (artifact == nullptr) {
    return Status::InvalidArgument("Session::Create: artifact must be non-null");
  }
  // The session is unpublished until returned, but rng_/pmn_ are annotated
  // members, so take the lock anyway — it is uncontended and keeps the
  // access pattern provable instead of exempted.
  auto session = std::unique_ptr<Session>(new Session(id, seed));
  MutexLock lock(session->mu_);
  if (shards >= 1) {
    ShardedNetworkOptions sharded_options;
    sharded_options.network = options;
    sharded_options.shards = shards;
    SMN_ASSIGN_OR_RETURN(
        session->sharded_,
        ShardedNetwork::Create(std::move(artifact), std::move(sharded_options),
                               seed));
    return session;
  }
  SMN_ASSIGN_OR_RETURN(
      ProbabilisticNetwork pmn,
      ProbabilisticNetwork::Create(std::move(artifact), options,
                                   &session->rng_));
  session->pmn_.emplace(std::move(pmn));
  return session;
}

uint64_t Session::RevisionLocked() const {
  return sharded_ != nullptr ? sharded_->revision() : pmn_->assertion_count();
}

void Session::AttachJournal(std::unique_ptr<SessionLog> log) {
  MutexLock lock(mu_);
  journal_ = std::move(log);
}

Status Session::FinishJournal() {
  MutexLock lock(mu_);
  if (journal_ == nullptr) return Status::OK();
  std::unique_ptr<SessionLog> log = std::move(journal_);
  // Journal I/O under session.state is file writes, not lock waits: the
  // journal takes no smn::Mutex, so no cycle can route back to mu_.
  return log->LogClose();  // smn-lint: allow(blocking-in-lock)
}

Status Session::Assert(CorrespondenceId c, bool approved) {
  MutexLock lock(mu_);
  if (journal_ != nullptr) {
    // Write-ahead: on journal failure the request fails here, before the
    // engine sees it — fail-stop, state untouched. The write must happen
    // under mu_ (log order is the replay order) and is file I/O, not a lock
    // wait: the journal takes no smn::Mutex, so no cycle reaches mu_.
    // smn-lint: allow(blocking-in-lock)
    SMN_RETURN_IF_ERROR(journal_->LogAssert(c, approved, RevisionLocked()));
  }
  if (sharded_ != nullptr) return sharded_->Assert(c, approved);
  return pmn_->Assert(c, approved, &rng_);
}

Status Session::AssertSoft(CorrespondenceId c, bool approved,
                           double error_rate) {
  MutexLock lock(mu_);
  if (journal_ != nullptr) {
    // Write-ahead under mu_, same argument as Assert: journal I/O holds no
    // smn::Mutex, so it cannot close a cycle back to session.state.
    SMN_RETURN_IF_ERROR(  // smn-lint: allow(blocking-in-lock)
        journal_->LogAssertSoft(c, approved, error_rate, soft_answers_));
  }
  if (sharded_ != nullptr) {
    SMN_RETURN_IF_ERROR(sharded_->AssertSoft(c, approved, error_rate));
  } else {
    SMN_RETURN_IF_ERROR(pmn_->AssertSoft(c, approved, error_rate, &rng_));
  }
  ++soft_answers_;
  return Status::OK();
}

StatusOr<SessionSnapshot> Session::Snapshot() const {
  MutexLock lock(mu_);
  SessionSnapshot snapshot;
  snapshot.session_id = id_;
  if (sharded_ != nullptr) {
    SMN_ASSIGN_OR_RETURN(ShardedSnapshot sharded, sharded_->Snapshot());
    snapshot.revision = sharded.revision;
    snapshot.soft_answer_count = soft_answers_;
    snapshot.probabilities = std::move(sharded.probabilities);
    snapshot.uncertainty = sharded.uncertainty;
    snapshot.exhausted = sharded.exhausted;
    return snapshot;
  }
  snapshot.revision = pmn_->assertion_count();
  snapshot.soft_answer_count = soft_answers_;
  snapshot.probabilities = pmn_->probabilities();
  snapshot.uncertainty = pmn_->Uncertainty();
  snapshot.exhausted = pmn_->exhausted();
  return snapshot;
}

StatusOr<ReconcileTrace> Session::Reconcile(StrategyKind kind,
                                            const ReconcileGoal& goal,
                                            AssertionOracle oracle,
                                            const ElicitationPolicy& policy) {
  MutexLock lock(mu_);
  if (sharded_ != nullptr) {
    return Status::Unimplemented(
        "Reconcile requires a monolithic session (shards = 0): the "
        "reconciler loop drives the network directly");
  }
  if (journal_ != nullptr) {
    return Status::FailedPrecondition(
        "Reconcile is not available on a journaled session: the reconciler "
        "bypasses the write-ahead path, so its asserts would be lost on "
        "recovery. Use Assert/AssertSoft, or run without a journal_dir.");
  }
  std::unique_ptr<SelectionStrategy> strategy = MakeStrategy(kind);
  Reconciler reconciler(&*pmn_, strategy.get(), std::move(oracle), policy);
  return reconciler.Run(goal, &rng_);
}

}  // namespace server
}  // namespace smn
