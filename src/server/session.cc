#include "server/session.h"

#include <utility>

namespace smn {
namespace server {

Session::Session(SessionId id, uint64_t seed)
    : id_(id), seed_(seed), rng_(seed) {}

StatusOr<std::unique_ptr<Session>> Session::Create(
    SessionId id, std::shared_ptr<const CompiledArtifact> artifact,
    const ProbabilisticNetworkOptions& options, uint64_t seed) {
  if (artifact == nullptr) {
    return Status::InvalidArgument("Session::Create: artifact must be non-null");
  }
  // The session is unpublished until returned, but rng_/pmn_ are annotated
  // members, so take the lock anyway — it is uncontended and keeps the
  // access pattern provable instead of exempted.
  auto session = std::unique_ptr<Session>(new Session(id, seed));
  MutexLock lock(session->mu_);
  SMN_ASSIGN_OR_RETURN(
      ProbabilisticNetwork pmn,
      ProbabilisticNetwork::Create(std::move(artifact), options,
                                   &session->rng_));
  session->pmn_.emplace(std::move(pmn));
  return session;
}

Status Session::Assert(CorrespondenceId c, bool approved) {
  MutexLock lock(mu_);
  return pmn_->Assert(c, approved, &rng_);
}

Status Session::AssertSoft(CorrespondenceId c, bool approved,
                           double error_rate) {
  MutexLock lock(mu_);
  SMN_RETURN_IF_ERROR(pmn_->AssertSoft(c, approved, error_rate, &rng_));
  ++soft_answers_;
  return Status::OK();
}

SessionSnapshot Session::Snapshot() const {
  MutexLock lock(mu_);
  SessionSnapshot snapshot;
  snapshot.session_id = id_;
  snapshot.revision = pmn_->assertion_count();
  snapshot.soft_answer_count = soft_answers_;
  snapshot.probabilities = pmn_->probabilities();
  snapshot.uncertainty = pmn_->Uncertainty();
  snapshot.exhausted = pmn_->exhausted();
  return snapshot;
}

StatusOr<ReconcileTrace> Session::Reconcile(StrategyKind kind,
                                            const ReconcileGoal& goal,
                                            AssertionOracle oracle,
                                            const ElicitationPolicy& policy) {
  MutexLock lock(mu_);
  std::unique_ptr<SelectionStrategy> strategy = MakeStrategy(kind);
  Reconciler reconciler(&*pmn_, strategy.get(), std::move(oracle), policy);
  return reconciler.Run(goal, &rng_);
}

}  // namespace server
}  // namespace smn
