#include "server/session_journal.h"

#include <algorithm>
#include <utility>

namespace smn {
namespace server {
namespace {

constexpr char kFilePrefix[] = "session-";
constexpr char kFileSuffix[] = ".wal";
constexpr size_t kIdDigits = 12;

void AppendKind(std::string* out, JournalRecordKind kind) {
  AppendU32(out, static_cast<uint32_t>(kind));
}

}  // namespace

std::string EncodeOpenRecord(uint64_t session_id, uint64_t tenant_id,
                             uint64_t seed, uint64_t shards) {
  std::string payload;
  AppendKind(&payload, JournalRecordKind::kOpen);
  AppendU64(&payload, session_id);
  AppendU64(&payload, tenant_id);
  AppendU64(&payload, seed);
  AppendU64(&payload, shards);
  return payload;
}

std::string EncodeAssertRecord(CorrespondenceId c, bool approved,
                               uint64_t revision) {
  std::string payload;
  AppendKind(&payload, JournalRecordKind::kAssert);
  AppendU32(&payload, c);
  AppendU32(&payload, approved ? 1 : 0);
  AppendU64(&payload, revision);
  return payload;
}

std::string EncodeAssertSoftRecord(CorrespondenceId c, bool approved,
                                   double error_rate, uint64_t soft_count) {
  std::string payload;
  AppendKind(&payload, JournalRecordKind::kAssertSoft);
  AppendU32(&payload, c);
  AppendU32(&payload, approved ? 1 : 0);
  AppendF64(&payload, error_rate);
  AppendU64(&payload, soft_count);
  return payload;
}

std::string EncodeCloseRecord() {
  std::string payload;
  AppendKind(&payload, JournalRecordKind::kClose);
  return payload;
}

StatusOr<JournalRecord> DecodeJournalRecord(std::string_view payload) {
  std::string_view rest = payload;
  uint32_t kind = 0;
  if (!ReadU32(&rest, &kind)) {
    return Status::DataLoss("journal record: payload too short for a kind");
  }
  JournalRecord record;
  uint32_t approved = 0;
  switch (static_cast<JournalRecordKind>(kind)) {
    case JournalRecordKind::kOpen:
      record.kind = JournalRecordKind::kOpen;
      if (!ReadU64(&rest, &record.session_id) ||
          !ReadU64(&rest, &record.tenant_id) ||
          !ReadU64(&rest, &record.seed) || !ReadU64(&rest, &record.shards)) {
        return Status::DataLoss("journal record: truncated Open record");
      }
      break;
    case JournalRecordKind::kAssert:
      record.kind = JournalRecordKind::kAssert;
      if (!ReadU32(&rest, &record.correspondence) ||
          !ReadU32(&rest, &approved) || !ReadU64(&rest, &record.stamp)) {
        return Status::DataLoss("journal record: truncated Assert record");
      }
      record.approved = approved != 0;
      break;
    case JournalRecordKind::kAssertSoft:
      record.kind = JournalRecordKind::kAssertSoft;
      if (!ReadU32(&rest, &record.correspondence) ||
          !ReadU32(&rest, &approved) || !ReadF64(&rest, &record.error_rate) ||
          !ReadU64(&rest, &record.stamp)) {
        return Status::DataLoss("journal record: truncated AssertSoft record");
      }
      record.approved = approved != 0;
      break;
    case JournalRecordKind::kClose:
      record.kind = JournalRecordKind::kClose;
      break;
    default:
      return Status::DataLoss("journal record: unknown kind " +
                              std::to_string(kind));
  }
  if (!rest.empty()) {
    return Status::DataLoss("journal record: " + std::to_string(rest.size()) +
                            " trailing bytes after a valid record body");
  }
  return record;
}

std::string JournalFilePath(const std::string& dir, uint64_t session_id) {
  std::string digits = std::to_string(session_id);
  if (digits.size() < kIdDigits) {
    digits.insert(0, kIdDigits - digits.size(), '0');
  }
  return dir + "/" + kFilePrefix + digits + kFileSuffix;
}

StatusOr<std::vector<uint64_t>> ListJournalSessions(const std::string& dir) {
  SMN_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDirectory(dir));
  const std::string_view prefix = kFilePrefix;
  const std::string_view suffix = kFileSuffix;
  std::vector<uint64_t> ids;
  for (const std::string& name : names) {
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    uint64_t id = 0;
    bool numeric = !digits.empty();
    for (const char ch : digits) {
      if (ch < '0' || ch > '9') {
        numeric = false;
        break;
      }
      id = id * 10 + static_cast<uint64_t>(ch - '0');
    }
    if (numeric) ids.push_back(id);
  }
  // ListDirectory sorts names and ids are fixed-width, so ids arrive sorted;
  // keep the explicit guarantee anyway (a hand-renamed file must not break
  // the recovery order).
  std::sort(ids.begin(), ids.end());
  return ids;
}

SessionLog::SessionLog(const JournalOptions& options, std::string path)
    : options_(options), path_(std::move(path)) {}

StatusOr<std::unique_ptr<SessionLog>> SessionLog::Create(
    const JournalOptions& options, uint64_t session_id, uint64_t tenant_id,
    uint64_t seed, uint64_t shards) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("SessionLog: journal dir must be set");
  }
  SMN_RETURN_IF_ERROR(EnsureDirectory(options.dir));
  auto log = std::unique_ptr<SessionLog>(
      new SessionLog(options, JournalFilePath(options.dir, session_id)));
  SMN_ASSIGN_OR_RETURN(RecordWriter writer,
                       RecordWriter::Open(log->path_, /*truncate=*/true));
  log->writer_.emplace(std::move(writer));
  SMN_RETURN_IF_ERROR(log->writer_->Append(
      EncodeOpenRecord(session_id, tenant_id, seed, shards)));
  SMN_RETURN_IF_ERROR(log->writer_->Sync());
  return log;
}

StatusOr<std::unique_ptr<SessionLog>> SessionLog::Reattach(
    const JournalOptions& options, uint64_t session_id) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("SessionLog: journal dir must be set");
  }
  auto log = std::unique_ptr<SessionLog>(
      new SessionLog(options, JournalFilePath(options.dir, session_id)));
  SMN_ASSIGN_OR_RETURN(RecordWriter writer,
                       RecordWriter::Open(log->path_, /*truncate=*/false));
  log->writer_.emplace(std::move(writer));
  return log;
}

Status SessionLog::MaybeSync() {
  if (options_.fsync_every == 0) return Status::OK();
  if (++appends_since_sync_ < options_.fsync_every) return Status::OK();
  appends_since_sync_ = 0;
  return writer_->Sync();
}

Status SessionLog::LogAssert(CorrespondenceId c, bool approved,
                             uint64_t revision) {
  if (!writer_.has_value()) {
    return Status::FailedPrecondition("SessionLog: append after LogClose");
  }
  SMN_RETURN_IF_ERROR(writer_->Append(EncodeAssertRecord(c, approved,
                                                         revision)));
  return MaybeSync();
}

Status SessionLog::LogAssertSoft(CorrespondenceId c, bool approved,
                                 double error_rate, uint64_t soft_count) {
  if (!writer_.has_value()) {
    return Status::FailedPrecondition("SessionLog: append after LogClose");
  }
  SMN_RETURN_IF_ERROR(writer_->Append(
      EncodeAssertSoftRecord(c, approved, error_rate, soft_count)));
  return MaybeSync();
}

Status SessionLog::LogClose() {
  if (!writer_.has_value()) {
    return Status::FailedPrecondition("SessionLog: LogClose called twice");
  }
  SMN_RETURN_IF_ERROR(writer_->Append(EncodeCloseRecord()));
  SMN_RETURN_IF_ERROR(writer_->Sync());
  writer_.reset();  // Closes the fd.
  return RemoveFile(path_);
}

}  // namespace server
}  // namespace smn
