#ifndef SMN_SERVER_SHARDED_NETWORK_H_
#define SMN_SERVER_SHARDED_NETWORK_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/compiled_artifact.h"
#include "core/probabilistic_network.h"
#include "core/shard_plan.h"
#include "util/bounded_queue.h"
#include "util/mutex.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace smn {
namespace server {

/// Tuning knobs for a sharded reconciliation session.
struct ShardedNetworkOptions {
  /// Per-shard network configuration (sampling targets, incremental mode,
  /// sample view cap). Every shard uses the same options.
  ProbabilisticNetworkOptions network;
  /// Number of worker shards. 1 is a degenerate but valid configuration:
  /// one worker owning every component, still routed through the queue.
  size_t shards = 1;
  /// Capacity of each shard's request queue. Producers block (backpressure)
  /// when a shard falls this far behind.
  size_t queue_capacity = 64;
  /// Test-only fault injection: when set, called on the worker thread before
  /// every request it processes; a non-OK return fails that request and
  /// degrades the session exactly like an internal shard failure. Never set
  /// in production configurations.
  std::function<Status(size_t shard)> fault_hook;
};

/// A snapshot-consistent read of a sharded session, merged across shards.
/// Field-for-field comparable with the monolithic session's view: equal
/// seeds and assert sequences give bitwise-equal contents at any shard
/// count.
struct ShardedSnapshot {
  /// Number of accepted hard assertions (the coordinator revision).
  uint64_t revision = 0;
  /// Number of recorded soft answers.
  uint64_t soft_answer_count = 0;
  /// Correspondence probabilities P, closure-pinned to exactly 1/0.
  std::vector<double> probabilities;
  /// Network uncertainty H(C, P) in bits.
  double uncertainty = 0.0;
  /// True when the per-component sample sets provably cover Ω and their
  /// cross-product fits the configured view cap.
  bool exhausted = false;
};

/// Single-process N-worker-shard execution engine over one compiled
/// artifact: the sharded counterpart of a ProbabilisticNetwork session.
///
/// Structure. Create partitions the artifact's initial constraint-connected
/// components into K size-balanced shards (ShardPlan) and builds one
/// component-filtered ProbabilisticNetwork per shard — each holding caches
/// only for its own components. One worker thread per shard owns its
/// network exclusively and serves requests from a bounded FIFO mailbox.
/// The coordinator (any caller thread) owns the global feedback and
/// soft-evidence ledgers, validates every mutation against them, and routes
/// accepted work to the owning shard.
///
/// Determinism contract. Every shard seeds its network from the same
/// Create-time seed, so a shard's base stream equals the monolithic
/// session's; per-component streams fork purely on (anchor, revision); and
/// the coordinator stamps each routed assert with the global revision
/// (AssertStamped). Coupling groups never span initial components, so a
/// shard's restricted closure equals the global closure restricted to its
/// components. Together: marginals, entropies, gains, and accept/reject
/// traces are bitwise identical to the monolithic session at any K — the
/// invariant the shard-equivalence differential suite pins.
///
/// Mutation path (Assert). Under the coordinator lock: stage the feedback
/// ledger, run the same closure propagation a monolithic Assert runs, and
/// reject synchronously — a rejected assert consumes no revision and
/// reaches no shard. On acceptance: commit the ledger, advance the
/// revision, and enqueue the stamped assert to the owning shard (none when
/// the correspondence is determined by the empty-feedback closure — the
/// monolithic path touches no cache there either). The returned future
/// resolves when the shard has integrated the assert.
///
/// Read path (Snapshot / InformationGains). Under the coordinator lock,
/// capture the ledger state and enqueue a read marker to *every* shard.
/// Queue FIFO order makes the marker a consistent cut: each shard serves
/// the read after exactly the asserts committed before it. Merging is
/// bitwise-faithful to the monolithic derivation: member marginals placed
/// by global id then closure-pinned (RefreshDerivedState order), and
/// per-component entropy/exhausted digests merged in ascending anchor
/// order — the same float summation sequence the monolithic loop executes.
///
/// Failure semantics. A shard failure (sampler error, injected fault)
/// fails that request's future and degrades the session: every subsequent
/// call fails fast with FailedPrecondition carrying the first failure.
/// Sibling shards are never corrupted — the shard network's staged-commit
/// Assert leaves its own state consistent too. Destruction closes every
/// mailbox, lets workers drain (every accepted request's promise is
/// fulfilled; nothing deadlocks on a dangling future), then joins them.
///
/// Lock order: coordinator mutex → queue mutex; workers take only the
/// degraded-state mutex (a leaf the coordinator also takes last). Producers
/// may block on a full queue while holding the coordinator lock — safe,
/// because workers never take that lock.
class ShardedNetwork {
 public:
  /// Builds the shard plan, the K filtered shard networks (sequentially, on
  /// the calling thread — sampling cost is paid here), and starts the
  /// workers.
  static StatusOr<std::unique_ptr<ShardedNetwork>> Create(
      std::shared_ptr<const CompiledArtifact> artifact,
      ShardedNetworkOptions options, uint64_t seed);

  ShardedNetwork(const ShardedNetwork&) = delete;
  ShardedNetwork& operator=(const ShardedNetwork&) = delete;

  /// Closes every shard mailbox, drains and joins the workers. In-flight
  /// requests complete (or fail cleanly); requests submitted after
  /// destruction begins fail with FailedPrecondition.
  ~ShardedNetwork();

  /// Synchronous assert: SubmitAssert + wait.
  Status Assert(CorrespondenceId c, bool approved) SMN_EXCLUDES(mu_);

  /// Validates and commits the assertion on the coordinator, routes it to
  /// the owning shard, and returns a future that resolves once the shard
  /// has integrated it. Rejections (contradictory feedback) resolve the
  /// future immediately without consuming a revision.
  std::future<Status> SubmitAssert(CorrespondenceId c, bool approved)
      SMN_EXCLUDES(mu_);

  /// Records one noisy answer on the coordinator ledger and routes the
  /// reweight to the owning shard; waits for it to apply. `error_rate` 0
  /// delegates to Assert (the perfect-expert limit, as in the monolithic
  /// session).
  Status AssertSoft(CorrespondenceId c, bool approved, double error_rate)
      SMN_EXCLUDES(mu_);

  /// Snapshot-consistent merged view across all shards.
  StatusOr<ShardedSnapshot> Snapshot() SMN_EXCLUDES(mu_);

  /// Information gain IG(c) for every correspondence, merged across shards
  /// (certain correspondences get 0). Snapshot-consistent like Snapshot.
  StatusOr<std::vector<double>> InformationGains() SMN_EXCLUDES(mu_);

  /// Number of accepted hard assertions.
  uint64_t revision() const SMN_EXCLUDES(mu_);

  /// Number of worker shards.
  size_t shard_count() const { return plan_.shard_count(); }

  /// The component-to-shard routing plan (for tests and load reporting).
  const ShardPlan& plan() const { return plan_; }

 private:
  /// Per-component digest a shard reports for snapshot merging: everything
  /// the monolithic derived-state loop consumes, keyed by anchor so the
  /// coordinator can replay that loop in ascending anchor order.
  struct ComponentDigest {
    CorrespondenceId anchor = 0;
    double entropy = 0.0;
    bool exhausted = false;
    size_t sample_count = 0;
  };

  /// One shard's contribution to a snapshot-consistent read.
  struct ShardReadState {
    Status status;
    /// (global id, marginal) for every member of every owned component.
    std::vector<std::pair<CorrespondenceId, double>> member_probabilities;
    /// One digest per owned component.
    std::vector<ComponentDigest> components;
    /// (global id, gain) pairs; filled only for gain reads.
    std::vector<std::pair<CorrespondenceId, double>> member_gains;
  };

  /// A mailbox message. Exactly one of the two promises is engaged,
  /// selected by `kind`; the worker always fulfills it (normal completion,
  /// failure, or shutdown drain).
  struct ShardRequest {
    enum class Kind { kAssert, kAssertSoft, kRead };
    Kind kind = Kind::kAssert;
    CorrespondenceId c = 0;
    bool approved = false;
    double error_rate = 0.0;
    /// Global revision stamp for kAssert.
    uint64_t revision = 0;
    /// Whether a kRead fills member_gains.
    bool want_gains = false;
    /// Shared with the producer so an undeliverable request (queue closed)
    /// can be failed cleanly instead of dropping the promise.
    std::shared_ptr<std::promise<Status>> done;
    std::shared_ptr<std::promise<ShardReadState>> read;
  };

  ShardedNetwork(std::shared_ptr<const CompiledArtifact> artifact,
                 ShardedNetworkOptions options);

  /// Shard worker main loop: pops requests until the mailbox is closed and
  /// drained.
  void WorkerLoop(size_t shard);

  /// Serves a read request on the worker thread.
  ShardReadState ReadShard(size_t shard, bool want_gains) const;

  /// Records the first failure; later calls keep the original.
  void MarkDegraded(const Status& status) SMN_EXCLUDES(degraded_mu_);

  /// OK, or the sticky first-failure status.
  Status DegradedStatus() const SMN_EXCLUDES(degraded_mu_);

  /// Captures the coordinator state and enqueues a consistent-cut read to
  /// every shard; returns the per-shard states (coordinator lock released
  /// while waiting). Out-params may be null.
  StatusOr<std::vector<ShardReadState>> FanOutRead(bool want_gains,
                                                   uint64_t* revision_out,
                                                   uint64_t* soft_out,
                                                   DeterminedSet* determined_out)
      SMN_EXCLUDES(mu_);

  const std::shared_ptr<const CompiledArtifact> artifact_;
  const ShardedNetworkOptions options_;
  /// Candidate-set size.
  const size_t correspondence_count_;
  /// Immutable after Create (worker-thread reads are synchronized by thread
  /// start).
  ShardPlan plan_;
  /// One filtered network per shard. After the workers start, pmns_[k] is
  /// touched only by worker k (reads and writes), so the networks need no
  /// locks of their own.
  std::vector<ProbabilisticNetwork> pmns_;
  std::vector<std::unique_ptr<BoundedQueue<ShardRequest>>> queues_;
  std::vector<std::thread> workers_;

  /// Coordinator state: the global ledgers every mutation validates
  /// against, and the revision counter stamped onto routed asserts.
  mutable Mutex mu_{"shard.coordinator", LockRank::kShardCoordinator};
  Feedback feedback_ SMN_GUARDED_BY(mu_);
  SoftEvidence soft_evidence_ SMN_GUARDED_BY(mu_);
  DeterminedSet determined_ SMN_GUARDED_BY(mu_);
  uint64_t revision_ SMN_GUARDED_BY(mu_) = 0;
  uint64_t soft_answers_ SMN_GUARDED_BY(mu_) = 0;

  /// Sticky first-failure state. A separate leaf mutex so workers can
  /// record failures while a producer blocks on a full queue holding mu_.
  mutable Mutex degraded_mu_{"shard.degraded", LockRank::kShardDegraded};
  Status degraded_ SMN_GUARDED_BY(degraded_mu_);
};

}  // namespace server
}  // namespace smn

#endif  // SMN_SERVER_SHARDED_NETWORK_H_
