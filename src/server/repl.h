#ifndef SMN_SERVER_REPL_H_
#define SMN_SERVER_REPL_H_

#include <cstddef>
#include <iosfwd>
#include <string>

#include "server/reconcile_service.h"

namespace smn {
namespace server {

/// REPL configuration.
struct ReplOptions {
  /// Lines longer than this are rejected with an error line instead of
  /// being parsed — the input-hardening bound for piped scripts.
  size_t max_line_length = 4096;
  /// Journal directory the `recover` command replays; empty disables it
  /// (matching a service running without a journal_dir).
  std::string journal_dir;
};

/// The line-oriented command loop of smn_server, split from main() so its
/// parsing is unit-testable. Every command either succeeds with its normal
/// output or prints exactly one line starting with "error: " — malformed
/// arguments (non-numeric, missing, trailing junk), oversized lines, and
/// failed service calls all take the error path; nothing is silently
/// defaulted (a historical bug: `open abc` used to open seed 0).
///
/// Commands:
///   open <seed>                       open a session over the tenant
///   assert <session> <corr> <0|1>     integrate a hard assertion
///   soft <session> <corr> <0|1> <eps> record a noisy answer
///   snapshot <session>                print revision, H(C,P), marginals
///   close <session>                   close the session (clean journal end)
///   recover                           replay the journal dir, print report
///   stats                             print service counters
///   help | quit | exit
class Repl {
 public:
  /// Wraps `service` (not owned; must outlive the Repl). Commands act on
  /// sessions of `tenant`.
  Repl(ReconcileService* service, TenantId tenant, ReplOptions options = {});

  /// Executes one input line, writing responses to `out`. Returns false
  /// when the line asked to terminate (quit/exit); true otherwise,
  /// including on errors.
  bool HandleLine(const std::string& line, std::ostream& out);

  /// Reads lines from `in` until EOF or quit.
  void Run(std::istream& in, std::ostream& out);

 private:
  ReconcileService* const service_;
  const TenantId tenant_;
  const ReplOptions options_;
};

}  // namespace server
}  // namespace smn

#endif  // SMN_SERVER_REPL_H_
