#ifndef SMN_SERVER_SESSION_MANAGER_H_
#define SMN_SERVER_SESSION_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>

#include "server/session.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace smn {
namespace server {

/// Owns the live sessions of one server: assigns ids, resolves lookups, and
/// expires sessions idle past a configurable TTL.
///
/// Time is logical, not wall-clock: every Create/Lookup/Touch advances a
/// monotonic tick and stamps the session, and ExpireIdle reaps sessions
/// whose stamp lags the current tick by more than the TTL. Logical ticks
/// keep the whole server deterministic — a replayed request sequence expires
/// exactly the same sessions, independent of scheduling and host load.
///
/// Lock order: the manager mutex is a leaf taken strictly *before* any
/// session mutex and never while one is held — Create builds the session's
/// network entirely outside the lock (sampling is the expensive part) and
/// only publishes the finished session under it; Lookup returns a
/// shared_ptr and releases the manager lock before the caller enters the
/// session. manager → session, never session → manager: no cycle, no
/// deadlock, and a session expiring concurrently with a call on it stays
/// safe because the shared_ptr keeps the session alive until the call
/// returns.
class SessionManager {
 public:
  /// `idle_ttl` is the maximum tick lag before ExpireIdle reaps a session;
  /// 0 means sessions never expire.
  explicit SessionManager(uint64_t idle_ttl = 0) : idle_ttl_(idle_ttl) {}

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Creates a session over `artifact`, building its initial sample state
  /// outside the manager lock, and publishes it under a fresh id. `shards`
  /// selects the session's execution engine (see Session::Create): 0 is
  /// monolithic, K ≥ 1 runs K worker shards.
  StatusOr<std::shared_ptr<Session>> Create(
      std::shared_ptr<const CompiledArtifact> artifact,
      const ProbabilisticNetworkOptions& options, uint64_t seed,
      size_t shards = 0) SMN_EXCLUDES(mu_);

  /// Resolves `id` and marks the session used at the current tick. Returns
  /// NotFound for unknown (or already expired/closed) ids.
  StatusOr<std::shared_ptr<Session>> Lookup(SessionId id) SMN_EXCLUDES(mu_);

  /// Removes `id`. In-flight calls holding the shared_ptr finish safely;
  /// later Lookups return NotFound.
  Status Close(SessionId id) SMN_EXCLUDES(mu_);

  /// Advances the logical clock and reaps every session idle for more than
  /// the TTL. No-op (returns 0) when the TTL is 0.
  size_t ExpireIdle() SMN_EXCLUDES(mu_);

  /// Number of live sessions.
  size_t size() const SMN_EXCLUDES(mu_);

 private:
  struct Entry {
    std::shared_ptr<Session> session;
    /// Tick of the last Create/Lookup that touched this session.
    uint64_t last_used = 0;
  };

  const uint64_t idle_ttl_;
  mutable Mutex mu_;
  /// std::map (not unordered) so iteration — expiry scans — is in id order,
  /// per the repository determinism contract.
  std::map<SessionId, Entry> sessions_ SMN_GUARDED_BY(mu_);
  SessionId next_id_ SMN_GUARDED_BY(mu_) = 1;
  /// Logical clock: advanced by every id-allocating or resolving call.
  uint64_t tick_ SMN_GUARDED_BY(mu_) = 0;
};

}  // namespace server
}  // namespace smn

#endif  // SMN_SERVER_SESSION_MANAGER_H_
