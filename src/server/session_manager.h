#ifndef SMN_SERVER_SESSION_MANAGER_H_
#define SMN_SERVER_SESSION_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "server/session.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace smn {
namespace server {

/// Owns the live sessions of one server: assigns ids, resolves lookups, and
/// expires sessions idle past a configurable TTL.
///
/// Time is logical, not wall-clock: every Create/Lookup/Touch advances a
/// monotonic tick and stamps the session, and ExpireIdle reaps sessions
/// whose stamp lags the current tick by more than the TTL. Logical ticks
/// keep the whole server deterministic — a replayed request sequence expires
/// exactly the same sessions, independent of scheduling and host load.
///
/// Lock order: the manager mutex is a leaf taken strictly *before* any
/// session mutex and never while one is held — Create builds the session's
/// network entirely outside the lock (sampling is the expensive part) and
/// only publishes the finished session under it; Lookup returns a
/// shared_ptr and releases the manager lock before the caller enters the
/// session. manager → session, never session → manager: no cycle, no
/// deadlock, and a session expiring concurrently with a call on it stays
/// safe because the shared_ptr keeps the session alive until the call
/// returns.
class SessionManager {
 public:
  /// `idle_ttl` is the maximum tick lag before ExpireIdle reaps a session;
  /// 0 means sessions never expire.
  explicit SessionManager(uint64_t idle_ttl = 0) : idle_ttl_(idle_ttl) {}

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Runs on a fully built but not yet published session — the service's
  /// journal-attachment point. A non-OK return aborts the create/restore
  /// (the session is discarded unpublished).
  using PrePublishHook = std::function<Status(Session&)>;

  /// Creates a session over `artifact`, building its initial sample state
  /// outside the manager lock, and publishes it under a fresh id. `shards`
  /// selects the session's execution engine (see Session::Create): 0 is
  /// monolithic, K ≥ 1 runs K worker shards. `pre_publish`, when set, runs
  /// after the build and before the session becomes visible (uncontended —
  /// no other thread can hold the session yet).
  StatusOr<std::shared_ptr<Session>> Create(
      std::shared_ptr<const CompiledArtifact> artifact,
      const ProbabilisticNetworkOptions& options, uint64_t seed,
      size_t shards = 0, const PrePublishHook& pre_publish = nullptr)
      SMN_EXCLUDES(mu_);

  /// Recovery-path Create: rebuilds a session under its *original* id (the
  /// id its journal was written for) instead of allocating a fresh one, and
  /// bumps the id allocator past it so post-recovery sessions never collide.
  /// AlreadyExists when `id` is live. The caller replays the journal into
  /// the returned session, then runs its own journal reattachment; hence no
  /// pre-publish hook — the session is published bare.
  StatusOr<std::shared_ptr<Session>> Restore(
      SessionId id, std::shared_ptr<const CompiledArtifact> artifact,
      const ProbabilisticNetworkOptions& options, uint64_t seed,
      size_t shards = 0) SMN_EXCLUDES(mu_);

  /// Resolves `id` and marks the session used at the current tick. Returns
  /// NotFound for unknown (or already expired/closed) ids.
  StatusOr<std::shared_ptr<Session>> Lookup(SessionId id) SMN_EXCLUDES(mu_);

  /// Removes `id`. In-flight calls holding the shared_ptr finish safely;
  /// later Lookups return NotFound.
  Status Close(SessionId id) SMN_EXCLUDES(mu_);

  /// Advances the logical clock and reaps every session idle for more than
  /// the TTL. No-op (returns 0) when the TTL is 0. Eviction is a *clean*
  /// close: each reaped session's journal is finished (Close record, file
  /// unlinked) outside the manager lock, so an evicted session is never
  /// resurrected by recovery.
  size_t ExpireIdle() SMN_EXCLUDES(mu_);

  /// Number of live sessions.
  size_t size() const SMN_EXCLUDES(mu_);

 private:
  struct Entry {
    std::shared_ptr<Session> session;
    /// Tick of the last Create/Lookup that touched this session.
    uint64_t last_used = 0;
  };

  const uint64_t idle_ttl_;
  mutable Mutex mu_{"session_manager.sessions", LockRank::kSessionManager};
  /// std::map (not unordered) so iteration — expiry scans — is in id order,
  /// per the repository determinism contract.
  std::map<SessionId, Entry> sessions_ SMN_GUARDED_BY(mu_);
  SessionId next_id_ SMN_GUARDED_BY(mu_) = 1;
  /// Logical clock: advanced by every id-allocating or resolving call.
  uint64_t tick_ SMN_GUARDED_BY(mu_) = 0;
};

}  // namespace server
}  // namespace smn

#endif  // SMN_SERVER_SESSION_MANAGER_H_
