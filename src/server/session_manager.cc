#include "server/session_manager.h"

#include <string>
#include <utility>
#include <vector>

namespace smn {
namespace server {

StatusOr<std::shared_ptr<Session>> SessionManager::Create(
    std::shared_ptr<const CompiledArtifact> artifact,
    const ProbabilisticNetworkOptions& options, uint64_t seed, size_t shards,
    const PrePublishHook& pre_publish) {
  SessionId id = 0;
  {
    MutexLock lock(mu_);
    id = next_id_++;
  }
  // Build outside the lock: drawing the initial sample sets is the
  // expensive part of session creation and must not serialize the server.
  SMN_ASSIGN_OR_RETURN(
      std::unique_ptr<Session> session,
      Session::Create(id, std::move(artifact), options, seed, shards));
  if (pre_publish) SMN_RETURN_IF_ERROR(pre_publish(*session));
  std::shared_ptr<Session> shared = std::move(session);
  {
    MutexLock lock(mu_);
    ++tick_;
    sessions_[id] = Entry{shared, tick_};
  }
  return shared;
}

StatusOr<std::shared_ptr<Session>> SessionManager::Restore(
    SessionId id, std::shared_ptr<const CompiledArtifact> artifact,
    const ProbabilisticNetworkOptions& options, uint64_t seed, size_t shards) {
  {
    MutexLock lock(mu_);
    if (sessions_.count(id) != 0) {
      return Status::AlreadyExists("Restore: session id " +
                                   std::to_string(id) + " is live");
    }
    if (next_id_ <= id) next_id_ = id + 1;
  }
  SMN_ASSIGN_OR_RETURN(
      std::unique_ptr<Session> session,
      Session::Create(id, std::move(artifact), options, seed, shards));
  std::shared_ptr<Session> shared = std::move(session);
  {
    MutexLock lock(mu_);
    ++tick_;
    sessions_[id] = Entry{shared, tick_};
  }
  return shared;
}

StatusOr<std::shared_ptr<Session>> SessionManager::Lookup(SessionId id) {
  MutexLock lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("Lookup: no session with id " + std::to_string(id));
  }
  ++tick_;
  it->second.last_used = tick_;
  return it->second.session;
}

Status SessionManager::Close(SessionId id) {
  std::shared_ptr<Session> doomed;
  {
    MutexLock lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::NotFound("Close: no session with id " + std::to_string(id));
    }
    // Move the last owner out of the map so a potentially expensive session
    // destruction runs outside the manager lock (in-flight shared_ptrs can
    // also outlive this call; either way the lock is not held for it).
    doomed = std::move(it->second.session);
    sessions_.erase(it);
  }
  return Status::OK();
}

size_t SessionManager::ExpireIdle() {
  std::vector<std::shared_ptr<Session>> doomed;
  {
    MutexLock lock(mu_);
    if (idle_ttl_ == 0) return 0;
    ++tick_;
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (tick_ - it->second.last_used > idle_ttl_) {
        doomed.push_back(std::move(it->second.session));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Finish journals outside the manager lock (lock order manager → session:
  // FinishJournal takes the session mutex). Best-effort: an eviction must
  // not fail because the journal's final write did.
  for (const std::shared_ptr<Session>& session : doomed) {
    (void)session->FinishJournal();
  }
  return doomed.size();
}

size_t SessionManager::size() const {
  MutexLock lock(mu_);
  return sessions_.size();
}

}  // namespace server
}  // namespace smn
