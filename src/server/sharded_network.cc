#include "server/sharded_network.h"

#include <algorithm>
#include <limits>

#include "util/fault_injection.h"

namespace smn {
namespace server {

ShardedNetwork::ShardedNetwork(
    std::shared_ptr<const CompiledArtifact> artifact,
    ShardedNetworkOptions options)
    : artifact_(std::move(artifact)),
      options_(std::move(options)),
      correspondence_count_(artifact_->network().correspondence_count()),
      feedback_(correspondence_count_),
      soft_evidence_(correspondence_count_),
      determined_(artifact_->initial_determined()) {}

StatusOr<std::unique_ptr<ShardedNetwork>> ShardedNetwork::Create(
    std::shared_ptr<const CompiledArtifact> artifact,
    ShardedNetworkOptions options, uint64_t seed) {
  if (artifact == nullptr) {
    return Status::InvalidArgument("ShardedNetwork: artifact must not be null");
  }
  std::unique_ptr<ShardedNetwork> net(
      new ShardedNetwork(std::move(artifact), std::move(options)));
  net->plan_ = ShardPlan::Build(net->artifact_->initial_index(),
                                net->options_.shards,
                                net->correspondence_count_);
  const size_t shards = net->plan_.shard_count();
  net->pmns_.reserve(shards);
  for (size_t k = 0; k < shards; ++k) {
    // Every shard restarts the seed: its base stream equals the monolithic
    // session's, so per-component forks — keyed purely on (anchor,
    // revision) — reproduce the monolithic sample sets bit for bit.
    Rng rng(seed);
    SMN_ASSIGN_OR_RETURN(
        ProbabilisticNetwork pmn,
        ProbabilisticNetwork::Create(net->artifact_, net->options_.network,
                                     &rng, &net->plan_.components_of(k)));
    net->pmns_.push_back(std::move(pmn));
  }
  for (size_t k = 0; k < shards; ++k) {
    net->queues_.push_back(std::make_unique<BoundedQueue<ShardRequest>>(
        net->options_.queue_capacity));
  }
  // Workers start last: everything they read without locks (plan_, pmns_,
  // queues_) is fully built, and thread creation synchronizes-with the
  // worker's first read.
  net->workers_.reserve(shards);
  for (size_t k = 0; k < shards; ++k) {
    net->workers_.emplace_back(&ShardedNetwork::WorkerLoop, net.get(), k);
  }
  return net;
}

ShardedNetwork::~ShardedNetwork() {
  for (auto& queue : queues_) queue->Close();
  // Workers drain every already accepted request (fulfilling its promise)
  // before exiting — see BoundedQueue's shutdown contract.
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ShardedNetwork::WorkerLoop(size_t shard) {
  ShardRequest request;
  while (queues_[shard]->Pop(&request)) {
    // A degraded shard stops mutating: its state diverged from the
    // coordinator ledger at the first failure, so integrating later
    // requests would compound the divergence. Drain them with the sticky
    // error instead.
    Status degraded = DegradedStatus();
    if (degraded.ok()) {
      // Two fault sources, same degradation path: the global injection
      // framework (site shard.worker) and the per-network test hook.
      Status injected = SMN_FAULT_CHECK("shard.worker");
      if (injected.ok() && options_.fault_hook) {
        injected = options_.fault_hook(shard);
      }
      if (!injected.ok()) {
        MarkDegraded(injected);
        degraded = DegradedStatus();
      }
    }
    switch (request.kind) {
      case ShardRequest::Kind::kAssert: {
        Status status = degraded.ok()
                            ? pmns_[shard].AssertStamped(
                                  request.c, request.approved, request.revision)
                            : degraded;
        if (degraded.ok() && !status.ok()) MarkDegraded(status);
        request.done->set_value(std::move(status));
        break;
      }
      case ShardRequest::Kind::kAssertSoft: {
        // rng is never consumed on the soft path (and the ε = 0 case is
        // resolved on the coordinator), so nullptr is safe — and loud if
        // that invariant ever breaks.
        Status status = degraded.ok()
                            ? pmns_[shard].AssertSoft(request.c,
                                                      request.approved,
                                                      request.error_rate,
                                                      /*rng=*/nullptr)
                            : degraded;
        if (degraded.ok() && !status.ok()) MarkDegraded(status);
        request.done->set_value(std::move(status));
        break;
      }
      case ShardRequest::Kind::kRead: {
        ShardReadState state;
        if (degraded.ok()) {
          state = ReadShard(shard, request.want_gains);
        } else {
          state.status = std::move(degraded);
        }
        request.read->set_value(std::move(state));
        break;
      }
    }
  }
}

ShardedNetwork::ShardReadState ShardedNetwork::ReadShard(
    size_t shard, bool want_gains) const {
  ShardReadState state;
  const ProbabilisticNetwork& pmn = pmns_[shard];
  for (size_t i = 0; i < pmn.component_count(); ++i) {
    const ConstraintComponent& component = pmn.component(i);
    ComponentDigest digest;
    digest.anchor = component.anchor;
    digest.entropy = pmn.ComponentEntropy(i);
    digest.exhausted = pmn.ComponentExhausted(i);
    digest.sample_count = pmn.ComponentSampleCount(i);
    state.components.push_back(digest);
    for (CorrespondenceId member : component.members) {
      state.member_probabilities.emplace_back(member, pmn.probability(member));
    }
    if (want_gains) {
      const std::vector<double>& gains = pmn.ComponentGains(i);
      for (size_t j = 0; j < component.members.size(); ++j) {
        state.member_gains.emplace_back(component.members[j], gains[j]);
      }
    }
  }
  return state;
}

void ShardedNetwork::MarkDegraded(const Status& status) {
  MutexLock lock(degraded_mu_);
  if (degraded_.ok()) {
    degraded_ = Status::FailedPrecondition("sharded session degraded: " +
                                           status.ToString());
  }
}

Status ShardedNetwork::DegradedStatus() const {
  MutexLock lock(degraded_mu_);
  return degraded_;
}

Status ShardedNetwork::Assert(CorrespondenceId c, bool approved) {
  return SubmitAssert(c, approved).get();
}

std::future<Status> ShardedNetwork::SubmitAssert(CorrespondenceId c,
                                                 bool approved) {
  auto done = std::make_shared<std::promise<Status>>();
  std::future<Status> result = done->get_future();
  MutexLock lock(mu_);
  {
    Status degraded = DegradedStatus();
    if (!degraded.ok()) {
      done->set_value(std::move(degraded));
      return result;
    }
  }
  // Exactly the monolithic validation, staged against the coordinator
  // ledger: a rejected assert resolves synchronously, consumes no revision,
  // and reaches no shard — so accept/reject traces match the monolithic
  // session's.
  Feedback feedback = feedback_;
  Status staged = feedback.Assert(c, approved);
  if (!staged.ok()) {
    done->set_value(std::move(staged));
    return result;
  }
  StatusOr<DeterminedSet> determined = PropagateFeedback(
      artifact_->constraints(), feedback, correspondence_count_);
  if (!determined.ok()) {
    done->set_value(determined.status());
    return result;
  }
  feedback_ = std::move(feedback);
  determined_ = std::move(determined).value();
  ++revision_;
  const size_t shard = plan_.ShardOfCorrespondence(c);
  if (shard == ShardPlan::kNoShard) {
    // Determined by the empty-feedback closure: the monolithic path touches
    // no cache either (ComponentOf is kNoComponent), but the revision still
    // advances — shards fork later rebuilds on the same stamps either way.
    done->set_value(Status::OK());
    return result;
  }
  ShardRequest request;
  request.kind = ShardRequest::Kind::kAssert;
  request.c = c;
  request.approved = approved;
  request.revision = revision_;
  request.done = done;
  // Push under shard.coordinator is rank-upward (queue.state is a leaf
  // above it) and cycle-free: a full queue blocks on the shard worker,
  // which drains its mailbox without ever taking the coordinator lock.
  // smn-lint: allow(blocking-in-lock)
  if (!queues_[shard]->Push(std::move(request))) {
    done->set_value(
        Status::FailedPrecondition("sharded session is shutting down"));
  }
  return result;
}

Status ShardedNetwork::AssertSoft(CorrespondenceId c, bool approved,
                                  double error_rate) {
  // The perfect-expert limit takes the hard path verbatim, exactly like the
  // monolithic AssertSoft.
  if (error_rate == 0.0) return Assert(c, approved);
  std::future<Status> routed;
  bool has_routed = false;
  {
    MutexLock lock(mu_);
    SMN_RETURN_IF_ERROR(DegradedStatus());
    SMN_RETURN_IF_ERROR(soft_evidence_.Record(c, approved, error_rate));
    ++soft_answers_;
    const size_t shard = plan_.ShardOfCorrespondence(c);
    if (shard != ShardPlan::kNoShard) {
      auto done = std::make_shared<std::promise<Status>>();
      routed = done->get_future();
      ShardRequest request;
      request.kind = ShardRequest::Kind::kAssertSoft;
      request.c = c;
      request.approved = approved;
      request.error_rate = error_rate;
      request.done = done;
      // Same cycle-freedom argument as Assert: workers drain the queue
      // without acquiring shard.coordinator.
      // smn-lint: allow(blocking-in-lock)
      if (!queues_[shard]->Push(std::move(request))) {
        done->set_value(
            Status::FailedPrecondition("sharded session is shutting down"));
      }
      has_routed = true;
    }
    // kNoShard: determined by the empty-feedback closure — ledger-only, as
    // in the monolithic session (the answer still cost an elicitation).
  }
  if (!has_routed) return Status::OK();
  return routed.get();
}

StatusOr<std::vector<ShardedNetwork::ShardReadState>>
ShardedNetwork::FanOutRead(bool want_gains, uint64_t* revision_out,
                           uint64_t* soft_out,
                           DeterminedSet* determined_out) {
  std::vector<std::future<ShardReadState>> futures;
  futures.reserve(plan_.shard_count());
  {
    MutexLock lock(mu_);
    SMN_RETURN_IF_ERROR(DegradedStatus());
    if (revision_out != nullptr) *revision_out = revision_;
    if (soft_out != nullptr) *soft_out = soft_answers_;
    if (determined_out != nullptr) *determined_out = determined_;
    // One read marker per shard, enqueued under the coordinator lock: FIFO
    // mailboxes make this a consistent cut — every shard serves the read
    // after exactly the asserts committed before this point.
    for (size_t k = 0; k < plan_.shard_count(); ++k) {
      auto read = std::make_shared<std::promise<ShardReadState>>();
      futures.push_back(read->get_future());
      ShardRequest request;
      request.kind = ShardRequest::Kind::kRead;
      request.want_gains = want_gains;
      request.read = read;
      // Same cycle-freedom argument as Assert: workers drain the queue
      // without acquiring shard.coordinator.
      // smn-lint: allow(blocking-in-lock)
      if (!queues_[k]->Push(std::move(request))) {
        ShardReadState unavailable;
        unavailable.status =
            Status::FailedPrecondition("sharded session is shutting down");
        read->set_value(std::move(unavailable));
      }
    }
  }
  // Wait outside the lock: workers never need mu_, but holding it here
  // would serialize overlapping reads for no reason.
  std::vector<ShardReadState> states;
  states.reserve(futures.size());
  for (auto& future : futures) states.push_back(future.get());
  for (const ShardReadState& state : states) {
    SMN_RETURN_IF_ERROR(state.status);
  }
  return states;
}

StatusOr<ShardedSnapshot> ShardedNetwork::Snapshot() {
  uint64_t revision = 0;
  uint64_t soft = 0;
  DeterminedSet determined;
  SMN_ASSIGN_OR_RETURN(
      std::vector<ShardReadState> states,
      FanOutRead(/*want_gains=*/false, &revision, &soft, &determined));

  ShardedSnapshot snapshot;
  snapshot.revision = revision;
  snapshot.soft_answer_count = soft;

  // Replay RefreshDerivedState: zeros, member marginals by global id, then
  // the closure pinned over them (members are undetermined, so the pinning
  // order only matters for determined correspondences — same as monolithic).
  snapshot.probabilities.assign(correspondence_count_, 0.0);
  std::vector<ComponentDigest> digests;
  for (const ShardReadState& state : states) {
    for (const auto& entry : state.member_probabilities) {
      snapshot.probabilities[entry.first] = entry.second;
    }
    digests.insert(digests.end(), state.components.begin(),
                   state.components.end());
  }
  determined.approved.ForEachSetBit(
      [&](size_t c) { snapshot.probabilities[c] = 1.0; });
  determined.disapproved.ForEachSetBit(
      [&](size_t c) { snapshot.probabilities[c] = 0.0; });

  // Anchors are unique (a component's anchor is its least member), so this
  // sort reproduces the monolithic component order exactly; entropy must be
  // summed in that order for bitwise-equal float results.
  std::sort(digests.begin(), digests.end(),
            [](const ComponentDigest& a, const ComponentDigest& b) {
              return a.anchor < b.anchor;
            });
  snapshot.uncertainty = 0.0;
  for (const ComponentDigest& digest : digests) {
    snapshot.uncertainty += digest.entropy;
  }

  // Replay the monolithic exhausted() check, including its sticky overflow
  // corner (an overflowed cross-product stays overflowed even past a
  // zero-sample component) — per-shard partial products would not.
  bool all_exhausted = true;
  bool product_overflow = false;
  size_t product = 1;
  for (const ComponentDigest& digest : digests) {
    all_exhausted = all_exhausted && digest.exhausted;
    const size_t size = digest.sample_count;
    if (size == 0) {
      product = 0;
    } else if (product > std::numeric_limits<size_t>::max() / size) {
      product_overflow = true;
    } else {
      product *= size;
    }
  }
  snapshot.exhausted = all_exhausted && !product_overflow &&
                       product <= options_.network.sample_view_cap;
  return snapshot;
}

StatusOr<std::vector<double>> ShardedNetwork::InformationGains() {
  SMN_ASSIGN_OR_RETURN(std::vector<ShardReadState> states,
                       FanOutRead(/*want_gains=*/true, nullptr, nullptr,
                                  nullptr));
  std::vector<double> gains(correspondence_count_, 0.0);
  for (const ShardReadState& state : states) {
    for (const auto& entry : state.member_gains) {
      gains[entry.first] = entry.second;
    }
  }
  return gains;
}

uint64_t ShardedNetwork::revision() const {
  MutexLock lock(mu_);
  return revision_;
}

}  // namespace server
}  // namespace smn
