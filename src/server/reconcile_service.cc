#include "server/reconcile_service.h"

#include <string>
#include <utility>

namespace smn {
namespace server {

ReconcileService::ReconcileService(ServerOptions options)
    : options_(std::move(options)),
      sessions_(options_.session_idle_ttl),
      pool_(options_.worker_threads) {}

StatusOr<TenantId> ReconcileService::RegisterTenant(
    std::string name, std::unique_ptr<const Network> network,
    std::unique_ptr<const ConstraintSet> constraints) {
  SMN_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledArtifact> artifact,
                       CompiledArtifact::TakeOwnership(std::move(network),
                                                       std::move(constraints)));
  MutexLock lock(mu_);
  const TenantId id = next_tenant_++;
  tenants_[id] = Tenant{std::move(name), std::move(artifact)};
  return id;
}

StatusOr<std::shared_ptr<const CompiledArtifact>>
ReconcileService::TenantArtifact(TenantId tenant) const {
  MutexLock lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("TenantArtifact: no tenant with id " +
                            std::to_string(tenant));
  }
  return it->second.artifact;
}

StatusOr<SessionId> ReconcileService::OpenSession(TenantId tenant,
                                                  uint64_t seed) {
  SMN_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledArtifact> artifact,
                       TenantArtifact(tenant));
  SMN_ASSIGN_OR_RETURN(
      std::shared_ptr<Session> session,
      sessions_.Create(std::move(artifact), options_.network, seed,
                       options_.session_shards));
  {
    MutexLock lock(stats_mu_);
    ++stats_.sessions_opened;
  }
  return session->id();
}

Status ReconcileService::Assert(SessionId session, CorrespondenceId c,
                                bool approved) {
  SMN_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, sessions_.Lookup(session));
  {
    MutexLock lock(stats_mu_);
    ++stats_.asserts;
  }
  return s->Assert(c, approved);
}

Status ReconcileService::AssertSoft(SessionId session, CorrespondenceId c,
                                    bool approved, double error_rate) {
  SMN_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, sessions_.Lookup(session));
  {
    MutexLock lock(stats_mu_);
    ++stats_.soft_asserts;
  }
  return s->AssertSoft(c, approved, error_rate);
}

StatusOr<SessionSnapshot> ReconcileService::Snapshot(SessionId session) {
  SMN_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, sessions_.Lookup(session));
  {
    MutexLock lock(stats_mu_);
    ++stats_.snapshots;
  }
  return s->Snapshot();
}

StatusOr<ReconcileTrace> ReconcileService::Reconcile(
    SessionId session, StrategyKind kind, const ReconcileGoal& goal,
    AssertionOracle oracle, const ElicitationPolicy& policy) {
  SMN_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, sessions_.Lookup(session));
  return s->Reconcile(kind, goal, std::move(oracle), policy);
}

Status ReconcileService::Close(SessionId session) {
  SMN_RETURN_IF_ERROR(sessions_.Close(session));
  MutexLock lock(stats_mu_);
  ++stats_.sessions_closed;
  return Status::OK();
}

std::future<Status> ReconcileService::SubmitAssert(SessionId session,
                                                   CorrespondenceId c,
                                                   bool approved) {
  return pool_.Submit(
      [this, session, c, approved] { return Assert(session, c, approved); });
}

std::future<Status> ReconcileService::SubmitAssertSoft(SessionId session,
                                                       CorrespondenceId c,
                                                       bool approved,
                                                       double error_rate) {
  return pool_.Submit([this, session, c, approved, error_rate] {
    return AssertSoft(session, c, approved, error_rate);
  });
}

std::future<StatusOr<SessionSnapshot>> ReconcileService::SubmitSnapshot(
    SessionId session) {
  return pool_.Submit([this, session] { return Snapshot(session); });
}

ServerStats ReconcileService::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

}  // namespace server
}  // namespace smn
