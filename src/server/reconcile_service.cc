#include "server/reconcile_service.h"

#include <string>
#include <utility>

namespace smn {
namespace server {

ReconcileService::ReconcileService(ServerOptions options)
    : options_(std::move(options)),
      sessions_(options_.session_idle_ttl),
      admission_(options_.max_queue_depth > 0
                     ? std::make_unique<BoundedQueue<char>>(
                           options_.max_queue_depth)
                     : nullptr),
      pool_(options_.worker_threads) {}

StatusOr<TenantId> ReconcileService::RegisterTenant(
    std::string name, std::unique_ptr<const Network> network,
    std::unique_ptr<const ConstraintSet> constraints) {
  SMN_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledArtifact> artifact,
                       CompiledArtifact::TakeOwnership(std::move(network),
                                                       std::move(constraints)));
  MutexLock lock(mu_);
  const TenantId id = next_tenant_++;
  tenants_[id] = Tenant{std::move(name), std::move(artifact)};
  return id;
}

StatusOr<std::shared_ptr<const CompiledArtifact>>
ReconcileService::TenantArtifact(TenantId tenant) const {
  MutexLock lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("TenantArtifact: no tenant with id " +
                            std::to_string(tenant));
  }
  return it->second.artifact;
}

StatusOr<SessionId> ReconcileService::OpenSession(TenantId tenant,
                                                  uint64_t seed) {
  SMN_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledArtifact> artifact,
                       TenantArtifact(tenant));
  // Durable mode: before the session becomes visible, start its journal —
  // the Open record carries everything recovery needs to rebuild the same
  // initial state. A journal that cannot be started fails the open.
  SessionManager::PrePublishHook pre_publish;
  if (!options_.journal_dir.empty()) {
    const JournalOptions journal = journal_options();
    const uint64_t shards = options_.session_shards;
    pre_publish = [journal, tenant, seed, shards](Session& session) {
      SMN_ASSIGN_OR_RETURN(
          std::unique_ptr<SessionLog> log,
          SessionLog::Create(journal, session.id(), tenant, seed, shards));
      session.AttachJournal(std::move(log));
      return Status::OK();
    };
  }
  SMN_ASSIGN_OR_RETURN(
      std::shared_ptr<Session> session,
      sessions_.Create(std::move(artifact), options_.network, seed,
                       options_.session_shards, pre_publish));
  {
    MutexLock lock(stats_mu_);
    ++stats_.sessions_opened;
  }
  return session->id();
}

Status ReconcileService::Assert(SessionId session, CorrespondenceId c,
                                bool approved) {
  SMN_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, sessions_.Lookup(session));
  {
    MutexLock lock(stats_mu_);
    ++stats_.asserts;
  }
  return s->Assert(c, approved);
}

Status ReconcileService::AssertSoft(SessionId session, CorrespondenceId c,
                                    bool approved, double error_rate) {
  SMN_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, sessions_.Lookup(session));
  {
    MutexLock lock(stats_mu_);
    ++stats_.soft_asserts;
  }
  return s->AssertSoft(c, approved, error_rate);
}

StatusOr<SessionSnapshot> ReconcileService::Snapshot(SessionId session) {
  SMN_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, sessions_.Lookup(session));
  {
    MutexLock lock(stats_mu_);
    ++stats_.snapshots;
  }
  return s->Snapshot();
}

StatusOr<ReconcileTrace> ReconcileService::Reconcile(
    SessionId session, StrategyKind kind, const ReconcileGoal& goal,
    AssertionOracle oracle, const ElicitationPolicy& policy) {
  SMN_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, sessions_.Lookup(session));
  return s->Reconcile(kind, goal, std::move(oracle), policy);
}

Status ReconcileService::Close(SessionId session) {
  // Resolve the session first so the journal can be finished after the id
  // is unpublished: Close record appended, file unlinked — recovery will
  // not resurrect this session. Best-effort: the close itself already
  // succeeded, a failing final journal write must not undo it.
  StatusOr<std::shared_ptr<Session>> doomed = sessions_.Lookup(session);
  SMN_RETURN_IF_ERROR(sessions_.Close(session));
  if (doomed.ok()) (void)doomed.value()->FinishJournal();
  MutexLock lock(stats_mu_);
  ++stats_.sessions_closed;
  return Status::OK();
}

Status ReconcileService::RecoverOne(const std::string& journal_dir,
                                    uint64_t session_id,
                                    RecoveryReport* report) {
  const std::string path = JournalFilePath(journal_dir, session_id);
  SMN_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  RecordParse parse = ParseRecords(bytes);
  if (!parse.clean()) {
    // Torn or corrupt tail: drop it physically so the reattached journal
    // appends after the last durable record.
    SMN_RETURN_IF_ERROR(TruncateFile(path, parse.valid_bytes));
    ++report->truncated_tails;
    report->dropped_bytes += parse.dropped_bytes;
  }
  if (parse.payloads.empty()) {
    return Status::DataLoss("journal '" + path + "' has no durable records");
  }
  SMN_ASSIGN_OR_RETURN(JournalRecord open,
                       DecodeJournalRecord(parse.payloads.front()));
  if (open.kind != JournalRecordKind::kOpen) {
    return Status::DataLoss("journal '" + path +
                            "' does not start with an Open record");
  }
  if (open.session_id != session_id) {
    return Status::DataLoss("journal '" + path + "' carries session id " +
                            std::to_string(open.session_id));
  }
  SMN_ASSIGN_OR_RETURN(JournalRecord last,
                       DecodeJournalRecord(parse.payloads.back()));
  if (last.kind == JournalRecordKind::kClose) {
    // Clean shutdown whose unlink never happened: nothing to recover.
    SMN_RETURN_IF_ERROR(RemoveFile(path));
    ++report->sessions_skipped_closed;
    return Status::OK();
  }
  SMN_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledArtifact> artifact,
                       TenantArtifact(open.tenant_id));
  SMN_ASSIGN_OR_RETURN(
      std::shared_ptr<Session> session,
      sessions_.Restore(open.session_id, std::move(artifact), options_.network,
                        open.seed, open.shards));
  // Replay into the bare (unjournaled) session: the engine is deterministic
  // in (seed, record order), so accepted records rebuild the exact state and
  // rejected records reject exactly as they did pre-crash. The replay-local
  // counters cross-check each record's revision stamp.
  uint64_t accepted = 0;
  uint64_t soft = 0;
  for (size_t i = 1; i < parse.payloads.size(); ++i) {
    SMN_ASSIGN_OR_RETURN(JournalRecord record,
                         DecodeJournalRecord(parse.payloads[i]));
    switch (record.kind) {
      case JournalRecordKind::kAssert: {
        if (record.stamp != accepted) ++report->revision_mismatches;
        const Status status =
            session->Assert(record.correspondence, record.approved);
        if (status.ok()) {
          ++accepted;
        } else {
          ++report->replay_rejected;
        }
        ++report->asserts_replayed;
        break;
      }
      case JournalRecordKind::kAssertSoft: {
        if (record.stamp != soft) ++report->revision_mismatches;
        const Status status = session->AssertSoft(
            record.correspondence, record.approved, record.error_rate);
        if (status.ok()) {
          ++soft;
        } else {
          ++report->replay_rejected;
        }
        ++report->soft_replayed;
        break;
      }
      case JournalRecordKind::kOpen:
        return Status::DataLoss("journal '" + path +
                                "' has a second Open record");
      case JournalRecordKind::kClose:
        return Status::DataLoss("journal '" + path +
                                "' has a Close record before its end");
    }
  }
  // Only now does the session journal again — replay itself must not
  // re-append the records it is reading.
  SMN_ASSIGN_OR_RETURN(std::unique_ptr<SessionLog> log,
                       SessionLog::Reattach(journal_options(), session_id));
  session->AttachJournal(std::move(log));
  ++report->sessions_recovered;
  return Status::OK();
}

StatusOr<RecoveryReport> ReconcileService::Recover(
    const std::string& journal_dir) {
  RecoveryReport report;
  StatusOr<std::vector<uint64_t>> ids = ListJournalSessions(journal_dir);
  if (!ids.ok()) {
    // A missing directory means no journals were ever written: an empty
    // recovery, not an error.
    if (ids.status().code() == StatusCode::kNotFound) return report;
    return ids.status();
  }
  for (const uint64_t session_id : ids.value()) {
    const Status status = RecoverOne(journal_dir, session_id, &report);
    // One bad journal (undecodable, unknown tenant, rebuild failure) is
    // counted and skipped; recovery of the remaining sessions continues.
    if (!status.ok()) ++report.failed_sessions;
  }
  return report;
}

std::future<Status> ReconcileService::SubmitAssert(SessionId session,
                                                   CorrespondenceId c,
                                                   bool approved) {
  return SubmitRequest<Status>(
      [this, session, c, approved] { return Assert(session, c, approved); });
}

std::future<Status> ReconcileService::SubmitAssertSoft(SessionId session,
                                                       CorrespondenceId c,
                                                       bool approved,
                                                       double error_rate) {
  return SubmitRequest<Status>([this, session, c, approved, error_rate] {
    return AssertSoft(session, c, approved, error_rate);
  });
}

std::future<StatusOr<SessionSnapshot>> ReconcileService::SubmitSnapshot(
    SessionId session) {
  return SubmitRequest<StatusOr<SessionSnapshot>>(
      [this, session] { return Snapshot(session); });
}

double ReconcileService::RetryAfterHintMs() const {
  MutexLock lock(stats_mu_);
  return ewma_exec_ms_;
}

void ReconcileService::RecordExecLatency(double exec_ms) {
  MutexLock lock(stats_mu_);
  ewma_exec_ms_ = ewma_exec_ms_ == 0.0 ? exec_ms
                                       : 0.9 * ewma_exec_ms_ + 0.1 * exec_ms;
}

ServerStats ReconcileService::stats() const {
  MutexLock lock(stats_mu_);
  ServerStats stats = stats_;
  stats.retry_after_ms = ewma_exec_ms_;
  return stats;
}

}  // namespace server
}  // namespace smn
