#include "server/repl.h"

#include <cerrno>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace smn {
namespace server {
namespace {

/// Splits on whitespace into full tokens (never partial reads: a token
/// either parses completely or the command errors).
std::vector<std::string> Tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

/// Strict full-token u64 parse: digits only, no sign, no trailing bytes.
bool ParseU64(const std::string& token, uint64_t* value) {
  if (token.empty() || token[0] < '0' || token[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  *value = static_cast<uint64_t>(parsed);
  return true;
}

/// Strict full-token double parse.
bool ParseDouble(const std::string& token, double* value) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(token.c_str(), &end);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  *value = parsed;
  return true;
}

/// The approved flag is exactly "0" or "1" — not just any integer.
bool ParseBool01(const std::string& token, bool* value) {
  if (token == "0") {
    *value = false;
    return true;
  }
  if (token == "1") {
    *value = true;
    return true;
  }
  return false;
}

void PrintStatusLine(const Status& status, const char* ok_word,
                     std::ostream& out) {
  if (status.ok()) {
    out << ok_word << "\n";
  } else {
    out << "error: " << status.message() << "\n";
  }
}

void PrintSnapshot(const SessionSnapshot& snapshot, std::ostream& out) {
  out << "session " << snapshot.session_id << " revision "
      << snapshot.revision << " soft " << snapshot.soft_answer_count
      << " uncertainty " << FormatDouble(snapshot.uncertainty, 4)
      << (snapshot.exhausted ? " (exhausted)" : "") << "\n";
  out << "  p = [";
  for (size_t i = 0; i < snapshot.probabilities.size(); ++i) {
    if (i > 0) out << ", ";
    out << FormatDouble(snapshot.probabilities[i], 3);
  }
  out << "]\n";
}

}  // namespace

Repl::Repl(ReconcileService* service, TenantId tenant, ReplOptions options)
    : service_(service), tenant_(tenant), options_(std::move(options)) {}

bool Repl::HandleLine(const std::string& line, std::ostream& out) {
  if (line.size() > options_.max_line_length) {
    out << "error: line of " << line.size() << " bytes exceeds the "
        << options_.max_line_length << "-byte limit\n";
    return true;
  }
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return true;
  const std::string& command = tokens[0];
  const size_t args = tokens.size() - 1;

  if (command == "quit" || command == "exit") {
    if (args != 0) {
      out << "error: " << command << " takes no arguments\n";
      return true;
    }
    return false;
  }
  if (command == "help") {
    out << "commands: open <seed> | assert <s> <c> <0|1> | "
           "soft <s> <c> <0|1> <eps> | snapshot <s> | close <s> | "
           "recover | stats | quit\n";
    return true;
  }
  if (command == "open") {
    uint64_t seed = 0;
    if (args != 1 || !ParseU64(tokens[1], &seed)) {
      out << "error: usage: open <seed> (seed is a non-negative integer)\n";
      return true;
    }
    StatusOr<SessionId> session = service_->OpenSession(tenant_, seed);
    if (session.ok()) {
      out << "session " << session.value() << " open\n";
    } else {
      out << "error: " << session.status().message() << "\n";
    }
    return true;
  }
  if (command == "assert") {
    uint64_t session = 0;
    uint64_t c = 0;
    bool approved = false;
    if (args != 3 || !ParseU64(tokens[1], &session) ||
        !ParseU64(tokens[2], &c) || !ParseBool01(tokens[3], &approved)) {
      out << "error: usage: assert <session> <corr> <0|1>\n";
      return true;
    }
    PrintStatusLine(
        service_->Assert(session, static_cast<CorrespondenceId>(c), approved),
        "ok", out);
    return true;
  }
  if (command == "soft") {
    uint64_t session = 0;
    uint64_t c = 0;
    bool approved = false;
    double eps = 0.0;
    if (args != 4 || !ParseU64(tokens[1], &session) ||
        !ParseU64(tokens[2], &c) || !ParseBool01(tokens[3], &approved) ||
        !ParseDouble(tokens[4], &eps)) {
      out << "error: usage: soft <session> <corr> <0|1> <eps>\n";
      return true;
    }
    PrintStatusLine(service_->AssertSoft(
                        session, static_cast<CorrespondenceId>(c), approved,
                        eps),
                    "ok", out);
    return true;
  }
  if (command == "snapshot") {
    uint64_t session = 0;
    if (args != 1 || !ParseU64(tokens[1], &session)) {
      out << "error: usage: snapshot <session>\n";
      return true;
    }
    StatusOr<SessionSnapshot> snapshot = service_->Snapshot(session);
    if (snapshot.ok()) {
      PrintSnapshot(snapshot.value(), out);
    } else {
      out << "error: " << snapshot.status().message() << "\n";
    }
    return true;
  }
  if (command == "close") {
    uint64_t session = 0;
    if (args != 1 || !ParseU64(tokens[1], &session)) {
      out << "error: usage: close <session>\n";
      return true;
    }
    PrintStatusLine(service_->Close(session), "closed", out);
    return true;
  }
  if (command == "recover") {
    if (args != 0) {
      out << "error: recover takes no arguments\n";
      return true;
    }
    if (options_.journal_dir.empty()) {
      out << "error: no journal directory configured (start smn_server with "
             "a journal dir argument)\n";
      return true;
    }
    StatusOr<RecoveryReport> report = service_->Recover(options_.journal_dir);
    if (!report.ok()) {
      out << "error: " << report.status().message() << "\n";
      return true;
    }
    const RecoveryReport& r = report.value();
    out << "recovered " << r.sessions_recovered << " sessions ("
        << r.asserts_replayed << " asserts, " << r.soft_replayed
        << " soft replayed, " << r.replay_rejected << " rejected) skipped "
        << r.sessions_skipped_closed << " closed, " << r.failed_sessions
        << " failed; " << r.truncated_tails << " torn tails ("
        << r.dropped_bytes << " bytes dropped), " << r.revision_mismatches
        << " revision mismatches\n";
    return true;
  }
  if (command == "stats") {
    if (args != 0) {
      out << "error: stats takes no arguments\n";
      return true;
    }
    const ServerStats stats = service_->stats();
    out << "opened " << stats.sessions_opened << " closed "
        << stats.sessions_closed << " asserts " << stats.asserts << " soft "
        << stats.soft_asserts << " snapshots " << stats.snapshots << " shed "
        << stats.shed_requests << " expired " << stats.expired_requests
        << " live " << service_->session_count() << "\n";
    return true;
  }
  out << "error: unknown command '" << command << "' (try 'help')\n";
  return true;
}

void Repl::Run(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (!HandleLine(line, out)) break;
  }
}

}  // namespace server
}  // namespace smn
