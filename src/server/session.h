#ifndef SMN_SERVER_SESSION_H_
#define SMN_SERVER_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/probabilistic_network.h"
#include "core/reconciler.h"
#include "core/selection_strategy.h"
#include "server/session_journal.h"
#include "server/sharded_network.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace smn {
namespace server {

/// Server-wide session identifier, assigned by the SessionManager.
using SessionId = uint64_t;

/// A consistent point-in-time view of one session's reconciliation state.
/// Every field is copied under the session lock in a single critical
/// section, so the probabilities, the uncertainty, and the counters always
/// describe the same revision — a reader never observes a half-integrated
/// assertion.
struct SessionSnapshot {
  /// The session this snapshot was taken from.
  SessionId session_id = 0;
  /// Hard assertions integrated when the snapshot was taken. Two snapshots
  /// with equal (revision, soft_answer_count) are guaranteed identical.
  uint64_t revision = 0;
  /// Noisy (soft) answers recorded when the snapshot was taken.
  uint64_t soft_answer_count = 0;
  /// The correspondence probabilities P at this revision.
  std::vector<double> probabilities;
  /// The network uncertainty H(C, P) at this revision, in bits.
  double uncertainty = 0.0;
  /// True when the maintained samples provably cover the instance space.
  bool exhausted = false;
};

/// One expert's pay-as-you-go reconciliation session over a shared
/// CompiledArtifact: the per-session mutable state (the ProbabilisticNetwork
/// with its feedback/evidence ledgers and sample caches, plus the session's
/// private RNG) behind one lock.
///
/// Locking: a single per-session Mutex serializes every entry point —
/// writes because ProbabilisticNetwork's mutating calls require exclusive
/// access, reads because Snapshot() must copy probabilities, uncertainty,
/// and counters as one consistent unit. The lock is annotated
/// (SMN_GUARDED_BY), so an unlocked access is a -Wthread-safety compile
/// error. Sessions never lock anything but their own mutex, which makes the
/// server's lock order trivially acyclic (see SessionManager).
///
/// Determinism: the session owns the Rng seeded at Create; the network's
/// initial sample sets and every reconciliation step draw from it exactly
/// like a batch run over the same seed, so a single-session server run is
/// bit-identical to `Reconciler::Run` on a directly constructed network.
class Session {
 public:
  /// Builds the session's network state over `artifact` (drawing the
  /// initial sample sets from a fresh Rng seeded with `seed`) and wraps it.
  /// Fails when the artifact is null or the network build fails.
  ///
  /// `shards` selects the execution engine: 0 runs the monolithic
  /// ProbabilisticNetwork on the caller's thread (the default); K ≥ 1 runs
  /// a ShardedNetwork with K worker shards. Both engines are bitwise
  /// identical for equal (artifact, options, seed) and assert sequences —
  /// snapshots, traces, and gains cannot tell them apart — except that
  /// Reconcile is monolithic-only (Unimplemented on a sharded session).
  static StatusOr<std::unique_ptr<Session>> Create(
      SessionId id, std::shared_ptr<const CompiledArtifact> artifact,
      const ProbabilisticNetworkOptions& options, uint64_t seed,
      size_t shards = 0);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The manager-assigned id (immutable, lock-free).
  SessionId id() const { return id_; }

  /// The seed this session's RNG stream started from (immutable, lock-free).
  uint64_t seed() const { return seed_; }

  /// Makes the session durable: every later Assert/AssertSoft is appended
  /// to `log` BEFORE the engine mutates (write-ahead, under the session
  /// lock, so journal order is apply order), and a journal-append failure
  /// fails the request with the session state untouched. Called once,
  /// before the session is published (OpenSession) or after replay
  /// (recovery — replay itself runs on an unjournaled session, so nothing
  /// is re-logged).
  void AttachJournal(std::unique_ptr<SessionLog> log) SMN_EXCLUDES(mu_);

  /// Clean shutdown of the journal: logs Close (which unlinks the file) and
  /// detaches. Called by explicit Close and idle-TTL eviction — but NOT by
  /// the destructor: a session destroyed without FinishJournal (service
  /// teardown, process death) leaves its journal behind, which is exactly
  /// what marks it for recovery. No-op OK on an unjournaled session.
  Status FinishJournal() SMN_EXCLUDES(mu_);

  /// Integrates one hard expert assertion. Fails (leaving the state
  /// untouched) when `c` contradicts the session's feedback closure.
  Status Assert(CorrespondenceId c, bool approved) SMN_EXCLUDES(mu_);

  /// Records one noisy expert answer under worker error rate `error_rate`
  /// (see ProbabilisticNetwork::AssertSoft).
  Status AssertSoft(CorrespondenceId c, bool approved, double error_rate)
      SMN_EXCLUDES(mu_);

  /// Copies a consistent view of the current state. Fails only on a
  /// degraded sharded session (a shard worker failed earlier).
  StatusOr<SessionSnapshot> Snapshot() const SMN_EXCLUDES(mu_);

  /// Runs Algorithm 1 inside the session until `goal` is met, selecting
  /// with `kind` and eliciting from `oracle` under `policy`. Holds the
  /// session lock for the whole run: concurrent Assert/Snapshot calls
  /// serialize before or after it. FailedPrecondition on a journaled
  /// session: the reconciler drives the network directly, bypassing the
  /// write-ahead path, so its effects would be invisible to recovery.
  StatusOr<ReconcileTrace> Reconcile(StrategyKind kind,
                                     const ReconcileGoal& goal,
                                     AssertionOracle oracle,
                                     const ElicitationPolicy& policy = {})
      SMN_EXCLUDES(mu_);

 private:
  Session(SessionId id, uint64_t seed);

  const SessionId id_;
  const uint64_t seed_;
  mutable Mutex mu_{"session.state", LockRank::kSession};
  /// The session's RNG stream: consumed once by Create (the network split)
  /// and then by reconciliation steps, exactly like a batch run's local Rng.
  Rng rng_ SMN_GUARDED_BY(mu_);
  /// Engaged by Create before the session is published; never nullopt on a
  /// live *monolithic* session (optional only bridges construction order:
  /// the network is built from rng_, which must exist first). Nullopt on a
  /// sharded session.
  std::optional<ProbabilisticNetwork> pmn_ SMN_GUARDED_BY(mu_);
  /// The sharded execution engine; non-null exactly when the session was
  /// created with shards ≥ 1 (then pmn_ is nullopt). The engine serializes
  /// internally, but session calls still hold mu_ — Snapshot's consistency
  /// contract spans soft_answers_ too.
  std::unique_ptr<ShardedNetwork> sharded_ SMN_GUARDED_BY(mu_);
  /// Noisy answers recorded so far (SoftEvidence counts per-correspondence;
  /// this is the session-total the snapshot exposes).
  uint64_t soft_answers_ SMN_GUARDED_BY(mu_) = 0;
  /// The write-ahead journal; null on a non-durable session. Appended to
  /// under mu_ before every engine mutation.
  std::unique_ptr<SessionLog> journal_ SMN_GUARDED_BY(mu_);

  /// The engine's accepted-hard-assert count (the revision stamped into
  /// journal records).
  uint64_t RevisionLocked() const SMN_REQUIRES(mu_);
};

}  // namespace server
}  // namespace smn

#endif  // SMN_SERVER_SESSION_H_
