#ifndef SMN_SERVER_RECONCILE_SERVICE_H_
#define SMN_SERVER_RECONCILE_SERVICE_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>

#include "core/compiled_artifact.h"
#include "server/session_manager.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace smn {
namespace server {

/// Identifies a registered tenant network (one schema-matching network plus
/// its compiled constraints).
using TenantId = uint64_t;

/// Server configuration.
struct ServerOptions {
  /// Per-session network options (sample budgets, incremental mode).
  ProbabilisticNetworkOptions network;
  /// Worker threads of the request queue; 0 means
  /// ThreadPool::DefaultThreadCount().
  size_t worker_threads = 0;
  /// Logical-tick idle TTL for sessions (see SessionManager); 0 = never
  /// expire.
  uint64_t session_idle_ttl = 0;
  /// Worker shards per session: 0 opens monolithic sessions (the default),
  /// K ≥ 1 opens component-sharded sessions with K workers each (see
  /// ShardedNetwork). Bitwise identical results either way; Reconcile is
  /// monolithic-only.
  size_t session_shards = 0;
};

/// Monotonic service counters (copied atomically under the stats lock).
///
/// sessions_opened/sessions_closed count *successful* lifecycle events.
/// asserts/soft_asserts/snapshots are *attempted-request* counts: they
/// increment once the request resolved a live session, whether or not the
/// session operation itself then succeeded (e.g. a contradictory assertion
/// that the session rejects still counts as one assert request).
struct ServerStats {
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  uint64_t asserts = 0;
  uint64_t soft_asserts = 0;
  uint64_t snapshots = 0;
};

/// The in-process reconciliation service: the server-shaped frontend over
/// the artifact/session split.
///
/// A *tenant* is registered once per matching network: RegisterTenant
/// compiles nothing (the caller supplies compiled constraints) but builds
/// the tenant's immutable CompiledArtifact — conflict tables, coupling
/// groups, the empty-feedback closure and partition — exactly once.
/// OpenSession then stamps out per-session mutable state over the shared
/// artifact: N concurrent sessions cost N feedback ledgers and sample
/// caches, never N copies of the compiled tables.
///
/// Request paths: the synchronous calls (Assert, Snapshot, ...) execute on
/// the caller's thread; the Submit* variants enqueue the same operation on
/// the service's ThreadPool — the request queue — and return the future of
/// its result. Both paths resolve the session through the SessionManager
/// and run under the session's own lock, so they interleave safely.
///
/// Lock order (acyclic, enforced by construction): service registry/stats
/// mutexes and the manager mutex are leaves — none is ever held while a
/// session lock is taken, and sessions lock only themselves. Snapshot
/// consistency follows: a snapshot copies all of its fields inside one
/// session critical section.
class ReconcileService {
 public:
  explicit ReconcileService(ServerOptions options = {});

  /// Drains the request queue (ThreadPool joins its workers).
  ~ReconcileService() = default;

  ReconcileService(const ReconcileService&) = delete;
  ReconcileService& operator=(const ReconcileService&) = delete;

  /// Registers a tenant network and builds its shared artifact.
  /// `constraints` must already be compiled against `*network`. The heap
  /// objects are owned by the artifact from here on and live until the last
  /// session over them closes.
  StatusOr<TenantId> RegisterTenant(
      std::string name, std::unique_ptr<const Network> network,
      std::unique_ptr<const ConstraintSet> constraints) SMN_EXCLUDES(mu_);

  /// The shared artifact of a registered tenant (NotFound otherwise).
  /// Exposed so tests can assert that sessions really share one object.
  StatusOr<std::shared_ptr<const CompiledArtifact>> TenantArtifact(
      TenantId tenant) const SMN_EXCLUDES(mu_);

  /// Opens a reconciliation session over `tenant`'s artifact, seeding the
  /// session RNG with `seed`. Equal seeds over equal tenants give
  /// bit-identical sessions.
  StatusOr<SessionId> OpenSession(TenantId tenant, uint64_t seed)
      SMN_EXCLUDES(mu_);

  /// Integrates a hard assertion into the session.
  Status Assert(SessionId session, CorrespondenceId c, bool approved);

  /// Records a noisy answer under worker error rate `error_rate`.
  Status AssertSoft(SessionId session, CorrespondenceId c, bool approved,
                    double error_rate);

  /// Returns a consistent snapshot (marginals, uncertainty, revision).
  StatusOr<SessionSnapshot> Snapshot(SessionId session);

  /// Runs Algorithm 1 inside the session (see Session::Reconcile).
  StatusOr<ReconcileTrace> Reconcile(SessionId session, StrategyKind kind,
                                     const ReconcileGoal& goal,
                                     AssertionOracle oracle,
                                     const ElicitationPolicy& policy = {});

  /// Closes the session; later calls on its id return NotFound.
  Status Close(SessionId session);

  /// Enqueues Assert on the request queue and returns its future.
  std::future<Status> SubmitAssert(SessionId session, CorrespondenceId c,
                                   bool approved);

  /// Enqueues AssertSoft on the request queue.
  std::future<Status> SubmitAssertSoft(SessionId session, CorrespondenceId c,
                                       bool approved, double error_rate);

  /// Enqueues Snapshot on the request queue.
  std::future<StatusOr<SessionSnapshot>> SubmitSnapshot(SessionId session);

  /// Expires idle sessions (see SessionManager::ExpireIdle).
  size_t ExpireIdleSessions() { return sessions_.ExpireIdle(); }

  /// Number of live sessions.
  size_t session_count() const { return sessions_.size(); }

  /// Copies the monotonic request counters.
  ServerStats stats() const SMN_EXCLUDES(stats_mu_);

 private:
  struct Tenant {
    std::string name;
    std::shared_ptr<const CompiledArtifact> artifact;
  };

  ServerOptions options_;
  SessionManager sessions_;
  mutable Mutex mu_;
  std::map<TenantId, Tenant> tenants_ SMN_GUARDED_BY(mu_);
  TenantId next_tenant_ SMN_GUARDED_BY(mu_) = 1;
  mutable Mutex stats_mu_;
  ServerStats stats_ SMN_GUARDED_BY(stats_mu_);
  /// The request queue backing the Submit* calls. Declared last so its
  /// destructor joins the workers while every member a queued request may
  /// touch (sessions_, stats_mu_, ...) is still alive.
  ThreadPool pool_;
};

}  // namespace server
}  // namespace smn

#endif  // SMN_SERVER_RECONCILE_SERVICE_H_
