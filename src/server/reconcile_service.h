#ifndef SMN_SERVER_RECONCILE_SERVICE_H_
#define SMN_SERVER_RECONCILE_SERVICE_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>

#include "core/compiled_artifact.h"
#include "server/session_journal.h"
#include "server/session_manager.h"
#include "util/bounded_queue.h"
#include "util/mutex.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace smn {
namespace server {

/// Identifies a registered tenant network (one schema-matching network plus
/// its compiled constraints).
using TenantId = uint64_t;

/// Server configuration.
struct ServerOptions {
  /// Per-session network options (sample budgets, incremental mode).
  ProbabilisticNetworkOptions network;
  /// Worker threads of the request queue; 0 means
  /// ThreadPool::DefaultThreadCount().
  size_t worker_threads = 0;
  /// Logical-tick idle TTL for sessions (see SessionManager); 0 = never
  /// expire.
  uint64_t session_idle_ttl = 0;
  /// Worker shards per session: 0 opens monolithic sessions (the default),
  /// K ≥ 1 opens component-sharded sessions with K workers each (see
  /// ShardedNetwork). Bitwise identical results either way; Reconcile is
  /// monolithic-only.
  size_t session_shards = 0;
  /// Write-ahead journal directory; empty (the default) disables
  /// durability. When set, every session journals its asserts before
  /// applying them and Recover() can rebuild sessions after a crash. Note
  /// Reconcile() is unavailable on journaled sessions (it bypasses the
  /// write-ahead path).
  std::string journal_dir;
  /// Journal fsync policy: sync after every N appended records; 0 syncs
  /// only at session open/close (see JournalOptions::fsync_every).
  uint64_t journal_fsync_every = 0;
  /// Per-request deadline for the Submit* paths, in milliseconds, measured
  /// from submission to execution start. A request still queued past its
  /// deadline fails with kDeadlineExceeded *without touching the session*.
  /// 0 (the default) disables deadlines.
  double request_deadline_ms = 0.0;
  /// Admission bound for the Submit* paths: at most this many requests
  /// in flight (queued + executing) at once. When the bound is hit, new
  /// submissions are shed immediately with kUnavailable (carrying a
  /// retry-after hint) — callers are never blocked and never silently
  /// dropped. 0 (the default) disables admission control.
  size_t max_queue_depth = 0;
};

/// Monotonic service counters (copied atomically under the stats lock).
///
/// sessions_opened/sessions_closed count *successful* lifecycle events.
/// asserts/soft_asserts/snapshots are *attempted-request* counts: they
/// increment once the request resolved a live session, whether or not the
/// session operation itself then succeeded (e.g. a contradictory assertion
/// that the session rejects still counts as one assert request).
struct ServerStats {
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  uint64_t asserts = 0;
  uint64_t soft_asserts = 0;
  uint64_t snapshots = 0;
  /// Submit* requests refused at admission (kUnavailable) because
  /// max_queue_depth was reached.
  uint64_t shed_requests = 0;
  /// Submit* requests that waited past request_deadline_ms in the queue and
  /// failed with kDeadlineExceeded before touching their session.
  uint64_t expired_requests = 0;
  /// NOT a counter: the current retry-after hint, an EWMA of recent request
  /// execution latency in milliseconds. What a shed caller should wait
  /// before retrying (also embedded in the kUnavailable message).
  double retry_after_ms = 0.0;
};

/// What Recover() did — every count is per-recovery, not cumulative.
struct RecoveryReport {
  /// Sessions rebuilt live from their journals.
  uint64_t sessions_recovered = 0;
  /// Journals whose last record was Close (clean shutdown lost the unlink
  /// race, or the file was copied back); skipped and unlinked.
  uint64_t sessions_skipped_closed = 0;
  /// Hard-assert records replayed (accepted and rejected alike).
  uint64_t asserts_replayed = 0;
  /// Soft-assert records replayed.
  uint64_t soft_replayed = 0;
  /// Replayed assert records the engine rejected — expected to equal the
  /// number of rejections before the crash (rejected requests are journaled
  /// too, and determinism makes them reject identically).
  uint64_t replay_rejected = 0;
  /// Journal files whose tail failed CRC/length validation and was
  /// physically truncated to the last durable record.
  uint64_t truncated_tails = 0;
  /// Total torn/corrupt bytes dropped across all truncated tails.
  uint64_t dropped_bytes = 0;
  /// Journals that could not be recovered at all (undecodable Open record,
  /// unknown tenant, session rebuild failure). Counted and skipped — one
  /// bad journal never aborts the rest of recovery.
  uint64_t failed_sessions = 0;
  /// Replayed records whose revision stamp disagreed with the replay-local
  /// counter (log corruption that passed CRC; the record is still applied).
  uint64_t revision_mismatches = 0;
};

/// The in-process reconciliation service: the server-shaped frontend over
/// the artifact/session split.
///
/// A *tenant* is registered once per matching network: RegisterTenant
/// compiles nothing (the caller supplies compiled constraints) but builds
/// the tenant's immutable CompiledArtifact — conflict tables, coupling
/// groups, the empty-feedback closure and partition — exactly once.
/// OpenSession then stamps out per-session mutable state over the shared
/// artifact: N concurrent sessions cost N feedback ledgers and sample
/// caches, never N copies of the compiled tables.
///
/// Request paths: the synchronous calls (Assert, Snapshot, ...) execute on
/// the caller's thread; the Submit* variants enqueue the same operation on
/// the service's ThreadPool — the request queue — and return the future of
/// its result. Both paths resolve the session through the SessionManager
/// and run under the session's own lock, so they interleave safely.
///
/// Lock order (acyclic, enforced by construction): service registry/stats
/// mutexes and the manager mutex are leaves — none is ever held while a
/// session lock is taken, and sessions lock only themselves. Snapshot
/// consistency follows: a snapshot copies all of its fields inside one
/// session critical section.
class ReconcileService {
 public:
  explicit ReconcileService(ServerOptions options = {});

  /// Drains the request queue (ThreadPool joins its workers).
  ~ReconcileService() = default;

  ReconcileService(const ReconcileService&) = delete;
  ReconcileService& operator=(const ReconcileService&) = delete;

  /// Registers a tenant network and builds its shared artifact.
  /// `constraints` must already be compiled against `*network`. The heap
  /// objects are owned by the artifact from here on and live until the last
  /// session over them closes.
  StatusOr<TenantId> RegisterTenant(
      std::string name, std::unique_ptr<const Network> network,
      std::unique_ptr<const ConstraintSet> constraints) SMN_EXCLUDES(mu_);

  /// The shared artifact of a registered tenant (NotFound otherwise).
  /// Exposed so tests can assert that sessions really share one object.
  StatusOr<std::shared_ptr<const CompiledArtifact>> TenantArtifact(
      TenantId tenant) const SMN_EXCLUDES(mu_);

  /// Opens a reconciliation session over `tenant`'s artifact, seeding the
  /// session RNG with `seed`. Equal seeds over equal tenants give
  /// bit-identical sessions.
  StatusOr<SessionId> OpenSession(TenantId tenant, uint64_t seed)
      SMN_EXCLUDES(mu_);

  /// Integrates a hard assertion into the session.
  Status Assert(SessionId session, CorrespondenceId c, bool approved);

  /// Records a noisy answer under worker error rate `error_rate`.
  Status AssertSoft(SessionId session, CorrespondenceId c, bool approved,
                    double error_rate);

  /// Returns a consistent snapshot (marginals, uncertainty, revision).
  StatusOr<SessionSnapshot> Snapshot(SessionId session);

  /// Runs Algorithm 1 inside the session (see Session::Reconcile).
  StatusOr<ReconcileTrace> Reconcile(SessionId session, StrategyKind kind,
                                     const ReconcileGoal& goal,
                                     AssertionOracle oracle,
                                     const ElicitationPolicy& policy = {});

  /// Closes the session; later calls on its id return NotFound. A clean
  /// close finishes the session's journal (Close record, file unlinked), so
  /// a closed session is never resurrected by Recover().
  Status Close(SessionId session);

  /// Rebuilds sessions from the write-ahead journals in `journal_dir`
  /// (normally options_.journal_dir, after constructing a fresh service and
  /// re-registering the tenants — tenant ids are allocated deterministically,
  /// so an identical registration order reproduces them). Per journal file:
  /// a torn/corrupt tail is truncated to the last durable record (counted,
  /// never fatal); a trailing Close record means the session closed cleanly
  /// (file unlinked, session skipped); otherwise the session is rebuilt from
  /// its Open record and its assert records are replayed through the
  /// deterministic engine, yielding a session bitwise identical to the
  /// pre-crash one, then its journal is reattached in append mode.
  StatusOr<RecoveryReport> Recover(const std::string& journal_dir)
      SMN_EXCLUDES(mu_);

  /// Enqueues Assert on the request queue and returns its future. All
  /// Submit* paths pass admission control (shed with kUnavailable when the
  /// in-flight bound is hit) and carry the per-request deadline (see
  /// ServerOptions).
  std::future<Status> SubmitAssert(SessionId session, CorrespondenceId c,
                                   bool approved);

  /// Enqueues AssertSoft on the request queue.
  std::future<Status> SubmitAssertSoft(SessionId session, CorrespondenceId c,
                                       bool approved, double error_rate);

  /// Enqueues Snapshot on the request queue.
  std::future<StatusOr<SessionSnapshot>> SubmitSnapshot(SessionId session);

  /// Expires idle sessions (see SessionManager::ExpireIdle).
  size_t ExpireIdleSessions() { return sessions_.ExpireIdle(); }

  /// Number of live sessions.
  size_t session_count() const { return sessions_.size(); }

  /// Copies the monotonic request counters.
  ServerStats stats() const SMN_EXCLUDES(stats_mu_);

 private:
  struct Tenant {
    std::string name;
    std::shared_ptr<const CompiledArtifact> artifact;
  };

  /// The journal configuration derived from options_ (empty dir = off).
  JournalOptions journal_options() const {
    return JournalOptions{options_.journal_dir, options_.journal_fsync_every};
  }

  /// Recovers one journal file, accumulating into `report`. Failures are
  /// folded into report->failed_sessions by the caller.
  Status RecoverOne(const std::string& journal_dir, uint64_t session_id,
                    RecoveryReport* report);

  /// The current retry-after hint (EWMA of execution latency).
  double RetryAfterHintMs() const SMN_EXCLUDES(stats_mu_);

  /// Folds one observed execution latency into the EWMA.
  void RecordExecLatency(double exec_ms) SMN_EXCLUDES(stats_mu_);

  /// The shared Submit* shape: admission (shed with kUnavailable when the
  /// in-flight bound is full), then enqueue, then — at execution start — the
  /// deadline check (kDeadlineExceeded without touching the session) before
  /// running `fn`. R is Status or StatusOr<...>; both construct from Status,
  /// which is what lets shed/expired requests resolve to a plain error.
  template <typename R, typename Fn>
  std::future<R> SubmitRequest(Fn fn) {
    if (admission_ != nullptr && !admission_->TryPush('r')) {
      {
        MutexLock lock(stats_mu_);
        ++stats_.shed_requests;
      }
      std::promise<R> shed;
      shed.set_value(R(Status::Unavailable(
          "request shed: server at max_queue_depth (" +
          std::to_string(options_.max_queue_depth) + " in flight); retry in ~" +
          std::to_string(RetryAfterHintMs()) + " ms")));
      return shed.get_future();
    }
    const Stopwatch queued;
    return pool_.Submit([this, fn = std::move(fn), queued]() -> R {
      R result = [&]() -> R {
        if (options_.request_deadline_ms > 0.0 &&
            queued.ElapsedMillis() > options_.request_deadline_ms) {
          MutexLock lock(stats_mu_);
          ++stats_.expired_requests;
          return R(Status::DeadlineExceeded(
              "request waited " + std::to_string(queued.ElapsedMillis()) +
              " ms in queue, past its " +
              std::to_string(options_.request_deadline_ms) + " ms deadline"));
        }
        const Stopwatch exec;
        R value = fn();
        RecordExecLatency(exec.ElapsedMillis());
        return value;
      }();
      if (admission_ != nullptr) {
        char token = 0;
        admission_->Pop(&token);  // Our own token: the queue is never empty.
      }
      return result;
    });
  }

  ServerOptions options_;
  SessionManager sessions_;
  mutable Mutex mu_{"service.tenants", LockRank::kServiceRegistry};
  std::map<TenantId, Tenant> tenants_ SMN_GUARDED_BY(mu_);
  TenantId next_tenant_ SMN_GUARDED_BY(mu_) = 1;
  mutable Mutex stats_mu_{"service.stats", LockRank::kServiceStats};
  ServerStats stats_ SMN_GUARDED_BY(stats_mu_);
  /// EWMA (0.9 old / 0.1 new) of Submit* execution latency, the basis of
  /// the retry-after hint.
  double ewma_exec_ms_ SMN_GUARDED_BY(stats_mu_) = 0.0;
  /// Admission token bucket for the Submit* paths (null = no bound): one
  /// token TryPushed per accepted request, popped at completion. TryPush
  /// failing IS the shed signal — callers never block on admission.
  std::unique_ptr<BoundedQueue<char>> admission_;
  /// The request queue backing the Submit* calls. Declared last so its
  /// destructor joins the workers while every member a queued request may
  /// touch (sessions_, stats_mu_, admission_, ...) is still alive.
  ThreadPool pool_;
};

}  // namespace server
}  // namespace smn

#endif  // SMN_SERVER_RECONCILE_SERVICE_H_
