#ifndef SMN_SERVER_SESSION_JOURNAL_H_
#define SMN_SERVER_SESSION_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"
#include "util/record_codec.h"
#include "util/statusor.h"

namespace smn {
namespace server {

/// Per-session write-ahead journal: the durability layer behind
/// ReconcileService's `journal_dir` option and its crash-recovery path.
///
/// One journal file per session (`session-<zero-padded-id>.wal` under the
/// journal directory), written through the sanctioned record codec
/// (util/record_codec.h: length + CRC32 framing, torn tails detectable).
/// The first record is always Open (session id, tenant id, seed, shards —
/// everything Session::Create needs to rebuild the exact same initial
/// state); each accepted *or rejected* Assert/AssertSoft request is
/// appended BEFORE the engine mutates, so replaying the log through the
/// deterministic engine reproduces the pre-crash session bit for bit
/// (rejected requests reject identically on replay — they are kept in the
/// log precisely so arrival ordinals line up). A Close record marks a clean
/// shutdown; its file is unlinked, so a journal file that still exists
/// names a session to recover.
///
/// Threading: a SessionLog belongs to one Session and is only called under
/// that session's mutex, which is what makes journal order equal engine
/// apply order.

/// The tag byte of a journal record payload.
enum class JournalRecordKind : uint32_t {
  kOpen = 1,
  kAssert = 2,
  kAssertSoft = 3,
  kClose = 4,
};

/// One decoded journal record (union-style: the kind selects which fields
/// are meaningful).
struct JournalRecord {
  JournalRecordKind kind = JournalRecordKind::kOpen;

  // kOpen
  uint64_t session_id = 0;
  uint64_t tenant_id = 0;
  uint64_t seed = 0;
  uint64_t shards = 0;

  // kAssert / kAssertSoft
  CorrespondenceId correspondence = 0;
  bool approved = false;
  /// kAssertSoft only: the worker error rate of the noisy answer.
  double error_rate = 0.0;
  /// Revision stamp taken at journaling time, before the engine call: the
  /// number of *accepted* hard asserts (kAssert) or recorded soft answers
  /// (kAssertSoft) so far. Recovery cross-checks it against a replay-local
  /// counter to catch log corruption that still passes CRC.
  uint64_t stamp = 0;
};

std::string EncodeOpenRecord(uint64_t session_id, uint64_t tenant_id,
                             uint64_t seed, uint64_t shards);
std::string EncodeAssertRecord(CorrespondenceId c, bool approved,
                               uint64_t revision);
std::string EncodeAssertSoftRecord(CorrespondenceId c, bool approved,
                                   double error_rate, uint64_t soft_count);
std::string EncodeCloseRecord();

/// Decodes one record payload. Fails with DataLoss on an unknown kind or a
/// payload that is too short / has trailing bytes (CRC passed but the
/// content is not a record this codec wrote).
StatusOr<JournalRecord> DecodeJournalRecord(std::string_view payload);

/// Journal configuration, shared by every session of one service.
struct JournalOptions {
  /// Directory holding one `.wal` file per live session. Must be non-empty
  /// to construct a SessionLog; created on first use.
  std::string dir;
  /// fsync policy: sync the file after every N appended records. 0 syncs
  /// only at Open and Close — cheapest, still crash-consistent against
  /// *process* death (writes are unbuffered write(2)), but an OS crash can
  /// lose the un-synced tail. 1 is classic WAL durability.
  uint64_t fsync_every = 0;
};

/// `dir`/session-<id zero-padded to 12>.wal — fixed width so the directory
/// listing sorts in session-id order.
std::string JournalFilePath(const std::string& dir, uint64_t session_id);

/// Session ids of every journal file under `dir`, sorted ascending. Files
/// not matching the naming scheme are ignored. An empty list (or NotFound
/// from a missing dir) means nothing to recover.
StatusOr<std::vector<uint64_t>> ListJournalSessions(const std::string& dir);

/// The append handle a live session writes through. Move via unique_ptr;
/// all methods are called under the owning session's mutex.
class SessionLog {
 public:
  /// Starts a fresh journal for a newly opened session: ensures the
  /// directory, truncates any stale file for this id, appends the Open
  /// record, and syncs it (a session the caller was told exists must be
  /// recoverable from its very first record).
  static StatusOr<std::unique_ptr<SessionLog>> Create(
      const JournalOptions& options, uint64_t session_id, uint64_t tenant_id,
      uint64_t seed, uint64_t shards);

  /// Reopens an existing journal in append mode after recovery replayed it.
  /// Writes nothing.
  static StatusOr<std::unique_ptr<SessionLog>> Reattach(
      const JournalOptions& options, uint64_t session_id);

  SessionLog(const SessionLog&) = delete;
  SessionLog& operator=(const SessionLog&) = delete;

  /// Appends a hard-assert record (see JournalRecord::stamp), then applies
  /// the fsync policy.
  Status LogAssert(CorrespondenceId c, bool approved, uint64_t revision);

  /// Appends a soft-assert record, then applies the fsync policy.
  Status LogAssertSoft(CorrespondenceId c, bool approved, double error_rate,
                       uint64_t soft_count);

  /// Clean shutdown: appends the Close record, syncs, and unlinks the file
  /// — a closed session needs no recovery, so its journal disappears.
  Status LogClose();

  /// The journal file this log appends to.
  const std::string& path() const { return path_; }

 private:
  SessionLog(const JournalOptions& options, std::string path);

  /// Applies the fsync policy after one appended record.
  Status MaybeSync();

  const JournalOptions options_;
  const std::string path_;
  /// Engaged until LogClose; appends after close fail FailedPrecondition.
  std::optional<RecordWriter> writer_;
  uint64_t appends_since_sync_ = 0;
};

}  // namespace server
}  // namespace smn

#endif  // SMN_SERVER_SESSION_JOURNAL_H_
