// smn_server: in-process reconciliation service with a line-oriented request
// loop on stdin — the server-shaped frontend over the artifact/session split
// (no sockets; pipe a script in or drive it interactively).
//
// Commands:
//   open <seed>                       open a session over the demo tenant
//   assert <session> <corr> <0|1>     integrate a hard assertion
//   soft <session> <corr> <0|1> <eps> record a noisy answer (error rate eps)
//   snapshot <session>                print revision, H(C,P), marginals
//   close <session>                   close the session
//   stats                             print service counters
//   quit                              exit
//
// The demo tenant is a clustered synthetic network (see
// bench/synthetic_networks.h); sessions opened with equal seeds are
// bit-identical, matching a batch ProbabilisticNetwork run over the same
// seed.

#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/synthetic_networks.h"
#include "server/reconcile_service.h"
#include "util/string_util.h"

namespace smn {
namespace server {
namespace {

void PrintSnapshot(const SessionSnapshot& snapshot) {
  std::cout << "session " << snapshot.session_id << " revision "
            << snapshot.revision << " soft " << snapshot.soft_answer_count
            << " uncertainty " << FormatDouble(snapshot.uncertainty, 4)
            << (snapshot.exhausted ? " (exhausted)" : "") << "\n";
  std::cout << "  p = [";
  for (size_t i = 0; i < snapshot.probabilities.size(); ++i) {
    if (i > 0) std::cout << ", ";
    std::cout << FormatDouble(snapshot.probabilities[i], 3);
  }
  std::cout << "]\n";
}

int RunServer() {
  ReconcileService service;

  // Demo tenant: a clustered synthetic network moved onto the heap and
  // handed to the service, which owns it through the tenant artifact.
  bench::SyntheticNetwork built = bench::BuildClusteredNetwork(
      /*clusters=*/3, /*candidates_per_cluster=*/6, /*seed=*/7);
  auto network = std::make_unique<Network>(std::move(built.network));
  auto constraints =
      std::make_unique<ConstraintSet>(std::move(built.constraints));
  StatusOr<TenantId> tenant = service.RegisterTenant(
      "demo", std::move(network), std::move(constraints));
  if (!tenant.ok()) {
    std::cerr << "failed to register demo tenant: "
              << tenant.status().message() << "\n";
    return 1;
  }
  std::cout << "smn_server ready; demo tenant " << tenant.value() << " ("
            << service.TenantArtifact(tenant.value())
                   .value()
                   ->network()
                   .correspondence_count()
            << " candidate correspondences). Type 'help' for commands.\n";

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command)) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      std::cout << "commands: open <seed> | assert <s> <c> <0|1> | "
                   "soft <s> <c> <0|1> <eps> | snapshot <s> | close <s> | "
                   "stats | quit\n";
    } else if (command == "open") {
      uint64_t seed = 0;
      in >> seed;
      StatusOr<SessionId> session = service.OpenSession(tenant.value(), seed);
      if (session.ok()) {
        std::cout << "session " << session.value() << " open\n";
      } else {
        std::cout << "error: " << session.status().message() << "\n";
      }
    } else if (command == "assert") {
      SessionId session = 0;
      CorrespondenceId c = 0;
      int approved = 0;
      in >> session >> c >> approved;
      const Status status = service.Assert(session, c, approved != 0);
      std::cout << (status.ok() ? std::string("ok")
                                : "error: " + std::string(status.message()))
                << "\n";
    } else if (command == "soft") {
      SessionId session = 0;
      CorrespondenceId c = 0;
      int approved = 0;
      double eps = 0.0;
      in >> session >> c >> approved >> eps;
      const Status status =
          service.AssertSoft(session, c, approved != 0, eps);
      std::cout << (status.ok() ? std::string("ok")
                                : "error: " + std::string(status.message()))
                << "\n";
    } else if (command == "snapshot") {
      SessionId session = 0;
      in >> session;
      StatusOr<SessionSnapshot> snapshot = service.Snapshot(session);
      if (snapshot.ok()) {
        PrintSnapshot(snapshot.value());
      } else {
        std::cout << "error: " << snapshot.status().message() << "\n";
      }
    } else if (command == "close") {
      SessionId session = 0;
      in >> session;
      const Status status = service.Close(session);
      std::cout << (status.ok() ? std::string("closed")
                                : "error: " + std::string(status.message()))
                << "\n";
    } else if (command == "stats") {
      const ServerStats stats = service.stats();
      std::cout << "opened " << stats.sessions_opened << " closed "
                << stats.sessions_closed << " asserts " << stats.asserts
                << " soft " << stats.soft_asserts << " snapshots "
                << stats.snapshots << " live " << service.session_count()
                << "\n";
    } else {
      std::cout << "unknown command '" << command << "' (try 'help')\n";
    }
  }
  return 0;
}

}  // namespace
}  // namespace server
}  // namespace smn

int main() { return smn::server::RunServer(); }
