// smn_server: in-process reconciliation service with a line-oriented request
// loop on stdin — the server-shaped frontend over the artifact/session split
// (no sockets; pipe a script in or drive it interactively). The command
// loop itself lives in server/repl.h; this translation unit only assembles
// the demo service around it.
//
// Usage: smn_server [journal_dir]
//
// With a journal_dir, sessions are durable: every assert is write-ahead
// journaled, and the `recover` command (or a fresh smn_server on the same
// directory) rebuilds the sessions a crashed process left behind.
//
// The demo tenant is a clustered synthetic network (see
// bench/synthetic_networks.h); sessions opened with equal seeds are
// bit-identical, matching a batch ProbabilisticNetwork run over the same
// seed.

#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include "bench/synthetic_networks.h"
#include "server/reconcile_service.h"
#include "server/repl.h"

namespace smn {
namespace server {
namespace {

int RunServer(const std::string& journal_dir) {
  ServerOptions options;
  options.journal_dir = journal_dir;
  ReconcileService service(options);

  // Demo tenant: a clustered synthetic network moved onto the heap and
  // handed to the service, which owns it through the tenant artifact.
  bench::SyntheticNetwork built = bench::BuildClusteredNetwork(
      /*clusters=*/3, /*candidates_per_cluster=*/6, /*seed=*/7);
  auto network = std::make_unique<Network>(std::move(built.network));
  auto constraints =
      std::make_unique<ConstraintSet>(std::move(built.constraints));
  StatusOr<TenantId> tenant = service.RegisterTenant(
      "demo", std::move(network), std::move(constraints));
  if (!tenant.ok()) {
    std::cerr << "failed to register demo tenant: "
              << tenant.status().message() << "\n";
    return 1;
  }
  std::cout << "smn_server ready; demo tenant " << tenant.value() << " ("
            << service.TenantArtifact(tenant.value())
                   .value()
                   ->network()
                   .correspondence_count()
            << " candidate correspondences"
            << (journal_dir.empty() ? std::string()
                                    : ", journaling to " + journal_dir)
            << "). Type 'help' for commands.\n";

  ReplOptions repl_options;
  repl_options.journal_dir = journal_dir;
  Repl repl(&service, tenant.value(), std::move(repl_options));
  repl.Run(std::cin, std::cout);
  return 0;
}

}  // namespace
}  // namespace server
}  // namespace smn

int main(int argc, char** argv) {
  if (argc > 2) {
    std::cerr << "usage: smn_server [journal_dir]\n";
    return 2;
  }
  return smn::server::RunServer(argc == 2 ? argv[1] : std::string());
}
