#ifndef SMN_SIM_EXPERIMENT_H_
#define SMN_SIM_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/constraint_set.h"
#include "core/instantiation.h"
#include "core/network.h"
#include "core/probabilistic_network.h"
#include "core/reconciler.h"
#include "core/selection_strategy.h"
#include "datasets/generator.h"
#include "matchers/matching_system.h"
#include "sim/metrics.h"
#include "util/statusor.h"

namespace smn {

/// Which matcher stand-in generates the candidate set.
enum class MatcherKind { kComaLike, kAmcLike };

/// Everything one end-to-end experiment needs: the generated dataset, the
/// assembled network with its candidate set C, the compiled constraints
/// (one-to-one + cycle), and the ground truth for the oracle and scoring.
struct ExperimentSetup {
  std::string dataset_name;
  std::string matcher_name;
  GeneratedDataset dataset;
  InteractionGraph graph;
  Network network;
  ConstraintSet constraints;
  /// Over C: which candidates belong to the selective matching M.
  DynamicBitset truth_candidates;
  /// Over C: the constraint-consistent core of `truth_candidates` that the
  /// simulated expert approves. The paper defines the selective matching as
  /// correct AND constraint-satisfying; when the matcher misses the closing
  /// correspondence of a triangle, the two surviving sides of the chain are
  /// individually correct but jointly violate the cycle constraint, so the
  /// expert (who must leave a consistent F+) can approve only a repaired
  /// subset of them. Scoring still uses the full `truth_candidates`.
  DynamicBitset oracle_truth;
  /// |M| restricted to the interaction graph (including pairs the matcher
  /// missed), the honest recall denominator.
  size_t truth_total = 0;
};

/// Generates a dataset, runs the chosen matcher over the complete
/// interaction graph, assembles the network, and compiles the constraints —
/// the shared preamble of every experiment in Section VI.
StatusOr<ExperimentSetup> BuildExperimentSetup(const DatasetConfig& config,
                                               const Vocabulary& vocabulary,
                                               MatcherKind matcher, Rng* rng);

/// Same, over a caller-provided interaction graph (Fig. 6 uses Erdős–Rényi).
StatusOr<ExperimentSetup> BuildExperimentSetupWithGraph(
    const DatasetConfig& config, const Vocabulary& vocabulary,
    MatcherKind matcher, InteractionGraph graph, Rng* rng);

/// One averaged point of a reconciliation curve.
struct CurvePoint {
  double effort = 0.0;                // E = elicitations / |C| at checkpoint.
  double uncertainty = 0.0;           // H(C, P).
  double precision_remaining = 0.0;   // Prec(C \ F-), Fig. 9's quality axis.
  double instantiation_precision = 0.0;  // Prec(H), Figs. 10/11.
  double instantiation_recall = 0.0;     // Rec(H).
  double instantiation_f1 = 0.0;         // F1(H), the noisy-bench axis.
  double rejected_assertions = 0.0;   // Closure-rejected decisions so far.
};

/// Parameters of a reconciliation-curve experiment.
struct CurveOptions {
  StrategyKind strategy = StrategyKind::kInformationGain;
  /// Effort levels (fractions of |C|, in elicitations) at which statistics
  /// are recorded.
  std::vector<double> checkpoints;
  /// Independent runs to average over (the paper uses 50 for Fig. 9).
  size_t runs = 10;
  /// Run Algorithm 2 at every checkpoint and record Prec(H)/Rec(H)/F1(H).
  bool instantiate = false;
  ProbabilisticNetworkOptions network_options;
  InstantiationOptions instantiation_options;
  /// Simulated-expert noise (extension beyond the paper): per-worker error
  /// rates of the oracle panel answering the questions. Empty = the paper's
  /// single perfect expert (and a bit-identical code path to it).
  std::vector<double> worker_error_rates;
  /// How the reconciler elicits and integrates answers. The default is the
  /// paper's single-question hard-assert loop; pair a noisy panel with a
  /// matching error_rate model and majority-of-k to reconcile robustly.
  ElicitationPolicy policy;
  uint64_t seed = 1;
};

/// Runs the reconciliation process `runs` times with the given selection
/// strategy against the ground-truth oracle (or noisy oracle panel),
/// recording the curve metrics at each effort checkpoint and averaging
/// across runs. This is the engine behind Figs. 9, 10 and 11 and the
/// noisy-reconciliation bench. Runs never abort on closure-rejected noisy
/// answers; rejections are averaged into CurvePoint::rejected_assertions.
StatusOr<std::vector<CurvePoint>> RunReconciliationCurve(
    const ExperimentSetup& setup, const CurveOptions& options);

/// Candidate-set quality of the raw matcher output (the paper quotes ≈0.67
/// precision for BP).
PrecisionRecall ScoreCandidates(const ExperimentSetup& setup);

}  // namespace smn

#endif  // SMN_SIM_EXPERIMENT_H_
