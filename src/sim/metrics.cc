#include "sim/metrics.h"

#include <algorithm>
#include <cmath>

namespace smn {

PrecisionRecall ScoreSelection(const DynamicBitset& selection,
                               const DynamicBitset& truth_in_candidates,
                               size_t truth_total) {
  PrecisionRecall result;
  const size_t selected = selection.Count();
  const size_t correct = selection.IntersectionCount(truth_in_candidates);
  result.precision = selected == 0 ? 0.0
                                   : static_cast<double>(correct) /
                                         static_cast<double>(selected);
  result.recall = truth_total == 0 ? 0.0
                                   : static_cast<double>(correct) /
                                         static_cast<double>(truth_total);
  const double denominator = result.precision + result.recall;
  result.f1 =
      denominator == 0.0 ? 0.0 : 2.0 * result.precision * result.recall / denominator;
  return result;
}

double KlDivergence(const std::vector<double>& p, const std::vector<double>& q) {
  constexpr double kFloor = 1e-9;
  double total = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i];
    const double qi =
        std::clamp(i < q.size() ? q[i] : 0.0, kFloor, 1.0 - kFloor);
    if (pi > 0.0) total += pi * std::log2(pi / qi);
    if (pi < 1.0) total += (1.0 - pi) * std::log2((1.0 - pi) / (1.0 - qi));
  }
  return total;
}

double KlRatio(const std::vector<double>& exact,
               const std::vector<double>& sampled) {
  const std::vector<double> uniform(exact.size(), 0.5);
  const double baseline = KlDivergence(exact, uniform);
  if (baseline <= 0.0) return 0.0;  // Exact distribution is the baseline.
  return KlDivergence(exact, sampled) / baseline;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

}  // namespace smn
