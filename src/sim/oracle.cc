#include "sim/oracle.h"

namespace smn {

Oracle::Oracle(DynamicBitset truth, double error_rate, uint64_t seed)
    : truth_(std::move(truth)), error_rate_(error_rate), rng_(seed) {}

bool Oracle::Assert(CorrespondenceId c) {
  ++assertion_count_;
  const bool correct = truth_.Test(c);
  if (error_rate_ > 0.0 && rng_.Bernoulli(error_rate_)) return !correct;
  return correct;
}

AssertionOracle Oracle::AsCallback() {
  return [this](CorrespondenceId c) { return Assert(c); };
}

}  // namespace smn
