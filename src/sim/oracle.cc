#include "sim/oracle.h"

namespace smn {

Oracle::Oracle(DynamicBitset truth, double error_rate, uint64_t seed)
    : truth_(std::move(truth)), error_rate_(error_rate), rng_(seed) {}

bool Oracle::Assert(CorrespondenceId c) {
  ++assertion_count_;
  const bool correct = truth_.Test(c);
  if (error_rate_ > 0.0 && rng_.Bernoulli(error_rate_)) return !correct;
  return correct;
}

AssertionOracle Oracle::AsCallback() {
  return [this](CorrespondenceId c) { return Assert(c); };
}

OraclePanel::OraclePanel(DynamicBitset truth, std::vector<double> error_rates,
                         uint64_t seed)
    : truth_(std::move(truth)), error_rates_(std::move(error_rates)) {
  // Degenerate empty panel: behave as a single perfect worker rather than
  // dividing by a zero worker count in the round-robin.
  if (error_rates_.empty()) error_rates_.push_back(0.0);
  const Rng base(seed);
  rngs_.reserve(error_rates_.size());
  for (size_t w = 0; w < error_rates_.size(); ++w) {
    rngs_.push_back(base.Fork(w));
  }
}

bool OraclePanel::Assert(CorrespondenceId c) {
  const size_t worker = next_worker_;
  next_worker_ = (next_worker_ + 1) % error_rates_.size();
  ++assertion_count_;
  const bool correct = truth_.Test(c);
  if (error_rates_[worker] > 0.0 && rngs_[worker].Bernoulli(error_rates_[worker])) {
    return !correct;
  }
  return correct;
}

AssertionOracle OraclePanel::AsCallback() {
  return [this](CorrespondenceId c) { return Assert(c); };
}

double OraclePanel::MeanErrorRate() const {
  if (error_rates_.empty()) return 0.0;
  double total = 0.0;
  for (double rate : error_rates_) total += rate;
  return total / static_cast<double>(error_rates_.size());
}

}  // namespace smn
