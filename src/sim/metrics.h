#ifndef SMN_SIM_METRICS_H_
#define SMN_SIM_METRICS_H_

#include <cstddef>
#include <vector>

#include "util/dynamic_bitset.h"

namespace smn {

/// Matching quality against the ground truth M (Section VI-A).
struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Scores a selection V ⊆ C against the ground truth. `truth_in_candidates`
/// marks the candidates that belong to M; `truth_total` is |M| including the
/// correct pairs the matcher never proposed (so recall has the honest
/// denominator).
PrecisionRecall ScoreSelection(const DynamicBitset& selection,
                               const DynamicBitset& truth_in_candidates,
                               size_t truth_total);

/// K-L divergence between two correspondence probability assignments,
/// summed over the per-correspondence Bernoulli variables:
///   Σ_c [ p log2(p/q) + (1-p) log2((1-p)/(1-q)) ].
/// Equation 6 of the paper prints only the first term, which is not a
/// divergence over marginals (it can go negative because Σ p_c ≠ 1); the
/// Bernoulli form is the standard correction and is non-negative, zero iff
/// the assignments agree. q is clamped to [1e-9, 1-1e-9].
double KlDivergence(const std::vector<double>& p, const std::vector<double>& q);

/// The paper's normalized sampling-quality measure:
/// KLratio = D_KL(P‖Q) / D_KL(P‖U) where U is the maximum-entropy baseline
/// u_c = 0.5. Near 0 means Q captures the exact distribution; near 1 means
/// sampling is no better than knowing nothing.
double KlRatio(const std::vector<double>& exact,
               const std::vector<double>& sampled);

/// Mean of `values`; 0 for an empty vector.
double Mean(const std::vector<double>& values);

}  // namespace smn

#endif  // SMN_SIM_METRICS_H_
