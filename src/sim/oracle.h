#ifndef SMN_SIM_ORACLE_H_
#define SMN_SIM_ORACLE_H_

#include <vector>

#include "core/reconciler.h"
#include "core/types.h"
#include "util/dynamic_bitset.h"
#include "util/rng.h"

namespace smn {

/// Simulated expert: answers assertion requests from the ground-truth
/// selective matching, exactly as the paper's experiments do ("user
/// assertions are generated using the available selective matching").
/// An optional error rate flips answers uniformly at random, for robustness
/// ablations beyond the paper (the paper assumes a perfect expert).
class Oracle {
 public:
  /// `truth` marks, over the candidate set C, which candidates belong to M.
  explicit Oracle(DynamicBitset truth, double error_rate = 0.0,
                  uint64_t seed = 0x5EED);

  /// True = approve. Deterministic when error_rate is 0.
  bool Assert(CorrespondenceId c);

  /// Adapts this oracle to the Reconciler's callback type. The oracle must
  /// outlive the returned callable.
  AssertionOracle AsCallback();

  size_t assertion_count() const { return assertion_count_; }

 private:
  DynamicBitset truth_;
  double error_rate_;
  Rng rng_;
  size_t assertion_count_ = 0;
};

/// A panel of independent simulated workers with heterogeneous error rates —
/// the crowd-of-fallible-experts counterpart of Oracle. Worker w answers
/// from the shared ground truth, flipping with its own error_rates[w];
/// elicitations are assigned round-robin in call order, so a majority-of-k
/// panel on one correspondence hears k distinct workers whenever
/// k ≤ worker_count(). Each worker draws from its own pure Fork stream:
/// results are deterministic per seed and independent of which
/// correspondences the questions target.
class OraclePanel {
 public:
  /// `truth` marks, over the candidate set C, which candidates belong to M.
  /// `error_rates` must be non-empty; one worker per entry.
  OraclePanel(DynamicBitset truth, std::vector<double> error_rates,
              uint64_t seed = 0x5EED);

  /// Answer of the next round-robin worker. True = approve.
  bool Assert(CorrespondenceId c);

  /// Adapts this panel to the Reconciler's callback type. The panel must
  /// outlive the returned callable.
  AssertionOracle AsCallback();

  /// Total answers elicited from the panel so far.
  size_t assertion_count() const { return assertion_count_; }

  /// Number of workers.
  size_t worker_count() const { return error_rates_.size(); }

  /// Per-worker error rates, in worker order.
  const std::vector<double>& error_rates() const { return error_rates_; }

  /// Mean worker error rate — the single-ε evidence model to feed an
  /// ElicitationPolicy when the panel is heterogeneous.
  double MeanErrorRate() const;

 private:
  DynamicBitset truth_;
  std::vector<double> error_rates_;
  std::vector<Rng> rngs_;
  size_t next_worker_ = 0;
  size_t assertion_count_ = 0;
};

}  // namespace smn

#endif  // SMN_SIM_ORACLE_H_
