#ifndef SMN_SIM_ORACLE_H_
#define SMN_SIM_ORACLE_H_

#include "core/reconciler.h"
#include "core/types.h"
#include "util/dynamic_bitset.h"
#include "util/rng.h"

namespace smn {

/// Simulated expert: answers assertion requests from the ground-truth
/// selective matching, exactly as the paper's experiments do ("user
/// assertions are generated using the available selective matching").
/// An optional error rate flips answers uniformly at random, for robustness
/// ablations beyond the paper (the paper assumes a perfect expert).
class Oracle {
 public:
  /// `truth` marks, over the candidate set C, which candidates belong to M.
  explicit Oracle(DynamicBitset truth, double error_rate = 0.0,
                  uint64_t seed = 0x5EED);

  /// True = approve. Deterministic when error_rate is 0.
  bool Assert(CorrespondenceId c);

  /// Adapts this oracle to the Reconciler's callback type. The oracle must
  /// outlive the returned callable.
  AssertionOracle AsCallback();

  size_t assertion_count() const { return assertion_count_; }

 private:
  DynamicBitset truth_;
  double error_rate_;
  Rng rng_;
  size_t assertion_count_ = 0;
};

}  // namespace smn

#endif  // SMN_SIM_ORACLE_H_
