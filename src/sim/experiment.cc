#include "sim/experiment.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "constraints/cycle.h"
#include "constraints/one_to_one.h"
#include "core/repair.h"
#include "datasets/random_graph.h"
#include "matchers/amc_like.h"
#include "matchers/coma_like.h"
#include "sim/oracle.h"

namespace smn {
namespace {

MatchingSystem MakeSystem(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kComaLike:
      return MakeComaLikeSystem();
    case MatcherKind::kAmcLike:
      return MakeAmcLikeSystem();
  }
  return MakeComaLikeSystem();
}

}  // namespace

StatusOr<ExperimentSetup> BuildExperimentSetup(const DatasetConfig& config,
                                               const Vocabulary& vocabulary,
                                               MatcherKind matcher, Rng* rng) {
  return BuildExperimentSetupWithGraph(config, vocabulary, matcher,
                                       CompleteGraph(config.schema_count), rng);
}

StatusOr<ExperimentSetup> BuildExperimentSetupWithGraph(
    const DatasetConfig& config, const Vocabulary& vocabulary,
    MatcherKind matcher, InteractionGraph graph, Rng* rng) {
  SMN_ASSIGN_OR_RETURN(GeneratedDataset dataset,
                       GenerateDataset(config, vocabulary, rng));
  const MatchingSystem system = MakeSystem(matcher);
  const std::vector<SchemaPairCandidates> candidates =
      system.Run(dataset.schemas, graph);
  SMN_ASSIGN_OR_RETURN(Network network, BuildNetworkFromCandidates(
                                            dataset.schemas, graph, candidates));

  ConstraintSet constraints;
  constraints.Add(std::make_unique<OneToOneConstraint>());
  constraints.Add(std::make_unique<CycleConstraint>());
  SMN_RETURN_IF_ERROR(constraints.Compile(network));

  // Mark ground-truth candidates: a candidate correspondence is correct when
  // its two attributes instantiate the same concept.
  DynamicBitset truth(network.correspondence_count());
  for (const Correspondence& c : network.correspondences()) {
    const Attribute& left = network.attribute(c.left);
    const Attribute& right = network.attribute(c.right);
    const uint32_t left_concept =
        dataset.concepts[left.schema]
                        [c.left - network.schema(left.schema).attributes()[0]];
    const uint32_t right_concept =
        dataset.concepts[right.schema]
                        [c.right - network.schema(right.schema).attributes()[0]];
    if (left_concept == right_concept) truth.Set(c.id);
  }

  // The expert answers from the constraint-consistent core of the truth:
  // greedy repair drops the truth pairs whose closing correspondences the
  // matcher never proposed (cycle closure can only add in-truth candidates,
  // since the closing of two same-concept chains shares their concept).
  DynamicBitset oracle_truth = truth;
  Feedback no_feedback(network.correspondence_count());
  SMN_RETURN_IF_ERROR(RepairAll(constraints, no_feedback, &oracle_truth));

  ExperimentSetup setup{config.name,
                        system.name(),
                        std::move(dataset),
                        std::move(graph),
                        std::move(network),
                        std::move(constraints),
                        std::move(truth),
                        std::move(oracle_truth),
                        0};
  setup.truth_total = setup.dataset.CountTruthPairs(setup.graph);
  return setup;
}

PrecisionRecall ScoreCandidates(const ExperimentSetup& setup) {
  DynamicBitset all(setup.network.correspondence_count());
  for (CorrespondenceId c = 0; c < setup.network.correspondence_count(); ++c) {
    all.Set(c);
  }
  return ScoreSelection(all, setup.truth_candidates, setup.truth_total);
}

StatusOr<std::vector<CurvePoint>> RunReconciliationCurve(
    const ExperimentSetup& setup, const CurveOptions& options) {
  std::vector<double> checkpoints = options.checkpoints;
  std::sort(checkpoints.begin(), checkpoints.end());
  if (checkpoints.empty()) checkpoints = {0.0, 0.25, 0.5, 0.75, 1.0};

  const size_t total = setup.network.correspondence_count();
  std::vector<CurvePoint> accumulated(checkpoints.size());
  const Instantiator instantiator(options.instantiation_options);

  Rng master(options.seed);
  for (size_t run = 0; run < options.runs; ++run) {
    Rng rng = master.Split();
    SMN_ASSIGN_OR_RETURN(
        ProbabilisticNetwork pmn,
        ProbabilisticNetwork::Create(setup.network, setup.constraints,
                                     options.network_options, &rng));
    // The perfect-expert path stays bit-identical to the historical driver:
    // the panel (and its extra seed draw) exists only for noisy runs.
    std::optional<Oracle> perfect;
    std::optional<OraclePanel> panel;
    AssertionOracle callback;
    if (options.worker_error_rates.empty()) {
      perfect.emplace(setup.oracle_truth);
      callback = perfect->AsCallback();
    } else {
      panel.emplace(setup.oracle_truth, options.worker_error_rates,
                    rng.NextUint64());
      callback = panel->AsCallback();
    }
    std::unique_ptr<SelectionStrategy> strategy = MakeStrategy(options.strategy);
    Reconciler reconciler(&pmn, strategy.get(), std::move(callback),
                          options.policy);

    bool converged = false;
    for (size_t point = 0; point < checkpoints.size(); ++point) {
      const size_t target_elicitations = static_cast<size_t>(
          checkpoints[point] * static_cast<double>(total) + 0.5);
      while (!converged &&
             reconciler.elicitation_count() < target_elicitations) {
        auto step = reconciler.Step(&rng);
        if (!step.ok()) {
          if (step.status().code() == StatusCode::kNotFound) {
            converged = true;
            break;
          }
          return step.status();
        }
      }

      CurvePoint& out = accumulated[point];
      out.effort += static_cast<double>(reconciler.elicitation_count()) /
                    static_cast<double>(total);
      out.uncertainty += pmn.Uncertainty();
      out.rejected_assertions +=
          static_cast<double>(reconciler.rejected_count());

      // Prec(C \ F-): the candidate set an integration task would use if it
      // stopped reconciling right now and merely dropped the disapproved.
      DynamicBitset remaining(total);
      for (CorrespondenceId c = 0; c < total; ++c) {
        if (!pmn.feedback().IsDisapproved(c)) remaining.Set(c);
      }
      out.precision_remaining +=
          ScoreSelection(remaining, setup.truth_candidates, setup.truth_total)
              .precision;

      if (options.instantiate) {
        SMN_ASSIGN_OR_RETURN(InstantiationResult inst,
                             instantiator.Instantiate(pmn, &rng));
        const PrecisionRecall quality = ScoreSelection(
            inst.instance, setup.truth_candidates, setup.truth_total);
        out.instantiation_precision += quality.precision;
        out.instantiation_recall += quality.recall;
        out.instantiation_f1 += quality.f1;
      }
    }
  }

  const double runs = static_cast<double>(options.runs);
  for (size_t point = 0; point < accumulated.size(); ++point) {
    CurvePoint& out = accumulated[point];
    out.effort /= runs;
    out.uncertainty /= runs;
    out.precision_remaining /= runs;
    out.instantiation_precision /= runs;
    out.instantiation_recall /= runs;
    out.instantiation_f1 /= runs;
    out.rejected_assertions /= runs;
    // Report the nominal checkpoint as the effort axis value when runs
    // converged early at different points.
    if (out.effort > checkpoints[point]) out.effort = checkpoints[point];
  }
  return accumulated;
}

}  // namespace smn
