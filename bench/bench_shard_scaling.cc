// Shard-scaling bench: one million-candidate clustered network (streamed in
// O(components) memory), reconciled through the component-sharded execution
// engine at several worker counts. Reports per-configuration assert
// throughput and snapshot latency, plus two hard correctness bits:
//   digest_ok      — the streaming generator's arithmetic digest matches the
//                    materialized Network, so the O(cluster)-memory stream
//                    and the in-memory builder define the same network;
//   determinism_ok — every sharded configuration produces bit-identical
//                    marginals, uncertainty, exhausted flags, and gains to a
//                    monolithic ProbabilisticNetwork driven with the same
//                    seed and assertion script, round for round.
//
// Knobs: SMN_BENCH_SHARD_CLUSTERS (default 131072 clusters x
// SMN_BENCH_SHARD_PER_CLUSTER=8 candidates = 1,048,576 correspondences),
// SMN_BENCH_SHARD_ROUNDS asserts per configuration, SMN_BENCH_SHARDS
// comma-separated worker counts (default "1,2,4").

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "constraints/cycle.h"
#include "constraints/one_to_one.h"
#include "core/compiled_artifact.h"
#include "core/constraint_set.h"
#include "core/probabilistic_network.h"
#include "datasets/clustered_stream.h"
#include "server/sharded_network.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace smn {
namespace {

using datasets::ClusteredStreamSpec;
using datasets::NetworkDigest;
using server::ShardedNetwork;
using server::ShardedNetworkOptions;
using server::ShardedSnapshot;

/// Parses the comma-separated SMN_BENCH_SHARDS list; malformed or empty
/// input falls back to the default ladder.
std::vector<size_t> ShardCounts() {
  const std::vector<size_t> fallback = {1, 2, 4};
  const char* raw = std::getenv("SMN_BENCH_SHARDS");
  if (raw == nullptr || *raw == '\0') return fallback;
  std::vector<size_t> counts;
  std::string token;
  for (const char* p = raw;; ++p) {
    if (*p != '\0' && *p != ',') {
      token.push_back(*p);
      continue;
    }
    const size_t value = bench::ParseSize(token.c_str(), 0);
    if (value == 0) return fallback;  // Reject the whole list, loudly typed.
    counts.push_back(value);
    token.clear();
    if (*p == '\0') break;
  }
  return counts.empty() ? fallback : counts;
}

/// The deterministic assertion script: round r scans for the first
/// still-uncertain correspondence at or after a rotating offset (wrapping),
/// approving when its marginal already leans in. The rotation spreads the
/// asserts across the id space — and therefore across shards — instead of
/// draining cluster 0.
struct Pick {
  CorrespondenceId c = kInvalidCorrespondence;
  bool approved = false;
  bool found = false;
};

Pick PickAtOffset(const std::vector<double>& probabilities, size_t offset) {
  Pick pick;
  const size_t n = probabilities.size();
  for (size_t i = 0; i < n; ++i) {
    const CorrespondenceId c = static_cast<CorrespondenceId>((offset + i) % n);
    const double p = probabilities[c];
    if (p > 0.0 && p < 1.0) {
      pick.c = c;
      pick.approved = p >= 0.5;
      pick.found = true;
      return pick;
    }
  }
  return pick;
}

/// Digest of one round's full derived state: every marginal's bit pattern,
/// the network uncertainty, and the exhausted flag. Two runs are
/// bit-identical iff their round digests all match.
uint64_t RoundDigest(const std::vector<double>& probabilities,
                     double uncertainty, bool exhausted) {
  NetworkDigest digest;
  for (const double p : probabilities) digest.MixDouble(p);
  digest.MixDouble(uncertainty);
  digest.Mix(exhausted ? 1 : 0);
  return digest.value();
}

uint64_t GainsDigest(const std::vector<double>& gains) {
  NetworkDigest digest;
  for (const double g : gains) digest.MixDouble(g);
  return digest.value();
}

/// The reference trace: a monolithic ProbabilisticNetwork driven with the
/// script, recording the pick sequence, one digest per round (before each
/// assert, plus one after the last), and the final gains digest.
struct ReferenceTrace {
  std::vector<Pick> picks;
  std::vector<uint64_t> round_digests;
  uint64_t gains_digest = 0;
  double create_ms = 0.0;
  bool ok = false;
};

ReferenceTrace RunMonolithic(
    const std::shared_ptr<const CompiledArtifact>& artifact, uint64_t seed,
    size_t rounds) {
  ReferenceTrace trace;
  Stopwatch create_watch;
  Rng rng(seed);
  StatusOr<ProbabilisticNetwork> pmn = ProbabilisticNetwork::Create(
      artifact, ProbabilisticNetworkOptions{}, &rng);
  trace.create_ms = create_watch.ElapsedMillis();
  if (!pmn.ok()) {
    std::cerr << "monolithic create failed: " << pmn.status().message()
              << "\n";
    return trace;
  }
  const size_t n = artifact->network().correspondence_count();
  for (size_t round = 0; round < rounds; ++round) {
    trace.round_digests.push_back(RoundDigest(pmn.value().probabilities(),
                                              pmn.value().Uncertainty(),
                                              pmn.value().exhausted()));
    const Pick pick =
        PickAtOffset(pmn.value().probabilities(), round * n / rounds);
    trace.picks.push_back(pick);
    if (!pick.found) break;
    const Status status = pmn.value().Assert(pick.c, pick.approved, &rng);
    if (!status.ok()) {
      std::cerr << "monolithic assert failed: " << status.message() << "\n";
      return trace;
    }
  }
  trace.round_digests.push_back(RoundDigest(pmn.value().probabilities(),
                                            pmn.value().Uncertainty(),
                                            pmn.value().exhausted()));
  trace.gains_digest = GainsDigest(pmn.value().InformationGains());
  trace.ok = true;
  return trace;
}

/// One sharded configuration: replays the reference script through a
/// ShardedNetwork at `shards` workers and checks every round digest (and the
/// final gains digest) against the reference, bit for bit.
struct ShardRun {
  double create_ms = 0.0;
  double assert_ms = 0.0;
  double snapshot_ms = 0.0;
  size_t asserts = 0;
  bool deterministic = false;
  bool ok = false;
};

ShardRun RunSharded(const std::shared_ptr<const CompiledArtifact>& artifact,
                    uint64_t seed, size_t shards,
                    const ReferenceTrace& reference) {
  ShardRun run;
  ShardedNetworkOptions options;
  options.shards = shards;
  Stopwatch create_watch;
  StatusOr<std::unique_ptr<ShardedNetwork>> sharded =
      ShardedNetwork::Create(artifact, options, seed);
  run.create_ms = create_watch.ElapsedMillis();
  if (!sharded.ok()) {
    std::cerr << "sharded create (K=" << shards
              << ") failed: " << sharded.status().message() << "\n";
    return run;
  }
  run.deterministic = true;
  for (size_t round = 0; round < reference.picks.size() + 1; ++round) {
    Stopwatch snapshot_watch;
    const StatusOr<ShardedSnapshot> snapshot = sharded.value()->Snapshot();
    run.snapshot_ms += snapshot_watch.ElapsedMillis();
    if (!snapshot.ok()) {
      std::cerr << "sharded snapshot (K=" << shards
                << ") failed: " << snapshot.status().message() << "\n";
      return run;
    }
    const uint64_t digest = RoundDigest(snapshot.value().probabilities,
                                        snapshot.value().uncertainty,
                                        snapshot.value().exhausted);
    if (round >= reference.round_digests.size() ||
        digest != reference.round_digests[round]) {
      run.deterministic = false;
    }
    if (round == reference.picks.size()) break;
    const Pick& pick = reference.picks[round];
    if (!pick.found) break;
    Stopwatch assert_watch;
    const Status status = sharded.value()->Assert(pick.c, pick.approved);
    run.assert_ms += assert_watch.ElapsedMillis();
    ++run.asserts;
    if (!status.ok()) {
      std::cerr << "sharded assert (K=" << shards
                << ") failed: " << status.message() << "\n";
      return run;
    }
  }
  const StatusOr<std::vector<double>> gains =
      sharded.value()->InformationGains();
  if (!gains.ok()) {
    std::cerr << "sharded gains (K=" << shards
              << ") failed: " << gains.status().message() << "\n";
    return run;
  }
  if (GainsDigest(gains.value()) != reference.gains_digest) {
    run.deterministic = false;
  }
  run.ok = true;
  return run;
}

int Run() {
  bench::BenchReporter reporter("shard_scaling");
  ClusteredStreamSpec spec;
  spec.clusters = bench::EnvSize("SMN_BENCH_SHARD_CLUSTERS", 131072);
  spec.candidates_per_cluster =
      bench::EnvSize("SMN_BENCH_SHARD_PER_CLUSTER", 8);
  spec.seed = 11;
  const size_t rounds = bench::EnvSize("SMN_BENCH_SHARD_ROUNDS", 16);
  const std::vector<size_t> shard_counts = ShardCounts();
  const size_t hardware = ThreadPool::DefaultThreadCount();
  const uint64_t session_seed = 1000;

  std::cout << "=== Shard scaling (" << spec.clusters << " clusters x "
            << spec.candidates_per_cluster << " candidates, " << rounds
            << " rounds, " << hardware << " hardware threads) ===\n";

  // Streaming-generator gate: the digest computed arithmetically from the
  // stream (O(cluster) memory) must equal the digest of the materialized
  // Network the bench actually reconciles.
  Stopwatch generate_watch;
  const uint64_t stream_digest = datasets::DigestClusteredStream(spec);
  StatusOr<Network> network = datasets::MaterializeClusteredStream(spec);
  if (!network.ok()) {
    std::cerr << "materialize failed: " << network.status().message() << "\n";
    return 1;
  }
  const bool digest_ok =
      stream_digest == datasets::DigestNetwork(network.value());
  const double generate_ms = generate_watch.ElapsedMillis();

  auto constraints = std::make_unique<ConstraintSet>();
  constraints->Add(std::make_unique<OneToOneConstraint>());
  constraints->Add(std::make_unique<CycleConstraint>());
  Stopwatch compile_watch;
  const Status compiled = constraints->Compile(network.value());
  if (!compiled.ok()) {
    std::cerr << "constraint compile failed: " << compiled.message() << "\n";
    return 1;
  }
  StatusOr<std::shared_ptr<const CompiledArtifact>> artifact =
      CompiledArtifact::TakeOwnership(
          std::make_unique<const Network>(std::move(network).value()),
          std::move(constraints));
  if (!artifact.ok()) {
    std::cerr << "artifact build failed: " << artifact.status().message()
              << "\n";
    return 1;
  }
  const double compile_ms = compile_watch.ElapsedMillis();
  const size_t correspondences =
      artifact.value()->network().correspondence_count();
  const size_t components = artifact.value()->initial_index().component_count();

  reporter.AddMetric("clusters", static_cast<double>(spec.clusters));
  reporter.AddMetric("rounds", static_cast<double>(rounds));
  reporter.AddMetric("hardware_threads", static_cast<double>(hardware));
  reporter.AddMetric("correspondences", static_cast<double>(correspondences));
  reporter.AddMetric("components", static_cast<double>(components));
  reporter.AddMetric("generate_ms", generate_ms);
  reporter.AddMetric("compile_ms", compile_ms);
  reporter.AddMetric("digest_ok", digest_ok ? 1.0 : 0.0);

  std::cout << "network: " << correspondences << " correspondences, "
            << components << " components, generated in "
            << FormatDouble(generate_ms, 0) << " ms, compiled in "
            << FormatDouble(compile_ms, 0) << " ms, stream digest "
            << (digest_ok ? "matches" : "MISMATCH") << "\n";

  const ReferenceTrace reference =
      RunMonolithic(artifact.value(), session_seed, rounds);
  if (!reference.ok) return 1;
  reporter.AddMetric("monolithic_create_ms", reference.create_ms);

  TablePrinter table({"Shards", "Create (ms)", "Asserts/s", "Snapshot (ms)",
                      "Deterministic"});
  bool all_deterministic = true;
  for (const size_t shards : shard_counts) {
    Stopwatch config_watch;
    const ShardRun run =
        RunSharded(artifact.value(), session_seed, shards, reference);
    if (!run.ok) return 1;
    all_deterministic = all_deterministic && run.deterministic;
    const double asserts_per_sec =
        run.assert_ms > 0.0
            ? 1000.0 * static_cast<double>(run.asserts) / run.assert_ms
            : 0.0;
    const double snapshot_avg_ms =
        run.snapshot_ms / static_cast<double>(reference.picks.size() + 1);
    reporter.AddEntry("shards/" + std::to_string(shards),
                      config_watch.ElapsedMillis(),
                      {{"create_ms", run.create_ms},
                       {"asserts_per_sec", asserts_per_sec},
                       {"snapshot_avg_ms", snapshot_avg_ms}});
    table.AddRow({std::to_string(shards), FormatDouble(run.create_ms, 0),
                  FormatDouble(asserts_per_sec, 1),
                  FormatDouble(snapshot_avg_ms, 2),
                  run.deterministic ? "yes" : "NO"});
  }
  reporter.AddMetric("determinism_ok", all_deterministic ? 1.0 : 0.0);

  table.Print(std::cout);
  if (hardware < 4) {
    // Throughput on an underprovisioned host measures the host, not the
    // engine; the regression gate demotes the rate fields to warnings
    // (check_bench_regress.py --warn-underprovisioned ...=4) while
    // determinism_ok and digest_ok stay hard everywhere.
    std::cout << "\nWARNING: only " << hardware
              << " hardware thread(s); throughput rows measure the runner "
                 "and are excluded from hard regression gating.\n";
  }
  std::cout << "\nShape to check: determinism_ok = 1 and digest_ok = 1 "
               "unconditionally; create/assert cost flat across shard "
               "counts on a single-core host, improving with cores.\n";
  const bool wrote = reporter.Write();
  if (!digest_ok || !all_deterministic) return 1;
  return wrote ? 0 : 1;
}

}  // namespace
}  // namespace smn

int main() { return smn::Run(); }
