#ifndef SMN_BENCH_BENCH_UTIL_H_
#define SMN_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <string>

namespace smn {
namespace bench {

/// Reads a double knob from the environment ("SMN_BENCH_SCALE=1.0"), falling
/// back to `fallback`. The benches default to scaled-down datasets so the
/// whole suite finishes in minutes; set SMN_BENCH_SCALE=1 SMN_BENCH_RUNS=50
/// to reproduce the paper's full protocol (see EXPERIMENTS.md).
inline double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atof(value);
}

inline size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long long parsed = std::atoll(value);
  return parsed <= 0 ? fallback : static_cast<size_t>(parsed);
}

/// Dataset scale shared by the heavy benches.
inline double Scale() { return EnvDouble("SMN_BENCH_SCALE", 0.50); }

/// Averaging runs for the reconciliation curves (paper: 50).
inline size_t Runs() { return EnvSize("SMN_BENCH_RUNS", 5); }

}  // namespace bench
}  // namespace smn

#endif  // SMN_BENCH_BENCH_UTIL_H_
