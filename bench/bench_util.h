#ifndef SMN_BENCH_BENCH_UTIL_H_
#define SMN_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "util/stopwatch.h"

namespace smn {
namespace bench {

/// Parses a strictly positive double from `value`. Returns `fallback` when
/// `value` is null, empty, malformed (including trailing junk, e.g. "o.5" or
/// "0.5x"), non-finite, or <= 0 — a silent zero scale would collapse every
/// dataset to nothing.
double ParseDouble(const char* value, double fallback);

/// Parses a strictly positive size from `value` with the same validation.
size_t ParseSize(const char* value, size_t fallback);

/// Reads a double knob from the environment ("SMN_BENCH_SCALE=1.0"), falling
/// back to `fallback`. The benches default to scaled-down datasets so the
/// whole suite finishes in minutes; set SMN_BENCH_SCALE=1 SMN_BENCH_RUNS=50
/// to reproduce the paper's full protocol (see EXPERIMENTS.md).
inline double EnvDouble(const char* name, double fallback) {
  return ParseDouble(std::getenv(name), fallback);
}

inline size_t EnvSize(const char* name, size_t fallback) {
  return ParseSize(std::getenv(name), fallback);
}

/// Dataset scale shared by the heavy benches.
inline double Scale() { return EnvDouble("SMN_BENCH_SCALE", 0.50); }

/// Averaging runs for the reconciliation curves (paper: 50).
inline size_t Runs() { return EnvSize("SMN_BENCH_RUNS", 5); }

/// Accumulates results while a bench runs and writes them as machine-readable
/// JSON, so every bench leaves a BENCH_<name>.json perf trajectory next to
/// its human-readable table output. The wall clock starts at construction;
/// Write() stamps the total elapsed time together with the active
/// SMN_BENCH_SCALE / SMN_BENCH_RUNS knobs.
///
///   BenchReporter reporter("fig6_sampling_time");
///   ...
///   reporter.AddEntry("c1024", total_ms, {{"per_sample_ms", per_sample}});
///   reporter.AddMetric("samples", samples);
///   reporter.Write();
///
/// Output shape:
///   {"bench": ..., "scale": ..., "runs": ..., "wall_time_ms": ...,
///    "metrics": {...}, "entries": [{"name": ..., "wall_time_ms": ...,
///    "fields": {...}}, ...]}
class BenchReporter {
 public:
  using Fields = std::vector<std::pair<std::string, double>>;

  explicit BenchReporter(std::string name);

  /// Top-level scalar (e.g. a summary gap or a dataset size).
  void AddMetric(const std::string& key, double value);

  /// One measured sub-result: a table row, a benchmark case, a dataset.
  void AddEntry(const std::string& entry_name, double wall_ms,
                Fields fields = {});

  /// $SMN_BENCH_OUT_DIR/BENCH_<name>.json (default: current directory).
  std::string OutputPath() const;

  /// Writes the JSON file; returns false (with a message on stderr) when the
  /// file cannot be written. Non-finite values are emitted as null.
  bool Write() const;

 private:
  struct Entry {
    std::string name;
    double wall_ms;
    Fields fields;
  };

  std::string name_;
  Stopwatch watch_;
  Fields metrics_;
  std::vector<Entry> entries_;
};

}  // namespace bench
}  // namespace smn

#endif  // SMN_BENCH_BENCH_UTIL_H_
