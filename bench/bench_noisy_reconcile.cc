// Noisy-expert reconciliation benchmark (extension beyond the paper, which
// assumes a perfect expert): drives the full Algorithm-1 loop against a
// panel of fallible simulated workers at error rates {0, 0.05, 0.1, 0.2}
// and compares two elicitation policies end to end —
//   naive      trust every single noisy answer as ground truth (the paper's
//              protocol pointed at an imperfect oracle), and
//   majority3  majority-of-3 re-asking with a matching soft-evidence model
//              (ε-aware Bayesian reweighting, hard-commit at confidence).
// For each configuration it reports the effort-vs-uncertainty trajectory
// and the instantiation precision/recall/F1 at a budget that lets both
// policies finish (3 answers per candidate). Expected shape: identical
// results at ε = 0 (the soft path degenerates to the hard one bit for bit),
// and a growing F1 margin for majority3 as ε rises — at ε = 0.2 it must be
// strictly positive (tracked as metric f1_margin_err20). No configuration
// aborts: closure-contradicting answers are recorded as rejections, not
// errors.
//
// Knobs: SMN_BENCH_SCALE (dataset size, default 0.5), SMN_BENCH_RUNS
// (averaging runs, default 5).

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "datasets/standard.h"
#include "sim/experiment.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace smn {
namespace {

struct PolicyConfig {
  std::string name;
  bool majority = false;
};

int Run() {
  bench::BenchReporter reporter("noisy_reconcile");
  const size_t runs = bench::Runs();
  const double scale = bench::Scale();
  std::cout << "=== Noisy-expert reconciliation: naive hard-assert vs "
               "majority-of-3 soft evidence (BP, scale "
            << FormatDouble(scale, 2) << ", " << runs << " runs) ===\n";

  StandardDataset bp = MakeBpDataset();
  bp.config = ScaleConfig(bp.config, scale);
  Rng rng(2014);
  const auto setup = BuildExperimentSetup(bp.config, bp.vocabulary,
                                          MatcherKind::kComaLike, &rng);
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return 1;
  }
  const size_t candidates = setup->network.correspondence_count();
  reporter.AddMetric("candidates", static_cast<double>(candidates));
  std::cout << "|C| = " << candidates << "\n";

  const std::vector<double> error_rates = {0.0, 0.05, 0.1, 0.2};
  const std::vector<PolicyConfig> policies = {{"naive", false},
                                              {"majority3", true}};
  // The last checkpoint (3 answers per candidate) lets majority-of-3 finish;
  // the earlier ones trace the effort-vs-uncertainty curve.
  const std::vector<double> checkpoints = {0.25, 0.5, 1.0, 2.0, 3.0};

  TablePrinter table({"Error", "Policy", "Effort", "H final", "Prec(H)",
                      "Rec(H)", "F1(H)", "Rejected", "ms"});
  double f1_naive_err20 = 0.0;
  double f1_majority3_err20 = 0.0;
  for (double error_rate : error_rates) {
    for (const PolicyConfig& policy : policies) {
      CurveOptions options;
      options.checkpoints = checkpoints;
      options.runs = runs;
      options.instantiate = true;
      options.network_options.store.target_samples = 400;
      options.network_options.store.min_samples = 100;
      options.seed = 7;
      if (error_rate > 0.0) {
        options.worker_error_rates = {error_rate, error_rate, error_rate};
      }
      if (policy.majority) {
        options.policy.error_rate = error_rate;
        options.policy.max_questions = 3;
        options.policy.confidence = 0.95;
      }
      Stopwatch watch;
      const auto curve = RunReconciliationCurve(*setup, options);
      const double elapsed_ms = watch.ElapsedMillis();
      if (!curve.ok()) {
        std::cerr << "curve failed (error_rate=" << error_rate << ", "
                  << policy.name << "): " << curve.status() << "\n";
        return 1;
      }
      const CurvePoint& final_point = curve->back();
      const std::string entry_name =
          "err" + FormatDouble(100.0 * error_rate, 0) + "_" + policy.name;
      bench::BenchReporter::Fields fields = {
          {"error_rate", error_rate},
          {"effort", final_point.effort},
          {"uncertainty_final", final_point.uncertainty},
          {"instantiation_precision", final_point.instantiation_precision},
          {"instantiation_recall", final_point.instantiation_recall},
          {"instantiation_f1", final_point.instantiation_f1},
          {"rejected_assertions", final_point.rejected_assertions},
      };
      // The effort-vs-uncertainty trajectory rides along per checkpoint.
      for (size_t i = 0; i < curve->size(); ++i) {
        fields.emplace_back(
            "h_at_" + FormatDouble(checkpoints[i], 2),
            (*curve)[i].uncertainty);
      }
      reporter.AddEntry(entry_name, elapsed_ms, std::move(fields));
      table.AddRow({FormatDouble(error_rate, 2), policy.name,
                    FormatDouble(final_point.effort, 2),
                    FormatDouble(final_point.uncertainty, 3),
                    FormatDouble(final_point.instantiation_precision, 3),
                    FormatDouble(final_point.instantiation_recall, 3),
                    FormatDouble(final_point.instantiation_f1, 3),
                    FormatDouble(final_point.rejected_assertions, 1),
                    FormatDouble(elapsed_ms, 0)});
      if (error_rate == 0.2) {
        if (policy.majority) {
          f1_majority3_err20 = final_point.instantiation_f1;
        } else {
          f1_naive_err20 = final_point.instantiation_f1;
        }
      }
    }
  }
  table.Print(std::cout);

  reporter.AddMetric("f1_naive_err20", f1_naive_err20);
  reporter.AddMetric("f1_majority3_err20", f1_majority3_err20);
  reporter.AddMetric("f1_margin_err20", f1_majority3_err20 - f1_naive_err20);
  std::cout << "\nF1 at error 0.2: majority3 "
            << FormatDouble(f1_majority3_err20, 3) << " vs naive "
            << FormatDouble(f1_naive_err20, 3) << " (margin "
            << FormatDouble(f1_majority3_err20 - f1_naive_err20, 3)
            << "; must stay positive).\n";
  if (!reporter.Write()) return 1;
  std::cout << "JSON: " << reporter.OutputPath() << "\n";
  return 0;
}

}  // namespace
}  // namespace smn

int main() { return smn::Run(); }
