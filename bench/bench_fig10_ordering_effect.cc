// Reproduces Fig. 10 of the paper: the effect of the correspondence-ordering
// strategy (Random vs information-gain Heuristic) on the quality of the
// *instantiated* matching H (Algorithm 2), with user-effort budgets from 0%
// to 15%. Shape to check: Heuristic dominates Random in both precision and
// recall (paper: average gaps ≈ +0.12 precision, +0.08 recall), with the
// curves meeting at 0% effort.

#include <iostream>

#include "bench/bench_util.h"
#include "datasets/standard.h"
#include "sim/experiment.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace smn {
namespace {

int Run() {
  bench::BenchReporter reporter("fig10_ordering_effect");
  const size_t runs = bench::Runs();
  std::cout << "=== Fig. 10: ordering strategies vs instantiation quality "
               "(BP, averaged over "
            << runs << " runs) ===\n";
  const StandardDataset bp = MakeBpDataset();
  Rng rng(2014);
  const auto setup = BuildExperimentSetup(bp.config, bp.vocabulary,
                                          MatcherKind::kComaLike, &rng);
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return 1;
  }

  CurveOptions options;
  options.checkpoints = {0.0, 0.025, 0.05, 0.075, 0.10, 0.125, 0.15};
  options.runs = runs;
  options.instantiate = true;
  options.network_options.store.target_samples = 500;
  options.network_options.store.min_samples = 100;
  options.instantiation_options.iterations = 300;
  options.seed = 11;

  options.strategy = StrategyKind::kRandom;
  Stopwatch random_watch;
  const auto random_curve = RunReconciliationCurve(*setup, options);
  reporter.AddMetric("random_curve_ms", random_watch.ElapsedMillis());
  options.strategy = StrategyKind::kInformationGain;
  Stopwatch heuristic_watch;
  const auto heuristic_curve = RunReconciliationCurve(*setup, options);
  reporter.AddMetric("heuristic_curve_ms", heuristic_watch.ElapsedMillis());
  if (!random_curve.ok() || !heuristic_curve.ok()) {
    std::cerr << "curve failed\n";
    return 1;
  }

  TablePrinter table({"Effort (%)", "Prec(H) Random", "Prec(H) Heuristic",
                      "Rec(H) Random", "Rec(H) Heuristic"});
  double precision_gap = 0.0;
  double recall_gap = 0.0;
  for (size_t i = 0; i < random_curve->size(); ++i) {
    reporter.AddEntry(
        "effort_" + FormatDouble(100.0 * options.checkpoints[i], 1), 0.0,
        {{"effort_pct", 100.0 * options.checkpoints[i]},
         {"precision_random", (*random_curve)[i].instantiation_precision},
         {"precision_heuristic",
          (*heuristic_curve)[i].instantiation_precision},
         {"recall_random", (*random_curve)[i].instantiation_recall},
         {"recall_heuristic", (*heuristic_curve)[i].instantiation_recall}});
    table.AddRow(
        {FormatDouble(100.0 * options.checkpoints[i], 1),
         FormatDouble((*random_curve)[i].instantiation_precision, 3),
         FormatDouble((*heuristic_curve)[i].instantiation_precision, 3),
         FormatDouble((*random_curve)[i].instantiation_recall, 3),
         FormatDouble((*heuristic_curve)[i].instantiation_recall, 3)});
    precision_gap += (*heuristic_curve)[i].instantiation_precision -
                     (*random_curve)[i].instantiation_precision;
    recall_gap += (*heuristic_curve)[i].instantiation_recall -
                  (*random_curve)[i].instantiation_recall;
  }
  table.Print(std::cout);
  const double points = static_cast<double>(random_curve->size());
  std::cout << "\nAverage Heuristic-Random gap: precision "
            << FormatDouble(precision_gap / points, 3) << ", recall "
            << FormatDouble(recall_gap / points, 3)
            << " (paper: +0.12 / +0.08).\n";
  reporter.AddMetric("avg_precision_gap", precision_gap / points);
  reporter.AddMetric("avg_recall_gap", recall_gap / points);
  return reporter.Write() ? 0 : 1;
}

}  // namespace
}  // namespace smn

int main() { return smn::Run(); }
