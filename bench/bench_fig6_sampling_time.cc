// Reproduces Fig. 6 of the paper: probability-estimation time per sample as
// a function of the number of candidate correspondences (|C| from 2^7 to
// 2^12), on Erdős–Rényi interaction graphs. The paper reports ~2ms/sample at
// 4096 correspondences on a 2.8GHz i7; the shape to check is near-linear
// growth with low-millisecond absolute values.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "bench/synthetic_networks.h"
#include "core/feedback.h"
#include "core/parallel_sampler.h"
#include "core/sampler.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace smn {
namespace {

int Run() {
  bench::BenchReporter reporter("fig6_sampling_time");
  const size_t samples = bench::EnvSize("SMN_BENCH_SAMPLES", 1000);
  const size_t hardware = ThreadPool::DefaultThreadCount();
  reporter.AddMetric("samples_per_setting", static_cast<double>(samples));
  reporter.AddMetric("hardware_threads", static_cast<double>(hardware));
  std::cout << "=== Fig. 6: probability-estimation time per sample ("
            << samples << " samples per setting, " << hardware
            << " hardware threads) ===\n";
  TablePrinter table({"#Correspondences", "Time/sample (ms)", "Total (ms)",
                      "Par time/sample (ms)", "Par speedup",
                      "MeanInstanceSize"});
  for (size_t target : {128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    // Average over a few random-graph settings, as the paper does.
    double total_ms = 0.0;
    double parallel_ms = 0.0;
    double mean_size = 0.0;
    size_t settings = 0;
    for (uint64_t seed : {1u, 2u, 3u}) {
      bench::SyntheticNetwork synthetic =
          bench::BuildScalingNetwork(target, 0.5, seed);
      Sampler sampler(synthetic.network, synthetic.constraints);
      Feedback feedback(synthetic.network.correspondence_count());
      Rng rng(seed * 7919);
      std::vector<DynamicBitset> out;
      Stopwatch watch;
      if (!sampler.SampleChain(feedback, samples, &rng, &out).ok()) return 1;
      total_ms += watch.ElapsedMillis();
      double setting_size = 0.0;
      for (const DynamicBitset& sample : out) {
        setting_size += static_cast<double>(sample.Count());
      }
      mean_size += setting_size / static_cast<double>(out.size());
      ++settings;

      // Same sample budget through the multi-chain engine, all hardware
      // threads (single- vs multi-thread throughput side by side).
      ParallelSamplerOptions parallel_options;
      parallel_options.num_chains = std::max<size_t>(4, hardware);
      ParallelSampler parallel(synthetic.network, synthetic.constraints,
                               parallel_options);
      Rng parallel_rng(seed * 7919);
      std::vector<DynamicBitset> parallel_out;
      Stopwatch parallel_watch;
      if (!parallel.SampleMerged(feedback, samples, &parallel_rng,
                                 &parallel_out)
               .ok()) {
        return 1;
      }
      parallel_ms += parallel_watch.ElapsedMillis();
    }
    const double per_sample =
        total_ms / static_cast<double>(settings) / static_cast<double>(samples);
    const double par_per_sample = parallel_ms / static_cast<double>(settings) /
                                  static_cast<double>(samples);
    const double speedup = parallel_ms > 0.0 ? total_ms / parallel_ms : 0.0;
    reporter.AddEntry(
        "c" + std::to_string(target), total_ms / settings,
        {{"correspondences", static_cast<double>(target)},
         {"per_sample_ms", per_sample},
         {"par_per_sample_ms", par_per_sample},
         {"parallel_speedup", speedup},
         {"mean_instance_size", mean_size / settings}});
    table.AddRow({std::to_string(target), FormatDouble(per_sample, 3),
                  FormatDouble(total_ms / settings, 1),
                  FormatDouble(par_per_sample, 3), FormatDouble(speedup, 2),
                  FormatDouble(mean_size / settings, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nShape to check: time/sample grows roughly linearly in |C| "
               "and stays in the low-millisecond range (paper: ~2ms at "
               "4096); the parallel column should shrink it by roughly "
               "min(chains, hardware threads).\n";
  return reporter.Write() ? 0 : 1;
}

}  // namespace
}  // namespace smn

int main() { return smn::Run(); }
