// Multi-chain sampling throughput as a function of worker threads, plus the
// determinism guarantee check: for a fixed seed the merged sample stream must
// be bit-identical at every thread count. Chains are embarrassingly parallel,
// so on a machine with >= 4 hardware threads the 4-thread row should show
// near-linear (>= 2.5x) speedup over 1 thread; `hardware_threads` is recorded
// in the JSON so single-core container runs are interpretable.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "bench/synthetic_networks.h"
#include "core/feedback.h"
#include "core/parallel_sampler.h"
#include "core/sampler.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace smn {
namespace {

/// Order-sensitive digest of a sample stream, for the determinism check.
uint64_t DigestSamples(const std::vector<DynamicBitset>& samples) {
  uint64_t digest = 0x9E3779B97F4A7C15ULL;
  for (const DynamicBitset& sample : samples) {
    digest ^= static_cast<uint64_t>(sample.Hash()) + 0x9E3779B97F4A7C15ULL +
              (digest << 6) + (digest >> 2);
  }
  return digest;
}

int Run() {
  bench::BenchReporter reporter("parallel_scaling");
  const size_t samples = bench::EnvSize("SMN_BENCH_SAMPLES", 2000);
  const size_t chains = bench::EnvSize("SMN_BENCH_CHAINS", 8);
  const size_t correspondences = bench::EnvSize("SMN_BENCH_CORRESPONDENCES", 1024);
  const size_t hardware = ThreadPool::DefaultThreadCount();
  reporter.AddMetric("samples", static_cast<double>(samples));
  reporter.AddMetric("chains", static_cast<double>(chains));
  reporter.AddMetric("correspondences", static_cast<double>(correspondences));
  reporter.AddMetric("hardware_threads", static_cast<double>(hardware));

  std::cout << "=== Parallel multi-chain sampling scaling (" << samples
            << " samples, " << chains << " chains, |C|=" << correspondences
            << ", " << hardware << " hardware threads) ===\n";

  bench::SyntheticNetwork synthetic =
      bench::BuildScalingNetwork(correspondences, 0.5, 1);
  Feedback feedback(synthetic.network.correspondence_count());

  // Serial single-chain reference: the pre-multi-chain engine.
  {
    Sampler serial(synthetic.network, synthetic.constraints);
    Rng rng(1234);
    std::vector<DynamicBitset> out;
    Stopwatch watch;
    if (!serial.SampleChain(feedback, samples, &rng, &out).ok()) return 1;
    const double ms = watch.ElapsedMillis();
    reporter.AddEntry("serial_single_chain", ms,
                      {{"samples_per_sec", 1000.0 * samples / ms}});
  }

  TablePrinter table({"Threads", "Total (ms)", "Samples/s", "Speedup vs 1t",
                      "Deterministic"});
  double baseline_ms = 0.0;
  uint64_t baseline_digest = 0;
  double speedup_at_4t = 0.0;
  bool deterministic = true;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelSamplerOptions options;
    options.num_chains = chains;
    options.num_threads = threads;
    ParallelSampler sampler(synthetic.network, synthetic.constraints, options);
    Rng rng(1234);
    std::vector<DynamicBitset> out;
    Stopwatch watch;
    if (!sampler.SampleMerged(feedback, samples, &rng, &out).ok()) return 1;
    const double ms = watch.ElapsedMillis();
    if (out.size() != samples) return 1;

    const uint64_t digest = DigestSamples(out);
    if (threads == 1) {
      baseline_ms = ms;
      baseline_digest = digest;
    }
    const bool matches = digest == baseline_digest;
    deterministic = deterministic && matches;
    const double speedup = baseline_ms / ms;
    if (threads == 4) speedup_at_4t = speedup;
    reporter.AddEntry("t" + std::to_string(threads), ms,
                      {{"threads", static_cast<double>(threads)},
                       {"samples_per_sec", 1000.0 * samples / ms},
                       {"speedup_vs_1t", speedup},
                       {"determinism_ok", matches ? 1.0 : 0.0}});
    table.AddRow({std::to_string(threads), FormatDouble(ms, 1),
                  FormatDouble(1000.0 * samples / ms, 0),
                  FormatDouble(speedup, 2), matches ? "yes" : "NO"});
  }
  reporter.AddMetric("speedup_at_4t", speedup_at_4t);
  reporter.AddMetric("determinism_ok", deterministic ? 1.0 : 0.0);
  table.Print(std::cout);
  if (hardware < 4) {
    // The regression gate reads hardware_threads from the JSON and
    // downgrades scaling failures on such runners to warnings
    // (check_bench_regress.py --warn-underprovisioned speedup_at_4t=4).
    std::cout << "\nWARNING: only " << hardware
              << " hardware thread(s); the 4-thread speedup row measures the "
                 "runner, not the engine, and is excluded from hard "
                 "regression gating.\n";
  }
  std::cout << "\nShape to check: identical digests at every thread count "
               "(the merge is chain-major and scheduling-independent), and "
               "speedup approaching min(threads, chains, hardware) — on a "
            << hardware
            << "-thread host the 4-thread row tops out near min(4, "
            << hardware << ").\n";
  // Write first: on a determinism regression the per-entry determinism_ok
  // digests are exactly the diagnostic a reader needs.
  const bool wrote = reporter.Write();
  if (!deterministic) return 1;
  return wrote ? 0 : 1;
}

}  // namespace
}  // namespace smn

int main() { return smn::Run(); }
