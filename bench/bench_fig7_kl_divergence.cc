// Reproduces Fig. 7 of the paper: sampling effectiveness measured as the
// normalized K-L divergence KLratio = D(P||Q) / D(P||U), where P is the
// exact instance distribution (exhaustive enumeration), Q the sampled
// distribution with 2^(|C|/2) samples, and U the max-entropy baseline
// (u_c = 0.5). |C| ranges over 10..20; the paper reports KLratio below ~2%.

#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "bench/synthetic_networks.h"
#include "core/exact_enumerator.h"
#include "core/feedback.h"
#include "core/sample_store.h"
#include "sim/metrics.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace smn {
namespace {

int Run() {
  bench::BenchReporter reporter("fig7_kl_divergence");
  std::cout << "=== Fig. 7: sampling effectiveness (KLratio %) ===\n";
  TablePrinter table({"#Correspondences", "#Samples", "#Instances(exact)",
                      "KLratio (%)", "KLratio@4096 (%)"});
  for (size_t candidates = 10; candidates <= 20; ++candidates) {
    const size_t paper_samples = 1ULL << (candidates / 2);
    Stopwatch watch;
    double ratio_sum = 0.0;
    double ratio4k_sum = 0.0;
    double instances_sum = 0.0;
    size_t settings = 0;
    for (uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
      bench::SyntheticNetwork synthetic =
          bench::BuildTinyNetwork(candidates, seed);
      Feedback feedback(candidates);
      ExactEnumerator enumerator(synthetic.network, synthetic.constraints);
      const auto exact = enumerator.Enumerate(feedback);
      if (!exact.ok()) return 1;
      if (exact->instances.empty()) continue;

      // Two sampling budgets: the paper's 2^(|C|/2) (tiny at small |C|) and
      // a fixed 4096 to show the estimate converging toward exact.
      double ratios[2] = {0.0, 0.0};
      const size_t budgets[2] = {paper_samples, 4096};
      for (int b = 0; b < 2; ++b) {
        SampleStoreOptions options;
        options.target_samples = budgets[b];
        options.min_samples = 1;   // Fidelity: no exhaustion shortcut here.
        options.exact_threshold = 0;  // Pure sampling; exact is the oracle.
        // Longer walks decorrelate the chain on these tiny, cycle-heavy
        // networks (see EXPERIMENTS.md for the fidelity discussion).
        options.sampling.sampler.walk_steps = 16;
        SampleStore store(synthetic.network, synthetic.constraints, options);
        Rng rng(seed * 31 + candidates);
        if (!store.Initialize(feedback, &rng).ok()) return 1;
        ratios[b] =
            KlRatio(exact->probabilities, store.ComputeProbabilities());
      }
      ratio_sum += ratios[0];
      ratio4k_sum += ratios[1];
      instances_sum += static_cast<double>(exact->instances.size());
      ++settings;
    }
    if (settings == 0) continue;
    reporter.AddEntry(
        "c" + std::to_string(candidates), watch.ElapsedMillis(),
        {{"correspondences", static_cast<double>(candidates)},
         {"samples", static_cast<double>(paper_samples)},
         {"exact_instances", instances_sum / settings},
         {"klratio_pct", 100.0 * ratio_sum / settings},
         {"klratio_4096_pct", 100.0 * ratio4k_sum / settings}});
    table.AddRow({std::to_string(candidates), std::to_string(paper_samples),
                  FormatDouble(instances_sum / settings, 0),
                  FormatDouble(100.0 * ratio_sum / settings, 2),
                  FormatDouble(100.0 * ratio4k_sum / settings, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nShape to check: KLratio shrinks as |C| (and with it the "
               "2^(|C|/2) sample budget) grows, and collapses further at the "
               "fixed 4096-sample budget — the sampled distribution converges "
               "to the exact one and is far closer to it than the "
               "max-entropy baseline (ratio << 100%). The paper reports <2% "
               "under its protocol.\n";
  return reporter.Write() ? 0 : 1;
}

}  // namespace
}  // namespace smn

int main() { return smn::Run(); }
