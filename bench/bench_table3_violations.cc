// Reproduces Table III of the paper: the number of network-level constraint
// violations (one-to-one + cycle) among the candidate correspondences each
// matcher produces, per dataset. The paper's point — both matchers leave far
// too many violations for exhaustive expert review — is scale-independent,
// so the larger datasets run scaled down by default (SMN_BENCH_SCALE=1 for
// full size; see EXPERIMENTS.md).

#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "datasets/standard.h"
#include "sim/experiment.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace smn {
namespace {

struct Row {
  std::string dataset;
  size_t candidates[2] = {0, 0};
  size_t violations[2] = {0, 0};
  double precision[2] = {0.0, 0.0};
};

int Run() {
  bench::BenchReporter reporter("table3_violations");
  const double scale = bench::Scale();
  std::cout << "=== Table III: Constraint violations per matcher (scale="
            << FormatDouble(scale, 2) << ") ===\n";

  TablePrinter table({"Dataset", "#Corr(COMA)", "#Viol(COMA)", "Prec(COMA)",
                      "#Corr(AMC)", "#Viol(AMC)", "Prec(AMC)"});
  // BP is small enough to always run at full size (the paper's BP had 142
  // correspondences and 252/244 violations).
  const StandardDataset datasets[] = {MakeBpDataset(), MakePoDataset(),
                                      MakeUafDataset(), MakeWebFormDataset()};
  for (const StandardDataset& standard : datasets) {
    DatasetConfig config = standard.config;
    if (config.name != "BP") config = ScaleConfig(config, scale);

    Row row;
    row.dataset = config.name;
    Stopwatch watch;
    int column = 0;
    for (MatcherKind kind : {MatcherKind::kComaLike, MatcherKind::kAmcLike}) {
      Rng rng(2014);  // Same dataset instance for both matchers.
      const auto setup =
          BuildExperimentSetup(config, standard.vocabulary, kind, &rng);
      if (!setup.ok()) {
        std::cerr << "setup failed: " << setup.status() << "\n";
        return 1;
      }
      DynamicBitset all(setup->network.correspondence_count());
      for (CorrespondenceId c = 0; c < all.size(); ++c) all.Set(c);
      row.candidates[column] = setup->network.correspondence_count();
      row.violations[column] = setup->constraints.FindViolations(all).size();
      row.precision[column] = ScoreCandidates(*setup).precision;
      ++column;
    }
    reporter.AddEntry(
        row.dataset, watch.ElapsedMillis(),
        {{"candidates_coma", static_cast<double>(row.candidates[0])},
         {"violations_coma", static_cast<double>(row.violations[0])},
         {"precision_coma", row.precision[0]},
         {"candidates_amc", static_cast<double>(row.candidates[1])},
         {"violations_amc", static_cast<double>(row.violations[1])},
         {"precision_amc", row.precision[1]}});
    table.AddRow({row.dataset, std::to_string(row.candidates[0]),
                  std::to_string(row.violations[0]),
                  FormatDouble(row.precision[0], 2),
                  std::to_string(row.candidates[1]),
                  std::to_string(row.violations[1]),
                  FormatDouble(row.precision[1], 2)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference (violations, full size): BP 252/244, "
               "PO 10078/11320, UAF 40436/41256, WebForm 6032/6367.\n"
            << "Shape to check: violations far exceed what an expert can "
               "review exhaustively, for both matchers alike.\n";
  return reporter.Write() ? 0 : 1;
}

}  // namespace
}  // namespace smn

int main() { return smn::Run(); }
