// Reproduces Fig. 9 of the paper: network uncertainty and precision of the
// remaining candidates (C \ F-) as functions of user effort, for the Random
// baseline vs the information-gain Heuristic, averaged over several runs on
// the BP dataset. Shapes to check: the Heuristic curve reaches near-zero
// uncertainty around ~50% effort while Random still carries substantial
// uncertainty — the paper reports effort savings up to 48% — and precision
// climbs mirror-image to the uncertainty drop.

#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "datasets/standard.h"
#include "sim/experiment.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace smn {
namespace {

int Run() {
  bench::BenchReporter reporter("fig9_uncertainty_reduction");
  const size_t runs = bench::Runs();
  std::cout << "=== Fig. 9: uncertainty reduction on BP (averaged over "
            << runs << " runs; paper uses 50) ===\n";
  const StandardDataset bp = MakeBpDataset();
  Rng rng(2014);
  const auto setup = BuildExperimentSetup(bp.config, bp.vocabulary,
                                          MatcherKind::kComaLike, &rng);
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return 1;
  }

  CurveOptions options;
  options.checkpoints = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.75, 1.0};
  options.runs = runs;
  options.network_options.store.target_samples = 500;
  options.network_options.store.min_samples = 100;
  options.seed = 7;

  TablePrinter table({"Effort (%)", "H(Random)", "H(Heuristic)",
                      "Prec C\\F- (Random)", "Prec C\\F- (Heuristic)"});
  options.strategy = StrategyKind::kRandom;
  Stopwatch random_watch;
  const auto random_curve = RunReconciliationCurve(*setup, options);
  reporter.AddMetric("random_curve_ms", random_watch.ElapsedMillis());
  options.strategy = StrategyKind::kInformationGain;
  Stopwatch heuristic_watch;
  const auto heuristic_curve = RunReconciliationCurve(*setup, options);
  reporter.AddMetric("heuristic_curve_ms", heuristic_watch.ElapsedMillis());
  if (!random_curve.ok() || !heuristic_curve.ok()) {
    std::cerr << "curve failed\n";
    return 1;
  }
  const double h0 = (*random_curve)[0].uncertainty;
  for (size_t i = 0; i < random_curve->size(); ++i) {
    const double h_random = (*random_curve)[i].uncertainty / std::max(h0, 1e-9);
    const double h_heuristic =
        (*heuristic_curve)[i].uncertainty / std::max(h0, 1e-9);
    reporter.AddEntry(
        "effort_" + FormatDouble(100.0 * options.checkpoints[i], 0), 0.0,
        {{"effort_pct", 100.0 * options.checkpoints[i]},
         {"h_random", h_random},
         {"h_heuristic", h_heuristic},
         {"precision_remaining_random", (*random_curve)[i].precision_remaining},
         {"precision_remaining_heuristic",
          (*heuristic_curve)[i].precision_remaining}});
    table.AddRow(
        {FormatDouble(100.0 * options.checkpoints[i], 0),
         FormatDouble(h_random, 3),
         FormatDouble(h_heuristic, 3),
         FormatDouble((*random_curve)[i].precision_remaining, 3),
         FormatDouble((*heuristic_curve)[i].precision_remaining, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nUncertainty normalized by the initial H = "
            << FormatDouble(h0, 1) << " bits; |C| = "
            << setup->network.correspondence_count() << ".\n"
            << "Shape to check: Heuristic ~0 by mid-effort while Random "
               "remains well above; precision inversely mirrors "
               "uncertainty.\n";
  reporter.AddMetric("initial_uncertainty_bits", h0);
  reporter.AddMetric(
      "candidates",
      static_cast<double>(setup->network.correspondence_count()));
  return reporter.Write() ? 0 : 1;
}

}  // namespace
}  // namespace smn

int main() { return smn::Run(); }
