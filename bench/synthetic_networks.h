#ifndef SMN_BENCH_SYNTHETIC_NETWORKS_H_
#define SMN_BENCH_SYNTHETIC_NETWORKS_H_

#include <memory>
#include <string>
#include <vector>

#include "constraints/cycle.h"
#include "constraints/one_to_one.h"
#include "core/constraint_set.h"
#include "core/network.h"
#include "datasets/random_graph.h"
#include "util/rng.h"

namespace smn {
namespace bench {

struct SyntheticNetwork {
  Network network;
  ConstraintSet constraints;
};

/// Builds a network with exactly `target_candidates` random candidate
/// correspondences over an Erdős–Rényi interaction graph — the scaling setup
/// of Fig. 6 (the paper varies |C| from 2^7 to 2^12 over random graphs).
/// `schema_count` and the per-schema attribute count are derived from the
/// target so that candidate density per attribute stays realistic (~2).
inline SyntheticNetwork BuildScalingNetwork(size_t target_candidates,
                                            double edge_probability,
                                            uint64_t seed) {
  Rng rng(seed);
  const size_t schema_count = 12;
  const size_t attrs_per_schema =
      std::max<size_t>(4, target_candidates / (2 * schema_count));

  InteractionGraph graph(0);
  // Redraw until the graph has at least one edge (tiny probability issue).
  do {
    graph = ErdosRenyiGraph(schema_count, edge_probability, &rng);
  } while (graph.edge_count() == 0);

  NetworkBuilder builder;
  std::vector<std::vector<AttributeId>> attributes(schema_count);
  for (size_t s = 0; s < schema_count; ++s) {
    const SchemaId schema = builder.AddSchema("S" + std::to_string(s));
    for (size_t a = 0; a < attrs_per_schema; ++a) {
      attributes[s].push_back(
          builder.AddAttribute(schema, "a" + std::to_string(a)).value());
    }
  }
  for (const auto& [a, b] : graph.edges()) builder.AddEdge(a, b);

  size_t added = 0;
  size_t failures = 0;
  const auto& edges = graph.edges();
  while (added < target_candidates && failures < 64 * target_candidates) {
    const auto& [s1, s2] = edges[rng.Index(edges.size())];
    const AttributeId a = attributes[s1][rng.Index(attrs_per_schema)];
    const AttributeId b = attributes[s2][rng.Index(attrs_per_schema)];
    if (builder.AddCorrespondence(a, b, rng.UniformDouble()).ok()) {
      ++added;
    } else {
      ++failures;  // Duplicate pair; try again.
    }
  }

  Network network = builder.Build().value();
  ConstraintSet constraints;
  constraints.Add(std::make_unique<OneToOneConstraint>());
  constraints.Add(std::make_unique<CycleConstraint>());
  constraints.Compile(network).ok();
  return SyntheticNetwork{std::move(network), std::move(constraints)};
}

/// Small-|C| network for the exact-vs-sampled comparison of Fig. 7: three
/// schemas, complete graph, exactly `candidates` random correspondences.
/// The default attribute count keeps the pair space tight so that chains
/// with in-C closings (i.e. closable triangles) actually occur.
inline SyntheticNetwork BuildTinyNetwork(size_t candidates, uint64_t seed,
                                         size_t attrs_per_schema = 0) {
  Rng rng(seed);
  const size_t schema_count = 3;
  if (attrs_per_schema == 0) {
    attrs_per_schema = std::max<size_t>(3, candidates / 3);
  }
  NetworkBuilder builder;
  std::vector<std::vector<AttributeId>> attributes(schema_count);
  for (size_t s = 0; s < schema_count; ++s) {
    const SchemaId schema = builder.AddSchema("S" + std::to_string(s));
    for (size_t a = 0; a < attrs_per_schema; ++a) {
      attributes[s].push_back(
          builder.AddAttribute(schema, "a" + std::to_string(a)).value());
    }
  }
  builder.AddCompleteGraph();
  size_t added = 0;
  while (added < candidates) {
    const SchemaId s1 = static_cast<SchemaId>(rng.Index(schema_count));
    SchemaId s2 = static_cast<SchemaId>(rng.Index(schema_count));
    if (s1 == s2) continue;
    const AttributeId a = attributes[s1][rng.Index(attrs_per_schema)];
    const AttributeId b = attributes[s2][rng.Index(attrs_per_schema)];
    if (builder.AddCorrespondence(a, b, rng.UniformDouble()).ok()) ++added;
  }
  Network network = builder.Build().value();
  ConstraintSet constraints;
  constraints.Add(std::make_unique<OneToOneConstraint>());
  constraints.Add(std::make_unique<CycleConstraint>());
  constraints.Compile(network).ok();
  return SyntheticNetwork{std::move(network), std::move(constraints)};
}

}  // namespace bench
}  // namespace smn

#endif  // SMN_BENCH_SYNTHETIC_NETWORKS_H_
