#ifndef SMN_BENCH_SYNTHETIC_NETWORKS_H_
#define SMN_BENCH_SYNTHETIC_NETWORKS_H_

#include <memory>
#include <string>
#include <vector>

#include "constraints/cycle.h"
#include "constraints/one_to_one.h"
#include "core/constraint_set.h"
#include "core/network.h"
#include "datasets/random_graph.h"
#include "util/rng.h"

namespace smn {
namespace bench {

struct SyntheticNetwork {
  Network network;
  ConstraintSet constraints;
};

/// Builds a network with exactly `target_candidates` random candidate
/// correspondences over an Erdős–Rényi interaction graph — the scaling setup
/// of Fig. 6 (the paper varies |C| from 2^7 to 2^12 over random graphs).
/// `schema_count` and the per-schema attribute count are derived from the
/// target so that candidate density per attribute stays realistic (~2).
inline SyntheticNetwork BuildScalingNetwork(size_t target_candidates,
                                            double edge_probability,
                                            uint64_t seed) {
  Rng rng(seed);
  const size_t schema_count = 12;
  const size_t attrs_per_schema =
      std::max<size_t>(4, target_candidates / (2 * schema_count));

  InteractionGraph graph(0);
  // Redraw until the graph has at least one edge (tiny probability issue).
  do {
    graph = ErdosRenyiGraph(schema_count, edge_probability, &rng);
  } while (graph.edge_count() == 0);

  NetworkBuilder builder;
  std::vector<std::vector<AttributeId>> attributes(schema_count);
  for (size_t s = 0; s < schema_count; ++s) {
    const SchemaId schema = builder.AddSchema("S" + std::to_string(s));
    for (size_t a = 0; a < attrs_per_schema; ++a) {
      attributes[s].push_back(
          builder.AddAttribute(schema, "a" + std::to_string(a)).value());
    }
  }
  for (const auto& [a, b] : graph.edges()) builder.AddEdge(a, b);

  size_t added = 0;
  size_t failures = 0;
  const auto& edges = graph.edges();
  while (added < target_candidates && failures < 64 * target_candidates) {
    const auto& [s1, s2] = edges[rng.Index(edges.size())];
    const AttributeId a = attributes[s1][rng.Index(attrs_per_schema)];
    const AttributeId b = attributes[s2][rng.Index(attrs_per_schema)];
    if (builder.AddCorrespondence(a, b, rng.UniformDouble()).ok()) {
      ++added;
    } else {
      ++failures;  // Duplicate pair; try again.
    }
  }

  Network network = builder.Build().value();
  ConstraintSet constraints;
  constraints.Add(std::make_unique<OneToOneConstraint>());
  constraints.Add(std::make_unique<CycleConstraint>());
  constraints.Compile(network).ok();
  return SyntheticNetwork{std::move(network), std::move(constraints)};
}

/// Small-|C| network for the exact-vs-sampled comparison of Fig. 7: three
/// schemas, complete graph, exactly `candidates` random correspondences.
/// The default attribute count keeps the pair space tight so that chains
/// with in-C closings (i.e. closable triangles) actually occur.
inline SyntheticNetwork BuildTinyNetwork(size_t candidates, uint64_t seed,
                                         size_t attrs_per_schema = 0) {
  Rng rng(seed);
  const size_t schema_count = 3;
  if (attrs_per_schema == 0) {
    attrs_per_schema = std::max<size_t>(3, candidates / 3);
  }
  NetworkBuilder builder;
  std::vector<std::vector<AttributeId>> attributes(schema_count);
  for (size_t s = 0; s < schema_count; ++s) {
    const SchemaId schema = builder.AddSchema("S" + std::to_string(s));
    for (size_t a = 0; a < attrs_per_schema; ++a) {
      attributes[s].push_back(
          builder.AddAttribute(schema, "a" + std::to_string(a)).value());
    }
  }
  builder.AddCompleteGraph();
  size_t added = 0;
  while (added < candidates) {
    const SchemaId s1 = static_cast<SchemaId>(rng.Index(schema_count));
    SchemaId s2 = static_cast<SchemaId>(rng.Index(schema_count));
    if (s1 == s2) continue;
    const AttributeId a = attributes[s1][rng.Index(attrs_per_schema)];
    const AttributeId b = attributes[s2][rng.Index(attrs_per_schema)];
    if (builder.AddCorrespondence(a, b, rng.UniformDouble()).ok()) ++added;
  }
  Network network = builder.Build().value();
  ConstraintSet constraints;
  constraints.Add(std::make_unique<OneToOneConstraint>());
  constraints.Add(std::make_unique<CycleConstraint>());
  constraints.Compile(network).ok();
  return SyntheticNetwork{std::move(network), std::move(constraints)};
}

/// Multi-component network for the incremental-reconciliation bench:
/// `clusters` disjoint schema groups (complete graph within a cluster, no
/// edges across), each holding ~`candidates_per_cluster` random candidates.
/// Mirrors testing::MakeClusteredNetwork (tests/testing/test_networks.cc) —
/// bench/ and tests/ deliberately do not link each other's fixtures; keep
/// the cluster geometry of the two in sync.
/// Correspondences in different clusters can never share a constraint, so
/// the candidate set provably decomposes into at least `clusters`
/// constraint-connected components — the setting where re-sampling only the
/// touched component pays off most visibly.
inline SyntheticNetwork BuildClusteredNetwork(size_t clusters,
                                              size_t candidates_per_cluster,
                                              uint64_t seed) {
  Rng rng(seed);
  const size_t schemas_per_cluster = 3;
  const size_t attrs_per_schema =
      std::max<size_t>(3, candidates_per_cluster / 4);

  NetworkBuilder builder;
  std::vector<std::vector<std::vector<AttributeId>>> attributes(clusters);
  std::vector<std::vector<SchemaId>> schemas(clusters);
  for (size_t k = 0; k < clusters; ++k) {
    attributes[k].resize(schemas_per_cluster);
    for (size_t s = 0; s < schemas_per_cluster; ++s) {
      const SchemaId schema = builder.AddSchema(
          "K" + std::to_string(k) + "S" + std::to_string(s));
      schemas[k].push_back(schema);
      for (size_t a = 0; a < attrs_per_schema; ++a) {
        attributes[k][s].push_back(
            builder.AddAttribute(schema, "a" + std::to_string(a)).value());
      }
    }
  }
  // All schemas must exist before the first AddEdge (the builder sizes the
  // interaction graph then); cluster-local complete graphs, nothing across.
  for (size_t k = 0; k < clusters; ++k) {
    for (size_t s1 = 0; s1 < schemas_per_cluster; ++s1) {
      for (size_t s2 = s1 + 1; s2 < schemas_per_cluster; ++s2) {
        builder.AddEdge(schemas[k][s1], schemas[k][s2]).ok();
      }
    }
  }
  for (size_t k = 0; k < clusters; ++k) {
    size_t added = 0;
    size_t failures = 0;
    while (added < candidates_per_cluster &&
           failures < 64 * candidates_per_cluster) {
      const size_t s1 = rng.Index(schemas_per_cluster);
      size_t s2 = rng.Index(schemas_per_cluster);
      if (s1 == s2) {
        ++failures;
        continue;
      }
      const AttributeId a = attributes[k][s1][rng.Index(attrs_per_schema)];
      const AttributeId b = attributes[k][s2][rng.Index(attrs_per_schema)];
      if (builder.AddCorrespondence(a, b, rng.UniformDouble()).ok()) {
        ++added;
      } else {
        ++failures;  // Duplicate pair; try again.
      }
    }
  }
  Network network = builder.Build().value();
  ConstraintSet constraints;
  constraints.Add(std::make_unique<OneToOneConstraint>());
  constraints.Add(std::make_unique<CycleConstraint>());
  constraints.Compile(network).ok();
  return SyntheticNetwork{std::move(network), std::move(constraints)};
}

}  // namespace bench
}  // namespace smn

#endif  // SMN_BENCH_SYNTHETIC_NETWORKS_H_
