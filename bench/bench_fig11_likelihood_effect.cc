// Reproduces Fig. 11 of the paper: the effect of the maximal-likelihood
// criterion on instantiation. Both configurations reconcile with the
// information-gain heuristic; one instantiates with the likelihood
// tie-breaker of Problem 2, the other with repair distance only. Shape to
// check: the likelihood-aware variant dominates in both precision and
// recall.

#include <iostream>

#include "bench/bench_util.h"
#include "datasets/standard.h"
#include "sim/experiment.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace smn {
namespace {

int Run() {
  bench::BenchReporter reporter("fig11_likelihood_effect");
  const size_t runs = bench::Runs();
  std::cout << "=== Fig. 11: likelihood criterion vs instantiation quality "
               "(BP, averaged over "
            << runs << " runs) ===\n";
  const StandardDataset bp = MakeBpDataset();
  Rng rng(2014);
  const auto setup = BuildExperimentSetup(bp.config, bp.vocabulary,
                                          MatcherKind::kComaLike, &rng);
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return 1;
  }

  CurveOptions options;
  options.checkpoints = {0.0, 0.025, 0.05, 0.075, 0.10, 0.125, 0.15};
  options.runs = runs;
  options.strategy = StrategyKind::kInformationGain;
  options.instantiate = true;
  options.network_options.store.target_samples = 500;
  options.network_options.store.min_samples = 100;
  options.instantiation_options.iterations = 300;
  options.seed = 13;

  options.instantiation_options.use_likelihood = false;
  Stopwatch without_watch;
  const auto without = RunReconciliationCurve(*setup, options);
  reporter.AddMetric("without_likelihood_ms", without_watch.ElapsedMillis());
  options.instantiation_options.use_likelihood = true;
  Stopwatch with_watch;
  const auto with = RunReconciliationCurve(*setup, options);
  reporter.AddMetric("with_likelihood_ms", with_watch.ElapsedMillis());
  if (!without.ok() || !with.ok()) {
    std::cerr << "curve failed\n";
    return 1;
  }

  TablePrinter table({"Effort (%)", "Prec(H) w/o Lik", "Prec(H) w/ Lik",
                      "Rec(H) w/o Lik", "Rec(H) w/ Lik"});
  double precision_gap = 0.0;
  for (size_t i = 0; i < with->size(); ++i) {
    reporter.AddEntry(
        "effort_" + FormatDouble(100.0 * options.checkpoints[i], 1), 0.0,
        {{"effort_pct", 100.0 * options.checkpoints[i]},
         {"precision_without", (*without)[i].instantiation_precision},
         {"precision_with", (*with)[i].instantiation_precision},
         {"recall_without", (*without)[i].instantiation_recall},
         {"recall_with", (*with)[i].instantiation_recall}});
    table.AddRow({FormatDouble(100.0 * options.checkpoints[i], 1),
                  FormatDouble((*without)[i].instantiation_precision, 3),
                  FormatDouble((*with)[i].instantiation_precision, 3),
                  FormatDouble((*without)[i].instantiation_recall, 3),
                  FormatDouble((*with)[i].instantiation_recall, 3)});
    precision_gap += (*with)[i].instantiation_precision -
                     (*without)[i].instantiation_precision;
  }
  table.Print(std::cout);
  std::cout << "\nAverage precision gain from the likelihood criterion: "
            << FormatDouble(precision_gap / static_cast<double>(with->size()), 3)
            << "\nShape to check: the with-likelihood curves sit on or above "
               "the without-likelihood curves at every effort level.\n";
  reporter.AddMetric("avg_precision_gain",
                     precision_gap / static_cast<double>(with->size()));
  return reporter.Write() ? 0 : 1;
}

}  // namespace
}  // namespace smn

int main() { return smn::Run(); }
