// Ablation beyond the paper: how do cheaper selection strategies compare to
// the full information-gain heuristic? MaxEntropy ranks by marginal entropy
// only (ignores correlations between correspondences), MinProbability chases
// suspicious candidates, Sequential models an unguided sweep. Uncertainty is
// reported at fixed effort levels on BP.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "datasets/standard.h"
#include "sim/experiment.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace smn {
namespace {

int Run() {
  bench::BenchReporter reporter("ablation_strategies");
  const size_t runs = bench::Runs();
  std::cout << "=== Ablation: selection strategies (BP, normalized "
               "uncertainty, averaged over "
            << runs << " runs) ===\n";
  const StandardDataset bp = MakeBpDataset();
  Rng rng(2014);
  const auto setup = BuildExperimentSetup(bp.config, bp.vocabulary,
                                          MatcherKind::kComaLike, &rng);
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return 1;
  }

  const std::vector<StrategyKind> strategies = {
      StrategyKind::kRandom, StrategyKind::kSequential,
      StrategyKind::kMinProbability, StrategyKind::kMaxEntropy,
      StrategyKind::kInformationGain};
  const std::vector<double> checkpoints = {0.0, 0.1, 0.25, 0.5, 0.75};

  TablePrinter table({"Strategy", "H@0%", "H@10%", "H@25%", "H@50%", "H@75%"});
  for (StrategyKind strategy : strategies) {
    CurveOptions options;
    options.strategy = strategy;
    options.checkpoints = checkpoints;
    options.runs = runs;
    options.network_options.store.target_samples = 500;
    options.network_options.store.min_samples = 100;
    options.seed = 17;
    Stopwatch watch;
    const auto curve = RunReconciliationCurve(*setup, options);
    if (!curve.ok()) {
      std::cerr << curve.status() << "\n";
      return 1;
    }
    const double h0 = std::max((*curve)[0].uncertainty, 1e-9);
    std::vector<std::string> row{std::string(StrategyKindName(strategy))};
    bench::BenchReporter::Fields fields;
    for (size_t i = 0; i < curve->size(); ++i) {
      row.push_back(FormatDouble((*curve)[i].uncertainty / h0, 3));
      fields.emplace_back(
          "h_at_" + FormatDouble(100.0 * checkpoints[i], 0) + "pct",
          (*curve)[i].uncertainty / h0);
    }
    reporter.AddEntry(std::string(StrategyKindName(strategy)),
                      watch.ElapsedMillis(), std::move(fields));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nShape to check: InformationGain <= MaxEntropy <= Random at "
               "every budget; Sequential is the weakest guided baseline.\n";
  return reporter.Write() ? 0 : 1;
}

}  // namespace
}  // namespace smn

int main() { return smn::Run(); }
