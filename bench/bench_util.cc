#include "bench/bench_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

namespace smn {
namespace bench {
namespace {

/// True when `rest` is empty up to trailing whitespace — the only tail a
/// well-formed knob value may have.
bool OnlyTrailingSpace(const char* rest) {
  while (*rest != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*rest))) return false;
    ++rest;
  }
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no inf/nan literals; emit null so consumers fail loudly rather
/// than parse garbage.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void WriteFields(std::ostream& out, const BenchReporter::Fields& fields,
                 const char* indent) {
  out << "{";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n" << indent << "  \"" << JsonEscape(fields[i].first)
        << "\": " << JsonNumber(fields[i].second);
  }
  if (!fields.empty()) out << "\n" << indent;
  out << "}";
}

}  // namespace

double ParseDouble(const char* value, double fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || !OnlyTrailingSpace(end)) return fallback;
  if (!std::isfinite(parsed) || parsed <= 0.0) return fallback;
  return parsed;
}

size_t ParseSize(const char* value, size_t fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(value, &end, 10);
  if (errno == ERANGE || end == value || !OnlyTrailingSpace(end)) {
    return fallback;
  }
  if (parsed <= 0) return fallback;
  return static_cast<size_t>(parsed);
}

BenchReporter::BenchReporter(std::string name) : name_(std::move(name)) {}

void BenchReporter::AddMetric(const std::string& key, double value) {
  metrics_.emplace_back(key, value);
}

void BenchReporter::AddEntry(const std::string& entry_name, double wall_ms,
                             Fields fields) {
  entries_.push_back(Entry{entry_name, wall_ms, std::move(fields)});
}

std::string BenchReporter::OutputPath() const {
  const char* dir = std::getenv("SMN_BENCH_OUT_DIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : ".";
  if (path.back() != '/') path += '/';
  return path + "BENCH_" + name_ + ".json";
}

bool BenchReporter::Write() const {
  const std::string path = OutputPath();
  std::ofstream out(path);
  if (!out) {
    std::cerr << "[bench] cannot open " << path << " for writing\n";
    return false;
  }
  out << "{\n"
      << "  \"bench\": \"" << JsonEscape(name_) << "\",\n"
      << "  \"scale\": " << JsonNumber(Scale()) << ",\n"
      << "  \"runs\": " << Runs() << ",\n"
      << "  \"wall_time_ms\": " << JsonNumber(watch_.ElapsedMillis()) << ",\n"
      << "  \"metrics\": ";
  WriteFields(out, metrics_, "  ");
  out << ",\n  \"entries\": [";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out << ",";
    const Entry& entry = entries_[i];
    out << "\n    {\n      \"name\": \"" << JsonEscape(entry.name) << "\",\n"
        << "      \"wall_time_ms\": " << JsonNumber(entry.wall_ms) << ",\n"
        << "      \"fields\": ";
    WriteFields(out, entry.fields, "      ");
    out << "\n    }";
  }
  if (!entries_.empty()) out << "\n  ";
  out << "]\n}\n";
  out.flush();
  if (!out) {
    std::cerr << "[bench] failed writing " << path << "\n";
    return false;
  }
  std::cout << "[bench] wrote " << path << "\n";
  return true;
}

}  // namespace bench
}  // namespace smn
