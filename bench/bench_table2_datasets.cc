// Reproduces Table II of the paper: descriptive statistics of the four
// datasets (number of schemas, min/max attribute counts). Our datasets are
// synthetic stand-ins generated to the published statistics; this bench
// regenerates them at full size and reports what the generator actually
// produced, plus the vocabulary backing each domain.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "datasets/generator.h"
#include "datasets/standard.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace smn {
namespace {

int Run() {
  bench::BenchReporter reporter("table2_datasets");
  std::cout << "=== Table II: Real datasets (synthetic stand-ins, full size) ===\n";
  TablePrinter table({"Dataset", "#Schemas", "#Attributes(Min/Max)",
                      "#Attributes(Total)", "Vocabulary", "#Concepts"});
  Rng rng(2014);
  for (const StandardDataset& standard :
       {MakeBpDataset(), MakePoDataset(), MakeUafDataset(),
        MakeWebFormDataset()}) {
    Stopwatch watch;
    const auto dataset =
        GenerateDataset(standard.config, standard.vocabulary, &rng);
    if (!dataset.ok()) {
      std::cerr << "generation failed: " << dataset.status() << "\n";
      return 1;
    }
    reporter.AddEntry(
        dataset->name, watch.ElapsedMillis(),
        {{"schemas", static_cast<double>(dataset->schemas.size())},
         {"attributes_min", static_cast<double>(dataset->MinAttributeCount())},
         {"attributes_max", static_cast<double>(dataset->MaxAttributeCount())},
         {"attributes_total",
          static_cast<double>(dataset->TotalAttributeCount())},
         {"concepts", static_cast<double>(standard.vocabulary.size())}});
    table.AddRow({dataset->name, std::to_string(dataset->schemas.size()),
                  std::to_string(dataset->MinAttributeCount()) + "/" +
                      std::to_string(dataset->MaxAttributeCount()),
                  std::to_string(dataset->TotalAttributeCount()),
                  standard.vocabulary.domain(),
                  std::to_string(standard.vocabulary.size())});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: BP 3 80/106, PO 10 35/408, UAF 15 65/228, "
               "WebForm 89 10/120.\n";
  return reporter.Write() ? 0 : 1;
}

}  // namespace
}  // namespace smn

int main() { return smn::Run(); }
