// Server load generator: N concurrent expert sessions over one registered
// tenant, each running open → (snapshot → pick → assert)* → close through
// the ReconcileService request queue. Reports session throughput
// (sessions/sec) and the submit→ready latency distribution of the async
// assert path (p50/p99), plus the service-layer determinism check: a
// single-session server run must produce bit-identical marginals to a batch
// ProbabilisticNetwork driven with the same seed and assertion script.
//
// Two durability/overload phases ride along:
//   recovery — journaled sessions are asserted into shape, the service is
//     destroyed without a single Close (a crash), and a fresh service
//     replays the write-ahead journals. Reports the wall time of Recover()
//     and the hard bit recovered_determinism_ok: every recovered session
//     must snapshot bitwise identical to its pre-crash self.
//   shed — a single-worker service with a tight admission bound takes a
//     submit burst; every request must resolve as either executed or shed
//     with kUnavailable (+retry hint), and the shed counter must equal the
//     observed kUnavailable count exactly (shed_ok).

#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/synthetic_networks.h"
#include "core/probabilistic_network.h"
#include "server/reconcile_service.h"
#include "util/record_codec.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace smn {
namespace {

using server::ReconcileService;
using server::RecoveryReport;
using server::ServerOptions;
using server::SessionId;
using server::SessionSnapshot;
using server::TenantId;

/// The deterministic session policy: lowest-id uncertain correspondence,
/// approved when its marginal is already leaning in (>= 0.5).
struct Pick {
  CorrespondenceId c = kInvalidCorrespondence;
  bool approved = false;
  bool found = false;
};

Pick PickNext(const std::vector<double>& probabilities) {
  Pick pick;
  for (CorrespondenceId c = 0; c < probabilities.size(); ++c) {
    const double p = probabilities[c];
    if (p > 0.0 && p < 1.0) {
      pick.c = c;
      pick.approved = p >= 0.5;
      pick.found = true;
      return pick;
    }
  }
  return pick;
}

double Percentile(std::vector<double> sorted, double percentile) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      percentile / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

/// One session lifecycle over the service; returns the per-assert
/// submit→ready latencies or exits false on any service error.
bool RunSessionLifecycle(ReconcileService* service, TenantId tenant,
                         uint64_t seed, size_t rounds,
                         std::vector<double>* latencies_ms) {
  const StatusOr<SessionId> session = service->OpenSession(tenant, seed);
  if (!session.ok()) return false;
  const SessionId id = session.value();
  for (size_t round = 0; round < rounds; ++round) {
    const StatusOr<SessionSnapshot> snapshot = service->Snapshot(id);
    if (!snapshot.ok()) return false;
    const Pick pick = PickNext(snapshot.value().probabilities);
    if (!pick.found) break;  // Session fully reconciled early.
    Stopwatch watch;
    std::future<Status> done =
        service->SubmitAssert(id, pick.c, pick.approved);
    const Status status = done.get();
    latencies_ms->push_back(watch.ElapsedMillis());
    if (!status.ok()) return false;
  }
  return service->Close(id).ok();
}

/// Registers the shared tenant network (built fresh from `seed`).
StatusOr<TenantId> RegisterTenant(ReconcileService* service, size_t clusters,
                                  size_t candidates_per_cluster,
                                  uint64_t seed) {
  bench::SyntheticNetwork built =
      bench::BuildClusteredNetwork(clusters, candidates_per_cluster, seed);
  auto network = std::make_unique<Network>(std::move(built.network));
  auto constraints =
      std::make_unique<ConstraintSet>(std::move(built.constraints));
  return service->RegisterTenant("load", std::move(network),
                                 std::move(constraints));
}

/// Single-session determinism: drive one server session and one batch
/// network with the same seed and policy; the marginals must be the same
/// doubles after every step.
bool CheckServerBatchDeterminism(size_t clusters,
                                 size_t candidates_per_cluster,
                                 uint64_t network_seed, uint64_t session_seed,
                                 size_t rounds) {
  ReconcileService service;
  const StatusOr<TenantId> tenant = RegisterTenant(
      &service, clusters, candidates_per_cluster, network_seed);
  if (!tenant.ok()) return false;
  const StatusOr<SessionId> session =
      service.OpenSession(tenant.value(), session_seed);
  if (!session.ok()) return false;

  bench::SyntheticNetwork batch_built = bench::BuildClusteredNetwork(
      clusters, candidates_per_cluster, network_seed);
  Rng batch_rng(session_seed);
  StatusOr<ProbabilisticNetwork> batch = ProbabilisticNetwork::Create(
      batch_built.network, batch_built.constraints,
      ProbabilisticNetworkOptions{}, &batch_rng);
  if (!batch.ok()) return false;

  for (size_t round = 0; round < rounds; ++round) {
    const StatusOr<SessionSnapshot> snapshot =
        service.Snapshot(session.value());
    if (!snapshot.ok()) return false;
    if (snapshot.value().probabilities != batch.value().probabilities()) {
      return false;
    }
    const Pick pick = PickNext(snapshot.value().probabilities);
    const Pick batch_pick = PickNext(batch.value().probabilities());
    if (pick.found != batch_pick.found || pick.c != batch_pick.c) {
      return false;
    }
    if (!pick.found) break;
    const Status server_status =
        service.Assert(session.value(), pick.c, pick.approved);
    const Status batch_status =
        batch.value().Assert(pick.c, pick.approved, &batch_rng);
    if (server_status.ok() != batch_status.ok()) return false;
  }
  return service.Snapshot(session.value()).value().probabilities ==
         batch.value().probabilities();
}

/// Synchronous asserts under the deterministic pick policy (no Close —
/// callers decide whether the session survives).
bool DriveAsserts(ReconcileService* service, SessionId id, size_t rounds) {
  for (size_t round = 0; round < rounds; ++round) {
    const StatusOr<SessionSnapshot> snapshot = service->Snapshot(id);
    if (!snapshot.ok()) return false;
    const Pick pick = PickNext(snapshot.value().probabilities);
    if (!pick.found) break;
    if (!service->Assert(id, pick.c, pick.approved).ok()) return false;
  }
  return true;
}

struct RecoveryBenchResult {
  bool ran = false;           ///< The phase itself executed without errors.
  double recovery_ms = 0.0;   ///< Wall time of Recover() alone.
  size_t recovered_sessions = 0;
  bool deterministic = false;  ///< Every session bitwise equal pre-crash.
};

/// Crash-and-replay: journaled sessions, destroy without Close, recover on
/// a fresh service, compare snapshots bitwise.
RecoveryBenchResult RunRecoveryPhase(size_t clusters, size_t per_cluster,
                                     size_t session_count, size_t rounds) {
  RecoveryBenchResult result;
  const std::string dir = "./BENCH_server_load_journal";
  if (!EnsureDirectory(dir).ok()) return result;
  const StatusOr<std::vector<std::string>> stale = ListDirectory(dir);
  if (!stale.ok()) return result;
  for (const std::string& name : stale.value()) {
    if (!RemoveFile(dir + "/" + name).ok()) return result;
  }
  ServerOptions options;
  options.journal_dir = dir;

  std::vector<SessionId> ids;
  std::vector<SessionSnapshot> pre_crash;
  {
    ReconcileService crashed(options);
    const StatusOr<TenantId> tenant =
        RegisterTenant(&crashed, clusters, per_cluster, /*seed=*/11);
    if (!tenant.ok()) return result;
    for (size_t s = 0; s < session_count; ++s) {
      const StatusOr<SessionId> id =
          crashed.OpenSession(tenant.value(), /*seed=*/2000 + s);
      if (!id.ok()) return result;
      if (!DriveAsserts(&crashed, id.value(), rounds)) return result;
      const StatusOr<SessionSnapshot> snapshot = crashed.Snapshot(id.value());
      if (!snapshot.ok()) return result;
      ids.push_back(id.value());
      pre_crash.push_back(snapshot.value());
    }
  }  // Crash: the service dies without closing a single session.

  ReconcileService revived(options);
  const StatusOr<TenantId> tenant =
      RegisterTenant(&revived, clusters, per_cluster, /*seed=*/11);
  if (!tenant.ok()) return result;
  Stopwatch recover_watch;
  const StatusOr<RecoveryReport> report = revived.Recover(dir);
  result.recovery_ms = recover_watch.ElapsedMillis();
  if (!report.ok()) return result;
  result.ran = true;
  result.recovered_sessions = report.value().sessions_recovered;

  bool identical = report.value().sessions_recovered == session_count &&
                   report.value().failed_sessions == 0 &&
                   report.value().revision_mismatches == 0;
  for (size_t s = 0; s < ids.size(); ++s) {
    const StatusOr<SessionSnapshot> snapshot = revived.Snapshot(ids[s]);
    if (!snapshot.ok()) {
      identical = false;
      break;
    }
    identical = identical &&
                snapshot.value().revision == pre_crash[s].revision &&
                snapshot.value().probabilities == pre_crash[s].probabilities &&
                snapshot.value().uncertainty == pre_crash[s].uncertainty &&
                snapshot.value().soft_answer_count ==
                    pre_crash[s].soft_answer_count;
  }
  // Clean close unlinks the journals, leaving the directory empty for the
  // next run; a failing close is itself a recovery defect.
  for (const SessionId id : ids) {
    if (!revived.Close(id).ok()) identical = false;
  }
  result.deterministic = identical;
  return result;
}

struct ShedBenchResult {
  bool ran = false;
  double burst_ms = 0.0;      ///< Submit + drain wall time of the burst.
  size_t shed_requests = 0;   ///< Requests refused at admission.
  bool accounting_exact = false;  ///< shed_ok: see below.
};

/// Overload burst against a single-worker service with a tight admission
/// bound. The *count* of shed requests is timing-dependent (and only
/// reported); the hard bit is the accounting: executed + shed == burst,
/// the service's shed counter equals the observed kUnavailable count, and
/// every shed error carries the retry-after hint.
ShedBenchResult RunShedPhase(size_t clusters, size_t per_cluster,
                             size_t burst) {
  ShedBenchResult result;
  ServerOptions options;
  options.worker_threads = 1;
  options.max_queue_depth = 4;
  ReconcileService service(options);
  const StatusOr<TenantId> tenant =
      RegisterTenant(&service, clusters, per_cluster, /*seed=*/11);
  if (!tenant.ok()) return result;
  const StatusOr<SessionId> session =
      service.OpenSession(tenant.value(), /*seed=*/3000);
  if (!session.ok()) return result;
  const StatusOr<SessionSnapshot> first = service.Snapshot(session.value());
  if (!first.ok() || first.value().probabilities.empty()) return result;
  const size_t width = first.value().probabilities.size();

  Stopwatch burst_watch;
  std::vector<std::future<Status>> futures;
  futures.reserve(burst);
  for (size_t i = 0; i < burst; ++i) {
    futures.push_back(service.SubmitAssert(
        session.value(), static_cast<CorrespondenceId>(i % width), true));
  }
  size_t executed = 0;
  size_t shed = 0;
  bool hinted = true;
  for (std::future<Status>& future : futures) {
    const Status status = future.get();
    if (status.code() == StatusCode::kUnavailable) {
      ++shed;
      hinted = hinted && status.message().find("retry") != std::string::npos;
    } else {
      // Executed: accepted, or rejected by the engine (a burst of blind
      // approvals trips one-to-one conflicts) — both consumed a worker slot.
      ++executed;
    }
  }
  result.burst_ms = burst_watch.ElapsedMillis();
  result.ran = true;
  result.shed_requests = shed;
  result.accounting_exact = executed + shed == burst && hinted &&
                            service.stats().shed_requests == shed &&
                            service.stats().expired_requests == 0;
  return result;
}

int Run() {
  bench::BenchReporter reporter("server_load");
  const size_t sessions = bench::EnvSize("SMN_BENCH_SESSIONS", 8);
  const size_t lifecycles = bench::EnvSize("SMN_BENCH_LIFECYCLES", 3);
  const size_t rounds = bench::EnvSize("SMN_BENCH_ROUNDS", 4);
  const size_t clusters = bench::EnvSize("SMN_BENCH_CLUSTERS", 4);
  const size_t per_cluster = bench::EnvSize("SMN_BENCH_PER_CLUSTER", 8);
  const size_t hardware = ThreadPool::DefaultThreadCount();

  reporter.AddMetric("sessions", static_cast<double>(sessions));
  reporter.AddMetric("lifecycles", static_cast<double>(lifecycles));
  reporter.AddMetric("rounds", static_cast<double>(rounds));
  reporter.AddMetric("hardware_threads", static_cast<double>(hardware));

  std::cout << "=== Server load (" << sessions << " concurrent sessions x "
            << lifecycles << " lifecycles, " << rounds << " rounds each, "
            << hardware << " hardware threads) ===\n";

  ReconcileService service;
  const StatusOr<TenantId> tenant =
      RegisterTenant(&service, clusters, per_cluster, /*seed=*/11);
  if (!tenant.ok()) {
    std::cerr << "tenant registration failed: " << tenant.status().message()
              << "\n";
    return 1;
  }
  const size_t correspondence_count = service.TenantArtifact(tenant.value())
                                          .value()
                                          ->network()
                                          .correspondence_count();
  reporter.AddMetric("correspondences",
                     static_cast<double>(correspondence_count));

  // N driver threads, each running `lifecycles` full sessions against the
  // shared tenant. Assert latencies are submit→ready through the request
  // queue; session seeds are pure functions of (driver, lifecycle) so every
  // run reconciles the same work.
  std::vector<std::vector<double>> per_driver_latencies(sessions);
  // One byte per driver, not vector<bool>: each thread writes its own
  // element, which must be a distinct memory location.
  std::vector<char> driver_ok(sessions, 1);
  Stopwatch load_watch;
  {
    std::vector<std::thread> drivers;
    drivers.reserve(sessions);
    for (size_t d = 0; d < sessions; ++d) {
      drivers.emplace_back([&, d] {
        for (size_t l = 0; l < lifecycles; ++l) {
          const uint64_t seed = 1000 + 100 * d + l;
          if (!RunSessionLifecycle(&service, tenant.value(), seed, rounds,
                                   &per_driver_latencies[d])) {
            driver_ok[d] = 0;
            return;
          }
        }
      });
    }
    for (std::thread& driver : drivers) driver.join();
  }
  const double load_ms = load_watch.ElapsedMillis();
  for (size_t d = 0; d < sessions; ++d) {
    if (!driver_ok[d]) {
      std::cerr << "driver " << d << " failed\n";
      return 1;
    }
  }

  std::vector<double> latencies;
  for (const auto& driver : per_driver_latencies) {
    latencies.insert(latencies.end(), driver.begin(), driver.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = Percentile(latencies, 50.0);
  const double p99 = Percentile(latencies, 99.0);
  const double total_sessions =
      static_cast<double>(sessions) * static_cast<double>(lifecycles);
  const double sessions_per_sec = 1000.0 * total_sessions / load_ms;

  reporter.AddMetric("asserts", static_cast<double>(latencies.size()));
  reporter.AddMetric("sessions_per_sec", sessions_per_sec);
  reporter.AddMetric("assert_p50_ms", p50);
  reporter.AddMetric("assert_p99_ms", p99);
  reporter.AddEntry("load", load_ms,
                    {{"sessions_per_sec", sessions_per_sec},
                     {"assert_p50_ms", p50},
                     {"assert_p99_ms", p99}});

  // Determinism gate: server == batch, bit for bit, on a fresh service.
  Stopwatch determinism_watch;
  const bool deterministic = CheckServerBatchDeterminism(
      clusters, per_cluster, /*network_seed=*/11, /*session_seed=*/1000,
      rounds);
  reporter.AddEntry("determinism", determinism_watch.ElapsedMillis(), {});
  reporter.AddMetric("determinism_ok", deterministic ? 1.0 : 0.0);

  // Crash-recovery gate: journal, crash, replay; bitwise-equal or bust.
  const size_t recovery_sessions =
      bench::EnvSize("SMN_BENCH_RECOVERY_SESSIONS", 4);
  const RecoveryBenchResult recovery =
      RunRecoveryPhase(clusters, per_cluster, recovery_sessions, rounds);
  reporter.AddMetric("recovery_ms", recovery.recovery_ms);
  reporter.AddMetric("recovered_sessions",
                     static_cast<double>(recovery.recovered_sessions));
  reporter.AddMetric("recovered_determinism_ok",
                     recovery.ran && recovery.deterministic ? 1.0 : 0.0);
  reporter.AddEntry(
      "recovery", recovery.recovery_ms,
      {{"recovered_sessions",
        static_cast<double>(recovery.recovered_sessions)},
       {"recovered_determinism_ok",
        recovery.ran && recovery.deterministic ? 1.0 : 0.0}});

  // Overload gate: a submit burst against a tight admission bound must shed
  // loudly and account exactly; the shed *count* is load-dependent telemetry.
  const size_t shed_burst = bench::EnvSize("SMN_BENCH_SHED_BURST", 256);
  const ShedBenchResult shed = RunShedPhase(clusters, per_cluster, shed_burst);
  reporter.AddMetric("shed_requests",
                     static_cast<double>(shed.shed_requests));
  reporter.AddMetric("shed_ok", shed.ran && shed.accounting_exact ? 1.0 : 0.0);
  reporter.AddEntry(
      "shed", shed.burst_ms,
      {{"shed_requests", static_cast<double>(shed.shed_requests)},
       {"shed_ok", shed.ran && shed.accounting_exact ? 1.0 : 0.0}});

  TablePrinter table({"Sessions", "Sessions/s", "p50 (ms)", "p99 (ms)",
                      "Deterministic"});
  table.AddRow({std::to_string(sessions) + "x" + std::to_string(lifecycles),
                FormatDouble(sessions_per_sec, 1), FormatDouble(p50, 3),
                FormatDouble(p99, 3), deterministic ? "yes" : "NO"});
  table.Print(std::cout);
  std::cout << "\nRecovery: " << recovery.recovered_sessions << "/"
            << recovery_sessions << " crashed sessions replayed in "
            << FormatDouble(recovery.recovery_ms, 3) << " ms, bitwise "
            << (recovery.ran && recovery.deterministic ? "identical"
                                                       : "DIVERGED")
            << "\nShed: " << shed.shed_requests << "/" << shed_burst
            << " requests shed at admission, accounting "
            << (shed.ran && shed.accounting_exact ? "exact" : "BROKEN")
            << "\n";
  if (hardware < 4) {
    // Throughput and latency on an underprovisioned runner measure the
    // host, not the service; the regression gate demotes them to warnings
    // (check_bench_regress.py --warn-underprovisioned ...=4) while the
    // determinism metric stays hard-gated everywhere.
    std::cout << "\nWARNING: only " << hardware
              << " hardware thread(s); throughput/latency rows measure the "
                 "runner and are excluded from hard regression gating.\n";
  }
  std::cout << "\nShape to check: sessions/sec scaling with hardware "
               "threads, p99 staying within a small multiple of p50, and "
               "determinism_ok = 1 unconditionally.\n";
  const bool wrote = reporter.Write();
  if (!deterministic) return 1;
  return wrote ? 0 : 1;
}

}  // namespace
}  // namespace smn

int main() { return smn::Run(); }
