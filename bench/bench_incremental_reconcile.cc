// A/B benchmark for the component-decomposed incremental reconciliation
// engine: runs the same Algorithm-1 loop (information-gain selection against
// a ground-truth oracle) on a multi-component clustered network twice — once
// with the per-component cache enabled (re-sample only the touched
// component) and once in full-resample mode (recompute every component on
// every assertion, the O(|C|) baseline) — and reports mean per-assertion
// cost and the speedup. Both modes derive per-component RNG streams purely
// from (anchor, generation), so they execute the *identical* assertion
// sequence: the comparison is pure engine overhead, not workload drift.
//
// Knobs: SMN_BENCH_SCALE (dataset size), SMN_BENCH_INCREMENTAL=0/1 to
// restrict the A/B to one side (unset runs both and prints the speedup).
// Expected shape: speedup grows with the component count and with
// reconciliation progress (components shrink and split as variables pin),
// ≥ 2x mean per-assertion at the default clustered geometry.

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "bench/bench_util.h"
#include "bench/synthetic_networks.h"
#include "core/probabilistic_network.h"
#include "core/reconciler.h"
#include "core/selection_strategy.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace smn {
namespace {

struct ModeResult {
  size_t assertions = 0;
  double total_ms = 0.0;
  double mean_ms_per_assertion = 0.0;
  double create_ms = 0.0;
  size_t initial_components = 0;
  size_t final_components = 0;
};

std::optional<ModeResult> RunMode(const bench::SyntheticNetwork& net,
                                  bool incremental, uint64_t seed) {
  ProbabilisticNetworkOptions options;
  options.incremental = incremental;
  options.store.target_samples = 400;
  options.store.min_samples = 100;

  Rng rng(seed);
  Stopwatch create_watch;
  auto pmn = ProbabilisticNetwork::Create(net.network, net.constraints,
                                          options, &rng);
  if (!pmn.ok()) {
    std::cerr << "create failed: " << pmn.status() << "\n";
    return std::nullopt;
  }
  ModeResult result;
  result.create_ms = create_watch.ElapsedMillis();
  result.initial_components = pmn->component_count();

  // Ground truth: one maintained instance (identical across modes for a
  // fixed seed, so both runs answer the same assertion sequence).
  if (pmn->samples().empty()) {
    std::cerr << "no samples to derive an oracle from\n";
    return std::nullopt;
  }
  const DynamicBitset truth = pmn->samples()[0];
  auto strategy = MakeStrategy(StrategyKind::kInformationGain);
  Reconciler reconciler(&*pmn, strategy.get(),
                        [&truth](CorrespondenceId c) { return truth.Test(c); });

  Stopwatch watch;
  for (;;) {
    const auto step = reconciler.Step(&rng);
    if (!step.ok()) {
      if (step.status().code() == StatusCode::kNotFound) break;
      std::cerr << "step failed: " << step.status() << "\n";
      return std::nullopt;
    }
    ++result.assertions;
  }
  result.total_ms = watch.ElapsedMillis();
  result.mean_ms_per_assertion =
      result.assertions == 0 ? 0.0
                             : result.total_ms /
                                   static_cast<double>(result.assertions);
  result.final_components = pmn->component_count();
  return result;
}

int Run() {
  bench::BenchReporter reporter("incremental_reconcile");
  const double scale = bench::Scale();
  const size_t clusters = 6;
  const size_t candidates_per_cluster =
      std::max<size_t>(8, static_cast<size_t>(60 * scale));
  const uint64_t seed = 20140331;

  // SMN_BENCH_INCREMENTAL: unset = A/B both; "1" = incremental only;
  // "0" = full-resample only.
  const char* toggle = std::getenv("SMN_BENCH_INCREMENTAL");
  const bool run_incremental = toggle == nullptr || std::string(toggle) != "0";
  const bool run_full = toggle == nullptr || std::string(toggle) == "0";

  std::cout << "=== Incremental reconciliation: per-assertion cost, "
            << clusters << " clusters x " << candidates_per_cluster
            << " candidates ===\n";
  const bench::SyntheticNetwork net =
      bench::BuildClusteredNetwork(clusters, candidates_per_cluster, seed);
  const size_t total_candidates = net.network.correspondence_count();
  reporter.AddMetric("candidates", static_cast<double>(total_candidates));
  reporter.AddMetric("clusters", static_cast<double>(clusters));
  std::cout << "|C| = " << total_candidates << "\n";

  TablePrinter table({"Mode", "Assertions", "Total (ms)", "Mean ms/assert",
                      "Components start->end"});
  std::optional<ModeResult> incremental;
  std::optional<ModeResult> full;
  if (run_incremental) {
    incremental = RunMode(net, /*incremental=*/true, seed);
    if (!incremental.has_value()) return 1;
    table.AddRow({"incremental",
                  std::to_string(incremental->assertions),
                  FormatDouble(incremental->total_ms, 1),
                  FormatDouble(incremental->mean_ms_per_assertion, 3),
                  std::to_string(incremental->initial_components) + " -> " +
                      std::to_string(incremental->final_components)});
    reporter.AddEntry("incremental", incremental->total_ms,
                      {{"assertions",
                        static_cast<double>(incremental->assertions)},
                       {"mean_ms_per_assertion",
                        incremental->mean_ms_per_assertion},
                       {"create_ms", incremental->create_ms},
                       {"initial_components",
                        static_cast<double>(incremental->initial_components)},
                       {"final_components",
                        static_cast<double>(incremental->final_components)}});
  }
  if (run_full) {
    full = RunMode(net, /*incremental=*/false, seed);
    if (!full.has_value()) return 1;
    table.AddRow({"full_resample",
                  std::to_string(full->assertions),
                  FormatDouble(full->total_ms, 1),
                  FormatDouble(full->mean_ms_per_assertion, 3),
                  std::to_string(full->initial_components) + " -> " +
                      std::to_string(full->final_components)});
    reporter.AddEntry("full_resample", full->total_ms,
                      {{"assertions", static_cast<double>(full->assertions)},
                       {"mean_ms_per_assertion", full->mean_ms_per_assertion},
                       {"create_ms", full->create_ms},
                       {"initial_components",
                        static_cast<double>(full->initial_components)},
                       {"final_components",
                        static_cast<double>(full->final_components)}});
  }
  table.Print(std::cout);

  if (incremental.has_value() && full.has_value()) {
    if (incremental->assertions != full->assertions) {
      // Bit-compatible modes must execute identical assertion sequences.
      std::cerr << "mode divergence: " << incremental->assertions << " vs "
                << full->assertions << " assertions\n";
      return 1;
    }
    const double speedup =
        incremental->mean_ms_per_assertion > 0.0
            ? full->mean_ms_per_assertion /
                  incremental->mean_ms_per_assertion
            : 0.0;
    reporter.AddMetric("speedup_mean_per_assertion", speedup);
    std::cout << "\nMean per-assertion speedup (full / incremental): "
              << FormatDouble(speedup, 2) << "x over " << full->assertions
              << " assertions.\n";
  }
  if (!reporter.Write()) return 1;
  std::cout << "JSON: " << reporter.OutputPath() << "\n";
  return 0;
}

}  // namespace
}  // namespace smn

int main() { return smn::Run(); }
