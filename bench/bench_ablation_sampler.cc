// Ablation of the sampler design choices DESIGN.md calls out:
//   (1) simulated-annealing acceptance (1 - e^-Δ) vs always-accept walks,
//   (2) maximalization of emitted samples (Definition-1 fidelity),
//   (3) cycle-closing repair vs the literal removal-only Algorithm 4.
// Quality is measured as KLratio against exhaustive enumeration on small
// networks (as in Fig. 7) plus the share of the exact instance support the
// sampler actually visits — the coverage metric that exposes the
// removal-only repair's blind spot for closed triangles.

#include <iostream>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "bench/synthetic_networks.h"
#include "core/exact_enumerator.h"
#include "core/sampler.h"
#include "sim/metrics.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace smn {
namespace {

struct Variant {
  const char* name;
  SamplerOptions options;
};

int Run() {
  bench::BenchReporter reporter("ablation_sampler");
  std::cout << "=== Ablation: sampler design choices (KLratio % and support "
               "coverage % vs exact, |C|=16) ===\n";

  std::vector<Variant> variants;
  {
    Variant full{"full (annealing+maximalize+closure)", {}};
    variants.push_back(full);
    Variant no_annealing{"no annealing", {}};
    no_annealing.options.annealing = false;
    variants.push_back(no_annealing);
    Variant no_maximalize{"no maximalize", {}};
    no_maximalize.options.maximalize = false;
    variants.push_back(no_maximalize);
    Variant no_closure{"removal-only repair (literal Alg. 4)", {}};
    no_closure.options.repair.close_cycles = false;
    variants.push_back(no_closure);
  }

  const size_t candidates = 16;
  const size_t samples = 512;
  TablePrinter table({"Variant", "KLratio (%)", "Coverage (%)",
                      "MeanSampleSize"});
  for (const Variant& variant : variants) {
    Stopwatch watch;
    double ratio_sum = 0.0;
    double coverage_sum = 0.0;
    double size_sum = 0.0;
    size_t settings = 0;
    for (uint64_t seed : {3u, 5u, 8u, 13u, 21u}) {
      bench::SyntheticNetwork synthetic =
          bench::BuildTinyNetwork(candidates, seed);
      Feedback feedback(candidates);
      ExactEnumerator enumerator(synthetic.network, synthetic.constraints);
      const auto exact = enumerator.Enumerate(feedback);
      if (!exact.ok() || exact->instances.empty()) continue;
      std::unordered_set<DynamicBitset, DynamicBitsetHash> support(
          exact->instances.begin(), exact->instances.end());

      Sampler sampler(synthetic.network, synthetic.constraints,
                      variant.options);
      Rng rng(seed * 101);
      std::vector<DynamicBitset> out;
      if (!sampler.SampleChain(feedback, samples, &rng, &out).ok()) continue;

      std::vector<double> counts(candidates, 0.0);
      std::unordered_set<DynamicBitset, DynamicBitsetHash> visited;
      double size = 0.0;
      for (const DynamicBitset& sample : out) {
        sample.ForEachSetBit([&](size_t c) { counts[c] += 1.0; });
        size += static_cast<double>(sample.Count());
        if (support.count(sample) > 0) visited.insert(sample);
      }
      for (double& count : counts) count /= static_cast<double>(out.size());

      ratio_sum += KlRatio(exact->probabilities, counts);
      coverage_sum += 100.0 * static_cast<double>(visited.size()) /
                      static_cast<double>(support.size());
      size_sum += size / static_cast<double>(out.size());
      ++settings;
    }
    reporter.AddEntry(variant.name, watch.ElapsedMillis(),
                      {{"klratio_pct", 100.0 * ratio_sum / settings},
                       {"coverage_pct", coverage_sum / settings},
                       {"mean_sample_size", size_sum / settings}});
    table.AddRow({variant.name,
                  FormatDouble(100.0 * ratio_sum / settings, 2),
                  FormatDouble(coverage_sum / settings, 1),
                  FormatDouble(size_sum / settings, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nShape to check: the full sampler has the lowest KLratio "
               "and (near-)complete coverage; removal-only repair leaves "
               "triangle-closing instances unvisited.\n";
  return reporter.Write() ? 0 : 1;
}

}  // namespace
}  // namespace smn

int main() { return smn::Run(); }
