// Reproduces Fig. 8 of the paper: the relation between computed probability
// and actual correctness on the BP dataset. Histogram over ten probability
// buckets of the frequency (% of all candidates) of correct vs incorrect
// correspondences. Shape to check: most mass above 0.5, and the
// correct:incorrect ratio growing sharply in the high-probability buckets.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "core/probabilistic_network.h"
#include "datasets/standard.h"
#include "sim/experiment.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace smn {
namespace {

int Run() {
  bench::BenchReporter reporter("fig8_probability_histogram");
  std::cout << "=== Fig. 8: probability vs correctness (BP, COMA candidates) "
               "===\n";
  const StandardDataset bp = MakeBpDataset();
  Rng rng(2014);
  const auto setup = BuildExperimentSetup(bp.config, bp.vocabulary,
                                          MatcherKind::kComaLike, &rng);
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return 1;
  }
  ProbabilisticNetworkOptions options;
  options.store.target_samples = 1000;
  options.store.min_samples = 200;
  Stopwatch estimate_watch;
  const auto pmn = ProbabilisticNetwork::Create(setup->network,
                                                setup->constraints, options,
                                                &rng);
  if (!pmn.ok()) {
    std::cerr << pmn.status() << "\n";
    return 1;
  }
  reporter.AddMetric("estimate_ms", estimate_watch.ElapsedMillis());

  const size_t total = setup->network.correspondence_count();
  std::vector<size_t> correct(10, 0);
  std::vector<size_t> incorrect(10, 0);
  for (CorrespondenceId c = 0; c < total; ++c) {
    const double p = pmn->probability(c);
    const size_t bucket = std::min<size_t>(9, static_cast<size_t>(p * 10.0));
    if (setup->truth_candidates.Test(c)) {
      ++correct[bucket];
    } else {
      ++incorrect[bucket];
    }
  }

  TablePrinter table({"Probability", "Correct (%)", "Incorrect (%)", "Ratio"});
  size_t high_mass = 0;
  for (size_t bucket = 0; bucket < 10; ++bucket) {
    const double correct_pct =
        100.0 * static_cast<double>(correct[bucket]) / static_cast<double>(total);
    const double incorrect_pct = 100.0 * static_cast<double>(incorrect[bucket]) /
                                 static_cast<double>(total);
    if (bucket >= 5) high_mass += correct[bucket] + incorrect[bucket];
    const std::string range = "[" + FormatDouble(bucket / 10.0, 1) + "," +
                              FormatDouble((bucket + 1) / 10.0, 1) + ")";
    reporter.AddEntry(
        "bucket_" + std::to_string(bucket), 0.0,
        {{"correct_pct", correct_pct}, {"incorrect_pct", incorrect_pct}});
    table.AddRow({range, FormatDouble(correct_pct, 1),
                  FormatDouble(incorrect_pct, 1),
                  incorrect[bucket] == 0
                      ? std::string("inf")
                      : FormatDouble(static_cast<double>(correct[bucket]) /
                                         static_cast<double>(incorrect[bucket]),
                                     2)});
  }
  table.Print(std::cout);
  const double candidate_precision = ScoreCandidates(*setup).precision;
  std::cout << "\n|C| = " << total << ", candidate precision = "
            << FormatDouble(candidate_precision, 3)
            << ", mass at probability >= 0.5: "
            << FormatDouble(100.0 * static_cast<double>(high_mass) /
                                static_cast<double>(total),
                            1)
            << "%\n"
            << "Shape to check: correct:incorrect ratio rises with the "
               "probability bucket (paper: ~20%/3% in [0.8,0.9), ~13%/1% in "
               "[0.9,1.0]).\n";
  reporter.AddMetric("candidates", static_cast<double>(total));
  reporter.AddMetric("candidate_precision", candidate_precision);
  reporter.AddMetric("mass_above_half_pct",
                     100.0 * static_cast<double>(high_mass) /
                         static_cast<double>(total));
  return reporter.Write() ? 0 : 1;
}

}  // namespace
}  // namespace smn

int main() { return smn::Run(); }
