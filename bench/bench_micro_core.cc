// Google-benchmark microbenchmarks of the engine hot paths: the repair of a
// single addition (Algorithm 4 + closure), one random-walk transition through
// the compiled walk kernel, full sample-chain draws, information-gain
// computation over the sample matrix, and the instantiation local search
// (Algorithm 2). A global allocation counter (operator new/delete overrides
// below) feeds the allocs_per_step / allocs_per_sample counters, so the
// kernel's zero-allocation steady state is recorded in the JSON trajectory
// alongside the timings.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench/bench_util.h"
#include "bench/synthetic_networks.h"
#include "core/feedback.h"
#include "core/instantiation.h"
#include "core/probabilistic_network.h"
#include "core/repair.h"
#include "core/sampler.h"
#include "core/walk_scratch.h"

namespace {
std::atomic<uint64_t> g_allocation_count{0};
}  // namespace

// The replacement operators intentionally pair malloc/free; GCC's
// -Wmismatched-new-delete heuristic cannot see through the global
// replacement and misfires at inlined call sites in this TU.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace smn {
namespace {

uint64_t AllocationCount() {
  return g_allocation_count.load(std::memory_order_relaxed);
}

void BM_RepairSingleAddition(benchmark::State& state) {
  const size_t candidates = static_cast<size_t>(state.range(0));
  bench::SyntheticNetwork synthetic =
      bench::BuildScalingNetwork(candidates, 0.5, 42);
  Feedback feedback(synthetic.network.correspondence_count());
  Sampler sampler(synthetic.network, synthetic.constraints);
  Rng rng(7);
  // Start from a representative mid-walk state.
  std::vector<DynamicBitset> seed_samples;
  sampler.SampleChain(feedback, 1, &rng, &seed_samples).ok();
  const DynamicBitset base = seed_samples.front();

  const size_t n = synthetic.network.correspondence_count();
  WalkScratch scratch(n);
  DynamicBitset instance = base;  // Equal-size buffer: assignment reuses it.
  for (auto _ : state) {
    instance = base;
    const CorrespondenceId added = static_cast<CorrespondenceId>(rng.Index(n));
    benchmark::DoNotOptimize(RepairInstance(synthetic.constraints, feedback,
                                            added, &instance, &scratch));
  }
}
BENCHMARK(BM_RepairSingleAddition)->Arg(128)->Arg(512)->Arg(1024)->Arg(2048);

void BM_SamplerWalkStep(benchmark::State& state) {
  const size_t candidates = static_cast<size_t>(state.range(0));
  bench::SyntheticNetwork synthetic =
      bench::BuildScalingNetwork(candidates, 0.5, 43);
  Feedback feedback(synthetic.network.correspondence_count());
  Sampler sampler(synthetic.network, synthetic.constraints);
  Rng rng(11);
  const size_t n = synthetic.network.correspondence_count();
  WalkScratch scratch(n);
  DynamicBitset current(n);
  for (auto _ : state) {
    // Step is an external call mutating `current` through a pointer — the
    // work cannot be elided, so no per-iteration DoNotOptimize overhead.
    sampler.Step(feedback, &rng, &current, &scratch).ok();
  }
  benchmark::DoNotOptimize(current);
  // Steady-state allocation probe, outside the timed loop: the kernel claim
  // is zero allocations per transition once the scratch is warm.
  constexpr size_t kProbeSteps = 4096;
  const uint64_t before = AllocationCount();
  for (size_t i = 0; i < kProbeSteps; ++i) {
    sampler.Step(feedback, &rng, &current, &scratch).ok();
  }
  state.counters["allocs_per_step"] =
      static_cast<double>(AllocationCount() - before) /
      static_cast<double>(kProbeSteps);
}
BENCHMARK(BM_SamplerWalkStep)->Arg(128)->Arg(512)->Arg(1024)->Arg(2048);

void BM_SampleChain(benchmark::State& state) {
  const size_t candidates = static_cast<size_t>(state.range(0));
  bench::SyntheticNetwork synthetic =
      bench::BuildScalingNetwork(candidates, 0.5, 44);
  Feedback feedback(synthetic.network.correspondence_count());
  Sampler sampler(synthetic.network, synthetic.constraints);
  Rng rng(13);
  constexpr size_t kSamplesPerDraw = 10;
  for (auto _ : state) {
    std::vector<DynamicBitset> out;
    sampler.SampleChain(feedback, kSamplesPerDraw, &rng, &out).ok();
    benchmark::DoNotOptimize(out);
  }
  // Per-sample allocations for a warm chain draw (emitted sample copies and
  // the output vector dominate; the walk steps themselves are free).
  constexpr size_t kProbeDraws = 16;
  std::vector<DynamicBitset> probe_out;
  probe_out.reserve(kProbeDraws * kSamplesPerDraw);
  const uint64_t before = AllocationCount();
  for (size_t i = 0; i < kProbeDraws; ++i) {
    sampler.SampleChain(feedback, kSamplesPerDraw, &rng, &probe_out).ok();
  }
  state.counters["allocs_per_sample"] =
      static_cast<double>(AllocationCount() - before) /
      static_cast<double>(kProbeDraws * kSamplesPerDraw);
}
BENCHMARK(BM_SampleChain)->Arg(128)->Arg(512)->Arg(1024);

void BM_InformationGains(benchmark::State& state) {
  const size_t candidates = static_cast<size_t>(state.range(0));
  bench::SyntheticNetwork synthetic =
      bench::BuildScalingNetwork(candidates, 0.5, 45);
  ProbabilisticNetworkOptions options;
  options.store.target_samples = 500;
  options.store.min_samples = 100;
  Rng rng(17);
  auto pmn = ProbabilisticNetwork::Create(synthetic.network,
                                          synthetic.constraints, options, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmn->InformationGains());
  }
}
BENCHMARK(BM_InformationGains)->Arg(128)->Arg(512);

void BM_Instantiate(benchmark::State& state) {
  const size_t candidates = static_cast<size_t>(state.range(0));
  bench::SyntheticNetwork synthetic =
      bench::BuildScalingNetwork(candidates, 0.5, 46);
  ProbabilisticNetworkOptions options;
  options.store.target_samples = 300;
  options.store.min_samples = 50;
  Rng rng(19);
  auto pmn = ProbabilisticNetwork::Create(synthetic.network,
                                          synthetic.constraints, options, &rng);
  InstantiationOptions instantiation;
  instantiation.iterations = 100;
  const Instantiator instantiator(instantiation);
  for (auto _ : state) {
    benchmark::DoNotOptimize(instantiator.Instantiate(*pmn, &rng));
  }
}
BENCHMARK(BM_Instantiate)->Arg(128)->Arg(512);

/// Console reporter that additionally records every benchmark case into the
/// JSON trajectory (BENCH_micro_core.json) next to the usual table output.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(bench::BenchReporter* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      // Skip aggregates and errored/skipped runs (zero iterations). Checked
      // via iterations rather than Run::error_occurred, which was replaced
      // by the Skipped enum in google-benchmark 1.8.
      if (run.run_type == Run::RT_Aggregate || run.iterations <= 0) continue;
      const double iterations = static_cast<double>(run.iterations);
      const double real_ms = run.real_accumulated_time * 1e3;
      const double cpu_ms = run.cpu_accumulated_time * 1e3;
      bench::BenchReporter::Fields fields = {
          {"iterations", iterations},
          {"real_ms_per_iter", real_ms / iterations},
          {"cpu_ms_per_iter", cpu_ms / iterations}};
      // User counters (e.g. allocs_per_step) ride along into the JSON.
      for (const auto& [name, counter] : run.counters) {
        fields.emplace_back(name, static_cast<double>(counter.value));
      }
      out_->AddEntry(run.benchmark_name(), real_ms, std::move(fields));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchReporter* out_;
};

}  // namespace
}  // namespace smn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  smn::bench::BenchReporter reporter("micro_core");
  smn::JsonCapturingReporter display(&reporter);
  const size_t executed = benchmark::RunSpecifiedBenchmarks(&display);
  reporter.AddMetric("benchmarks_executed", static_cast<double>(executed));
  benchmark::Shutdown();
  return reporter.Write() ? 0 : 1;
}
