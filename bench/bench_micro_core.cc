// Google-benchmark microbenchmarks of the engine hot paths: the repair of a
// single addition (Algorithm 4 + closure), one random-walk transition, full
// sample-chain draws, information-gain computation over the sample matrix,
// and the instantiation local search (Algorithm 2).

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "bench/synthetic_networks.h"
#include "core/feedback.h"
#include "core/instantiation.h"
#include "core/probabilistic_network.h"
#include "core/repair.h"
#include "core/sampler.h"

namespace smn {
namespace {

void BM_RepairSingleAddition(benchmark::State& state) {
  const size_t candidates = static_cast<size_t>(state.range(0));
  bench::SyntheticNetwork synthetic =
      bench::BuildScalingNetwork(candidates, 0.5, 42);
  Feedback feedback(synthetic.network.correspondence_count());
  Sampler sampler(synthetic.network, synthetic.constraints);
  Rng rng(7);
  // Start from a representative mid-walk state.
  std::vector<DynamicBitset> seed_samples;
  sampler.SampleChain(feedback, 1, &rng, &seed_samples).ok();
  const DynamicBitset base = seed_samples.front();

  const size_t n = synthetic.network.correspondence_count();
  for (auto _ : state) {
    DynamicBitset instance = base;
    const CorrespondenceId added = static_cast<CorrespondenceId>(rng.Index(n));
    benchmark::DoNotOptimize(
        RepairInstance(synthetic.constraints, feedback, added, &instance));
  }
}
BENCHMARK(BM_RepairSingleAddition)->Arg(128)->Arg(512)->Arg(2048);

void BM_SamplerWalkStep(benchmark::State& state) {
  const size_t candidates = static_cast<size_t>(state.range(0));
  bench::SyntheticNetwork synthetic =
      bench::BuildScalingNetwork(candidates, 0.5, 43);
  Feedback feedback(synthetic.network.correspondence_count());
  Sampler sampler(synthetic.network, synthetic.constraints);
  Rng rng(11);
  DynamicBitset current(synthetic.network.correspondence_count());
  for (auto _ : state) {
    auto next = sampler.NextInstance(current, feedback, &rng);
    current = std::move(next).value();
    benchmark::DoNotOptimize(current);
  }
}
BENCHMARK(BM_SamplerWalkStep)->Arg(128)->Arg(512)->Arg(2048);

void BM_SampleChain(benchmark::State& state) {
  const size_t candidates = static_cast<size_t>(state.range(0));
  bench::SyntheticNetwork synthetic =
      bench::BuildScalingNetwork(candidates, 0.5, 44);
  Feedback feedback(synthetic.network.correspondence_count());
  Sampler sampler(synthetic.network, synthetic.constraints);
  Rng rng(13);
  for (auto _ : state) {
    std::vector<DynamicBitset> out;
    sampler.SampleChain(feedback, 10, &rng, &out).ok();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SampleChain)->Arg(128)->Arg(1024);

void BM_InformationGains(benchmark::State& state) {
  const size_t candidates = static_cast<size_t>(state.range(0));
  bench::SyntheticNetwork synthetic =
      bench::BuildScalingNetwork(candidates, 0.5, 45);
  ProbabilisticNetworkOptions options;
  options.store.target_samples = 500;
  options.store.min_samples = 100;
  Rng rng(17);
  auto pmn = ProbabilisticNetwork::Create(synthetic.network,
                                          synthetic.constraints, options, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmn->InformationGains());
  }
}
BENCHMARK(BM_InformationGains)->Arg(128)->Arg(512);

void BM_Instantiate(benchmark::State& state) {
  const size_t candidates = static_cast<size_t>(state.range(0));
  bench::SyntheticNetwork synthetic =
      bench::BuildScalingNetwork(candidates, 0.5, 46);
  ProbabilisticNetworkOptions options;
  options.store.target_samples = 300;
  options.store.min_samples = 50;
  Rng rng(19);
  auto pmn = ProbabilisticNetwork::Create(synthetic.network,
                                          synthetic.constraints, options, &rng);
  InstantiationOptions instantiation;
  instantiation.iterations = 100;
  const Instantiator instantiator(instantiation);
  for (auto _ : state) {
    benchmark::DoNotOptimize(instantiator.Instantiate(*pmn, &rng));
  }
}
BENCHMARK(BM_Instantiate)->Arg(128)->Arg(512);

/// Console reporter that additionally records every benchmark case into the
/// JSON trajectory (BENCH_micro_core.json) next to the usual table output.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(bench::BenchReporter* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      // Skip aggregates and errored/skipped runs (zero iterations). Checked
      // via iterations rather than Run::error_occurred, which was replaced
      // by the Skipped enum in google-benchmark 1.8.
      if (run.run_type == Run::RT_Aggregate || run.iterations <= 0) continue;
      const double iterations = static_cast<double>(run.iterations);
      const double real_ms = run.real_accumulated_time * 1e3;
      const double cpu_ms = run.cpu_accumulated_time * 1e3;
      out_->AddEntry(run.benchmark_name(), real_ms,
                     {{"iterations", iterations},
                      {"real_ms_per_iter", real_ms / iterations},
                      {"cpu_ms_per_iter", cpu_ms / iterations}});
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchReporter* out_;
};

}  // namespace
}  // namespace smn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  smn::bench::BenchReporter reporter("micro_core");
  smn::JsonCapturingReporter display(&reporter);
  const size_t executed = benchmark::RunSpecifiedBenchmarks(&display);
  reporter.AddMetric("benchmarks_executed", static_cast<double>(executed));
  benchmark::Shutdown();
  return reporter.Write() ? 0 : 1;
}
