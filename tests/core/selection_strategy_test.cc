#include "core/selection_strategy.h"

#include <gtest/gtest.h>

#include "tests/testing/test_networks.h"

namespace smn {
namespace {

ProbabilisticNetworkOptions SmallOptions() {
  ProbabilisticNetworkOptions options;
  options.store.target_samples = 100;
  options.store.min_samples = 20;
  return options;
}

class SelectionStrategyTest : public ::testing::Test {
 protected:
  SelectionStrategyTest() : fig1_(testing::MakeFig1Network()), rng_(21) {}

  ProbabilisticNetwork MakePmn() {
    return ProbabilisticNetwork::Create(fig1_.network, fig1_.constraints,
                                        SmallOptions(), &rng_)
        .value();
  }

  testing::Fig1Network fig1_;
  Rng rng_;
};

TEST_F(SelectionStrategyTest, FactoryProducesAllKinds) {
  for (StrategyKind kind :
       {StrategyKind::kRandom, StrategyKind::kInformationGain,
        StrategyKind::kMaxEntropy, StrategyKind::kMinProbability,
        StrategyKind::kSequential}) {
    auto strategy = MakeStrategy(kind);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->name(), StrategyKindName(kind));
  }
}

TEST_F(SelectionStrategyTest, InformationGainAvoidsC1OnFig1) {
  // IG(c1) = 1 < IG(c2..c5) = 2: the heuristic must never pick c1 first.
  ProbabilisticNetwork pmn = MakePmn();
  auto strategy = MakeStrategy(StrategyKind::kInformationGain);
  for (int trial = 0; trial < 20; ++trial) {
    const auto selected = strategy->Select(pmn, &rng_);
    ASSERT_TRUE(selected.has_value());
    EXPECT_NE(*selected, fig1_.c1);
  }
}

TEST_F(SelectionStrategyTest, RandomCoversAllUncertain) {
  ProbabilisticNetwork pmn = MakePmn();
  auto strategy = MakeStrategy(StrategyKind::kRandom);
  std::vector<int> hits(5, 0);
  for (int trial = 0; trial < 200; ++trial) {
    const auto selected = strategy->Select(pmn, &rng_);
    ASSERT_TRUE(selected.has_value());
    ++hits[*selected];
  }
  for (int h : hits) EXPECT_GT(h, 10);
}

TEST_F(SelectionStrategyTest, SequentialPicksLowestId) {
  ProbabilisticNetwork pmn = MakePmn();
  auto strategy = MakeStrategy(StrategyKind::kSequential);
  EXPECT_EQ(strategy->Select(pmn, &rng_), std::optional<CorrespondenceId>(0));
}

TEST_F(SelectionStrategyTest, StrategiesSkipCertainCorrespondences) {
  ProbabilisticNetwork pmn = MakePmn();
  ASSERT_TRUE(pmn.Assert(fig1_.c2, true, &rng_).ok());
  // c2 (approved) and c4 (certainly excluded) are no longer eligible.
  for (StrategyKind kind :
       {StrategyKind::kRandom, StrategyKind::kInformationGain,
        StrategyKind::kMaxEntropy, StrategyKind::kMinProbability,
        StrategyKind::kSequential}) {
    auto strategy = MakeStrategy(kind);
    for (int trial = 0; trial < 10; ++trial) {
      const auto selected = strategy->Select(pmn, &rng_);
      ASSERT_TRUE(selected.has_value());
      EXPECT_NE(*selected, fig1_.c2);
      EXPECT_NE(*selected, fig1_.c4);
    }
  }
}

TEST_F(SelectionStrategyTest, ReturnsNulloptWhenCertain) {
  ProbabilisticNetwork pmn = MakePmn();
  ASSERT_TRUE(pmn.Assert(fig1_.c1, true, &rng_).ok());
  ASSERT_TRUE(pmn.Assert(fig1_.c2, true, &rng_).ok());
  for (StrategyKind kind :
       {StrategyKind::kRandom, StrategyKind::kInformationGain,
        StrategyKind::kMaxEntropy, StrategyKind::kMinProbability,
        StrategyKind::kSequential}) {
    EXPECT_EQ(MakeStrategy(kind)->Select(pmn, &rng_), std::nullopt);
  }
}

TEST_F(SelectionStrategyTest, MaxEntropyPicksClosestToHalf) {
  ProbabilisticNetwork pmn = MakePmn();
  ASSERT_TRUE(pmn.Assert(fig1_.c2, true, &rng_).ok());
  // Remaining probabilities: c1 = c3 = c5 = 0.5 — all equally eligible.
  auto strategy = MakeStrategy(StrategyKind::kMaxEntropy);
  const auto selected = strategy->Select(pmn, &rng_);
  ASSERT_TRUE(selected.has_value());
  EXPECT_TRUE(*selected == fig1_.c1 || *selected == fig1_.c3 ||
              *selected == fig1_.c5);
}

}  // namespace
}  // namespace smn
