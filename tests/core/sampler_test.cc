#include "core/sampler.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "core/exact_enumerator.h"
#include "core/matching_instance.h"
#include "tests/testing/test_networks.h"

namespace smn {
namespace {

class SamplerTest : public ::testing::Test {
 protected:
  SamplerTest()
      : fig1_(testing::MakeFig1Network()),
        feedback_(fig1_.network.correspondence_count()) {}

  testing::Fig1Network fig1_;
  Feedback feedback_;
};

TEST_F(SamplerTest, SamplesAreMatchingInstances) {
  Sampler sampler(fig1_.network, fig1_.constraints);
  Rng rng(1);
  std::vector<DynamicBitset> samples;
  ASSERT_TRUE(sampler.SampleChain(feedback_, 200, &rng, &samples).ok());
  ASSERT_EQ(samples.size(), 200u);
  for (const DynamicBitset& sample : samples) {
    EXPECT_TRUE(IsMatchingInstance(fig1_.constraints, feedback_, sample))
        << sample.ToString();
  }
}

TEST_F(SamplerTest, VisitsTheMainInstancesOfFig1) {
  Sampler sampler(fig1_.network, fig1_.constraints);
  Rng rng(2);
  std::vector<DynamicBitset> samples;
  ASSERT_TRUE(sampler.SampleChain(feedback_, 400, &rng, &samples).ok());
  std::unordered_set<DynamicBitset, DynamicBitsetHash> distinct(samples.begin(),
                                                                samples.end());
  // Fig. 1 has five matching instances. The add-and-repair walk must visit
  // the four substantial ones — in particular the two closed triangles I1
  // and I2, which a removal-only repair can never assemble. (The fifth, the
  // singleton {c1}, has a vanishing basin under any add-based walk; the
  // sample store covers it via exact enumeration on networks this small.)
  EXPECT_GE(distinct.size(), 4u);
  auto contains = [&](std::initializer_list<CorrespondenceId> ids) {
    DynamicBitset target(fig1_.network.correspondence_count());
    for (CorrespondenceId id : ids) target.Set(id);
    return distinct.count(target) > 0;
  };
  EXPECT_TRUE(contains({fig1_.c1, fig1_.c2, fig1_.c3}));
  EXPECT_TRUE(contains({fig1_.c1, fig1_.c4, fig1_.c5}));
  EXPECT_TRUE(contains({fig1_.c3, fig1_.c4}));
  EXPECT_TRUE(contains({fig1_.c2, fig1_.c5}));
}

TEST_F(SamplerTest, RespectsApprovals) {
  ASSERT_TRUE(feedback_.Approve(fig1_.c2).ok());
  Sampler sampler(fig1_.network, fig1_.constraints);
  Rng rng(3);
  std::vector<DynamicBitset> samples;
  ASSERT_TRUE(sampler.SampleChain(feedback_, 100, &rng, &samples).ok());
  for (const DynamicBitset& sample : samples) {
    EXPECT_TRUE(sample.Test(fig1_.c2));
  }
}

TEST_F(SamplerTest, RespectsDisapprovals) {
  ASSERT_TRUE(feedback_.Disapprove(fig1_.c1).ok());
  Sampler sampler(fig1_.network, fig1_.constraints);
  Rng rng(4);
  std::vector<DynamicBitset> samples;
  ASSERT_TRUE(sampler.SampleChain(feedback_, 100, &rng, &samples).ok());
  for (const DynamicBitset& sample : samples) {
    EXPECT_FALSE(sample.Test(fig1_.c1));
  }
}

TEST_F(SamplerTest, InconsistentApprovalsRejected) {
  ASSERT_TRUE(feedback_.Approve(fig1_.c3).ok());
  ASSERT_TRUE(feedback_.Approve(fig1_.c5).ok());  // 1-1 conflict.
  Sampler sampler(fig1_.network, fig1_.constraints);
  Rng rng(5);
  std::vector<DynamicBitset> samples;
  EXPECT_EQ(sampler.SampleChain(feedback_, 10, &rng, &samples).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(SamplerTest, NonMaximalizedSamplesAreStillConsistent) {
  SamplerOptions options;
  options.maximalize = false;
  Sampler sampler(fig1_.network, fig1_.constraints, options);
  Rng rng(6);
  std::vector<DynamicBitset> samples;
  ASSERT_TRUE(sampler.SampleChain(feedback_, 100, &rng, &samples).ok());
  for (const DynamicBitset& sample : samples) {
    EXPECT_TRUE(fig1_.constraints.IsSatisfied(sample));
    EXPECT_TRUE(feedback_.IsRespectedBy(sample));
  }
}

TEST_F(SamplerTest, NextInstanceKeepsConsistency) {
  Sampler sampler(fig1_.network, fig1_.constraints);
  Rng rng(7);
  DynamicBitset state = feedback_.approved();
  for (int step = 0; step < 50; ++step) {
    auto next = sampler.NextInstance(state, feedback_, &rng);
    ASSERT_TRUE(next.ok());
    state = *next;
    EXPECT_TRUE(fig1_.constraints.IsSatisfied(state));
  }
}

TEST(SamplerPropertyTest, SampledInstancesMatchExactEnumerationSupport) {
  // On random networks every sampled instance must be one of the exactly
  // enumerated instances (the sampler explores Ω, nothing outside it).
  for (uint64_t seed : {11u, 22u, 33u}) {
    const testing::RandomNetwork random =
        testing::MakeRandomNetwork({3, 3, 0.4, seed});
    Feedback feedback(random.network.correspondence_count());
    ExactEnumerator enumerator(random.network, random.constraints);
    const auto exact = enumerator.Enumerate(feedback);
    ASSERT_TRUE(exact.ok());
    std::unordered_set<DynamicBitset, DynamicBitsetHash> support(
        exact->instances.begin(), exact->instances.end());

    Sampler sampler(random.network, random.constraints);
    Rng rng(seed);
    std::vector<DynamicBitset> samples;
    ASSERT_TRUE(sampler.SampleChain(feedback, 150, &rng, &samples).ok());
    for (const DynamicBitset& sample : samples) {
      EXPECT_TRUE(support.count(sample) > 0) << sample.ToString();
    }
  }
}

}  // namespace
}  // namespace smn
