#include "core/sample_store.h"

#include <gtest/gtest.h>

#include "core/matching_instance.h"
#include "tests/testing/test_networks.h"

namespace smn {
namespace {

class SampleStoreTest : public ::testing::Test {
 protected:
  SampleStoreTest()
      : fig1_(testing::MakeFig1Network()),
        feedback_(fig1_.network.correspondence_count()) {}

  SampleStoreOptions SmallStore() const {
    SampleStoreOptions options;
    options.target_samples = 100;
    options.min_samples = 20;
    return options;
  }

  testing::Fig1Network fig1_;
  Feedback feedback_;
};

TEST_F(SampleStoreTest, InitializeDetectsExhaustionOnTinyNetworks) {
  // Fig. 1 has only 5 matching instances — far fewer than n_min = 20 — so
  // two sampling rounds cannot produce 20 distinct instances and the store
  // must conclude Ω* = Ω.
  SampleStore store(fig1_.network, fig1_.constraints, SmallStore());
  Rng rng(1);
  ASSERT_TRUE(store.Initialize(feedback_, &rng).ok());
  EXPECT_TRUE(store.exhausted());
  EXPECT_EQ(store.samples().size(), 5u);
  EXPECT_EQ(store.DistinctCount(), 5u);
}

TEST_F(SampleStoreTest, ExhaustedProbabilitiesAreExact) {
  SampleStore store(fig1_.network, fig1_.constraints, SmallStore());
  Rng rng(2);
  ASSERT_TRUE(store.Initialize(feedback_, &rng).ok());
  // c1 is in 3 of the 5 instances, everything else in 2.
  const auto probabilities = store.ComputeProbabilities();
  EXPECT_DOUBLE_EQ(probabilities[fig1_.c1], 0.6);
  for (CorrespondenceId c : {fig1_.c2, fig1_.c3, fig1_.c4, fig1_.c5}) {
    EXPECT_DOUBLE_EQ(probabilities[c], 0.4);
  }
}

TEST_F(SampleStoreTest, ApprovalFiltersSamples) {
  SampleStore store(fig1_.network, fig1_.constraints, SmallStore());
  Rng rng(3);
  ASSERT_TRUE(store.Initialize(feedback_, &rng).ok());
  ASSERT_TRUE(feedback_.Approve(fig1_.c2).ok());
  ASSERT_TRUE(store.ApplyAssertion(fig1_.c2, true, feedback_, &rng).ok());
  // Instances containing c2: {c1,c2,c3} and {c2,c5}.
  EXPECT_EQ(store.samples().size(), 2u);
  for (const DynamicBitset& sample : store.samples()) {
    EXPECT_TRUE(sample.Test(fig1_.c2));
  }
  EXPECT_TRUE(store.exhausted());
}

TEST_F(SampleStoreTest, DisapprovalResamplesForNewInstances) {
  SampleStore store(fig1_.network, fig1_.constraints, SmallStore());
  Rng rng(4);
  ASSERT_TRUE(store.Initialize(feedback_, &rng).ok());
  ASSERT_TRUE(feedback_.Disapprove(fig1_.c5).ok());
  ASSERT_TRUE(store.ApplyAssertion(fig1_.c5, false, feedback_, &rng).ok());
  // Disapproving c5 creates the new maximal instance {c2}; the store must
  // re-sample (filtering alone would only keep {c1,c2,c3}, {c3,c4}, {c1}).
  EXPECT_TRUE(store.exhausted());
  EXPECT_EQ(store.DistinctCount(), 4u);
  DynamicBitset just_c2(fig1_.network.correspondence_count());
  just_c2.Set(fig1_.c2);
  bool found = false;
  for (const DynamicBitset& sample : store.samples()) {
    if (sample == just_c2) found = true;
    EXPECT_TRUE(IsMatchingInstance(fig1_.constraints, feedback_, sample));
  }
  EXPECT_TRUE(found);
}

TEST_F(SampleStoreTest, ProbabilitiesReflectAssertions) {
  SampleStore store(fig1_.network, fig1_.constraints, SmallStore());
  Rng rng(5);
  ASSERT_TRUE(store.Initialize(feedback_, &rng).ok());
  ASSERT_TRUE(feedback_.Approve(fig1_.c1).ok());
  ASSERT_TRUE(store.ApplyAssertion(fig1_.c1, true, feedback_, &rng).ok());
  const auto probabilities = store.ComputeProbabilities();
  EXPECT_DOUBLE_EQ(probabilities[fig1_.c1], 1.0);
  // Instances containing c1: I1, I2 and {c1} — the rest at 1/3 each.
  EXPECT_DOUBLE_EQ(probabilities[fig1_.c2], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(probabilities[fig1_.c4], 1.0 / 3.0);
}

TEST_F(SampleStoreTest, LargerNetworkKeepsTargetSampleCount) {
  const testing::RandomNetwork random =
      testing::MakeRandomNetwork({4, 4, 0.5, 77});
  Feedback feedback(random.network.correspondence_count());
  SampleStoreOptions options;
  options.target_samples = 60;
  options.min_samples = 5;
  SampleStore store(random.network, random.constraints, options);
  Rng rng(6);
  ASSERT_TRUE(store.Initialize(feedback, &rng).ok());
  if (!store.exhausted()) {
    EXPECT_EQ(store.samples().size(), 60u);
  }
  for (const DynamicBitset& sample : store.samples()) {
    EXPECT_TRUE(IsMatchingInstance(random.constraints, feedback, sample));
  }
}

TEST_F(SampleStoreTest, EmptyNetworkProbabilities) {
  NetworkBuilder builder;
  builder.AddSchema("A");
  builder.AddSchema("B");
  builder.AddCompleteGraph();
  Network network = builder.Build().value();
  ConstraintSet constraints = testing::MakeStandardConstraints(network);
  SampleStore store(network, constraints, SmallStore());
  Feedback feedback(0);
  Rng rng(7);
  ASSERT_TRUE(store.Initialize(feedback, &rng).ok());
  EXPECT_TRUE(store.ComputeProbabilities().empty());
}

}  // namespace
}  // namespace smn
