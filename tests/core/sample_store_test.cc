#include "core/sample_store.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/matching_instance.h"
#include "core/probabilistic_network.h"
#include "tests/testing/test_networks.h"

namespace smn {
namespace {

class SampleStoreTest : public ::testing::Test {
 protected:
  SampleStoreTest()
      : fig1_(testing::MakeFig1Network()),
        feedback_(fig1_.network.correspondence_count()) {}

  SampleStoreOptions SmallStore() const {
    SampleStoreOptions options;
    options.target_samples = 100;
    options.min_samples = 20;
    return options;
  }

  testing::Fig1Network fig1_;
  Feedback feedback_;
};

TEST_F(SampleStoreTest, InitializeDetectsExhaustionOnTinyNetworks) {
  // Fig. 1 has only 5 matching instances — far fewer than n_min = 20 — so
  // two sampling rounds cannot produce 20 distinct instances and the store
  // must conclude Ω* = Ω.
  SampleStore store(fig1_.network, fig1_.constraints, SmallStore());
  Rng rng(1);
  ASSERT_TRUE(store.Initialize(feedback_, &rng).ok());
  EXPECT_TRUE(store.exhausted());
  EXPECT_EQ(store.samples().size(), 5u);
  EXPECT_EQ(store.DistinctCount(), 5u);
}

TEST_F(SampleStoreTest, ExhaustedProbabilitiesAreExact) {
  SampleStore store(fig1_.network, fig1_.constraints, SmallStore());
  Rng rng(2);
  ASSERT_TRUE(store.Initialize(feedback_, &rng).ok());
  // c1 is in 3 of the 5 instances, everything else in 2.
  const auto probabilities = store.ComputeProbabilities();
  EXPECT_DOUBLE_EQ(probabilities[fig1_.c1], 0.6);
  for (CorrespondenceId c : {fig1_.c2, fig1_.c3, fig1_.c4, fig1_.c5}) {
    EXPECT_DOUBLE_EQ(probabilities[c], 0.4);
  }
}

TEST_F(SampleStoreTest, ApprovalFiltersSamples) {
  SampleStore store(fig1_.network, fig1_.constraints, SmallStore());
  Rng rng(3);
  ASSERT_TRUE(store.Initialize(feedback_, &rng).ok());
  ASSERT_TRUE(feedback_.Approve(fig1_.c2).ok());
  ASSERT_TRUE(store.ApplyAssertion(fig1_.c2, true, feedback_, &rng).ok());
  // Instances containing c2: {c1,c2,c3} and {c2,c5}.
  EXPECT_EQ(store.samples().size(), 2u);
  for (const DynamicBitset& sample : store.samples()) {
    EXPECT_TRUE(sample.Test(fig1_.c2));
  }
  EXPECT_TRUE(store.exhausted());
}

TEST_F(SampleStoreTest, DisapprovalResamplesForNewInstances) {
  SampleStore store(fig1_.network, fig1_.constraints, SmallStore());
  Rng rng(4);
  ASSERT_TRUE(store.Initialize(feedback_, &rng).ok());
  ASSERT_TRUE(feedback_.Disapprove(fig1_.c5).ok());
  ASSERT_TRUE(store.ApplyAssertion(fig1_.c5, false, feedback_, &rng).ok());
  // Disapproving c5 creates the new maximal instance {c2}; the store must
  // re-sample (filtering alone would only keep {c1,c2,c3}, {c3,c4}, {c1}).
  EXPECT_TRUE(store.exhausted());
  EXPECT_EQ(store.DistinctCount(), 4u);
  DynamicBitset just_c2(fig1_.network.correspondence_count());
  just_c2.Set(fig1_.c2);
  bool found = false;
  for (const DynamicBitset& sample : store.samples()) {
    if (sample == just_c2) found = true;
    EXPECT_TRUE(IsMatchingInstance(fig1_.constraints, feedback_, sample));
  }
  EXPECT_TRUE(found);
}

TEST_F(SampleStoreTest, ProbabilitiesReflectAssertions) {
  SampleStore store(fig1_.network, fig1_.constraints, SmallStore());
  Rng rng(5);
  ASSERT_TRUE(store.Initialize(feedback_, &rng).ok());
  ASSERT_TRUE(feedback_.Approve(fig1_.c1).ok());
  ASSERT_TRUE(store.ApplyAssertion(fig1_.c1, true, feedback_, &rng).ok());
  const auto probabilities = store.ComputeProbabilities();
  EXPECT_DOUBLE_EQ(probabilities[fig1_.c1], 1.0);
  // Instances containing c1: I1, I2 and {c1} — the rest at 1/3 each.
  EXPECT_DOUBLE_EQ(probabilities[fig1_.c2], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(probabilities[fig1_.c4], 1.0 / 3.0);
}

TEST_F(SampleStoreTest, LargerNetworkKeepsTargetSampleCount) {
  const testing::RandomNetwork random =
      testing::MakeRandomNetwork({4, 4, 0.5, 77});
  Feedback feedback(random.network.correspondence_count());
  SampleStoreOptions options;
  options.target_samples = 60;
  options.min_samples = 5;
  SampleStore store(random.network, random.constraints, options);
  Rng rng(6);
  ASSERT_TRUE(store.Initialize(feedback, &rng).ok());
  if (!store.exhausted()) {
    EXPECT_EQ(store.samples().size(), 60u);
  }
  for (const DynamicBitset& sample : store.samples()) {
    EXPECT_TRUE(IsMatchingInstance(random.constraints, feedback, sample));
  }
}

TEST_F(SampleStoreTest, WeightedProbabilitiesReflectSoftEvidence) {
  // Fig. 1 exhausted: 5 instances, c1 in 3 of them. One approving answer on
  // c1 at ε = 0.2 weights c1-instances 0.8 and the rest 0.2:
  //   p(c1) = 3·0.8 / (3·0.8 + 2·0.2) = 6/7.
  SampleStore store(fig1_.network, fig1_.constraints, SmallStore());
  Rng rng(1);
  ASSERT_TRUE(store.Initialize(feedback_, &rng).ok());
  ASSERT_TRUE(store.exhausted());
  SoftEvidence evidence(fig1_.network.correspondence_count());
  ASSERT_TRUE(evidence.Record(fig1_.c1, true, 0.2).ok());
  const std::vector<double> weighted =
      store.ComputeWeightedProbabilities(evidence);
  EXPECT_NEAR(weighted[fig1_.c1], 6.0 / 7.0, 1e-12);
  // Every other correspondence sits in one c1-instance and one non-c1
  // instance: p = (0.8 + 0.2) / 2.8 = 5/14.
  for (CorrespondenceId c : {fig1_.c2, fig1_.c3, fig1_.c4, fig1_.c5}) {
    EXPECT_NEAR(weighted[c], 5.0 / 14.0, 1e-12);
  }
  // Differential pin against the per-component engine: the store-global
  // reweighting and ProbabilisticNetwork::AssertSoft implement the same
  // w(I)-weighted Equation 2 and must not drift apart.
  Rng pmn_rng(3);
  ProbabilisticNetwork pmn =
      ProbabilisticNetwork::Create(fig1_.network, fig1_.constraints,
                                   ProbabilisticNetworkOptions{}, &pmn_rng)
          .value();
  ASSERT_TRUE(pmn.AssertSoft(fig1_.c1, true, 0.2, &pmn_rng).ok());
  for (CorrespondenceId c = 0; c < weighted.size(); ++c) {
    EXPECT_NEAR(weighted[c], pmn.probability(c), 1e-12);
  }
}

TEST_F(SampleStoreTest, WeightedProbabilitiesDegenerateCases) {
  SampleStore store(fig1_.network, fig1_.constraints, SmallStore());
  Rng rng(1);
  ASSERT_TRUE(store.Initialize(feedback_, &rng).ok());
  // No evidence: bitwise equal to the unweighted marginals.
  SoftEvidence empty(fig1_.network.correspondence_count());
  const std::vector<double> unweighted = store.ComputeProbabilities();
  const std::vector<double> no_evidence =
      store.ComputeWeightedProbabilities(empty);
  ASSERT_EQ(no_evidence.size(), unweighted.size());
  for (size_t c = 0; c < unweighted.size(); ++c) {
    EXPECT_EQ(no_evidence[c], unweighted[c]);
  }
  // Hard consistent evidence (ε = 0) equals the post-filter marginals: a
  // hard approval of c2 keeps exactly {c1,c2,c3} and {c2,c5}.
  SoftEvidence hard(fig1_.network.correspondence_count());
  ASSERT_TRUE(hard.Record(fig1_.c2, true, 0.0).ok());
  const std::vector<double> filtered =
      store.ComputeWeightedProbabilities(hard);
  EXPECT_DOUBLE_EQ(filtered[fig1_.c2], 1.0);
  EXPECT_DOUBLE_EQ(filtered[fig1_.c1], 0.5);
  EXPECT_DOUBLE_EQ(filtered[fig1_.c3], 0.5);
  EXPECT_DOUBLE_EQ(filtered[fig1_.c4], 0.0);
  EXPECT_DOUBLE_EQ(filtered[fig1_.c5], 0.5);
  // Evidence that zero-weights every sample falls back to unweighted.
  SoftEvidence contradictory(fig1_.network.correspondence_count());
  ASSERT_TRUE(contradictory.Record(fig1_.c1, true, 0.0).ok());
  ASSERT_TRUE(contradictory.Record(fig1_.c2, false, 0.0).ok());
  ASSERT_TRUE(contradictory.Record(fig1_.c3, true, 0.0).ok());
  ASSERT_TRUE(contradictory.Record(fig1_.c4, true, 0.0).ok());
  const std::vector<double> fallback =
      store.ComputeWeightedProbabilities(contradictory);
  for (size_t c = 0; c < unweighted.size(); ++c) {
    EXPECT_EQ(fallback[c], unweighted[c]);
  }
}

TEST_F(SampleStoreTest, ApplyAssertionComposesWithWeightedProbabilities) {
  // Direct-user composition: hard view maintenance first, soft reweighting
  // on top of the filtered sample set.
  SampleStore store(fig1_.network, fig1_.constraints, SmallStore());
  Rng rng(6);
  ASSERT_TRUE(store.Initialize(feedback_, &rng).ok());
  ASSERT_TRUE(feedback_.Approve(fig1_.c2).ok());
  ASSERT_TRUE(store.ApplyAssertion(fig1_.c2, true, feedback_, &rng).ok());
  // Survivors: {c1,c2,c3} and {c2,c5}.
  ASSERT_EQ(store.samples().size(), 2u);

  SoftEvidence evidence(fig1_.network.correspondence_count());
  ASSERT_TRUE(evidence.Record(fig1_.c1, true, 0.2).ok());
  const auto weighted = store.ComputeWeightedProbabilities(evidence);
  // w({c1,c2,c3}) = 0.8 → 1 after max-shift; w({c2,c5}) = 0.2 → 0.25.
  EXPECT_DOUBLE_EQ(weighted[fig1_.c1], 1.0 / 1.25);
  EXPECT_DOUBLE_EQ(weighted[fig1_.c3], 1.0 / 1.25);
  EXPECT_DOUBLE_EQ(weighted[fig1_.c5], 0.25 / 1.25);
  // The hard assertion stays pinned: every survivor contains c2.
  EXPECT_DOUBLE_EQ(weighted[fig1_.c2], 1.0);
  // The unweighted marginals are untouched by the evidence.
  const auto unweighted = store.ComputeProbabilities();
  EXPECT_DOUBLE_EQ(unweighted[fig1_.c1], 0.5);
  EXPECT_DOUBLE_EQ(unweighted[fig1_.c2], 1.0);
}

TEST_F(SampleStoreTest, EvidenceZeroWeightingEverySurvivorFallsBack) {
  // Corner: after ApplyAssertion(c2, approved) every stored sample contains
  // c2; hard soft-evidence *against* c2 then zero-weights every survivor.
  // ComputeWeightedProbabilities must fall back to the unweighted marginals
  // instead of dividing by a zero (or NaN) total.
  SampleStore store(fig1_.network, fig1_.constraints, SmallStore());
  Rng rng(7);
  ASSERT_TRUE(store.Initialize(feedback_, &rng).ok());
  ASSERT_TRUE(feedback_.Approve(fig1_.c2).ok());
  ASSERT_TRUE(store.ApplyAssertion(fig1_.c2, true, feedback_, &rng).ok());
  ASSERT_EQ(store.samples().size(), 2u);

  SoftEvidence evidence(fig1_.network.correspondence_count());
  ASSERT_TRUE(evidence.Record(fig1_.c2, false, 0.0).ok());  // Hard: c2 out.
  const auto weighted = store.ComputeWeightedProbabilities(evidence);
  const auto unweighted = store.ComputeProbabilities();
  ASSERT_EQ(weighted.size(), unweighted.size());
  for (size_t c = 0; c < weighted.size(); ++c) {
    SCOPED_TRACE(c);
    EXPECT_DOUBLE_EQ(weighted[c], unweighted[c]);
  }
}

TEST_F(SampleStoreTest, EmptyNetworkProbabilities) {
  NetworkBuilder builder;
  builder.AddSchema("A");
  builder.AddSchema("B");
  builder.AddCompleteGraph();
  Network network = builder.Build().value();
  ConstraintSet constraints = testing::MakeStandardConstraints(network);
  SampleStore store(network, constraints, SmallStore());
  Feedback feedback(0);
  Rng rng(7);
  ASSERT_TRUE(store.Initialize(feedback, &rng).ok());
  EXPECT_TRUE(store.ComputeProbabilities().empty());
}

}  // namespace
}  // namespace smn
