// Counting-allocator harness for the walk kernel's zero-allocation claim:
// after a warm-up that lets the WalkScratch capacities plateau, running many
// more walk transitions (Sampler::Step — propose, repair, anneal) must
// perform no heap allocations at all. The global operator new/delete
// overrides below count every allocation in the process; the measured window
// runs only engine code.
//
// Under ASAN/TSAN/MSAN the sanitizer runtime interposes malloc and (on some
// toolchains) the global operator new, so the counters here either never
// fire or count the sanitizer's own bookkeeping. The tests detect that —
// at compile time via the sanitizer feature macros and at runtime by
// probing whether a direct ::operator new reaches our override — and skip
// with a message instead of reporting bogus counts.

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "core/matching_instance.h"
#include "core/repair.h"
#include "core/sampler.h"
#include "core/walk_scratch.h"
#include "tests/testing/test_networks.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define SMN_ALLOCATOR_INTERPOSED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SMN_ALLOCATOR_INTERPOSED 1
#endif

// GCC pairs the libstdc++-declared ::operator new with the free() inside
// the overrides below and reports -Wmismatched-new-delete at inlined call
// sites — a false positive: at link time every new/delete in this binary
// resolves to these overrides, and both sides are malloc/free.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace smn {
namespace {

/// True when the counting overrides above are not the process allocator —
/// a sanitizer runtime got there first. The compile-time macros catch the
/// common cases; the runtime probe catches interposition the macros miss
/// (a direct ::operator new call cannot be elided by the optimizer).
bool AllocatorInterposed() {
#if defined(SMN_ALLOCATOR_INTERPOSED)
  return true;
#else
  const uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  // Volatile function pointers keep the optimizer from eliding the probe or
  // pairing the allocation with the inlined free (-Wmismatched-new-delete).
  void* (*volatile probe_new)(std::size_t) = &::operator new;
  void (*volatile probe_delete)(void*) = &::operator delete;
  void* probe = probe_new(16);
  probe_delete(probe);
  return g_allocation_count.load(std::memory_order_relaxed) == before;
#endif
}

#define SMN_SKIP_IF_ALLOCATOR_INTERPOSED()                                   \
  if (AllocatorInterposed()) {                                               \
    GTEST_SKIP() << "a sanitizer runtime interposes the allocator; the "     \
                    "counting operator new overrides never fire, so "        \
                    "allocation counts here would be meaningless";           \
  }

/// Allocations observed while running `steps` walk transitions on `state`.
uint64_t AllocationsDuringSteps(const Sampler& sampler,
                                const Feedback& feedback, size_t steps,
                                Rng* rng, DynamicBitset* state,
                                WalkScratch* scratch) {
  const uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  for (size_t i = 0; i < steps; ++i) {
    const Status status = sampler.Step(feedback, rng, state, scratch);
    if (!status.ok()) ADD_FAILURE() << status.ToString();
  }
  return g_allocation_count.load(std::memory_order_relaxed) - before;
}

TEST(WalkAllocTest, SteadyStateWalkStepsAllocateNothing) {
  SMN_SKIP_IF_ALLOCATOR_INTERPOSED();
  // A network large enough that walk states hit real one-to-one and cycle
  // repairs, and saturated enough that PickCandidate's scan fallback also
  // runs inside the measured window.
  const testing::RandomNetwork random = testing::MakeRandomNetwork(
      {/*schema_count=*/4, /*attributes_per_schema=*/4,
       /*candidate_density=*/0.5, /*seed=*/12});
  const size_t n = random.network.correspondence_count();
  ASSERT_GT(n, 16u);
  Feedback feedback(n);
  Sampler sampler(random.network, random.constraints);
  Rng rng(2024);

  WalkScratch scratch(n);
  auto start = sampler.ChainStart(feedback, /*overdisperse=*/false, &rng,
                                  &scratch);
  ASSERT_TRUE(start.ok());
  DynamicBitset state = *std::move(start);

  // Warm-up: capacities of the scratch worklists and the eligible buffer
  // plateau within the first few thousand transitions.
  (void)AllocationsDuringSteps(sampler, feedback, 20000, &rng, &state,
                               &scratch);

  const uint64_t allocations =
      AllocationsDuringSteps(sampler, feedback, 5000, &rng, &state, &scratch);
  EXPECT_EQ(allocations, 0u)
      << "steady-state walk steps must not touch the heap";
}

TEST(WalkAllocTest, SteadyStateScratchRepairAllocatesNothing) {
  SMN_SKIP_IF_ALLOCATOR_INTERPOSED();
  // The scratch-threaded RepairInstance on its own: warmed buffers, repeated
  // additions into a copy of a consistent state.
  const testing::RandomNetwork random =
      testing::MakeRandomNetwork({3, 4, 0.5, 31});
  const size_t n = random.network.correspondence_count();
  ASSERT_GT(n, 8u);
  Feedback feedback(n);
  Sampler sampler(random.network, random.constraints);
  Rng rng(7);

  WalkScratch scratch(n);
  auto start = sampler.ChainStart(feedback, /*overdisperse=*/true, &rng,
                                  &scratch);
  ASSERT_TRUE(start.ok());
  const DynamicBitset base = *std::move(start);
  DynamicBitset instance = base;  // Reused (equal-size) work buffer.

  auto repair_round = [&](size_t rounds) {
    for (size_t i = 0; i < rounds; ++i) {
      instance = base;
      const CorrespondenceId added =
          static_cast<CorrespondenceId>(rng.Index(n));
      const Status status = RepairInstance(random.constraints, feedback, added,
                                           &instance, &scratch);
      if (!status.ok()) ADD_FAILURE() << status.ToString();
    }
  };

  repair_round(5000);  // Warm-up.
  const uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  repair_round(2000);
  const uint64_t allocations =
      g_allocation_count.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(allocations, 0u)
      << "scratch-threaded repair must not touch the heap";
}

TEST(WalkAllocTest, CounterSeesOrdinaryAllocations) {
  SMN_SKIP_IF_ALLOCATOR_INTERPOSED();
  // Sanity-check the harness itself: a vector growth must be counted.
  const uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  {
    std::vector<int> v;
    v.reserve(64);
    ASSERT_EQ(v.capacity(), 64u);
  }
  const uint64_t after = g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace smn
