#include "core/entropy.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace smn {
namespace {

TEST(BinaryEntropyTest, ZeroAtCertainty) {
  EXPECT_DOUBLE_EQ(BinaryEntropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(1.0), 0.0);
}

TEST(BinaryEntropyTest, OneBitAtHalf) {
  EXPECT_DOUBLE_EQ(BinaryEntropy(0.5), 1.0);
}

TEST(BinaryEntropyTest, SymmetricAroundHalf) {
  EXPECT_NEAR(BinaryEntropy(0.2), BinaryEntropy(0.8), 1e-12);
  EXPECT_NEAR(BinaryEntropy(0.01), BinaryEntropy(0.99), 1e-12);
}

TEST(BinaryEntropyTest, MonotoneTowardsHalf) {
  EXPECT_LT(BinaryEntropy(0.1), BinaryEntropy(0.3));
  EXPECT_LT(BinaryEntropy(0.3), BinaryEntropy(0.5));
}

TEST(BinaryEntropyTest, OutOfRangeClampsToZero) {
  EXPECT_DOUBLE_EQ(BinaryEntropy(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(1.1), 0.0);
}

TEST(NetworkUncertaintyTest, SumsBinaryEntropies) {
  // The paper's Example 1 (as published): two instances over five
  // correspondences with c1 certain gives H = 4 bits.
  const std::vector<double> probabilities{1.0, 0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(NetworkUncertainty(probabilities), 4.0);
}

TEST(NetworkUncertaintyTest, CertainNetworkHasZeroUncertainty) {
  EXPECT_DOUBLE_EQ(NetworkUncertainty({1.0, 0.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(NetworkUncertainty({}), 0.0);
}

TEST(NetworkUncertaintyTest, GeneralValues) {
  const double h = NetworkUncertainty({0.25, 0.75});
  EXPECT_NEAR(h, 2 * (-0.25 * std::log2(0.25) - 0.75 * std::log2(0.75)), 1e-12);
}

TEST(BinaryEntropyTest, NanInputYieldsZeroNotNan) {
  // Regression for the noisy-regime sweeps: a 0/0 marginal (empty or
  // zero-weight sample set) must not poison H(C, P) with NaN.
  EXPECT_DOUBLE_EQ(BinaryEntropy(std::nan("")), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(std::numeric_limits<double>::quiet_NaN()),
                   0.0);
}

TEST(BinaryEntropyTest, ExactBoundaryInputsAreZero) {
  // Pinned: exactly 1.0 and exactly 0.0 (not merely near) are certain.
  EXPECT_DOUBLE_EQ(BinaryEntropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(std::nextafter(1.0, 2.0)), 0.0);
  EXPECT_GT(BinaryEntropy(std::nextafter(1.0, 0.0)), 0.0);
}

TEST(NetworkUncertaintyTest, NanMarginalDoesNotPoisonTheSum) {
  EXPECT_DOUBLE_EQ(NetworkUncertainty({0.5, std::nan(""), 0.5}), 2.0);
}

}  // namespace
}  // namespace smn
