#include "core/matching_instance.h"

#include <gtest/gtest.h>

#include "tests/testing/test_networks.h"

namespace smn {
namespace {

class MatchingInstanceTest : public ::testing::Test {
 protected:
  MatchingInstanceTest()
      : fig1_(testing::MakeFig1Network()),
        feedback_(fig1_.network.correspondence_count()) {}

  DynamicBitset Selection(std::initializer_list<CorrespondenceId> ids) const {
    DynamicBitset selection(fig1_.network.correspondence_count());
    for (CorrespondenceId id : ids) selection.Set(id);
    return selection;
  }

  testing::Fig1Network fig1_;
  Feedback feedback_;
};

TEST_F(MatchingInstanceTest, PaperInstancesAreMatchingInstances) {
  EXPECT_TRUE(IsMatchingInstance(fig1_.constraints, feedback_,
                                 Selection({fig1_.c1, fig1_.c2, fig1_.c3})));
  EXPECT_TRUE(IsMatchingInstance(fig1_.constraints, feedback_,
                                 Selection({fig1_.c1, fig1_.c4, fig1_.c5})));
}

TEST_F(MatchingInstanceTest, NonMaximalConsistentSetIsNotAnInstance) {
  // {c2} is consistent but extendable by c5, hence not maximal.
  const auto only_c2 = Selection({fig1_.c2});
  EXPECT_TRUE(IsConsistentInstance(fig1_.constraints, feedback_, only_c2));
  EXPECT_FALSE(IsMaximalInstance(fig1_.constraints, feedback_, only_c2));
  EXPECT_FALSE(IsMatchingInstance(fig1_.constraints, feedback_, only_c2));
}

TEST_F(MatchingInstanceTest, InconsistentSetIsNotAnInstance) {
  EXPECT_FALSE(IsConsistentInstance(fig1_.constraints, feedback_,
                                    Selection({fig1_.c3, fig1_.c5})));
  EXPECT_FALSE(IsConsistentInstance(fig1_.constraints, feedback_,
                                    Selection({fig1_.c1, fig1_.c2})));
}

TEST_F(MatchingInstanceTest, FeedbackGatesConsistency) {
  feedback_.Disapprove(fig1_.c3);
  EXPECT_FALSE(IsConsistentInstance(fig1_.constraints, feedback_,
                                    Selection({fig1_.c1, fig1_.c2, fig1_.c3})));
  feedback_.Approve(fig1_.c1);
  // {c3, c4} misses the approved c1.
  EXPECT_FALSE(IsConsistentInstance(fig1_.constraints, feedback_,
                                    Selection({fig1_.c3, fig1_.c4})));
}

TEST_F(MatchingInstanceTest, DisapprovedCorrespondencesDoNotBlockMaximality) {
  // {c2, c5} is maximal; disapproving an unrelated candidate keeps it so.
  feedback_.Disapprove(fig1_.c1);
  EXPECT_TRUE(IsMaximalInstance(fig1_.constraints, feedback_,
                                Selection({fig1_.c2, fig1_.c5})));
}

TEST_F(MatchingInstanceTest, MaximalizeReachesAMaximalInstance) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    DynamicBitset selection(fig1_.network.correspondence_count());
    Maximalize(fig1_.constraints, feedback_, &rng, &selection);
    EXPECT_TRUE(IsMatchingInstance(fig1_.constraints, feedback_, selection))
        << selection.ToString();
  }
}

TEST_F(MatchingInstanceTest, SingletonC1IsMaximal) {
  // A subtle consequence of Definition 1: every single extension of {c1}
  // opens a chain whose closing correspondence is absent, so {c1} is itself
  // a matching instance (the triangle instances are reachable only by adding
  // two correspondences at once — which is why the repair procedure closes
  // cycles; see RepairOptions).
  Rng rng(4);
  DynamicBitset selection = Selection({fig1_.c1});
  EXPECT_TRUE(IsMatchingInstance(fig1_.constraints, feedback_, selection));
  Maximalize(fig1_.constraints, feedback_, &rng, &selection);
  EXPECT_EQ(selection.Count(), 1u);  // Nothing single-addable.
}

TEST_F(MatchingInstanceTest, MaximalizeExtendsFromC2) {
  // From {c2} the only single-addable candidate is c5 ({c2, c5} is one of
  // the five instances).
  Rng rng(4);
  DynamicBitset selection = Selection({fig1_.c2});
  Maximalize(fig1_.constraints, feedback_, &rng, &selection);
  EXPECT_TRUE(IsMatchingInstance(fig1_.constraints, feedback_, selection));
  EXPECT_EQ(selection, Selection({fig1_.c2, fig1_.c5}));
}

TEST_F(MatchingInstanceTest, MaximalizeRespectsDisapprovals) {
  feedback_.Disapprove(fig1_.c2);
  feedback_.Disapprove(fig1_.c4);
  Rng rng(5);
  DynamicBitset selection(fig1_.network.correspondence_count());
  Maximalize(fig1_.constraints, feedback_, &rng, &selection);
  EXPECT_FALSE(selection.Test(fig1_.c2));
  EXPECT_FALSE(selection.Test(fig1_.c4));
  EXPECT_TRUE(IsMatchingInstance(fig1_.constraints, feedback_, selection));
}

TEST_F(MatchingInstanceTest, RepairDistanceIsComplementSize) {
  EXPECT_EQ(RepairDistance(Selection({fig1_.c1, fig1_.c2, fig1_.c3}), 5), 2u);
  EXPECT_EQ(RepairDistance(Selection({}), 5), 5u);
}

}  // namespace
}  // namespace smn
