#include "core/parallel_sampler.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/matching_instance.h"
#include "tests/testing/test_networks.h"

namespace smn {
namespace {

class ParallelSamplerTest : public ::testing::Test {
 protected:
  ParallelSamplerTest()
      : fig1_(testing::MakeFig1Network()),
        feedback_(fig1_.network.correspondence_count()) {}

  testing::Fig1Network fig1_;
  Feedback feedback_;
};

std::vector<DynamicBitset> SampleWithThreads(const ParallelSampler& sampler,
                                             const Feedback& feedback,
                                             size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<DynamicBitset> out;
  EXPECT_TRUE(sampler.SampleMerged(feedback, count, &rng, &out).ok());
  return out;
}

TEST_F(ParallelSamplerTest, MergedSamplesIdenticalAcrossThreadCounts) {
  // The determinism guarantee: same seed and chain count => bit-identical
  // merged output at 1, 2, and 8 worker threads.
  std::vector<std::vector<DynamicBitset>> runs;
  for (size_t threads : {1u, 2u, 8u}) {
    ParallelSamplerOptions options;
    options.num_chains = 4;
    options.num_threads = threads;
    ParallelSampler sampler(fig1_.network, fig1_.constraints, options);
    runs.push_back(SampleWithThreads(sampler, feedback_, 200, 42));
    ASSERT_EQ(runs.back().size(), 200u);
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST_F(ParallelSamplerTest, DeterminismHoldsOnLargerRandomNetworks) {
  const testing::RandomNetwork random =
      testing::MakeRandomNetwork({4, 4, 0.5, 77});
  Feedback feedback(random.network.correspondence_count());
  std::vector<std::vector<DynamicBitset>> runs;
  for (size_t threads : {1u, 2u, 8u}) {
    ParallelSamplerOptions options;
    options.num_chains = 8;
    options.num_threads = threads;
    options.burn_in = 5;
    ParallelSampler sampler(random.network, random.constraints, options);
    runs.push_back(SampleWithThreads(sampler, feedback, 160, 7));
    ASSERT_EQ(runs.back().size(), 160u);
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST_F(ParallelSamplerTest, EveryChainEmitsMatchingInstances) {
  ParallelSamplerOptions options;
  options.num_chains = 4;
  ParallelSampler sampler(fig1_.network, fig1_.constraints, options);
  Rng rng(5);
  auto chains = sampler.SampleChains(feedback_, 100, &rng);
  ASSERT_TRUE(chains.ok());
  ASSERT_EQ(chains->size(), 4u);
  for (const auto& chain : *chains) {
    EXPECT_EQ(chain.size(), 25u);
    for (const DynamicBitset& sample : chain) {
      EXPECT_TRUE(IsMatchingInstance(fig1_.constraints, feedback_, sample))
          << sample.ToString();
    }
  }
}

TEST_F(ParallelSamplerTest, BurnInDiscardsChainHead) {
  // With identical seeds, a run with burn_in=b and per-chain quota q must
  // reproduce exactly the tail of a burn_in=0 run with quota b+q: burn-in
  // discards the chain head, nothing else.
  constexpr size_t kChains = 2;
  constexpr size_t kBurnIn = 3;
  constexpr size_t kQuota = 10;

  ParallelSamplerOptions with_burn_in;
  with_burn_in.num_chains = kChains;
  with_burn_in.num_threads = 1;
  with_burn_in.burn_in = kBurnIn;
  ParallelSampler burned(fig1_.network, fig1_.constraints, with_burn_in);
  Rng rng_a(123);
  auto burned_chains =
      burned.SampleChains(feedback_, kChains * kQuota, &rng_a);
  ASSERT_TRUE(burned_chains.ok());

  ParallelSamplerOptions without_burn_in = with_burn_in;
  without_burn_in.burn_in = 0;
  ParallelSampler full(fig1_.network, fig1_.constraints, without_burn_in);
  Rng rng_b(123);
  auto full_chains =
      full.SampleChains(feedback_, kChains * (kBurnIn + kQuota), &rng_b);
  ASSERT_TRUE(full_chains.ok());

  for (size_t i = 0; i < kChains; ++i) {
    ASSERT_EQ((*burned_chains)[i].size(), kQuota);
    ASSERT_EQ((*full_chains)[i].size(), kBurnIn + kQuota);
    const std::vector<DynamicBitset> tail(
        (*full_chains)[i].begin() + kBurnIn, (*full_chains)[i].end());
    EXPECT_EQ((*burned_chains)[i], tail) << "chain " << i;
  }
}

TEST_F(ParallelSamplerTest, CountSplitsAcrossChainsWithRemainderFirst) {
  ParallelSamplerOptions options;
  options.num_chains = 3;
  options.num_threads = 1;
  ParallelSampler sampler(fig1_.network, fig1_.constraints, options);
  Rng rng(9);
  auto chains = sampler.SampleChains(feedback_, 5, &rng);
  ASSERT_TRUE(chains.ok());
  ASSERT_EQ(chains->size(), 3u);
  EXPECT_EQ((*chains)[0].size(), 2u);
  EXPECT_EQ((*chains)[1].size(), 2u);
  EXPECT_EQ((*chains)[2].size(), 1u);
}

TEST_F(ParallelSamplerTest, ZeroCountYieldsEmptyChains) {
  ParallelSampler sampler(fig1_.network, fig1_.constraints);
  Rng rng(10);
  auto chains = sampler.SampleChains(feedback_, 0, &rng);
  ASSERT_TRUE(chains.ok());
  for (const auto& chain : *chains) EXPECT_TRUE(chain.empty());
  std::vector<DynamicBitset> merged;
  Rng rng2(10);
  ASSERT_TRUE(sampler.SampleMerged(feedback_, 0, &rng2, &merged).ok());
  EXPECT_TRUE(merged.empty());
}

TEST_F(ParallelSamplerTest, ZeroChainsCoercedToSingleChain) {
  ParallelSamplerOptions options;
  options.num_chains = 0;
  ParallelSampler sampler(fig1_.network, fig1_.constraints, options);
  Rng rng(11);
  auto chains = sampler.SampleChains(feedback_, 12, &rng);
  ASSERT_TRUE(chains.ok());
  ASSERT_EQ(chains->size(), 1u);
  EXPECT_EQ((*chains)[0].size(), 12u);
}

TEST_F(ParallelSamplerTest, EmptyNetworkProducesEmptyInstances) {
  // A network with schemas but zero candidate correspondences: the only
  // matching instance is the empty set, and the engine must not trip over
  // zero-bit bitsets or zero-candidate picks.
  NetworkBuilder builder;
  builder.AddSchema("A");
  builder.AddSchema("B");
  builder.AddCompleteGraph();
  Network network = builder.Build().value();
  ConstraintSet constraints = testing::MakeStandardConstraints(network);
  ParallelSamplerOptions options;
  options.num_chains = 4;
  options.num_threads = 2;
  ParallelSampler sampler(network, constraints, options);
  Feedback feedback(0);
  Rng rng(13);
  std::vector<DynamicBitset> merged;
  ASSERT_TRUE(sampler.SampleMerged(feedback, 8, &rng, &merged).ok());
  ASSERT_EQ(merged.size(), 8u);
  for (const DynamicBitset& sample : merged) EXPECT_TRUE(sample.None());
}

TEST_F(ParallelSamplerTest, ContradictoryApprovalsFailAcrossThreads) {
  ASSERT_TRUE(feedback_.Approve(fig1_.c3).ok());
  ASSERT_TRUE(feedback_.Approve(fig1_.c5).ok());  // One-to-one conflict.
  for (size_t threads : {1u, 4u}) {
    ParallelSamplerOptions options;
    options.num_chains = 4;
    options.num_threads = threads;
    ParallelSampler sampler(fig1_.network, fig1_.constraints, options);
    Rng rng(14);
    auto chains = sampler.SampleChains(feedback_, 20, &rng);
    EXPECT_EQ(chains.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST_F(ParallelSamplerTest, ChainsRespectFeedback) {
  ASSERT_TRUE(feedback_.Approve(fig1_.c2).ok());
  ASSERT_TRUE(feedback_.Disapprove(fig1_.c4).ok());
  ParallelSamplerOptions options;
  options.num_chains = 4;
  ParallelSampler sampler(fig1_.network, fig1_.constraints, options);
  Rng rng(15);
  std::vector<DynamicBitset> merged;
  ASSERT_TRUE(sampler.SampleMerged(feedback_, 80, &rng, &merged).ok());
  for (const DynamicBitset& sample : merged) {
    EXPECT_TRUE(sample.Test(fig1_.c2));
    EXPECT_FALSE(sample.Test(fig1_.c4));
  }
}

}  // namespace
}  // namespace smn
