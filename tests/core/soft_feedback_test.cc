#include "core/soft_feedback.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/dynamic_bitset.h"

namespace smn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(SoftEvidenceTest, RecordValidatesInputs) {
  SoftEvidence evidence(4);
  EXPECT_EQ(evidence.Record(4, true, 0.1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(evidence.Record(0, true, -0.1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(evidence.Record(0, true, 0.6).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(evidence.Record(0, true, std::nan("")).code(),
            StatusCode::kInvalidArgument);
  // Boundary rates are legal: 0 is a hard answer, 0.5 an uninformative one.
  EXPECT_TRUE(evidence.Record(0, true, 0.0).ok());
  EXPECT_TRUE(evidence.Record(0, true, 0.5).ok());
  EXPECT_EQ(evidence.total_answers(), 2u);
}

TEST(SoftEvidenceTest, TalliesAndLogLikelihoods) {
  SoftEvidence evidence(3);
  ASSERT_TRUE(evidence.Record(1, true, 0.2).ok());
  ASSERT_TRUE(evidence.Record(1, true, 0.2).ok());
  ASSERT_TRUE(evidence.Record(1, false, 0.2).ok());
  EXPECT_TRUE(evidence.HasEvidence(1));
  EXPECT_FALSE(evidence.HasEvidence(0));
  EXPECT_EQ(evidence.answer_count(1), 3u);
  EXPECT_EQ(evidence.approvals(1), 2u);
  EXPECT_EQ(evidence.disapprovals(1), 1u);
  // L_in = 2 log(0.8) + log(0.2); L_out = 2 log(0.2) + log(0.8).
  EXPECT_NEAR(evidence.LogLikelihoodIn(1),
              2 * std::log(0.8) + std::log(0.2), 1e-12);
  EXPECT_NEAR(evidence.LogLikelihoodOut(1),
              2 * std::log(0.2) + std::log(0.8), 1e-12);
  // Net one approval: LLR = log(0.8/0.2) = log 4.
  EXPECT_NEAR(evidence.LogLikelihoodRatio(1), std::log(4.0), 1e-12);
  // Untouched correspondences carry zero evidence either way.
  EXPECT_DOUBLE_EQ(evidence.LogLikelihoodRatio(0), 0.0);
}

TEST(SoftEvidenceTest, HeterogeneousWorkerRatesAccumulate) {
  SoftEvidence evidence(2);
  ASSERT_TRUE(evidence.Record(0, true, 0.1).ok());
  ASSERT_TRUE(evidence.Record(0, false, 0.3).ok());
  EXPECT_NEAR(evidence.LogLikelihoodIn(0), std::log(0.9) + std::log(0.3),
              1e-12);
  EXPECT_NEAR(evidence.LogLikelihoodOut(0), std::log(0.1) + std::log(0.7),
              1e-12);
  // The reliable approval outweighs the unreliable disapproval.
  EXPECT_GT(evidence.LogLikelihoodRatio(0), 0.0);
}

TEST(SoftEvidenceTest, HardAnswersYieldInfiniteLikelihoodRatios) {
  SoftEvidence evidence(2);
  ASSERT_TRUE(evidence.Record(0, true, 0.0).ok());
  EXPECT_DOUBLE_EQ(evidence.LogLikelihoodIn(0), 0.0);
  EXPECT_EQ(evidence.LogLikelihoodOut(0), -kInf);
  EXPECT_EQ(evidence.LogLikelihoodRatio(0), kInf);
  EXPECT_FALSE(evidence.Contradictory(0));
  ASSERT_TRUE(evidence.Record(1, false, 0.0).ok());
  EXPECT_EQ(evidence.LogLikelihoodRatio(1), -kInf);
}

TEST(SoftEvidenceTest, ContradictoryHardAnswersAreUninformative) {
  SoftEvidence evidence(1);
  ASSERT_TRUE(evidence.Record(0, true, 0.0).ok());
  ASSERT_TRUE(evidence.Record(0, false, 0.0).ok());
  EXPECT_TRUE(evidence.Contradictory(0));
  EXPECT_DOUBLE_EQ(evidence.LogLikelihoodRatio(0), 0.0);
  EXPECT_DOUBLE_EQ(evidence.Posterior(0, 0.3), 0.3);  // Prior unchanged.
}

TEST(SoftEvidenceTest, PosteriorMatchesBayesRule) {
  SoftEvidence evidence(1);
  ASSERT_TRUE(evidence.Record(0, true, 0.2).ok());
  // Posterior odds = prior odds * (0.8 / 0.2).
  const double prior = 0.5;
  EXPECT_NEAR(evidence.Posterior(0, prior), 0.8, 1e-12);
  const double prior2 = 0.25;
  const double odds = (prior2 / (1 - prior2)) * 4.0;
  EXPECT_NEAR(evidence.Posterior(0, prior2), odds / (1 + odds), 1e-12);
  // Degenerate priors pass through.
  EXPECT_DOUBLE_EQ(evidence.Posterior(0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(evidence.Posterior(0, 1.0), 1.0);
}

TEST(SoftEvidenceTest, PosteriorStableUnderLongHistories) {
  SoftEvidence evidence(1);
  // 600 answers push both log-likelihoods far below exp() range; the
  // max-shifted posterior must stay finite and sane (net 100 approvals).
  for (int i = 0; i < 350; ++i) ASSERT_TRUE(evidence.Record(0, true, 0.3).ok());
  for (int i = 0; i < 250; ++i) {
    ASSERT_TRUE(evidence.Record(0, false, 0.3).ok());
  }
  const double posterior = evidence.Posterior(0, 0.5);
  EXPECT_TRUE(std::isfinite(posterior));
  EXPECT_GT(posterior, 0.999);
}

TEST(SoftEvidenceTest, PosteriorUnderHardEvidence) {
  SoftEvidence evidence(2);
  ASSERT_TRUE(evidence.Record(0, true, 0.0).ok());
  EXPECT_DOUBLE_EQ(evidence.Posterior(0, 0.3), 1.0);
  ASSERT_TRUE(evidence.Record(1, false, 0.0).ok());
  EXPECT_DOUBLE_EQ(evidence.Posterior(1, 0.3), 0.0);
}

std::vector<DynamicBitset> MakeSamples(
    size_t bits, const std::vector<std::vector<size_t>>& members) {
  std::vector<DynamicBitset> samples;
  for (const auto& instance : members) {
    DynamicBitset sample(bits);
    for (size_t bit : instance) sample.Set(bit);
    samples.push_back(sample);
  }
  return samples;
}

TEST(ImportanceWeightsTest, NoEvidenceGivesUniformWeights) {
  SoftEvidence evidence(3);
  const auto samples = MakeSamples(3, {{0}, {1}, {0, 2}});
  const std::vector<double> weights =
      ComputeImportanceWeights(evidence, samples);
  ASSERT_EQ(weights.size(), 3u);
  for (double w : weights) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(ImportanceWeightsTest, WeightsAreMaxShiftedLikelihoods) {
  SoftEvidence evidence(3);
  ASSERT_TRUE(evidence.Record(0, true, 0.2).ok());
  const auto samples = MakeSamples(3, {{0}, {1}, {0, 2}});
  const std::vector<double> weights =
      ComputeImportanceWeights(evidence, samples);
  ASSERT_EQ(weights.size(), 3u);
  // Samples containing c0 have likelihood 0.8, the other 0.2; max-shift
  // normalizes the former to exactly 1.
  EXPECT_DOUBLE_EQ(weights[0], 1.0);
  EXPECT_NEAR(weights[1], 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(weights[2], 1.0);
}

TEST(ImportanceWeightsTest, HardEvidenceZeroesInconsistentSamples) {
  SoftEvidence evidence(3);
  ASSERT_TRUE(evidence.Record(0, true, 0.0).ok());
  const auto samples = MakeSamples(3, {{0}, {1}, {0, 2}});
  const std::vector<double> weights =
      ComputeImportanceWeights(evidence, samples);
  ASSERT_EQ(weights.size(), 3u);
  EXPECT_DOUBLE_EQ(weights[0], 1.0);
  EXPECT_DOUBLE_EQ(weights[1], 0.0);  // Violates the hard approval.
  EXPECT_DOUBLE_EQ(weights[2], 1.0);
}

TEST(ImportanceWeightsTest, RestrictionMaskFiltersEvidence) {
  SoftEvidence evidence(3);
  ASSERT_TRUE(evidence.Record(0, true, 0.0).ok());
  ASSERT_TRUE(evidence.Record(1, true, 0.0).ok());
  DynamicBitset mask(3);
  mask.Set(1);  // Only evidence on c1 participates.
  const auto samples = MakeSamples(3, {{0}, {1}, {0, 2}});
  const std::vector<double> weights =
      ComputeImportanceWeights(evidence, samples, &mask);
  ASSERT_EQ(weights.size(), 3u);
  EXPECT_DOUBLE_EQ(weights[0], 0.0);
  EXPECT_DOUBLE_EQ(weights[1], 1.0);
  EXPECT_DOUBLE_EQ(weights[2], 0.0);
}

TEST(ImportanceWeightsTest, AllZeroLikelihoodReturnsEmpty) {
  SoftEvidence evidence(3);
  ASSERT_TRUE(evidence.Record(2, true, 0.0).ok());  // No sample contains c2...
  const auto samples = MakeSamples(3, {{0}, {1}});
  EXPECT_TRUE(ComputeImportanceWeights(evidence, samples).empty());
  EXPECT_TRUE(ComputeImportanceWeights(evidence, {}).empty());
}

TEST(ImportanceWeightsTest, ContradictoryEvidenceIsSkipped) {
  SoftEvidence evidence(2);
  ASSERT_TRUE(evidence.Record(0, true, 0.0).ok());
  ASSERT_TRUE(evidence.Record(0, false, 0.0).ok());
  const auto samples = MakeSamples(2, {{0}, {1}});
  const std::vector<double> weights =
      ComputeImportanceWeights(evidence, samples);
  ASSERT_EQ(weights.size(), 2u);  // Not empty: contradiction excluded.
  EXPECT_DOUBLE_EQ(weights[0], 1.0);
  EXPECT_DOUBLE_EQ(weights[1], 1.0);
}

TEST(EffectiveSampleSizeTest, KishFormula) {
  EXPECT_DOUBLE_EQ(EffectiveSampleSize({}), 0.0);
  EXPECT_DOUBLE_EQ(EffectiveSampleSize({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(EffectiveSampleSize({1.0, 1.0, 1.0, 1.0}), 4.0);
  // Scale invariance.
  EXPECT_DOUBLE_EQ(EffectiveSampleSize({0.3, 0.3, 0.3, 0.3}), 4.0);
  // One dominant weight collapses the ESS toward 1.
  EXPECT_NEAR(EffectiveSampleSize({1.0, 1e-9, 1e-9}), 1.0, 1e-6);
  // Two equal + one zero = 2 effective samples.
  EXPECT_DOUBLE_EQ(EffectiveSampleSize({1.0, 1.0, 0.0}), 2.0);
}

TEST(EffectiveSampleSizeTest, NonFiniteWeightsGiveZeroNotNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Regression: inf*inf (or NaN) made sum_squares NaN, NaN slipped past the
  // old `sum_squares <= 0.0` guard, and the ESS came back NaN — which then
  // failed every `ess < threshold` resample trigger downstream.
  EXPECT_DOUBLE_EQ(EffectiveSampleSize({1.0, kInf}), 0.0);
  EXPECT_DOUBLE_EQ(EffectiveSampleSize({1.0, nan}), 0.0);
  EXPECT_DOUBLE_EQ(EffectiveSampleSize({-kInf}), 0.0);
  EXPECT_DOUBLE_EQ(EffectiveSampleSize({nan, nan, nan}), 0.0);
  // Finite vectors are untouched by the guard.
  EXPECT_DOUBLE_EQ(EffectiveSampleSize({1.0, 1.0}), 2.0);
}

TEST(ImportanceWeightsTest, NonFiniteLogWeightsDoNotPoisonTheShift) {
  // Error rate 1.0 gives log-likelihood log(0) = -inf for an approved-but-
  // absent correspondence; stacking evidence the other way can push a
  // log-weight to +inf/NaN through caller-side accumulation. The max-shift
  // must ignore non-finite entries and map them to weight zero instead of
  // normalizing every sample by a non-finite maximum.
  SoftEvidence evidence(2);
  ASSERT_TRUE(evidence.Record(0, true, 0.0).ok());   // log_out = -inf.
  const auto samples = MakeSamples(2, {{0}, {1}});
  const std::vector<double> weights =
      ComputeImportanceWeights(evidence, samples);
  ASSERT_EQ(weights.size(), 2u);
  for (double w : weights) EXPECT_TRUE(std::isfinite(w));
  EXPECT_DOUBLE_EQ(weights[0], 1.0);
  EXPECT_DOUBLE_EQ(weights[1], 0.0);
  const double ess = EffectiveSampleSize(weights);
  EXPECT_TRUE(std::isfinite(ess));
  EXPECT_DOUBLE_EQ(ess, 1.0);
}

}  // namespace
}  // namespace smn
