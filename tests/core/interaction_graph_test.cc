#include "core/interaction_graph.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace smn {
namespace {

TEST(InteractionGraphTest, StartsEdgeless) {
  InteractionGraph graph(4);
  EXPECT_EQ(graph.schema_count(), 4u);
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_FALSE(graph.HasEdge(0, 1));
}

TEST(InteractionGraphTest, AddEdgeSymmetric) {
  InteractionGraph graph(3);
  ASSERT_TRUE(graph.AddEdge(2, 0).ok());
  EXPECT_TRUE(graph.HasEdge(0, 2));
  EXPECT_TRUE(graph.HasEdge(2, 0));
  EXPECT_FALSE(graph.HasEdge(0, 1));
  // Edges are stored canonically (min, max).
  EXPECT_EQ(graph.edges().front(), (std::pair<SchemaId, SchemaId>{0, 2}));
}

TEST(InteractionGraphTest, RejectsSelfLoop) {
  InteractionGraph graph(3);
  EXPECT_EQ(graph.AddEdge(1, 1).code(), StatusCode::kInvalidArgument);
}

TEST(InteractionGraphTest, RejectsOutOfRange) {
  InteractionGraph graph(3);
  EXPECT_EQ(graph.AddEdge(0, 3).code(), StatusCode::kOutOfRange);
}

TEST(InteractionGraphTest, RejectsDuplicateEdge) {
  InteractionGraph graph(3);
  ASSERT_TRUE(graph.AddEdge(0, 1).ok());
  EXPECT_EQ(graph.AddEdge(1, 0).code(), StatusCode::kAlreadyExists);
}

TEST(InteractionGraphTest, NeighborsTracksAdjacency) {
  InteractionGraph graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(0, 2);
  auto neighbors = graph.Neighbors(0);
  std::sort(neighbors.begin(), neighbors.end());
  EXPECT_EQ(neighbors, (std::vector<SchemaId>{1, 2}));
  EXPECT_EQ(graph.Neighbors(3).size(), 0u);
}

TEST(InteractionGraphTest, TriangleEnumerationCompleteGraph) {
  InteractionGraph graph(4);
  for (SchemaId a = 0; a < 4; ++a) {
    for (SchemaId b = a + 1; b < 4; ++b) graph.AddEdge(a, b);
  }
  // C(4,3) = 4 triangles, each exactly once.
  const auto triangles = graph.Triangles();
  EXPECT_EQ(triangles.size(), 4u);
  for (const auto& t : triangles) {
    EXPECT_LT(t[0], t[1]);
    EXPECT_LT(t[1], t[2]);
  }
}

TEST(InteractionGraphTest, TriangleEnumerationRingHasNone) {
  InteractionGraph graph(5);
  for (SchemaId a = 0; a < 5; ++a) graph.AddEdge(a, (a + 1) % 5);
  EXPECT_TRUE(graph.Triangles().empty());
}

TEST(InteractionGraphTest, SelfLoopRejectionLeavesGraphUnchanged) {
  InteractionGraph graph(3);
  ASSERT_TRUE(graph.AddEdge(0, 1).ok());
  ASSERT_EQ(graph.AddEdge(2, 2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_TRUE(graph.Neighbors(2).empty());
  EXPECT_FALSE(graph.HasEdge(2, 2));
}

TEST(InteractionGraphTest, HasEdgeOutOfRangeIsFalse) {
  InteractionGraph graph(2);
  graph.AddEdge(0, 1);
  EXPECT_FALSE(graph.HasEdge(0, 5));
  EXPECT_FALSE(graph.HasEdge(7, 9));
}

TEST(InteractionGraphTest, TrianglesOnDisjointCliques) {
  // Two disjoint 3-cliques: exactly one triangle each, nothing across.
  InteractionGraph graph(6);
  for (SchemaId base : {SchemaId{0}, SchemaId{3}}) {
    graph.AddEdge(base, base + 1);
    graph.AddEdge(base, base + 2);
    graph.AddEdge(base + 1, base + 2);
  }
  const auto triangles = graph.Triangles();
  ASSERT_EQ(triangles.size(), 2u);
  EXPECT_EQ(triangles[0], (std::array<SchemaId, 3>{0, 1, 2}));
  EXPECT_EQ(triangles[1], (std::array<SchemaId, 3>{3, 4, 5}));
  EXPECT_FALSE(graph.IsComplete());
}

TEST(InteractionGraphTest, IsComplete) {
  InteractionGraph graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(0, 2);
  EXPECT_FALSE(graph.IsComplete());
  graph.AddEdge(1, 2);
  EXPECT_TRUE(graph.IsComplete());
}

}  // namespace
}  // namespace smn
